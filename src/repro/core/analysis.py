"""Occupancy and false-positive analytics used across the experiments.

Implements the expectation/concentration results of paper Section 3
(eqs. 4-5), the birthday-paradox and coupon-collector counts of
Section 4.1, and empirical estimators used to cross-check every figure.
"""

from __future__ import annotations

import math
import random
from typing import Callable, Iterable, Sequence

from repro.exceptions import ParameterError

__all__ = [
    "expected_zero_bits",
    "expected_set_bits",
    "occupancy_concentration_bound",
    "birthday_threshold",
    "coupon_collector_items",
    "adversarial_saturation_items",
    "pollution_gain",
    "scalable_compound_fpp",
    "empirical_fpp",
    "expected_weight_after",
]


def expected_zero_bits(m: int, n: int, k: int) -> float:
    """Expected number of 0-bits after n uniform insertions: ``m p`` with
    ``p = (1 - 1/m)^{kn}`` (paper eq. 4)."""
    if m <= 0 or k <= 0 or n < 0:
        raise ParameterError("m, k must be positive and n non-negative")
    p = (1.0 - 1.0 / m) ** (k * n)
    return m * p


def expected_set_bits(m: int, n: int, k: int) -> float:
    """Expected Hamming weight after n uniform insertions."""
    return m - expected_zero_bits(m, n, k)


def expected_weight_after(m: int, n: int, k: int, adversarial: bool = False) -> float:
    """Expected weight: ``nk`` for a chosen-insertion adversary (every bit
    fresh) versus the uniform expectation."""
    if adversarial:
        return float(min(m, n * k))
    return expected_set_bits(m, n, k)


def occupancy_concentration_bound(m: int, n: int, k: int, epsilon: float) -> float:
    """Azuma-Hoeffding bound ``P(|X - mp| >= eps m) <= 2 e^{-2 m^2 eps^2 / (nk)}``
    (paper eq. 5, after Broder & Mitzenmacher)."""
    if epsilon <= 0:
        raise ParameterError("epsilon must be positive")
    if m <= 0 or k <= 0 or n <= 0:
        raise ParameterError("m, n, k must be positive")
    return min(1.0, 2.0 * math.exp(-2.0 * (m**2) * (epsilon**2) / (n * k)))


def birthday_threshold(m: int, k: int) -> int:
    """``ceil(sqrt(m)/k)`` -- insertions below this need no crafting at
    all, since uniform indexes are likely all-distinct (paper Section 4.1)."""
    if m <= 0 or k <= 0:
        raise ParameterError("m and k must be positive")
    return math.ceil(math.sqrt(m) / k)


def coupon_collector_items(m: int, k: int) -> int:
    """Expected *random* insertions to saturate the filter:
    ``floor(m log m / k)`` (coupon collector, k draws per item)."""
    if m <= 1 or k <= 0:
        raise ParameterError("m must exceed 1 and k be positive")
    return math.floor(m * math.log(m) / k)


def adversarial_saturation_items(m: int, k: int) -> int:
    """Chosen insertions to saturate: ``floor(m/k)`` -- a ``log m`` factor
    cheaper than random (paper Section 4.1)."""
    if m <= 0 or k <= 0:
        raise ParameterError("m and k must be positive")
    return math.floor(m / k)


def pollution_gain() -> float:
    """Relative weight increase of a full chosen-insertion attack at the
    classical optimum: ``nk/(m/2) = 2 ln 2 / ... ≈ 1.38`` -- the paper's
    "increases the number of 1s by 38%"."""
    return 2.0 * math.log(2)


def scalable_compound_fpp(slice_fpps: Sequence[float]) -> float:
    """Compound FP of a scalable filter: ``1 - prod(1 - f_i)`` (paper
    Section 6.1, after Almeida et al.)."""
    product = 1.0
    for f in slice_fpps:
        if not 0.0 <= f <= 1.0:
            raise ParameterError(f"slice fpp {f} outside [0, 1]")
        product *= 1.0 - f
    return 1.0 - product


def empirical_fpp(
    contains: Callable[[str], bool],
    probes: Iterable[str] | None = None,
    trials: int = 2000,
    rng: random.Random | None = None,
) -> float:
    """Estimate a filter's FP rate by probing items never inserted.

    Parameters
    ----------
    contains:
        Membership oracle (e.g. ``lambda u: u in filter``).
    probes:
        Iterable of probe items known to be outside the inserted set.  If
        omitted, random hex tokens (prefixed to avoid collisions with any
        realistic inserted set) are generated.
    trials:
        Number of probes when generating automatically.
    """
    if probes is None:
        rng = rng or random.Random(0xFB00)
        probes = (f"__fpp_probe__{rng.getrandbits(64):016x}" for _ in range(trials))
    hits = 0
    total = 0
    for probe in probes:
        total += 1
        if contains(probe):
            hits += 1
    if total == 0:
        raise ParameterError("no probes supplied")
    return hits / total
