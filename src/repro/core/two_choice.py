"""The power-of-two-choices Bloom filter (Lumetta & Mitzenmacher 2007).

The paper's title is a riff on this construction, and its conclusion
asks the natural question: do variants exist "having a better worst-case
false positive probability than the original ones"?  This module
implements the two-choice filter and answers it.

Mechanics: every item has *two* candidate index groups (two independent
k-index derivations).  Insertion evaluates both and sets the group that
adds the fewer new bits (ties: first group); a query answers "present"
if *either* group is fully set.  For uniform inputs this reduces the
number of set bits; the query-side OR costs a factor ~2 in FP, so the
net false-positive win only materialises once k is large enough
(empirically k >= ~8 at typical loads -- the extension bench measures
both regimes).  Hashing work doubles either way.

Under the paper's chosen-insertion adversary the picture flips:

* the adversary crafts items where **both** groups are entirely fresh,
  so the defender's choice is irrelevant -- each insertion still sets k
  new bits, and the query-side OR makes the false-positive probability
  *worse* than a classic filter at equal weight:
  ``f = 1 - (1 - (W/m)^k)^2  >=  (W/m)^k``;
* crafting is only marginally harder (both groups fresh instead of
  one), a constant-factor increase while the filter is sparse.

So two choices help the average case and *hurt* the worst case -- the
"evil choices" beat the "two choices", which is exactly the asymmetry
the paper's title promises.  The ablation bench quantifies it.
"""

from __future__ import annotations

from repro.core.bitvector import BitVector
from repro.core.interfaces import MembershipFilter
from repro.exceptions import ParameterError
from repro.hashing.base import IndexStrategy
from repro.hashing.crypto import SHA512
from repro.hashing.recycling import RecyclingStrategy

__all__ = ["TwoChoiceBloomFilter"]


class TwoChoiceBloomFilter(MembershipFilter):
    """Bloom filter with two candidate groups per item.

    Parameters
    ----------
    m, k:
        Bit-array size and indexes per *group*.
    left, right:
        The two independent index derivations; default to recycled
        SHA-512 under two public domain-separation salts (both known to
        the adversary, as always in this package).
    """

    def __init__(
        self,
        m: int,
        k: int,
        left: IndexStrategy | None = None,
        right: IndexStrategy | None = None,
    ) -> None:
        if m <= 0 or k <= 0:
            raise ParameterError("m and k must be positive")
        self.m = m
        self.k = k
        self.left = left or RecyclingStrategy(SHA512(), salt=b"left:")
        self.right = right or RecyclingStrategy(SHA512(), salt=b"right:")
        self.bits = BitVector(m)
        self._insertions = 0
        self._weight = 0

    def groups(self, item: str | bytes) -> tuple[tuple[int, ...], tuple[int, ...]]:
        """The two candidate index groups (public, predictable)."""
        return (
            self.left.indexes(item, self.k, self.m),
            self.right.indexes(item, self.k, self.m),
        )

    def _new_bits(self, indexes: tuple[int, ...]) -> int:
        return sum(1 for i in set(indexes) if not self.bits.get(i))

    def add(self, item: str | bytes) -> bool:
        """Insert via the lighter of the two groups.

        Returns True if the item already appeared present (either group
        fully set) before the insertion.
        """
        group_a, group_b = self.groups(item)
        already = self.contains_groups(group_a, group_b)
        chosen = group_a if self._new_bits(group_a) <= self._new_bits(group_b) else group_b
        for index in chosen:
            if self.bits.set(index):
                self._weight += 1
        self._insertions += 1
        return already

    def add_indexes(self, indexes) -> None:
        """Index-level insertion hook (attack simulators)."""
        for index in indexes:
            if self.bits.set(index):
                self._weight += 1
        self._insertions += 1

    def contains_groups(self, group_a: tuple[int, ...], group_b: tuple[int, ...]) -> bool:
        """Membership given precomputed groups."""
        return all(self.bits.get(i) for i in group_a) or all(
            self.bits.get(i) for i in group_b
        )

    def __contains__(self, item: str | bytes) -> bool:
        return self.contains_groups(*self.groups(item))

    def __len__(self) -> int:
        return self._insertions

    @property
    def hamming_weight(self) -> int:
        """Number of set bits."""
        return self._weight

    @property
    def fill_ratio(self) -> float:
        """Fraction of bits set."""
        return self._weight / self.m

    def current_fpp(self) -> float:
        """Weight-implied FP: either group fully set,
        ``1 - (1 - (W/m)^k)^2`` -- note the OR makes this *larger* than a
        classic filter's at equal weight."""
        single = (self._weight / self.m) ** self.k
        return 1.0 - (1.0 - single) ** 2

    def worst_case_fpp(self, n: int) -> float:
        """FP a chosen-insertion adversary forces with n both-groups-fresh
        items: weight nk, then the two-group OR."""
        single = min(1.0, n * self.k / self.m) ** self.k
        return 1.0 - (1.0 - single) ** 2

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"<TwoChoiceBloomFilter m={self.m} k={self.k} "
            f"n={self._insertions} weight={self._weight}>"
        )
