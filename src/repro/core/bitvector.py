"""A compact bit vector with the support/weight queries the paper uses.

The paper reasons about a filter ``z`` through ``supp(z)`` (the set of
1-positions) and ``wH(z)`` (its Hamming weight); both are first-class
here.  Backed by a ``bytearray`` so a 3200-bit filter costs 400 bytes,
with popcount via ``int.bit_count``.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Sequence

__all__ = ["BitVector", "popcount"]

def popcount(data: bytes | bytearray) -> int:
    """Number of set bits in a byte string."""
    return int.from_bytes(data, "little").bit_count()


class BitVector:
    """Fixed-size mutable bit vector.

    Parameters
    ----------
    size:
        Number of bits; immutable after construction.
    """

    __slots__ = ("_size", "_bytes")

    def __init__(self, size: int) -> None:
        if size <= 0:
            raise ValueError("size must be positive")
        self._size = size
        self._bytes = bytearray((size + 7) // 8)

    @classmethod
    def from_indices(cls, size: int, indices: Iterable[int]) -> "BitVector":
        """Build a vector with the given positions set."""
        vec = cls(size)
        for i in indices:
            vec.set(i)
        return vec

    @classmethod
    def from_bytes(cls, size: int, raw: bytes) -> "BitVector":
        """Rehydrate a vector serialised with :meth:`to_bytes`."""
        vec = cls(size)
        if len(raw) != len(vec._bytes):
            raise ValueError(f"expected {len(vec._bytes)} bytes, got {len(raw)}")
        vec._bytes[:] = raw
        return vec

    def _check(self, index: int) -> int:
        if not 0 <= index < self._size:
            raise IndexError(f"bit index {index} out of range [0, {self._size})")
        return index

    def __len__(self) -> int:
        return self._size

    def get(self, index: int) -> bool:
        """Return bit ``index``."""
        self._check(index)
        return bool(self._bytes[index >> 3] & (1 << (index & 7)))

    __getitem__ = get

    def set(self, index: int) -> bool:
        """Set bit ``index`` to 1; return True if it was previously 0."""
        self._check(index)
        byte, mask = index >> 3, 1 << (index & 7)
        was_unset = not self._bytes[byte] & mask
        self._bytes[byte] |= mask
        return was_unset

    def clear(self, index: int) -> bool:
        """Set bit ``index`` to 0; return True if it was previously 1."""
        self._check(index)
        byte, mask = index >> 3, 1 << (index & 7)
        was_set = bool(self._bytes[byte] & mask)
        self._bytes[byte] &= ~mask & 0xFF
        return was_set

    # ------------------------------------------------------------------
    # Batch operations (the service hot path)
    # ------------------------------------------------------------------
    #
    # These exist because per-bit ``get``/``set`` calls dominate the cost
    # of a Bloom filter operation in pure Python: each one pays a method
    # dispatch, an attribute load and a bounds check.  The batch forms
    # hoist the locals once and validate up front, so the inner loops
    # touch raw bytes only.

    def set_indexes(self, indexes: Sequence[int]) -> int:
        """Set every bit in ``indexes`` in one pass; return how many were
        newly set (0 means the positions were already all 1).

        Duplicate indexes are counted once (the second occurrence finds
        the bit already set).  Validates every position *before* writing
        any bit, so an out-of-range index leaves the vector untouched.
        """
        size = self._size
        for index in indexes:
            if not 0 <= index < size:
                raise IndexError(f"bit index {index} out of range [0, {size})")
        buf = self._bytes
        newly = 0
        for index in indexes:
            byte = index >> 3
            mask = 1 << (index & 7)
            old = buf[byte]
            if not old & mask:
                buf[byte] = old | mask
                newly += 1
        return newly

    def union_update(self, raw: bytes | bytearray) -> int:
        """OR a same-sized byte payload into this vector in one pass
        (how a received digest is merged); returns the number of newly-
        set bits, counted byte-wise from each OR delta.

        Payload bits past ``size`` (the padding of the last byte) are
        ignored, keeping weight/support consistent -- same rule as
        :meth:`set_all`.
        """
        buf = self._bytes
        if len(raw) != len(buf):
            raise ValueError(f"expected {len(buf)} bytes, got {len(raw)}")
        extra = 8 * len(buf) - self._size
        newly = 0
        last = len(buf) - 1
        for byte, incoming in enumerate(raw):
            if byte == last and extra:
                incoming &= 0xFF >> extra
            old = buf[byte]
            new = old | incoming
            if new != old:
                buf[byte] = new
                newly += (new ^ old).bit_count()
        return newly

    def all_set(self, indexes: Iterable[int]) -> bool:
        """True iff every bit in ``indexes`` is 1 (short-circuits on the
        first 0 -- the membership-query hot path)."""
        size = self._size
        buf = self._bytes
        for index in indexes:
            if not 0 <= index < size:
                raise IndexError(f"bit index {index} out of range [0, {size})")
            if not buf[index >> 3] & (1 << (index & 7)):
                return False
        return True

    def get_many(self, indexes: Iterable[int]) -> list[bool]:
        """Read many bits in one pass (no short-circuit)."""
        size = self._size
        buf = self._bytes
        out: list[bool] = []
        for index in indexes:
            if not 0 <= index < size:
                raise IndexError(f"bit index {index} out of range [0, {size})")
            out.append(bool(buf[index >> 3] & (1 << (index & 7))))
        return out

    def set_all(self) -> None:
        """Saturate the vector (every bit to 1)."""
        self._bytes[:] = b"\xff" * len(self._bytes)
        # Zero the padding bits past ``size`` so weight stays consistent.
        extra = 8 * len(self._bytes) - self._size
        if extra:
            self._bytes[-1] &= 0xFF >> extra

    def clear_all(self) -> None:
        """Reset every bit to 0."""
        self._bytes[:] = bytes(len(self._bytes))

    def hamming_weight(self) -> int:
        """Number of set bits, ``wH(z)`` in the paper."""
        return popcount(self._bytes)

    def support(self) -> set[int]:
        """The set of 1-positions, ``supp(z)`` in the paper."""
        return set(self.iter_support())

    def iter_support(self) -> Iterator[int]:
        """Iterate over 1-positions in increasing order."""
        for byte_index, byte in enumerate(self._bytes):
            while byte:
                low = byte & -byte
                yield (byte_index << 3) + low.bit_length() - 1
                byte ^= low

    def iter_zeros(self) -> Iterator[int]:
        """Iterate over 0-positions in increasing order."""
        for i in range(self._size):
            if not self.get(i):
                yield i

    def fill_ratio(self) -> float:
        """Fraction of bits set (occupancy)."""
        return self.hamming_weight() / self._size

    def to_bytes(self) -> bytes:
        """Serialise (little-endian bit order within bytes)."""
        return bytes(self._bytes)

    def copy(self) -> "BitVector":
        """Deep copy."""
        return BitVector.from_bytes(self._size, bytes(self._bytes))

    def __or__(self, other: "BitVector") -> "BitVector":
        if len(other) != self._size:
            raise ValueError("size mismatch")
        out = BitVector(self._size)
        out._bytes[:] = bytes(a | b for a, b in zip(self._bytes, other._bytes))
        return out

    def __and__(self, other: "BitVector") -> "BitVector":
        if len(other) != self._size:
            raise ValueError("size mismatch")
        out = BitVector(self._size)
        out._bytes[:] = bytes(a & b for a, b in zip(self._bytes, other._bytes))
        return out

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, BitVector):
            return NotImplemented
        return self._size == other._size and self._bytes == other._bytes

    def __hash__(self) -> int:  # pragma: no cover - vectors are mutable
        raise TypeError("BitVector is unhashable (mutable)")

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<BitVector size={self._size} weight={self.hamming_weight()}>"
