"""A compact bit vector with the support/weight queries the paper uses.

The paper reasons about a filter ``z`` through ``supp(z)`` (the set of
1-positions) and ``wH(z)`` (its Hamming weight); both are first-class
here.  Backed by a ``bytearray`` so a 3200-bit filter costs 400 bytes.

Two execution backends share that storage byte-for-byte: the original
pure-Python loops and numpy kernels (:mod:`repro.core._kernels`) over
the same buffer, selected per call by :mod:`repro.accel`.  Serialisation
(``to_bytes``) is therefore identical whichever backend ran.

The Hamming weight is maintained *incrementally* by every mutator, so
``hamming_weight``/``fill_ratio`` are O(1) -- the per-batch saturation
check of the service hot path no longer pays an O(m) popcount.  Code
that mutates the raw buffer behind the vector's back must call
:meth:`recount`.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Sequence

from repro import accel

__all__ = ["BitVector", "popcount"]

def popcount(data: bytes | bytearray) -> int:
    """Number of set bits in a byte string."""
    if accel.accelerated(len(data)):
        from repro.core import _kernels

        return _kernels.bit_weight(data)
    return int.from_bytes(data, "little").bit_count()


class BitVector:
    """Fixed-size mutable bit vector.

    Parameters
    ----------
    size:
        Number of bits; immutable after construction.
    """

    __slots__ = ("_size", "_bytes", "_weight")

    def __init__(self, size: int) -> None:
        if size <= 0:
            raise ValueError("size must be positive")
        self._size = size
        self._bytes = bytearray((size + 7) // 8)
        self._weight = 0

    @classmethod
    def from_indices(cls, size: int, indices: Iterable[int]) -> "BitVector":
        """Build a vector with the given positions set."""
        vec = cls(size)
        for i in indices:
            vec.set(i)
        return vec

    @classmethod
    def from_bytes(cls, size: int, raw: bytes) -> "BitVector":
        """Rehydrate a vector serialised with :meth:`to_bytes`."""
        vec = cls(size)
        if len(raw) != len(vec._bytes):
            raise ValueError(f"expected {len(vec._bytes)} bytes, got {len(raw)}")
        vec._bytes[:] = raw
        vec.recount()
        return vec

    def _check(self, index: int) -> int:
        if not 0 <= index < self._size:
            raise IndexError(f"bit index {index} out of range [0, {self._size})")
        return index

    def __len__(self) -> int:
        return self._size

    def get(self, index: int) -> bool:
        """Return bit ``index``."""
        self._check(index)
        return bool(self._bytes[index >> 3] & (1 << (index & 7)))

    __getitem__ = get

    def set(self, index: int) -> bool:
        """Set bit ``index`` to 1; return True if it was previously 0."""
        self._check(index)
        byte, mask = index >> 3, 1 << (index & 7)
        was_unset = not self._bytes[byte] & mask
        if was_unset:
            self._bytes[byte] |= mask
            self._weight += 1
        return was_unset

    def clear(self, index: int) -> bool:
        """Set bit ``index`` to 0; return True if it was previously 1."""
        self._check(index)
        byte, mask = index >> 3, 1 << (index & 7)
        was_set = bool(self._bytes[byte] & mask)
        if was_set:
            self._bytes[byte] &= ~mask & 0xFF
            self._weight -= 1
        return was_set

    # ------------------------------------------------------------------
    # Batch operations (the service hot path)
    # ------------------------------------------------------------------
    #
    # These exist because per-bit ``get``/``set`` calls dominate the cost
    # of a Bloom filter operation in pure Python: each one pays a method
    # dispatch, an attribute load and a bounds check.  The batch forms
    # hoist the locals once and validate the *whole* batch before any
    # write (both backends, so a bad index always leaves the vector
    # untouched), then touch raw bytes only -- or hand the entire batch
    # to the numpy kernels when the accel mode says so.

    def set_indexes(self, indexes: Sequence[int]) -> int:
        """Set every bit in ``indexes`` in one pass; return how many were
        newly set (0 means the positions were already all 1).

        Duplicate indexes are counted once (the second occurrence finds
        the bit already set).  Validates every position *before* writing
        any bit, so an out-of-range index leaves the vector untouched.
        """
        if accel.accelerated(len(indexes)):
            from repro.core import _kernels

            newly = _kernels.bit_set_indexes(self._bytes, self._size, indexes)
            self._weight += newly
            return newly
        size = self._size
        for index in indexes:
            if not 0 <= index < size:
                raise IndexError(f"bit index {index} out of range [0, {size})")
        buf = self._bytes
        newly = 0
        for index in indexes:
            byte = index >> 3
            mask = 1 << (index & 7)
            old = buf[byte]
            if not old & mask:
                buf[byte] = old | mask
                newly += 1
        self._weight += newly
        return newly

    def set_groups(self, flat: Sequence[int], group_size: int) -> list[bool]:
        """Insert ``len(flat) / group_size`` items of ``group_size``
        positions each in one call; returns each item's already-present
        answer (True iff all of its bits were set *before* that item,
        counting earlier items of the same batch -- exact sequential
        parity with per-item :meth:`set_indexes` calls).

        This is the filter-core half of ``BloomFilter.add_batch``: one
        flat index buffer in, packed answers out, no per-item Python
        overhead on the accelerated backend.
        """
        if group_size <= 0:
            raise ValueError("group_size must be positive")
        if len(flat) % group_size:
            raise ValueError(
                f"flat batch of {len(flat)} indexes is not a multiple of "
                f"group_size={group_size}"
            )
        if accel.accelerated(len(flat)):
            from repro.core import _kernels

            answers, newly = _kernels.bit_set_groups(
                self._bytes, self._size, flat, group_size
            )
            self._weight += newly
            return answers
        size = self._size
        for index in flat:
            if not 0 <= index < size:
                raise IndexError(f"bit index {index} out of range [0, {size})")
        buf = self._bytes
        answers: list[bool] = []
        newly_total = 0
        for start in range(0, len(flat), group_size):
            newly = 0
            for index in flat[start : start + group_size]:
                byte = index >> 3
                mask = 1 << (index & 7)
                old = buf[byte]
                if not old & mask:
                    buf[byte] = old | mask
                    newly += 1
            newly_total += newly
            answers.append(newly == 0)
        self._weight += newly_total
        return answers

    def all_set_groups(self, flat: Sequence[int], group_size: int) -> list[bool]:
        """Probe ``len(flat) / group_size`` items in one call; True per
        item iff all of its ``group_size`` bits are set.  The filter-core
        half of ``BloomFilter.contains_batch``."""
        if group_size <= 0:
            raise ValueError("group_size must be positive")
        if len(flat) % group_size:
            raise ValueError(
                f"flat batch of {len(flat)} indexes is not a multiple of "
                f"group_size={group_size}"
            )
        if accel.accelerated(len(flat)):
            from repro.core import _kernels

            return _kernels.bit_test_groups(self._bytes, self._size, flat, group_size)
        size = self._size
        buf = self._bytes
        answers: list[bool] = []
        for start in range(0, len(flat), group_size):
            hit = True
            for index in flat[start : start + group_size]:
                if not 0 <= index < size:
                    raise IndexError(f"bit index {index} out of range [0, {size})")
                if not buf[index >> 3] & (1 << (index & 7)):
                    hit = False
                    break
            else:
                answers.append(hit)
                continue
            # Validate the rest of the group even after a miss, keeping
            # the whole-batch validation contract.
            for index in flat[start : start + group_size]:
                if not 0 <= index < size:
                    raise IndexError(f"bit index {index} out of range [0, {size})")
            answers.append(False)
        return answers

    def union_update(self, raw: bytes | bytearray) -> int:
        """OR a same-sized byte payload into this vector in one pass
        (how a received digest is merged); returns the number of newly-
        set bits, counted byte-wise from each OR delta.

        Payload bits past ``size`` (the padding of the last byte) are
        ignored, keeping weight/support consistent -- same rule as
        :meth:`set_all`.
        """
        buf = self._bytes
        if len(raw) != len(buf):
            raise ValueError(f"expected {len(buf)} bytes, got {len(raw)}")
        if accel.accelerated(len(raw)):
            from repro.core import _kernels

            newly = _kernels.bit_union(buf, self._size, raw)
            self._weight += newly
            return newly
        extra = 8 * len(buf) - self._size
        newly = 0
        last = len(buf) - 1
        for byte, incoming in enumerate(raw):
            if byte == last and extra:
                incoming &= 0xFF >> extra
            old = buf[byte]
            new = old | incoming
            if new != old:
                buf[byte] = new
                newly += (new ^ old).bit_count()
        self._weight += newly
        return newly

    def all_set(self, indexes: Iterable[int]) -> bool:
        """True iff every bit in ``indexes`` is 1 (short-circuits on the
        first 0 -- the membership-query hot path)."""
        size = self._size
        buf = self._bytes
        for index in indexes:
            if not 0 <= index < size:
                raise IndexError(f"bit index {index} out of range [0, {size})")
            if not buf[index >> 3] & (1 << (index & 7)):
                return False
        return True

    def get_many(self, indexes: Iterable[int]) -> list[bool]:
        """Read many bits in one pass (no short-circuit)."""
        size = self._size
        buf = self._bytes
        out: list[bool] = []
        for index in indexes:
            if not 0 <= index < size:
                raise IndexError(f"bit index {index} out of range [0, {size})")
            out.append(bool(buf[index >> 3] & (1 << (index & 7))))
        return out

    def set_all(self) -> None:
        """Saturate the vector (every bit to 1)."""
        self._bytes[:] = b"\xff" * len(self._bytes)
        # Zero the padding bits past ``size`` so weight stays consistent.
        extra = 8 * len(self._bytes) - self._size
        if extra:
            self._bytes[-1] &= 0xFF >> extra
        self._weight = self._size

    def clear_all(self) -> None:
        """Reset every bit to 0."""
        self._bytes[:] = bytes(len(self._bytes))
        self._weight = 0

    def recount(self) -> int:
        """Recompute the cached weight from the raw bytes.

        The incremental counter covers every mutator on this class; this
        is the fallback for code that rewrites the backing buffer
        directly (snapshot restores, forged digests in the attack
        simulators).  Returns the fresh weight.
        """
        self._weight = popcount(self._bytes)
        return self._weight

    def hamming_weight(self) -> int:
        """Number of set bits, ``wH(z)`` in the paper (O(1): maintained
        incrementally by every mutator)."""
        return self._weight

    def support(self) -> set[int]:
        """The set of 1-positions, ``supp(z)`` in the paper."""
        return set(self.iter_support())

    def iter_support(self) -> Iterator[int]:
        """Iterate over 1-positions in increasing order."""
        for byte_index, byte in enumerate(self._bytes):
            while byte:
                low = byte & -byte
                yield (byte_index << 3) + low.bit_length() - 1
                byte ^= low

    def iter_zeros(self) -> Iterator[int]:
        """Iterate over 0-positions in increasing order."""
        for i in range(self._size):
            if not self.get(i):
                yield i

    def fill_ratio(self) -> float:
        """Fraction of bits set (occupancy)."""
        return self._weight / self._size

    def to_bytes(self) -> bytes:
        """Serialise (little-endian bit order within bytes)."""
        return bytes(self._bytes)

    def copy(self) -> "BitVector":
        """Deep copy."""
        out = BitVector(self._size)
        out._bytes[:] = self._bytes
        out._weight = self._weight
        return out

    def __or__(self, other: "BitVector") -> "BitVector":
        if len(other) != self._size:
            raise ValueError("size mismatch")
        out = BitVector(self._size)
        out._bytes[:] = bytes(a | b for a, b in zip(self._bytes, other._bytes))
        out.recount()
        return out

    def __and__(self, other: "BitVector") -> "BitVector":
        if len(other) != self._size:
            raise ValueError("size mismatch")
        out = BitVector(self._size)
        out._bytes[:] = bytes(a & b for a, b in zip(self._bytes, other._bytes))
        out.recount()
        return out

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, BitVector):
            return NotImplemented
        return self._size == other._size and self._bytes == other._bytes

    def __hash__(self) -> int:  # pragma: no cover - vectors are mutable
        raise TypeError("BitVector is unhashable (mutable)")

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<BitVector size={self._size} weight={self.hamming_weight()}>"
