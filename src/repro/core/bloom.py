"""The classic Bloom filter (paper Section 3).

A bit vector of size m; items are inserted by setting the k bits chosen
by an :class:`~repro.hashing.base.IndexStrategy` and queried by checking
them.  The strategy is deliberately pluggable: it is the entire attack
surface (salted crypto calls, Kirsch-Mitzenmacher over MurmurHash,
recycled SHA-512 bits, keyed HMAC, ...).
"""

from __future__ import annotations

import struct
from typing import Iterable

from repro.core.bitvector import BitVector
from repro.core.interfaces import MembershipFilter
from repro.core.params import (
    BloomParameters,
    adversarial_fpp,
    false_positive_probability,
)
from repro.exceptions import ParameterError, SnapshotError
from repro.hashing.base import IndexStrategy
from repro.hashing.crypto import SHA512
from repro.hashing.recycling import RecyclingStrategy

__all__ = [
    "BloomFilter",
    "default_strategy",
    "SNAPSHOT_MAGIC",
    "SNAPSHOT_VERSION",
    "parse_snapshot",
]

#: Magic bytes opening every serialised filter snapshot.
SNAPSHOT_MAGIC = b"RBFS"
#: Version written into new snapshots; bump on any layout change.
SNAPSHOT_VERSION = 1

#: Header layout: magic, version, m, k, insertions, payload length.
_SNAPSHOT_HEADER = struct.Struct(">4sHQIQI")


def parse_snapshot(raw: bytes) -> tuple[int, int, int, bytes]:
    """Validate a filter snapshot and return ``(m, k, insertions, bits)``.

    The header is deliberately stable (magic + version + geometry +
    payload length, all fixed-width big-endian) so that a snapshot taken
    by one service build restores under a later one, and corruption is
    caught before any state is touched.
    """
    if len(raw) < _SNAPSHOT_HEADER.size:
        raise SnapshotError(
            f"filter snapshot truncated: {len(raw)} bytes, "
            f"need at least {_SNAPSHOT_HEADER.size}"
        )
    magic, version, m, k, insertions, length = _SNAPSHOT_HEADER.unpack_from(raw)
    if magic != SNAPSHOT_MAGIC:
        raise SnapshotError(f"bad filter snapshot magic {magic!r}")
    if version != SNAPSHOT_VERSION:
        raise SnapshotError(f"unsupported filter snapshot version {version}")
    payload = raw[_SNAPSHOT_HEADER.size :]
    if len(payload) != length:
        raise SnapshotError(
            f"filter snapshot payload is {len(payload)} bytes, header says {length}"
        )
    return m, k, insertions, payload


def default_strategy() -> IndexStrategy:
    """The package default: recycled SHA-512 bits (one call per item).

    Chosen because it is simultaneously the paper's recommended
    *unkeyed* construction (Section 8.2) and fast enough for tests; pass
    an explicit strategy to reproduce a vulnerable deployment.
    """
    return RecyclingStrategy(SHA512())


class BloomFilter(MembershipFilter):
    """Classic Bloom filter over an arbitrary index strategy.

    Parameters
    ----------
    m:
        Filter size in bits.
    k:
        Number of indexes per item.
    strategy:
        Index derivation rule; defaults to :func:`default_strategy`.

    Notes
    -----
    ``add`` returns True when every index was already set -- i.e. the
    filter *believed the item present* before the insertion (pyBloom's
    convention, which the Scrapy attack relies on).
    """

    def __init__(self, m: int, k: int, strategy: IndexStrategy | None = None) -> None:
        if m <= 0:
            raise ParameterError(f"m must be positive, got {m}")
        if k <= 0:
            raise ParameterError(f"k must be positive, got {k}")
        self.m = m
        self.k = k
        self.strategy = strategy or default_strategy()
        self.bits = BitVector(m)
        self._insertions = 0

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------

    @classmethod
    def from_parameters(
        cls, params: BloomParameters, strategy: IndexStrategy | None = None
    ) -> "BloomFilter":
        """Build a filter from a derived :class:`BloomParameters`."""
        return cls(params.m, params.k, strategy)

    @classmethod
    def for_capacity(
        cls, n: int, f: float, strategy: IndexStrategy | None = None
    ) -> "BloomFilter":
        """Classically-optimal filter for ``n`` items at FP target ``f``."""
        return cls.from_parameters(BloomParameters.design_optimal(n, f), strategy)

    @classmethod
    def worst_case(
        cls, n: int, m: int, strategy: IndexStrategy | None = None
    ) -> "BloomFilter":
        """Adversary-resistant parameterisation (paper Section 8.1):
        ``k = round(m/(en))`` minimises the achievable ``f_adv``."""
        return cls.from_parameters(BloomParameters.design_worst_case(n, m), strategy)

    # ------------------------------------------------------------------
    # Core operations
    # ------------------------------------------------------------------

    def indexes(self, item: str | bytes) -> tuple[int, ...]:
        """The k filter positions of ``item`` (public and predictable --
        which is the point of the paper)."""
        return self.strategy.indexes(item, self.k, self.m)

    def add(self, item: str | bytes) -> bool:
        """Insert ``item``; True if it already appeared present."""
        already = True
        for index in self.indexes(item):
            if self.bits.set(index):
                already = False
        self._insertions += 1
        return already

    def add_indexes(self, indexes: Iterable[int]) -> None:
        """Set pre-computed positions (used by attack simulators that
        craft index sets directly)."""
        for index in indexes:
            self.bits.set(index)
        self._insertions += 1

    def add_batch(self, items: Iterable[str | bytes]) -> list[bool]:
        """Vectorized :meth:`add`: one hashing pass over the whole batch
        into a flat index buffer, then one grouped filter-core pass via
        :meth:`~repro.core.bitvector.BitVector.set_groups` (numpy lanes
        when the accel mode allows, the original loops otherwise)."""
        items = items if isinstance(items, (list, tuple)) else list(items)
        flat = self.strategy.flat_batch_indexes(items, self.k, self.m)
        results = self.bits.set_groups(flat, self.k)
        self._insertions += len(results)
        return results

    def __contains__(self, item: str | bytes) -> bool:
        return all(self.bits.get(i) for i in self.indexes(item))

    def contains_batch(self, items: Iterable[str | bytes]) -> list[bool]:
        """Vectorized membership: batch hashing into a flat index buffer
        plus the grouped :meth:`~repro.core.bitvector.BitVector.
        all_set_groups` probe."""
        items = items if isinstance(items, (list, tuple)) else list(items)
        flat = self.strategy.flat_batch_indexes(items, self.k, self.m)
        return self.bits.all_set_groups(flat, self.k)

    def contains_indexes(self, indexes: Iterable[int]) -> bool:
        """Membership test on pre-computed positions."""
        return all(self.bits.get(i) for i in indexes)

    def __len__(self) -> int:
        return self._insertions

    # ------------------------------------------------------------------
    # State inspection (the adversary's view)
    # ------------------------------------------------------------------

    @property
    def hamming_weight(self) -> int:
        """``wH(z)``: number of set bits (O(1): the bit vector maintains
        its weight incrementally through every mutator)."""
        return self.bits.hamming_weight()

    @property
    def fill_ratio(self) -> float:
        """Fraction of bits set."""
        return self.bits.hamming_weight() / self.m

    def support(self) -> set[int]:
        """``supp(z)``: the set of 1-positions."""
        return self.bits.support()

    def current_fpp(self) -> float:
        """FP probability implied by the *current* weight: ``(W/m)^k``."""
        return (self.bits.hamming_weight() / self.m) ** self.k

    def expected_fpp(self, n: int | None = None) -> float:
        """Design-time FP estimate after ``n`` uniform insertions
        (defaults to the current insertion count)."""
        count = self._insertions if n is None else n
        return false_positive_probability(self.m, count, self.k)

    def worst_case_fpp(self, n: int | None = None) -> float:
        """FP a chosen-insertion adversary forces after ``n`` insertions."""
        count = self._insertions if n is None else n
        return adversarial_fpp(self.m, count, self.k)

    def is_saturated(self) -> bool:
        """True once every bit is set (everything is a member)."""
        return self.bits.hamming_weight() == self.m

    # ------------------------------------------------------------------
    # Serialisation / set algebra
    # ------------------------------------------------------------------

    def to_bytes(self) -> bytes:
        """Serialise the bit vector (as a cache digest would be shipped)."""
        return self.bits.to_bytes()

    @classmethod
    def from_bytes(
        cls, m: int, k: int, raw: bytes, strategy: IndexStrategy | None = None
    ) -> "BloomFilter":
        """Rehydrate a filter received from a peer."""
        filt = cls(m, k, strategy)
        filt.bits = BitVector.from_bytes(m, raw)
        return filt

    def snapshot_bytes(self) -> bytes:
        """Serialise the full filter state under a stable header.

        Unlike :meth:`to_bytes` (raw bits, as a cache digest ships them)
        this includes magic, version, geometry and the insertion count,
        so a service can persist a shard and restore it warm.  The index
        strategy is *not* serialised -- it is configuration (and for
        keyed filters, a secret), supplied again at restore time.
        """
        payload = self.bits.to_bytes()
        header = _SNAPSHOT_HEADER.pack(
            SNAPSHOT_MAGIC,
            SNAPSHOT_VERSION,
            self.m,
            self.k,
            self._insertions,
            len(payload),
        )
        return header + payload

    def restore_snapshot(self, raw: bytes) -> None:
        """Load a :meth:`snapshot_bytes` payload into this filter in place.

        Geometry must match; on any mismatch or corruption the filter is
        left untouched.  Restoring in place (rather than constructing) is
        what lets a keyed subclass keep its key and strategy.
        """
        m, k, insertions, payload = parse_snapshot(raw)
        if (m, k) != (self.m, self.k):
            raise SnapshotError(
                f"snapshot geometry (m={m}, k={k}) does not match "
                f"filter (m={self.m}, k={self.k})"
            )
        # from_bytes recounts the weight from the payload -- the
        # incremental counter's one recount fallback point.
        self.bits = BitVector.from_bytes(m, payload)
        self._insertions = insertions

    @classmethod
    def from_snapshot(
        cls, raw: bytes, strategy: IndexStrategy | None = None
    ) -> "BloomFilter":
        """Rebuild a plain filter from a :meth:`snapshot_bytes` payload."""
        m, k, insertions, payload = parse_snapshot(raw)
        filt = cls(m, k, strategy)
        filt.bits = BitVector.from_bytes(m, payload)
        filt._insertions = insertions
        return filt

    def union(self, other: "BloomFilter") -> "BloomFilter":
        """Bitwise union (valid only for identical parameters/strategy)."""
        self._check_compatible(other)
        out = BloomFilter(self.m, self.k, self.strategy)
        out.bits = self.bits.copy()
        out.bits.union_update(other.bits.to_bytes())
        out._insertions = self._insertions + other._insertions
        return out

    def intersection(self, other: "BloomFilter") -> "BloomFilter":
        """Bitwise intersection (superset of the true set intersection)."""
        self._check_compatible(other)
        out = BloomFilter(self.m, self.k, self.strategy)
        out.bits = self.bits & other.bits
        out._insertions = min(self._insertions, other._insertions)
        return out

    def _check_compatible(self, other: "BloomFilter") -> None:
        if (self.m, self.k) != (other.m, other.k) or self.strategy is not other.strategy:
            raise ParameterError(
                "set algebra requires identical (m, k) and the same strategy object"
            )

    def copy(self) -> "BloomFilter":
        """Deep copy sharing the (stateless) strategy."""
        out = BloomFilter(self.m, self.k, self.strategy)
        out.bits = self.bits.copy()
        out._insertions = self._insertions
        return out

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"<BloomFilter m={self.m} k={self.k} n={self._insertions} "
            f"weight={self.hamming_weight} strategy={self.strategy.name}>"
        )
