"""Counting Bloom filter (Fan et al.; paper Sections 4.3 and 6.1).

Replaces bits with small counters so deletion becomes possible -- and
with it, the paper's deletion adversary (forge items overlapping a
victim's indexes and delete them) and the counter-overflow attack
(4-bit counters wrap, silently erasing membership).
"""

from __future__ import annotations

import struct

from repro.core.counters import CounterArray, OverflowPolicy
from repro.core.interfaces import DeletableFilter
from repro.core.params import BloomParameters, false_positive_probability
from repro.exceptions import ParameterError, SnapshotError
from repro.hashing.base import IndexStrategy

__all__ = [
    "CountingBloomFilter",
    "COUNTING_SNAPSHOT_MAGIC",
    "COUNTING_SNAPSHOT_VERSION",
    "parse_counting_snapshot",
]

#: Magic bytes opening every serialised counting-filter snapshot.
COUNTING_SNAPSHOT_MAGIC = b"RCBS"
#: Version written into new snapshots; bump on any layout change.
COUNTING_SNAPSHOT_VERSION = 1

#: Header layout: magic, version, m, k, counter_bits, insertions,
#: deletions, payload length.  Mirrors the BloomFilter header discipline
#: (fixed-width big-endian, geometry before payload) so the gateway
#: snapshot path treats both families uniformly.
_COUNTING_HEADER = struct.Struct(">4sHQIBQQI")


def parse_counting_snapshot(raw: bytes) -> tuple[int, int, int, int, int, bytes]:
    """Validate a counting snapshot; return
    ``(m, k, counter_bits, insertions, deletions, payload)``."""
    if len(raw) < _COUNTING_HEADER.size:
        raise SnapshotError(
            f"counting snapshot truncated: {len(raw)} bytes, "
            f"need at least {_COUNTING_HEADER.size}"
        )
    magic, version, m, k, bits, insertions, deletions, length = (
        _COUNTING_HEADER.unpack_from(raw)
    )
    if magic != COUNTING_SNAPSHOT_MAGIC:
        raise SnapshotError(f"bad counting snapshot magic {magic!r}")
    if version != COUNTING_SNAPSHOT_VERSION:
        raise SnapshotError(f"unsupported counting snapshot version {version}")
    payload = raw[_COUNTING_HEADER.size :]
    if len(payload) != length:
        raise SnapshotError(
            f"counting snapshot payload is {len(payload)} bytes, header says {length}"
        )
    return m, k, bits, insertions, deletions, payload


class CountingBloomFilter(DeletableFilter):
    """Bloom filter over ``counter_bits``-wide counters.

    Parameters
    ----------
    m:
        Number of counters.
    k:
        Indexes per item.
    strategy:
        Index derivation rule (same attack surface as the classic filter).
    counter_bits:
        Counter width; Dablooms uses 4.
    overflow:
        Overflow policy.  ``WRAP`` reproduces Dablooms' vulnerable
        behaviour; ``SATURATE`` is the conservative textbook choice.
    """

    def __init__(
        self,
        m: int,
        k: int,
        strategy: IndexStrategy | None = None,
        counter_bits: int = 4,
        overflow: OverflowPolicy = OverflowPolicy.SATURATE,
    ) -> None:
        if m <= 0 or k <= 0:
            raise ParameterError("m and k must be positive")
        from repro.core.bloom import default_strategy  # avoid import cycle

        self.m = m
        self.k = k
        self.strategy = strategy or default_strategy()
        self.counters = CounterArray(m, counter_bits)
        self.overflow = overflow
        self._insertions = 0
        self._deletions = 0

    @classmethod
    def for_capacity(
        cls,
        n: int,
        f: float,
        strategy: IndexStrategy | None = None,
        counter_bits: int = 4,
        overflow: OverflowPolicy = OverflowPolicy.SATURATE,
    ) -> "CountingBloomFilter":
        """Optimally-parameterised counting filter for n items at FP f."""
        params = BloomParameters.design_optimal(n, f)
        return cls(params.m, params.k, strategy, counter_bits, overflow)

    def indexes(self, item: str | bytes) -> tuple[int, ...]:
        """The k counter positions of ``item``."""
        return self.strategy.indexes(item, self.k, self.m)

    def add(self, item: str | bytes) -> bool:
        """Insert; True if the item already appeared present.

        A single item hitting the same counter twice increments it twice
        -- exactly what the steering items of the overflow attack exploit.
        """
        indexes = self.indexes(item)
        already = all(self.counters.get(i) > 0 for i in indexes)
        for index in indexes:
            self.counters.increment(index, self.overflow)
        self._insertions += 1
        return already

    def add_indexes(self, indexes) -> None:
        """Increment pre-computed positions (index-level insertion hook
        used by attack simulators that already know the landing spots)."""
        for index in indexes:
            self.counters.increment(index, self.overflow)
        self._insertions += 1

    def remove(self, item: str | bytes) -> bool:
        """Delete; True if the item appeared present beforehand.

        Deleting an absent item decrements innocent counters -- the
        mechanism behind deletion-adversary false negatives.  Underflows
        (decrementing zero) are tallied on ``self.counters``.
        """
        indexes = self.indexes(item)
        present = all(self.counters.get(i) > 0 for i in indexes)
        for index in indexes:
            self.counters.decrement(index)
        self._deletions += 1
        return present

    def __contains__(self, item: str | bytes) -> bool:
        return all(self.counters.get(i) > 0 for i in self.indexes(item))

    # ------------------------------------------------------------------
    # Batch operations (one hashing pass, counter-touching loops)
    # ------------------------------------------------------------------

    def add_batch(self, items) -> list[bool]:
        """Vectorized :meth:`add`: one hashing pass into a flat index
        buffer, then one grouped probe-and-increment pass through
        :meth:`~repro.core.counters.CounterArray.probe_increment_groups`
        (numpy kernels when the accel mode allows).  The membership probe
        for item ``i`` sees the increments of items ``< i``, exactly as
        the scalar loop would."""
        items = items if isinstance(items, (list, tuple)) else list(items)
        if self.overflow is OverflowPolicy.RAISE:
            # Per-item loop so a RAISE-policy overflow mid-batch leaves
            # len(self) exactly where the scalar loop would.
            counters = self.counters
            results: list[bool] = []
            for indexes in self.strategy.batch_indexes(items, self.k, self.m):
                results.append(counters.all_positive(indexes))
                counters.increment_all(indexes, self.overflow)
                self._insertions += 1
            return results
        flat = self.strategy.flat_batch_indexes(items, self.k, self.m)
        results = self.counters.probe_increment_groups(flat, self.k, self.overflow)
        self._insertions += len(results)
        return results

    def contains_batch(self, items) -> list[bool]:
        """Vectorized membership: batch hashing into a flat index buffer
        plus the grouped :meth:`~repro.core.counters.CounterArray.
        all_positive_groups` probe."""
        items = items if isinstance(items, (list, tuple)) else list(items)
        flat = self.strategy.flat_batch_indexes(items, self.k, self.m)
        return self.counters.all_positive_groups(flat, self.k)

    def remove_batch(self, items) -> list[bool]:
        """Vectorized :meth:`remove`, same sequential-parity contract as
        :meth:`add_batch` (deleting item ``i`` affects item ``i+1``'s
        presence probe)."""
        items = items if isinstance(items, (list, tuple)) else list(items)
        flat = self.strategy.flat_batch_indexes(items, self.k, self.m)
        results = self.counters.probe_decrement_groups(flat, self.k)
        self._deletions += len(results)
        return results

    def __len__(self) -> int:
        return self._insertions

    @property
    def deletions(self) -> int:
        """Number of ``remove`` calls performed."""
        return self._deletions

    @property
    def hamming_weight(self) -> int:
        """Number of non-zero counters (the bit-filter weight analogue)."""
        return self.counters.nonzero_count()

    @property
    def fill_ratio(self) -> float:
        """Fraction of counters that are non-zero."""
        return self.hamming_weight / self.m

    def support(self) -> set[int]:
        """Positions with non-zero counters."""
        return self.counters.support()

    def current_fpp(self) -> float:
        """FP probability implied by the current weight."""
        return (self.hamming_weight / self.m) ** self.k

    def expected_fpp(self, n: int | None = None) -> float:
        """Design-time FP estimate after n uniform insertions."""
        count = self._insertions if n is None else n
        return false_positive_probability(self.m, count, self.k)

    @property
    def overflow_events(self) -> int:
        """Number of increments applied to an already-maxed counter."""
        return self.counters.overflow_events

    # ------------------------------------------------------------------
    # Serialisation (the warm-restart path for deletable services)
    # ------------------------------------------------------------------

    def snapshot_bytes(self) -> bytes:
        """Serialise the full filter state under a stable header.

        Same contract as :meth:`repro.core.bloom.BloomFilter.
        snapshot_bytes`: magic, version, geometry (including the counter
        width) and the insert/delete counts, so a deletable service can
        persist a shard and restart warm.  The index strategy and the
        overflow policy are configuration, supplied again at restore.
        """
        payload = self.counters.to_bytes()
        header = _COUNTING_HEADER.pack(
            COUNTING_SNAPSHOT_MAGIC,
            COUNTING_SNAPSHOT_VERSION,
            self.m,
            self.k,
            self.counters.counter_bits,
            self._insertions,
            self._deletions,
            len(payload),
        )
        return header + payload

    def restore_snapshot(self, raw: bytes) -> None:
        """Load a :meth:`snapshot_bytes` payload into this filter in
        place (keeping strategy and overflow policy); geometry must
        match, and any mismatch or corruption leaves it untouched."""
        m, k, bits, insertions, deletions, payload = parse_counting_snapshot(raw)
        if (m, k, bits) != (self.m, self.k, self.counters.counter_bits):
            raise SnapshotError(
                f"snapshot geometry (m={m}, k={k}, counter_bits={bits}) does "
                f"not match filter (m={self.m}, k={self.k}, "
                f"counter_bits={self.counters.counter_bits})"
            )
        try:
            self.counters.load_bytes(payload)
        except ValueError as exc:
            raise SnapshotError(f"corrupt counting snapshot payload: {exc}") from exc
        self._insertions = insertions
        self._deletions = deletions

    @classmethod
    def from_snapshot(
        cls,
        raw: bytes,
        strategy: IndexStrategy | None = None,
        overflow: OverflowPolicy = OverflowPolicy.SATURATE,
    ) -> "CountingBloomFilter":
        """Rebuild a counting filter from a :meth:`snapshot_bytes`
        payload (strategy/overflow are configuration, as at restore)."""
        m, k, bits, _, _, _ = parse_counting_snapshot(raw)
        filt = cls(m, k, strategy, counter_bits=bits, overflow=overflow)
        filt.restore_snapshot(raw)
        return filt

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"<CountingBloomFilter m={self.m} k={self.k} n={self._insertions} "
            f"nonzero={self.hamming_weight} overflow={self.overflow.value}>"
        )
