"""numpy kernels behind the accelerated filter core.

Every function here is the vector twin of a pure-Python loop in
:mod:`repro.core.bitvector` / :mod:`repro.core.counters` and must be
*bit-identical* to it: same answers, same serialised bytes, same
overflow/underflow tallies, same exceptions on bad input.  The parity
suite (``tests/core/test_parity_backends.py``) holds both sides to that.

Storage stays a ``bytearray`` on the owning object; kernels wrap it in a
zero-copy writable ``np.frombuffer`` view per call, so flipping the
backend mid-life is always safe and ``to_bytes`` never changes shape.

The interesting trick is :func:`prior_counts`, which makes *sequential*
batch semantics vectorisable: item ``i`` of a batch must observe the
writes of items ``j < i`` (the scalar loops get this for free).  For
each (item, position) pair it counts how many strictly-earlier items in
the batch touch the same position -- one stable argsort, no scatter into
filter-sized scratch -- which is exactly the information needed to
reconstruct what a sequential probe would have seen.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "as_checked_indexes",
    "prior_counts",
    "bit_weight",
    "bit_set_indexes",
    "bit_set_groups",
    "bit_test_groups",
    "bit_union",
    "counter_probe_increment_groups",
    "counter_probe_decrement_groups",
    "counter_test_groups",
    "counter_nonzero",
    "pack_bools",
    "unpack_bools",
    "recycling_indexes_flat",
]


def as_checked_indexes(indexes, size: int, what: str = "bit") -> np.ndarray:
    """Convert to an index array, range-checked before any write.

    Mirrors the scalar loops' contract: the first out-of-range value (in
    input order) raises ``IndexError`` and the caller's buffer is left
    untouched.
    """
    arr = np.asarray(indexes, dtype=np.int64)
    if arr.ndim != 1:
        arr = arr.reshape(-1)
    bad = (arr < 0) | (arr >= size)
    if bad.any():
        index = int(arr[int(np.argmax(bad))])
        raise IndexError(f"{what} index {index} out of range [0, {size})")
    return arr


def prior_counts(flat: np.ndarray, owner: np.ndarray) -> np.ndarray:
    """For each pair, how many pairs of *strictly earlier* owners share
    its position.

    ``flat`` is the position of every (item, slot) pair in batch order,
    ``owner`` the item number of each pair (non-decreasing).  A stable
    sort by position keeps owners non-decreasing inside each position
    group, so the count is just ``(first index of my owner-run in the
    group) - (first index of the group)``.
    """
    total = len(flat)
    if total == 0:
        return np.empty(0, dtype=np.int64)
    order = np.argsort(flat, kind="stable")
    sorted_flat = flat[order]
    sorted_owner = owner[order]
    idx = np.arange(total, dtype=np.int64)
    new_group = np.empty(total, dtype=bool)
    new_group[0] = True
    np.not_equal(sorted_flat[1:], sorted_flat[:-1], out=new_group[1:])
    new_run = new_group.copy()
    new_run[1:] |= sorted_owner[1:] != sorted_owner[:-1]
    group_start = np.maximum.accumulate(np.where(new_group, idx, 0))
    run_start = np.maximum.accumulate(np.where(new_run, idx, 0))
    out = np.empty(total, dtype=np.int64)
    out[order] = run_start - group_start
    return out


# ----------------------------------------------------------------------
# Bit-vector kernels
# ----------------------------------------------------------------------

def _bit_view(buf: bytearray) -> np.ndarray:
    return np.frombuffer(buf, dtype=np.uint8)


def bit_weight(buf) -> int:
    """Popcount of a byte buffer (uint8 lanes, no big-int round trip)."""
    if len(buf) == 0:
        return 0
    return int(np.bitwise_count(np.frombuffer(buf, dtype=np.uint8)).sum())


def _masks(arr: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    return arr >> 3, (np.uint8(1) << (arr & 7).astype(np.uint8))


def _scatter_or(view: np.ndarray, upos: np.ndarray) -> int:
    """OR the bits at sorted-unique positions ``upos`` into ``view``;
    returns how many were newly set.

    Sorted-unique input means each byte's positions form one contiguous
    run, so a single ``bitwise_or.reduceat`` builds the per-byte mask and
    the write is a plain fancy-index assignment (every target byte
    distinct) -- no slow ``ufunc.at`` scatter, and the newly-set count is
    the popcount of the OR delta.
    """
    ubyte = upos >> 3
    umask = np.uint8(1) << (upos & 7).astype(np.uint8)
    bfirst = np.empty(len(upos), dtype=bool)
    bfirst[0] = True
    np.not_equal(ubyte[1:], ubyte[:-1], out=bfirst[1:])
    starts = np.flatnonzero(bfirst)
    combined = np.bitwise_or.reduceat(umask, starts)
    target = ubyte[starts]
    old = view[target]
    new = old | combined
    newly = int(np.bitwise_count(new & ~old).sum())
    view[target] = new
    return newly


def bit_set_indexes(buf: bytearray, size: int, indexes) -> int:
    """Vector twin of ``BitVector.set_indexes``; returns newly-set count."""
    arr = as_checked_indexes(indexes, size)
    if len(arr) == 0:
        return 0
    view = _bit_view(buf)
    return _scatter_or(view, np.unique(arr))


def bit_set_groups(
    buf: bytearray, size: int, flat, group_size: int
) -> tuple[list[bool], int]:
    """Insert ``len(flat)/group_size`` items of ``group_size`` positions
    each, sequentially-consistent: item ``i``'s already-present answer
    accounts for bits set by items ``j < i`` of the same batch.

    Returns ``(per-item already-present answers, newly-set bit count)``.

    One stable sort serves both halves: a pair's bit reads as set iff it
    was set before the batch (``pre``) or some earlier pair of the flat
    buffer shares its position (``dup`` -- not the first occurrence in
    the stable order), and the first occurrences *are* the sorted-unique
    positions the deduplicated scatter needs.
    """
    arr = as_checked_indexes(flat, size)
    count = len(arr) // group_size
    if count == 0:
        return [], 0
    view = _bit_view(buf)
    byte, mask = _masks(arr)
    pre = (view[byte] & mask) != 0
    order = np.argsort(arr, kind="stable")
    sorted_pos = arr[order]
    first = np.empty(len(arr), dtype=bool)
    first[0] = True
    np.not_equal(sorted_pos[1:], sorted_pos[:-1], out=first[1:])
    dup = np.empty(len(arr), dtype=bool)
    dup[order] = ~first
    seen = pre | dup
    answers = seen.reshape(count, group_size).all(axis=1)
    newly = _scatter_or(view, sorted_pos[first])
    return answers.tolist(), newly


def bit_test_groups(buf: bytearray, size: int, flat, group_size: int) -> list[bool]:
    """Membership probe of ``group_size``-position groups (no mutation)."""
    arr = as_checked_indexes(flat, size)
    count = len(arr) // group_size
    if count == 0:
        return []
    view = _bit_view(buf)
    byte, mask = _masks(arr)
    hit = (view[byte] & mask) != 0
    return hit.reshape(count, group_size).all(axis=1).tolist()


def bit_union(buf: bytearray, size: int, raw) -> int:
    """Vector twin of ``BitVector.union_update``; returns newly-set count."""
    view = _bit_view(buf)
    incoming = np.frombuffer(bytes(raw), dtype=np.uint8).copy()
    extra = 8 * len(buf) - size
    if extra:
        incoming[-1] &= 0xFF >> extra
    merged = view | incoming
    newly = int(np.bitwise_count(merged ^ view).sum())
    view[:] = merged
    return newly


# ----------------------------------------------------------------------
# Counter-array kernels
# ----------------------------------------------------------------------

def counter_probe_increment_groups(
    values: bytearray, flat, group_size: int, maximum: int, wrap: bool
) -> tuple[list[bool], int, int]:
    """Per-group all-positive probe, then one increment per pair, with
    scalar-loop parity: probes see strictly-earlier items' increments,
    overflow events are tallied per increment at the maximum.

    Under SATURATE the value a probe sees is ``min(v0 + prior, max)``;
    under WRAP every increment is exactly ``+1 mod (max+1)``, so it is
    ``(v0 + prior) mod (max+1)``.  RAISE is not handled here (its
    mid-batch partial state is inherently sequential; callers keep the
    pure loop for it).

    Returns ``(answers, overflow_events, nonzero_count_delta)``.
    """
    size = len(values)
    arr = as_checked_indexes(flat, size, what="counter")
    count = len(arr) // group_size
    if count == 0:
        return [], 0, 0
    view = np.frombuffer(values, dtype=np.uint8)
    owner = np.repeat(np.arange(count, dtype=np.int64), group_size)
    prior = prior_counts(arr, owner)
    v0 = view[arr].astype(np.int64)
    if wrap:
        at_probe = (v0 + prior) % (maximum + 1)
    else:
        at_probe = np.minimum(v0 + prior, maximum)
    answers = (at_probe > 0).reshape(count, group_size).all(axis=1)
    uniq, totals = np.unique(arr, return_counts=True)
    uv = view[uniq].astype(np.int64)
    if wrap:
        final = (uv + totals) % (maximum + 1)
        events = (uv + totals) // (maximum + 1)
    else:
        final = np.minimum(uv + totals, maximum)
        events = np.maximum(uv + totals - maximum, 0)
    nonzero_delta = int((final > 0).sum()) - int((uv > 0).sum())
    view[uniq] = final.astype(np.uint8)
    return answers.tolist(), int(events.sum()), nonzero_delta


def counter_probe_decrement_groups(
    values: bytearray, flat, group_size: int
) -> tuple[list[bool], int, int]:
    """Per-group all-positive probe, then one floored decrement per pair
    (scalar parity: probes see earlier items' decrements, each decrement
    of an already-zero counter tallies one underflow event).

    Returns ``(answers, underflow_events, nonzero_count_delta)``.
    """
    size = len(values)
    arr = as_checked_indexes(flat, size, what="counter")
    count = len(arr) // group_size
    if count == 0:
        return [], 0, 0
    view = np.frombuffer(values, dtype=np.uint8)
    owner = np.repeat(np.arange(count, dtype=np.int64), group_size)
    prior = prior_counts(arr, owner)
    v0 = view[arr].astype(np.int64)
    answers = (v0 - prior > 0).reshape(count, group_size).all(axis=1)
    uniq, totals = np.unique(arr, return_counts=True)
    uv = view[uniq].astype(np.int64)
    final = np.maximum(uv - totals, 0)
    nonzero_delta = int((final > 0).sum()) - int((uv > 0).sum())
    view[uniq] = final.astype(np.uint8)
    events = int(np.maximum(totals - uv, 0).sum())
    return answers.tolist(), events, nonzero_delta


def counter_test_groups(values: bytearray, flat, group_size: int) -> list[bool]:
    """Per-group all-positive probe (no mutation)."""
    arr = as_checked_indexes(flat, len(values), what="counter")
    count = len(arr) // group_size
    if count == 0:
        return []
    view = np.frombuffer(values, dtype=np.uint8)
    hit = view[arr] > 0
    return hit.reshape(count, group_size).all(axis=1).tolist()


def counter_nonzero(values: bytearray) -> int:
    """Number of non-zero counters."""
    if len(values) == 0:
        return 0
    return int(np.count_nonzero(np.frombuffer(values, dtype=np.uint8)))


# ----------------------------------------------------------------------
# Codec bit packing
# ----------------------------------------------------------------------

def pack_bools(answers) -> bytes:
    """LSB-first bool packing (wire format of batch answers)."""
    arr = np.asarray(answers, dtype=np.uint8)
    return np.packbits(arr, bitorder="little").tobytes()


def unpack_bools(raw, count: int) -> list[bool]:
    """Inverse of :func:`pack_bools` for ``count`` answers."""
    bits = np.unpackbits(
        np.frombuffer(bytes(raw), dtype=np.uint8), count=count, bitorder="little"
    )
    return bits.astype(bool).tolist()


# ----------------------------------------------------------------------
# Digest-recycling window extraction
# ----------------------------------------------------------------------

def recycling_indexes_flat(
    digests: bytes, count: int, digest_size: int, k: int, window: int, m: int
) -> np.ndarray:
    """Slice ``k`` top-down windows of ``window`` bits out of each of
    ``count`` concatenated fixed-width digests, reduced modulo ``m``.

    Bit-exact with ``RecyclingStrategy``'s big-int slicing: window ``j``
    occupies bits ``[digest_bits - window*(j+1), digest_bits - window*j)``
    counted from the least-significant end of the big-endian digest.
    Requires ``digest_size`` to be a multiple of 8 (uint64 lanes) and
    ``window * k <= digest_bits``.
    """
    words_per_digest = digest_size // 8
    words = (
        np.frombuffer(digests, dtype=">u8")
        .reshape(count, words_per_digest)
        .astype(np.uint64)
    )
    digest_bits = digest_size * 8
    mask = np.uint64((1 << window) - 1)
    out = np.empty((count, k), dtype=np.uint64)
    for j in range(k):
        shift = digest_bits - window * (j + 1)
        word_index = words_per_digest - 1 - shift // 64
        offset = shift % 64
        value = words[:, word_index] >> np.uint64(offset)
        if offset + window > 64:
            value = value | (words[:, word_index - 1] << np.uint64(64 - offset))
        value &= mask
        if int(mask) != m - 1:
            value %= np.uint64(m)
        out[:, j] = value
    return out.reshape(-1)
