"""Squid cache digests (paper Section 7).

A Squid proxy summarises its cache as a Bloom filter and ships it to
sibling proxies.  The reproduction follows Squid 3.4.6 as described by
the paper:

* the key is the HTTP retrieval method concatenated with the URL;
* one 128-bit MD5 digest of the key is computed and *split* into four
  32-bit words, each reduced modulo m -- four "free" hash functions;
* the filter size is ``m = 5 n + 7`` bits for ``n`` cache entries
  (Squid's bits-per-entry = 5 plus byte-rounding slack), *not* the
  optimal ``6 n``, which is why even the honest false-hit rate is high
  (0.09 instead of 0.03 at n = 200).
"""

from __future__ import annotations

import hashlib
import struct
from typing import Iterable

from repro.core.bitvector import BitVector
from repro.core.interfaces import MembershipFilter
from repro.exceptions import ParameterError

__all__ = ["CacheDigest", "squid_digest_bits", "squid_indexes"]

#: Squid's cache-digest hash count ("for the sake of efficiency").
SQUID_K = 4
#: Squid's bits-per-entry constant.
SQUID_BITS_PER_ENTRY = 5


def squid_digest_bits(capacity: int) -> int:
    """Filter size used by Squid: ``5 n + 7`` bits (paper Section 7)."""
    if capacity <= 0:
        raise ParameterError("capacity must be positive")
    return SQUID_BITS_PER_ENTRY * capacity + 7


def squid_indexes(key: bytes, m: int) -> tuple[int, int, int, int]:
    """Split one MD5 of ``key`` into Squid's four filter indexes."""
    if m <= 0:
        raise ParameterError("m must be positive")
    digest = hashlib.md5(key).digest()
    words = struct.unpack(">IIII", digest)
    return tuple(w % m for w in words)  # type: ignore[return-value]


class CacheDigest(MembershipFilter):
    """A Squid-style cache digest.

    Parameters
    ----------
    capacity:
        Number of cache entries the digest is sized for.
    method:
        Default HTTP retrieval method mixed into every key.
    """

    def __init__(self, capacity: int, method: str = "GET") -> None:
        self.capacity = capacity
        self.method = method
        self.m = squid_digest_bits(capacity)
        self.k = SQUID_K
        self.bits = BitVector(self.m)
        self._insertions = 0

    @classmethod
    def build(cls, urls: Iterable[str], capacity: int | None = None) -> "CacheDigest":
        """Build a digest over a cache's current URL set.

        Squid rebuilds digests periodically (hourly); this is that
        rebuild.  ``capacity`` defaults to the URL count, mirroring a
        digest sized to current contents.
        """
        url_list = list(urls)
        digest = cls(capacity if capacity is not None else max(1, len(url_list)))
        for url in url_list:
            digest.add(url)
        return digest

    def _key(self, url: str | bytes) -> bytes:
        raw = url if isinstance(url, bytes) else url.encode("utf-8")
        return self.method.encode("ascii") + raw

    def indexes(self, url: str | bytes) -> tuple[int, int, int, int]:
        """The four positions of ``url`` -- public, unsalted, unkeyed."""
        return squid_indexes(self._key(url), self.m)

    def add(self, url: str | bytes) -> bool:
        """Record a cached URL; True if it already appeared present."""
        already = True
        for index in self.indexes(url):
            if self.bits.set(index):
                already = False
        self._insertions += 1
        return already

    def __contains__(self, url: str | bytes) -> bool:
        return all(self.bits.get(i) for i in self.indexes(url))

    def __len__(self) -> int:
        return self._insertions

    @property
    def hamming_weight(self) -> int:
        """Number of set bits."""
        return self.bits.hamming_weight()

    @property
    def fill_ratio(self) -> float:
        """Fraction of bits set."""
        return self.hamming_weight / self.m

    def current_fpp(self) -> float:
        """False-hit probability implied by the current weight."""
        return (self.hamming_weight / self.m) ** self.k

    def to_bytes(self) -> bytes:
        """Serialise for exchange with a sibling."""
        return self.bits.to_bytes()

    @classmethod
    def from_bytes(cls, capacity: int, raw: bytes, method: str = "GET") -> "CacheDigest":
        """Rehydrate a digest received from a sibling."""
        digest = cls(capacity, method)
        digest.bits = BitVector.from_bytes(digest.m, raw)
        return digest

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"<CacheDigest capacity={self.capacity} m={self.m} "
            f"weight={self.hamming_weight}>"
        )
