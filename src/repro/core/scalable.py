"""Scalable Bloom filter (Almeida et al. 2007; paper Section 6.1).

A dynamically-growing collection of plain Bloom filter *slices*.  Slice i
targets a tightened FP probability ``f_i = f0 * r**i`` (Dablooms uses
r = 0.9) so the compound error ``F = 1 - prod(1 - f_i)`` stays bounded.
A new slice is opened when the current one reaches its insertion
threshold ``delta``.
"""

from __future__ import annotations

from typing import Callable

from repro.core.bloom import BloomFilter
from repro.core.interfaces import MembershipFilter
from repro.core.params import BloomParameters
from repro.core.analysis import scalable_compound_fpp
from repro.exceptions import ParameterError
from repro.hashing.base import IndexStrategy

__all__ = ["ScalableBloomFilter"]


class ScalableBloomFilter(MembershipFilter):
    """Growable filter made of tightening slices.

    Parameters
    ----------
    slice_capacity:
        Insertions per slice before a new slice is opened (the paper's
        threshold ``delta``).
    f0:
        FP target of the first slice.
    r:
        Tightening ratio in (0, 1]; slice i targets ``f0 * r**i``.
    growth:
        Capacity growth factor per slice (Almeida et al. suggest 2;
        Dablooms keeps capacity fixed, i.e. growth 1).
    strategy_factory:
        Called once per slice to obtain an index strategy; defaults to the
        package default strategy per slice.
    """

    def __init__(
        self,
        slice_capacity: int,
        f0: float,
        r: float = 0.9,
        growth: int = 1,
        strategy_factory: Callable[[int], IndexStrategy] | None = None,
        max_slices: int | None = None,
    ) -> None:
        if slice_capacity <= 0:
            raise ParameterError("slice_capacity must be positive")
        if not 0 < f0 < 1:
            raise ParameterError("f0 must be in (0, 1)")
        if not 0 < r <= 1:
            raise ParameterError("r must be in (0, 1]")
        if growth < 1:
            raise ParameterError("growth must be >= 1")
        self.slice_capacity = slice_capacity
        self.f0 = f0
        self.r = r
        self.growth = growth
        self.max_slices = max_slices
        self._strategy_factory = strategy_factory
        self.slices: list[BloomFilter] = []
        self._slice_fill: list[int] = []
        self._insertions = 0
        self._grow()

    # ------------------------------------------------------------------

    def slice_fpp(self, i: int) -> float:
        """Design FP target of slice i: ``f0 * r**i``."""
        return self.f0 * (self.r**i)

    def slice_capacity_at(self, i: int) -> int:
        """Capacity of slice i: ``slice_capacity * growth**i``."""
        return self.slice_capacity * (self.growth**i)

    def _make_strategy(self, i: int) -> IndexStrategy | None:
        if self._strategy_factory is None:
            return None
        return self._strategy_factory(i)

    def _grow(self) -> BloomFilter:
        i = len(self.slices)
        if self.max_slices is not None and i >= self.max_slices:
            raise ParameterError(f"exceeded max_slices={self.max_slices}")
        params = BloomParameters.design_optimal(self.slice_capacity_at(i), self.slice_fpp(i))
        slice_filter = BloomFilter.from_parameters(params, self._make_strategy(i))
        self.slices.append(slice_filter)
        self._slice_fill.append(0)
        return slice_filter

    @property
    def active_slice(self) -> BloomFilter:
        """The slice currently receiving insertions."""
        return self.slices[-1]

    def add(self, item: str | bytes) -> bool:
        """Insert into the active slice, growing when it fills up.

        Returns True if *any* slice already reported the item present.
        """
        already = item in self
        if self._slice_fill[-1] >= self.slice_capacity_at(len(self.slices) - 1):
            self._grow()
        self.active_slice.add(item)
        self._slice_fill[-1] += 1
        self._insertions += 1
        return already

    def __contains__(self, item: str | bytes) -> bool:
        return any(item in s for s in self.slices)

    def __len__(self) -> int:
        return self._insertions

    @property
    def slice_count(self) -> int:
        """Number of slices allocated so far (the paper's lambda)."""
        return len(self.slices)

    def compound_fpp(self, current: bool = True) -> float:
        """Compound FP ``1 - prod(1 - f_i)``.

        With ``current=True`` each ``f_i`` is the slice's *current*
        weight-implied FP ``(W_i/m_i)^{k_i}`` (what an attack actually
        changed); otherwise the design targets ``f0 r^i`` are used.
        """
        if current:
            fpps = [s.current_fpp() for s in self.slices]
        else:
            fpps = [self.slice_fpp(i) for i in range(len(self.slices))]
        return scalable_compound_fpp(fpps)

    @property
    def total_bits(self) -> int:
        """Memory footprint in bits across all slices."""
        return sum(s.m for s in self.slices)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"<ScalableBloomFilter slices={self.slice_count} n={self._insertions} "
            f"f0={self.f0} r={self.r}>"
        )
