"""Partitioned Bloom filter (each hash owns a slice of the bit array).

A common variant (and the layout scalable-filter papers assume): the m
bits are split into k partitions of m/k bits and hash i only sets bits
inside partition i.  Included because the paper's pollution analysis
changes slightly here -- a chosen item can still set k fresh bits, but
saturation proceeds per-partition, which the tests and the ablation
bench exercise.
"""

from __future__ import annotations

from repro.core.bitvector import BitVector
from repro.core.interfaces import MembershipFilter
from repro.exceptions import ParameterError
from repro.hashing.base import IndexStrategy

__all__ = ["PartitionedBloomFilter"]


class PartitionedBloomFilter(MembershipFilter):
    """Bloom filter with k disjoint partitions of ``m // k`` bits.

    ``m`` is rounded down to a multiple of ``k``.  Index derivation uses
    the supplied strategy *within* each partition: the strategy produces
    k values modulo the partition width, and partition i stores the i-th.
    """

    def __init__(self, m: int, k: int, strategy: IndexStrategy | None = None) -> None:
        if k <= 0:
            raise ParameterError("k must be positive")
        if m < k:
            raise ParameterError("m must be at least k")
        from repro.core.bloom import default_strategy  # avoid import cycle

        self.k = k
        self.partition_bits = m // k
        self.m = self.partition_bits * k
        self.strategy = strategy or default_strategy()
        self.bits = BitVector(self.m)
        self._insertions = 0

    def indexes(self, item: str | bytes) -> tuple[int, ...]:
        """Global bit positions, one per partition."""
        local = self.strategy.indexes(item, self.k, self.partition_bits)
        return tuple(i * self.partition_bits + offset for i, offset in enumerate(local))

    def add(self, item: str | bytes) -> bool:
        """Insert; True if the item already appeared present."""
        already = True
        for index in self.indexes(item):
            if self.bits.set(index):
                already = False
        self._insertions += 1
        return already

    def __contains__(self, item: str | bytes) -> bool:
        return all(self.bits.get(i) for i in self.indexes(item))

    def __len__(self) -> int:
        return self._insertions

    @property
    def hamming_weight(self) -> int:
        """Total set bits across partitions."""
        return self.bits.hamming_weight()

    def partition_weight(self, i: int) -> int:
        """Set bits inside partition i."""
        if not 0 <= i < self.k:
            raise ParameterError(f"partition {i} out of range [0, {self.k})")
        start = i * self.partition_bits
        return sum(
            1 for b in range(start, start + self.partition_bits) if self.bits.get(b)
        )

    def current_fpp(self) -> float:
        """FP implied by per-partition fill: ``prod(W_i / (m/k))``."""
        probability = 1.0
        for i in range(self.k):
            probability *= self.partition_weight(i) / self.partition_bits
        return probability

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"<PartitionedBloomFilter m={self.m} k={self.k} "
            f"weight={self.hamming_weight}>"
        )
