"""Dablooms: Bitly's scaling *counting* Bloom filter (paper Section 6).

Dablooms combines the two classic extensions -- counting filters (for
deletion) and scalable filters (for unbounded capacity) -- and derives
all indexes from a single MurmurHash3 x64_128 call expanded with the
Kirsch-Mitzenmacher trick.  This module reproduces that construction
with the paper's parameters (4-bit counters, r = 0.9, f0 configurable)
so that all three attacks of Section 6.2 run against it: pollution,
deletion, and counter overflow.
"""

from __future__ import annotations

from typing import Callable

from repro.core.analysis import scalable_compound_fpp
from repro.core.counters import OverflowPolicy
from repro.core.counting import CountingBloomFilter
from repro.core.interfaces import DeletableFilter
from repro.core.params import BloomParameters
from repro.exceptions import ParameterError
from repro.hashing.base import IndexStrategy
from repro.hashing.kirsch_mitzenmacher import KirschMitzenmacherStrategy

__all__ = ["Dablooms"]


class Dablooms(DeletableFilter):
    """Scaling counting Bloom filter, Dablooms-style.

    Parameters
    ----------
    slice_capacity:
        Insertions per slice before scaling (the paper's ``delta``;
        10000 in Fig. 8).
    f0:
        First-slice FP target (0.01 in Fig. 8).
    r:
        Tightening ratio (Dablooms hard-codes 0.9).
    overflow:
        Counter overflow policy; Dablooms' 4-bit counters wrap, which is
        required for the Section 6.2 overflow attack.
    strategy:
        Index derivation; defaults to Kirsch-Mitzenmacher over one
        MurmurHash3 x64_128 call, exactly as Dablooms does.
    """

    COUNTER_BITS = 4

    def __init__(
        self,
        slice_capacity: int,
        f0: float = 0.01,
        r: float = 0.9,
        overflow: OverflowPolicy = OverflowPolicy.WRAP,
        strategy: IndexStrategy | None = None,
        max_slices: int | None = None,
    ) -> None:
        if slice_capacity <= 0:
            raise ParameterError("slice_capacity must be positive")
        if not 0 < f0 < 1:
            raise ParameterError("f0 must be in (0, 1)")
        if not 0 < r <= 1:
            raise ParameterError("r must be in (0, 1]")
        self.slice_capacity = slice_capacity
        self.f0 = f0
        self.r = r
        self.overflow = overflow
        self.max_slices = max_slices
        self.strategy = strategy or KirschMitzenmacherStrategy()
        self.slices: list[CountingBloomFilter] = []
        self._slice_fill: list[int] = []
        self._insertions = 0
        self._grow()

    def slice_fpp(self, i: int) -> float:
        """Design FP target of slice i: ``f0 * r**i``."""
        return self.f0 * (self.r**i)

    def _grow(self) -> CountingBloomFilter:
        i = len(self.slices)
        if self.max_slices is not None and i >= self.max_slices:
            raise ParameterError(f"exceeded max_slices={self.max_slices}")
        params = BloomParameters.design_optimal(self.slice_capacity, self.slice_fpp(i))
        slice_filter = CountingBloomFilter(
            params.m,
            params.k,
            self.strategy,
            counter_bits=self.COUNTER_BITS,
            overflow=self.overflow,
        )
        self.slices.append(slice_filter)
        self._slice_fill.append(0)
        return slice_filter

    @property
    def active_slice(self) -> CountingBloomFilter:
        """The slice currently receiving insertions."""
        return self.slices[-1]

    @property
    def slice_count(self) -> int:
        """Number of slices allocated (the paper's lambda)."""
        return len(self.slices)

    def add(self, item: str | bytes) -> bool:
        """Insert into the active slice, scaling on threshold.

        The *insertion counter*, not the content, drives scaling -- which
        is why the overflow attack can mark a slice full while it holds
        nothing (paper: "a complete waste of memory").
        """
        already = item in self
        if self._slice_fill[-1] >= self.slice_capacity:
            self._grow()
        self.active_slice.add(item)
        self._slice_fill[-1] += 1
        self._insertions += 1
        return already

    def record_bulk_insertions(self, count: int) -> None:
        """Account ``count`` externally-performed active-slice insertions.

        Attack simulators that write counters directly (oracle crafting)
        use this so scaling bookkeeping still sees the volume.
        """
        if count < 0:
            raise ParameterError("count must be non-negative")
        self._slice_fill[-1] += count
        self._insertions += count

    def force_scale(self) -> CountingBloomFilter:
        """Open a fresh slice immediately (as if the threshold was hit)."""
        return self._grow()

    def remove(self, item: str | bytes) -> bool:
        """Delete from the newest slice that reports the item present.

        Returns False (and touches nothing) when no slice claims it.
        """
        for slice_filter in reversed(self.slices):
            if item in slice_filter:
                slice_filter.remove(item)
                return True
        return False

    def __contains__(self, item: str | bytes) -> bool:
        return any(item in s for s in self.slices)

    # ------------------------------------------------------------------
    # Batch operations (per-slice grouped hashing)
    # ------------------------------------------------------------------
    #
    # Indexes depend on each slice's geometry, so a batch is hashed once
    # *per slice* rather than once per item per slice -- the strategy's
    # vectorized ``batch_indexes`` runs over the whole chunk for every
    # slice that must be consulted.  Counter reads/writes stay sequential
    # per item, so results match the scalar loop exactly (including the
    # case where inserting item i makes item i+1 appear present).

    def add_batch(self, items) -> list[bool]:
        """Vectorized :meth:`add`: chunk the batch by the active slice's
        remaining capacity, hash each chunk once per slice into flat
        index buffers, probe the frozen older slices read-only, and run
        the active slice through one grouped probe-and-increment pass."""
        items = list(items)
        if self.overflow is OverflowPolicy.RAISE:
            return self._add_batch_sequential(items)
        results: list[bool] = []
        pos = 0
        while pos < len(items):
            if self._slice_fill[-1] >= self.slice_capacity:
                self._grow()
            room = self.slice_capacity - self._slice_fill[-1]
            chunk = items[pos : pos + room]
            # Older slices are never mutated by an insert chunk, so their
            # probes are pure grouped reads.
            present = [False] * len(chunk)
            for s in self.slices[:-1]:
                flat = s.strategy.flat_batch_indexes(chunk, s.k, s.m)
                for j, hit in enumerate(s.counters.all_positive_groups(flat, s.k)):
                    if hit:
                        present[j] = True
            # The active slice is where item i's probe must see items
            # < i -- exactly the grouped op's sequential-parity contract.
            active = self.slices[-1]
            flat = active.strategy.flat_batch_indexes(chunk, active.k, active.m)
            answers = active.counters.probe_increment_groups(
                flat, active.k, self.overflow
            )
            results.extend(p or a for p, a in zip(present, answers))
            active._insertions += len(chunk)
            self._slice_fill[-1] += len(chunk)
            self._insertions += len(chunk)
            pos += len(chunk)
        return results

    def _add_batch_sequential(self, items: list) -> list[bool]:
        """Per-item insertion loop, kept for the RAISE overflow policy:
        a mid-chunk overflow must leave every count exactly where the
        scalar loop would, which grouped passes cannot reconstruct."""
        results: list[bool] = []
        pos = 0
        while pos < len(items):
            if self._slice_fill[-1] >= self.slice_capacity:
                self._grow()
            room = self.slice_capacity - self._slice_fill[-1]
            chunk = items[pos : pos + room]
            slices = self.slices
            per_slice = [
                s.strategy.batch_indexes(chunk, s.k, s.m) for s in slices
            ]
            active = slices[-1]
            active_counters = active.counters
            active_indexes = per_slice[-1]
            overflow = active.overflow
            probes = [
                (s.counters.all_positive, indexes)
                for s, indexes in zip(slices, per_slice)
            ]
            for j in range(len(chunk)):
                results.append(
                    any(all_positive(indexes[j]) for all_positive, indexes in probes)
                )
                active_counters.increment_all(active_indexes[j], overflow)
                active._insertions += 1
                self._slice_fill[-1] += 1
                self._insertions += 1
            pos += len(chunk)
        return results

    def contains_batch(self, items) -> list[bool]:
        """Vectorized membership: consult slices oldest-first, hashing the
        still-unresolved remainder of the batch against each one."""
        items = list(items)
        answers = [False] * len(items)
        pending = list(range(len(items)))
        for slice_filter in self.slices:
            if not pending:
                break
            flat = slice_filter.strategy.flat_batch_indexes(
                [items[j] for j in pending], slice_filter.k, slice_filter.m
            )
            hits = slice_filter.counters.all_positive_groups(flat, slice_filter.k)
            still_pending: list[int] = []
            for j, hit in zip(pending, hits):
                if hit:
                    answers[j] = True
                else:
                    still_pending.append(j)
            pending = still_pending
        return answers

    def __len__(self) -> int:
        return self._insertions

    def compound_fpp(self, current: bool = True) -> float:
        """Compound FP ``F = 1 - prod(1 - f_i)`` (paper Section 6.1)."""
        if current:
            fpps = [s.current_fpp() for s in self.slices]
        else:
            fpps = [self.slice_fpp(i) for i in range(len(self.slices))]
        return scalable_compound_fpp(fpps)

    def slice_fill(self, i: int) -> int:
        """Insertions recorded against slice i."""
        return self._slice_fill[i]

    def total_overflow_events(self) -> int:
        """Counter overflows across all slices (attack telemetry)."""
        return sum(s.overflow_events for s in self.slices)

    def for_each_slice(self, fn: Callable[[int, CountingBloomFilter], None]) -> None:
        """Visit slices with their indexes (used by the pollution attack)."""
        for i, slice_filter in enumerate(self.slices):
            fn(i, slice_filter)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"<Dablooms slices={self.slice_count} n={self._insertions} "
            f"f0={self.f0} r={self.r} overflow={self.overflow.value}>"
        )
