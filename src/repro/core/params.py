"""Bloom filter parameter calculus: classical optimum and the paper's
worst-case (adversarial) optimum.

Classical design (paper eqs. 1-3)
    ``f ≈ (1 - e^{-kn/m})^k``;  ``k_opt = (m/n) ln 2``;
    ``ln f_opt = -(m/n) (ln 2)^2``.

Adversarial design (paper eqs. 7, 9-12)
    A chosen-insertion adversary sets ``nk`` distinct bits, giving
    ``f_adv = (nk/m)^k``.  Minimising over k yields ``k_adv = m/(e n)``
    and ``f_adv_opt = e^{-m/(e n)}``; with that k the *honest* rate
    satisfies ``ln f = -0.433 m/n`` (eq. 12).  The paper reports
    ``k_opt/k_adv = e ln 2 ≈ 1.88`` and a size inflation of ``≈ 4.8``
    when translating the protected design back to a classical one.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.exceptions import ParameterError

__all__ = [
    "optimal_k",
    "optimal_m",
    "optimal_fpp",
    "false_positive_probability",
    "false_positive_exact",
    "adversarial_fpp",
    "adversarial_optimal_k",
    "adversarial_optimal_fpp",
    "honest_fpp_at_adversarial_k",
    "k_ratio",
    "fpp_ratio",
    "paper_size_inflation_factor",
    "BloomParameters",
]

#: ``-ln(1 - e^{-1/e}) / e`` -- the 0.433 constant of paper eq. (12):
#: at k_adv = m/(en), ``ln f = k_adv * ln(1 - e^{-1/e}) = -0.433 m/n``.
_EQ12_CONSTANT = -math.log(1.0 - math.exp(-1.0 / math.e)) / math.e


def _require_positive(**kwargs: float) -> None:
    for name, value in kwargs.items():
        if value <= 0:
            raise ParameterError(f"{name} must be positive, got {value}")


def optimal_k(m: int, n: int) -> float:
    """Classical optimal hash count ``(m/n) ln 2`` (paper eq. 2)."""
    _require_positive(m=m, n=n)
    return (m / n) * math.log(2)


def optimal_m(n: int, f: float) -> int:
    """Classical filter size for capacity n and target FP f (from eq. 3)."""
    _require_positive(n=n)
    if not 0 < f < 1:
        raise ParameterError(f"f must be in (0, 1), got {f}")
    return math.ceil(-n * math.log(f) / (math.log(2) ** 2))


def optimal_fpp(m: int, n: int) -> float:
    """Classical FP probability at the optimal k (paper eq. 3)."""
    _require_positive(m=m, n=n)
    return math.exp(-(m / n) * (math.log(2) ** 2))


def false_positive_probability(m: int, n: int, k: int) -> float:
    """The textbook approximation ``(1 - e^{-kn/m})^k`` (paper eq. 1).

    The paper notes this is not the sharpest estimate but is the one
    used by real implementations, so we abide by it too.
    """
    _require_positive(m=m, k=k)
    if n < 0:
        raise ParameterError(f"n must be non-negative, got {n}")
    if n == 0:
        return 0.0
    return (1.0 - math.exp(-k * n / m)) ** k


def false_positive_exact(m: int, n: int, k: int) -> float:
    """The exact-uniform expression ``(1 - (1 - 1/m)^{kn})^k``."""
    _require_positive(m=m, k=k)
    if n < 0:
        raise ParameterError(f"n must be non-negative, got {n}")
    if n == 0:
        return 0.0
    return (1.0 - (1.0 - 1.0 / m) ** (k * n)) ** k


def adversarial_fpp(m: int, n: int, k: int) -> float:
    """Worst-case FP probability ``(nk/m)^k`` under chosen insertions
    (paper eq. 7), clamped to 1 once the filter saturates."""
    _require_positive(m=m, k=k)
    if n < 0:
        raise ParameterError(f"n must be non-negative, got {n}")
    return min(1.0, (n * k / m)) ** k


def adversarial_optimal_k(m: int, n: int) -> float:
    """The k minimising the adversarial FP: ``m/(e n)`` (paper eq. 9)."""
    _require_positive(m=m, n=n)
    return m / (math.e * n)


def adversarial_optimal_fpp(m: int, n: int) -> float:
    """Adversarial FP at the adversarial-optimal k: ``e^{-m/(en)}``
    (paper eq. 10)."""
    _require_positive(m=m, n=n)
    return math.exp(-m / (math.e * n))


def honest_fpp_at_adversarial_k(m: int, n: int) -> float:
    """Honest (uniform-input) FP when running with ``k_adv`` hash
    functions: ``(1 - e^{-1/e})^{m/(ne)}``, i.e. ``ln f = -0.433 m/n``
    (paper eqs. 11-12)."""
    _require_positive(m=m, n=n)
    return math.exp(-_EQ12_CONSTANT * m / n)


def k_ratio() -> float:
    """``k_opt / k_adv = e ln 2 ≈ 1.88`` (paper Section 8.1)."""
    return math.e * math.log(2)


def fpp_ratio(m: int, n: int) -> float:
    """``f_adv / f_opt ≈ 1.05^{m/n}`` -- the honest-FP price of the
    worst-case design (paper Section 8.1)."""
    return honest_fpp_at_adversarial_k(m, n) / optimal_fpp(m, n)


def paper_size_inflation_factor() -> float:
    """The paper's ``m'/m ≈ 4.8`` memory-inflation constant.

    Numerically the paper's 4.8 equals ``1 / (0.433 (ln 2)^2)``; the
    derivation in the report is terse (see EXPERIMENTS.md for the
    step-by-step reading and an alternative interpretation), so we expose
    the constant exactly as published.
    """
    return 1.0 / (_EQ12_CONSTANT * math.log(2) ** 2)


@dataclass(frozen=True)
class BloomParameters:
    """A fully-derived parameter set ``(m, k, n)`` with design metadata.

    Instances are produced by the three designers below; ``mode`` records
    which trade-off was chosen so experiment output can label curves.
    """

    m: int
    k: int
    n: int
    mode: str = "optimal"

    def __post_init__(self) -> None:
        _require_positive(m=self.m, k=self.k, n=self.n)

    @classmethod
    def design_optimal(cls, n: int, f: float) -> "BloomParameters":
        """Classical design: given capacity and target FP, derive m and k."""
        m = optimal_m(n, f)
        k = max(1, round(optimal_k(m, n)))
        return cls(m=m, k=k, n=n, mode="optimal")

    @classmethod
    def design_with_memory(cls, m: int, n: int) -> "BloomParameters":
        """Classical design under a memory budget: derive the optimal k."""
        k = max(1, round(optimal_k(m, n)))
        return cls(m=m, k=k, n=n, mode="optimal")

    @classmethod
    def design_worst_case(cls, n: int, m: int) -> "BloomParameters":
        """The paper's adaptive design: ``k = round(m/(en))``, which
        minimises what a chosen-insertion adversary can force."""
        k = max(1, round(adversarial_optimal_k(m, n)))
        return cls(m=m, k=k, n=n, mode="worst-case")

    @property
    def fpp(self) -> float:
        """Honest FP probability of this design at capacity."""
        return false_positive_probability(self.m, self.n, self.k)

    @property
    def adversarial(self) -> float:
        """Worst-case FP probability of this design at capacity."""
        return adversarial_fpp(self.m, self.n, self.k)

    @property
    def bits_per_item(self) -> float:
        """Memory cost in bits per supported item."""
        return self.m / self.n
