"""Packed small-width counter arrays for counting Bloom filters.

Dablooms uses 4-bit counters (paper Section 6.1); the overflow attack of
Section 6.2 exploits exactly what happens when a 4-bit counter is
incremented past 15.  The array therefore supports three explicit
overflow policies instead of hiding the choice:

* ``WRAP`` -- modular arithmetic (what makes the ``nk = a + 16b`` attack
  produce an all-zero "full" filter);
* ``SATURATE`` -- stick at the maximum (classic counting-filter design;
  trades overflow for permanent false positives since the counter can no
  longer be safely decremented);
* ``RAISE`` -- fail loudly.
"""

from __future__ import annotations

import enum

from repro import accel
from repro.exceptions import CounterOverflowError

__all__ = ["OverflowPolicy", "CounterArray"]


class OverflowPolicy(enum.Enum):
    """What an increment does to a counter already at its maximum."""

    WRAP = "wrap"
    SATURATE = "saturate"
    RAISE = "raise"


class CounterArray:
    """Fixed array of ``size`` counters of ``bits`` bits each.

    Counters are packed into a ``bytearray``; with the default 4 bits,
    two counters share a byte, matching the Dablooms layout.
    """

    __slots__ = (
        "_size",
        "_bits",
        "_max",
        "_values",
        "_nonzero",
        "overflow_events",
        "underflow_events",
    )

    def __init__(self, size: int, bits: int = 4) -> None:
        if size <= 0:
            raise ValueError("size must be positive")
        if not 1 <= bits <= 8:
            raise ValueError("bits must be in [1, 8]")
        self._size = size
        self._bits = bits
        self._max = (1 << bits) - 1
        # One byte per counter keeps the code simple and fast in CPython;
        # logical width is still ``bits`` (values are reduced on update).
        self._values = bytearray(size)
        # Non-zero-counter count, maintained incrementally by every
        # mutator (the counting analogue of BitVector's weight counter)
        # so per-batch fill checks are O(1); recounted on load_bytes.
        self._nonzero = 0
        #: Number of increments that hit an already-maxed counter.
        self.overflow_events = 0
        #: Number of decrements that hit an already-zero counter.
        self.underflow_events = 0

    @property
    def counter_bits(self) -> int:
        """Width of each counter in bits."""
        return self._bits

    @property
    def max_value(self) -> int:
        """Largest representable counter value (15 for 4-bit counters)."""
        return self._max

    def __len__(self) -> int:
        return self._size

    def _check(self, index: int) -> None:
        if not 0 <= index < self._size:
            raise IndexError(f"counter index {index} out of range [0, {self._size})")

    def get(self, index: int) -> int:
        """Current value of counter ``index``."""
        self._check(index)
        return self._values[index]

    __getitem__ = get

    def increment(self, index: int, policy: OverflowPolicy = OverflowPolicy.SATURATE) -> int:
        """Increment a counter under ``policy``; return its new value."""
        self._check(index)
        value = self._values[index]
        if value >= self._max:
            self.overflow_events += 1
            if policy is OverflowPolicy.RAISE:
                raise CounterOverflowError(f"counter {index} overflowed past {self._max}")
            if policy is OverflowPolicy.SATURATE:
                return value
            value = 0  # WRAP: a maxed (non-zero) counter goes to zero
            self._nonzero -= 1
        else:
            value += 1
            if value == 1:
                self._nonzero += 1
        self._values[index] = value
        return value

    def decrement(self, index: int) -> int:
        """Decrement a counter (floor at 0); return its new value.

        Decrementing a zero counter is recorded in ``underflow_events``;
        it is the signature of a deletion-attack side effect.
        """
        self._check(index)
        value = self._values[index]
        if value == 0:
            self.underflow_events += 1
            return 0
        value -= 1
        if value == 0:
            self._nonzero -= 1
        self._values[index] = value
        return value

    # ------------------------------------------------------------------
    # Batch operations (the counting-filter hot path)
    # ------------------------------------------------------------------
    #
    # Mirrors of BitVector's batch forms: validate every position before
    # touching any counter, hoist the backing bytearray, and keep the
    # event-tally semantics of the scalar increment/decrement.  The
    # grouped forms additionally dispatch to the numpy kernels
    # (:mod:`repro.core._kernels`) when the accel mode allows -- except
    # under ``RAISE``, whose mid-batch partial state is inherently
    # sequential and stays on the loops.

    def all_positive(self, indexes) -> bool:
        """True iff every counter in ``indexes`` is non-zero (the
        counting-filter membership probe, short-circuiting on zero)."""
        size = self._size
        values = self._values
        for index in indexes:
            if not 0 <= index < size:
                raise IndexError(f"counter index {index} out of range [0, {size})")
            if not values[index]:
                return False
        return True

    def increment_all(
        self, indexes, policy: OverflowPolicy = OverflowPolicy.SATURATE
    ) -> None:
        """Increment every counter in ``indexes`` under ``policy``.

        Validates all positions up front so a bad index leaves the array
        untouched; duplicate indexes are incremented once per occurrence
        (exactly like repeated scalar calls -- the overflow attack's
        steering items rely on that)."""
        size = self._size
        values = self._values
        maximum = self._max
        for index in indexes:
            if not 0 <= index < size:
                raise IndexError(f"counter index {index} out of range [0, {size})")
        for index in indexes:
            value = values[index]
            if value >= maximum:
                self.overflow_events += 1
                if policy is OverflowPolicy.RAISE:
                    raise CounterOverflowError(
                        f"counter {index} overflowed past {maximum}"
                    )
                if policy is OverflowPolicy.SATURATE:
                    continue
                values[index] = 0  # WRAP
                self._nonzero -= 1
            else:
                values[index] = value + 1
                if value == 0:
                    self._nonzero += 1

    def decrement_all(self, indexes) -> None:
        """Decrement every counter in ``indexes`` (floor at 0), tallying
        underflows exactly like the scalar :meth:`decrement`."""
        size = self._size
        values = self._values
        for index in indexes:
            if not 0 <= index < size:
                raise IndexError(f"counter index {index} out of range [0, {size})")
        for index in indexes:
            value = values[index]
            if value == 0:
                self.underflow_events += 1
            else:
                values[index] = value - 1
                if value == 1:
                    self._nonzero -= 1

    # ------------------------------------------------------------------
    # Grouped operations (whole batches of k-index items in one call)
    # ------------------------------------------------------------------

    def _check_group(self, flat, group_size: int) -> None:
        if group_size <= 0:
            raise ValueError("group_size must be positive")
        if len(flat) % group_size:
            raise ValueError(
                f"flat batch of {len(flat)} indexes is not a multiple of "
                f"group_size={group_size}"
            )

    def probe_increment_groups(
        self, flat, group_size: int, policy: OverflowPolicy = OverflowPolicy.SATURATE
    ) -> list[bool]:
        """For each ``group_size``-index group: the all-positive probe
        answer *before* that item's own increments (but after earlier
        items' -- exact sequential parity with probe-then-increment
        loops), then one increment per index under ``policy``.

        This is the counter-core half of ``CountingBloomFilter.
        add_batch``.  Event tallies match the scalar loop; the whole
        flat batch is validated before any counter is touched.
        """
        self._check_group(flat, group_size)
        if policy is not OverflowPolicy.RAISE and accel.accelerated(len(flat)):
            from repro.core import _kernels

            answers, overflows, nonzero_delta = (
                _kernels.counter_probe_increment_groups(
                    self._values,
                    flat,
                    group_size,
                    self._max,
                    policy is OverflowPolicy.WRAP,
                )
            )
            self.overflow_events += overflows
            self._nonzero += nonzero_delta
            return answers
        size = self._size
        for index in flat:
            if not 0 <= index < size:
                raise IndexError(f"counter index {index} out of range [0, {size})")
        values = self._values
        maximum = self._max
        answers: list[bool] = []
        for start in range(0, len(flat), group_size):
            group = flat[start : start + group_size]
            answers.append(all(values[index] for index in group))
            for index in group:
                value = values[index]
                if value >= maximum:
                    self.overflow_events += 1
                    if policy is OverflowPolicy.RAISE:
                        raise CounterOverflowError(
                            f"counter {index} overflowed past {maximum}"
                        )
                    if policy is OverflowPolicy.SATURATE:
                        continue
                    values[index] = 0  # WRAP
                    self._nonzero -= 1
                else:
                    values[index] = value + 1
                    if value == 0:
                        self._nonzero += 1
        return answers

    def probe_decrement_groups(self, flat, group_size: int) -> list[bool]:
        """For each group: the all-positive probe before that item's own
        decrements (sequential parity as in :meth:`probe_increment_
        groups`), then one floored decrement per index, tallying
        underflows exactly like the scalar :meth:`decrement`.  The
        counter-core half of ``CountingBloomFilter.remove_batch``."""
        self._check_group(flat, group_size)
        if accel.accelerated(len(flat)):
            from repro.core import _kernels

            answers, underflows, nonzero_delta = (
                _kernels.counter_probe_decrement_groups(
                    self._values, flat, group_size
                )
            )
            self.underflow_events += underflows
            self._nonzero += nonzero_delta
            return answers
        size = self._size
        for index in flat:
            if not 0 <= index < size:
                raise IndexError(f"counter index {index} out of range [0, {size})")
        values = self._values
        answers: list[bool] = []
        for start in range(0, len(flat), group_size):
            group = flat[start : start + group_size]
            answers.append(all(values[index] for index in group))
            for index in group:
                value = values[index]
                if value == 0:
                    self.underflow_events += 1
                else:
                    values[index] = value - 1
                    if value == 1:
                        self._nonzero -= 1
        return answers

    def all_positive_groups(self, flat, group_size: int) -> list[bool]:
        """Pure probe form: one all-positive answer per group, nothing
        mutated.  The counter-core half of ``contains_batch``."""
        self._check_group(flat, group_size)
        if accel.accelerated(len(flat)):
            from repro.core import _kernels

            return _kernels.counter_test_groups(self._values, flat, group_size)
        size = self._size
        for index in flat:
            if not 0 <= index < size:
                raise IndexError(f"counter index {index} out of range [0, {size})")
        values = self._values
        return [
            all(values[index] for index in flat[start : start + group_size])
            for start in range(0, len(flat), group_size)
        ]

    def nonzero_count(self) -> int:
        """Number of counters currently greater than zero (O(1):
        maintained incrementally by every mutator)."""
        return self._nonzero

    def recount(self) -> int:
        """Recompute the cached non-zero count from the raw values (the
        fallback for direct buffer rewrites); returns the fresh count."""
        if accel.accelerated(self._size):
            from repro.core import _kernels

            self._nonzero = _kernels.counter_nonzero(self._values)
        else:
            self._nonzero = sum(1 for v in self._values if v)
        return self._nonzero

    def support(self) -> set[int]:
        """Indices of non-zero counters (the counting analogue of supp)."""
        return {i for i, v in enumerate(self._values) if v}

    def values(self) -> list[int]:
        """Snapshot of all counter values."""
        return list(self._values)

    def to_bytes(self) -> bytes:
        """Serialise the counter values (one byte per counter, the
        in-memory layout; logical width stays ``counter_bits``)."""
        return bytes(self._values)

    def load_bytes(self, raw: bytes) -> None:
        """Overwrite every counter from :meth:`to_bytes` output.

        Length and per-counter range are validated before anything is
        touched, so a corrupt payload leaves the array intact.  Event
        tallies are not part of the value state and are unaffected.
        """
        if len(raw) != self._size:
            raise ValueError(
                f"counter payload is {len(raw)} bytes, array holds {self._size}"
            )
        if any(value > self._max for value in raw):
            raise ValueError(
                f"counter payload holds values above the {self._bits}-bit "
                f"maximum {self._max}"
            )
        self._values[:] = raw
        self.recount()

    def clear(self) -> None:
        """Reset every counter to zero (does not reset event tallies)."""
        self._values[:] = bytes(self._size)
        self._nonzero = 0

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"<CounterArray size={self._size} bits={self._bits} "
            f"nonzero={self.nonzero_count()}>"
        )
