"""Bloom filter family and parameter calculus.

Structures
    :class:`~repro.core.bloom.BloomFilter` (classic, paper Section 3),
    :class:`~repro.core.counting.CountingBloomFilter`,
    :class:`~repro.core.scalable.ScalableBloomFilter`,
    :class:`~repro.core.dablooms.Dablooms` (Bitly's scaling counting
    filter, Section 6), :class:`~repro.core.cache_digest.CacheDigest`
    (Squid, Section 7), and
    :class:`~repro.core.partitioned.PartitionedBloomFilter`.

Calculus
    :mod:`~repro.core.params` (classical and worst-case parameter
    derivations, Sections 3 and 8.1) and :mod:`~repro.core.analysis`
    (occupancy expectations, concentration bounds, attack thresholds).
"""

from repro.core.analysis import (
    adversarial_saturation_items,
    birthday_threshold,
    coupon_collector_items,
    empirical_fpp,
    expected_set_bits,
    expected_zero_bits,
    occupancy_concentration_bound,
    scalable_compound_fpp,
)
from repro.core.bitvector import BitVector
from repro.core.bloom import BloomFilter, default_strategy
from repro.core.cache_digest import CacheDigest, squid_digest_bits, squid_indexes
from repro.core.counters import CounterArray, OverflowPolicy
from repro.core.counting import CountingBloomFilter
from repro.core.dablooms import Dablooms
from repro.core.interfaces import DeletableFilter, MembershipFilter
from repro.core.params import (
    BloomParameters,
    adversarial_fpp,
    adversarial_optimal_fpp,
    adversarial_optimal_k,
    false_positive_exact,
    false_positive_probability,
    honest_fpp_at_adversarial_k,
    k_ratio,
    optimal_fpp,
    optimal_k,
    optimal_m,
    paper_size_inflation_factor,
)
from repro.core.partitioned import PartitionedBloomFilter
from repro.core.scalable import ScalableBloomFilter
from repro.core.two_choice import TwoChoiceBloomFilter

__all__ = [
    "BitVector",
    "BloomFilter",
    "BloomParameters",
    "CacheDigest",
    "CounterArray",
    "CountingBloomFilter",
    "Dablooms",
    "DeletableFilter",
    "MembershipFilter",
    "OverflowPolicy",
    "PartitionedBloomFilter",
    "ScalableBloomFilter",
    "TwoChoiceBloomFilter",
    "adversarial_fpp",
    "adversarial_optimal_fpp",
    "adversarial_optimal_k",
    "adversarial_saturation_items",
    "birthday_threshold",
    "coupon_collector_items",
    "default_strategy",
    "empirical_fpp",
    "expected_set_bits",
    "expected_zero_bits",
    "false_positive_exact",
    "false_positive_probability",
    "honest_fpp_at_adversarial_k",
    "k_ratio",
    "occupancy_concentration_bound",
    "optimal_fpp",
    "optimal_k",
    "optimal_m",
    "paper_size_inflation_factor",
    "scalable_compound_fpp",
    "squid_digest_bits",
    "squid_indexes",
]
