"""Shared protocol for every set-membership structure in the package.

Attacks in :mod:`repro.adversary` are written against this interface so
the same pollution code runs against a classic filter, a counting
filter, Dablooms or a Squid cache digest.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Iterable, Sequence

__all__ = ["MembershipFilter", "DeletableFilter"]


class MembershipFilter(ABC):
    """Anything that supports probabilistic set membership."""

    @abstractmethod
    def add(self, item: str | bytes) -> bool:
        """Insert ``item``.

        Returns True if the structure believes the item was *already*
        present (i.e. the insertion set no new bits) -- the convention of
        pyBloom's ``add``.
        """

    @abstractmethod
    def __contains__(self, item: str | bytes) -> bool:
        """Membership query (may return false positives, never false
        negatives unless the structure supports deletion)."""

    @abstractmethod
    def __len__(self) -> int:
        """Number of insertions performed (not distinct items)."""

    def add_batch(self, items: Iterable[str | bytes]) -> list[bool]:
        """Insert every item; returns the per-item :meth:`add` results.

        The default is a plain loop so every structure gets the batch API
        for free; hot-path implementations (:class:`~repro.core.bloom.
        BloomFilter`) override it with a single-pass vectorized form.
        """
        return [self.add(item) for item in items]

    def contains_batch(self, items: Sequence[str | bytes]) -> list[bool]:
        """Query every item; returns one membership answer per item."""
        return [item in self for item in items]


class DeletableFilter(MembershipFilter):
    """A membership filter that additionally supports deletion."""

    @abstractmethod
    def remove(self, item: str | bytes) -> bool:
        """Delete ``item``; returns True if it appeared to be present."""

    def remove_batch(self, items: Iterable[str | bytes]) -> list[bool]:
        """Delete every item; returns the per-item :meth:`remove` results.

        Plain loop by default; counting structures override it with a
        single hashing pass (same contract as :meth:`add_batch`).
        """
        return [self.remove(item) for item in items]
