"""Configuration bundles for the membership gateway and its adversary.

One frozen dataclass holds every deployment knob -- shard geometry,
routing mode, admission limits, the saturation threshold -- so an
experiment or demo can describe a whole service in one literal and
rebuild it with ``MembershipGateway.from_config`` (identically, provided
any keyed modes pin their keys; unpinned keys are drawn fresh per build).

:class:`AttackBudgetConfig` is the adversary-side counterpart: the
resource bounds of one attack campaign (total trials, request rate,
deadline, query strategy) as a validated literal, so an experiment can
sweep budgets the same way it sweeps service configs and ``build()``
fresh :class:`~repro.adversary.budget.AttackBudget` meters per run.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.exceptions import ParameterError

__all__ = ["ServiceConfig", "AttackBudgetConfig"]


@dataclass(frozen=True)
class ServiceConfig:
    """Deployment parameters of a :class:`~repro.service.gateway.MembershipGateway`.

    Parameters
    ----------
    shards:
        Number of filter shards behind the router.
    shard_m, shard_k:
        Geometry of each shard's Bloom filter.
    rotation_threshold:
        Legacy knob: fill ratio at which a shard is retired and a fresh
        filter swapped in (the paper's recycled-filter countermeasure).
        Maps to :class:`~repro.service.lifecycle.FillThresholdPolicy`
        unchanged; ``None`` disables rotation (unless
        ``rotation_policy`` is set).
    rotation_policy:
        Shard lifecycle policy spec (see :func:`~repro.service.
        lifecycle.parse_policy`): leaf rules (``"fill:0.5"``,
        ``"age:4000"``, ``"adaptive:0.8:32"`` or windowed
        ``"adaptive:0.8:32:128"``, ``"restore:2000+fill:0.5"``,
        ``"never"``) or any composition of them --
        ``"(adaptive:0.8:24:32&fill:0.5)|age:4000"``,
        ``"cooldown:200(hysteresis:2(adaptive:0.85:24:32))"``, ``"!"``
        negation.  Malformed specs raise
        :class:`~repro.exceptions.ConfigError` at config build time.
        Wins over ``rotation_threshold`` when both are set; ``None``
        falls back to the legacy knob.
    rate_limit:
        Per-client admitted operations per second; ``None`` means
        unlimited.
    burst:
        Token-bucket burst size used with ``rate_limit``.
    keyed_routing:
        Route items to shards with a secret SipHash key instead of a
        public hash, so an adversary cannot aim traffic at one shard.
    router:
        Shard-router spec string (see :func:`~repro.service.cluster.
        ring.parse_picker`): ``"murmur"`` / ``"murmur:0x5a4d"`` for the
        public router, ``"siphash"`` / ``"siphash:<32 hex chars>"`` for
        the keyed one.  Wins over ``keyed_routing``/``routing_key`` when
        set; malformed specs raise :class:`~repro.exceptions.
        ConfigError` at config build time.  Note ``"siphash"`` without a
        key draws one fresh per build (pin the key in the spec for
        reproducibility), and the spec string embeds that key -- treat
        configs with keyed specs as secrets.
    keyed_filters:
        Build each shard as a :class:`~repro.countermeasures.keyed.
        KeyedBloomFilter` (per-shard secret key) instead of the default
        unkeyed recycled-SHA-512 filter.
    routing_key, filter_key:
        Explicit 16-byte secrets for the keyed modes.  ``None`` draws
        fresh random keys at build time -- note that such a gateway
        cannot be rebuilt identically from the config alone; pin the
        keys when reproducibility (or a snapshot restore) matters.
    backend:
        Where the shard filters live: ``"local"`` keeps them in the
        gateway's process (the default, zero-overhead arrangement);
        ``"process"`` runs each shard in its own worker process (one
        core per shard for the CPU-bound hashing).  Process backends
        resolve an unpinned ``filter_key`` once at build time so every
        worker, white-box view and snapshot restore agrees.
    coalesce_window_us, coalesce_max_batch:
        Cross-client micro-batch coalescing (see :mod:`repro.service.
        coalesce`): concurrent small batches aimed at the same shard
        merge into one backend call, flushed at ``coalesce_max_batch``
        items or after ``coalesce_window_us`` microseconds.  A
        ``coalesce_max_batch`` of 0 (default) disables coalescing and
        keeps the serving path byte-identical to the legacy gateway;
        a non-zero window requires a non-zero max batch.
    pipeline_depth:
        Requests a single server connection may have in flight at once
        (codec v2 correlation-id pipelining).  0 (default) dispatches
        serially, the legacy behaviour; v2 frames still get their ids
        echoed back.
    """

    shards: int = 4
    shard_m: int = 4096
    shard_k: int = 4
    rotation_threshold: float | None = 0.5
    rotation_policy: str | None = None
    rate_limit: float | None = None
    burst: int = 64
    keyed_routing: bool = False
    keyed_filters: bool = False
    router: str | None = None
    routing_key: bytes | None = None
    filter_key: bytes | None = None
    backend: str = "local"
    coalesce_window_us: int = 0
    coalesce_max_batch: int = 0
    pipeline_depth: int = 0

    def __post_init__(self) -> None:
        if self.backend not in ("local", "process"):
            raise ParameterError(
                f"backend must be 'local' or 'process', got {self.backend!r}"
            )
        for name in ("routing_key", "filter_key"):
            key = getattr(self, name)
            if key is not None and len(key) != 16:
                raise ParameterError(f"{name} must be exactly 16 bytes")
        if self.shards <= 0:
            raise ParameterError(f"shards must be positive, got {self.shards}")
        if self.shard_m <= 0 or self.shard_k <= 0:
            raise ParameterError("shard_m and shard_k must be positive")
        if self.rotation_threshold is not None and not 0 < self.rotation_threshold <= 1:
            raise ParameterError("rotation_threshold must be in (0, 1]")
        if self.rotation_policy is not None:
            # Parse for validation only; the gateway parses again at
            # build time (policies are cheap, the config stays frozen
            # and hashable with plain-string fields).
            from repro.service.lifecycle import parse_policy

            parse_policy(self.rotation_policy)
        if self.router is not None:
            # Parse for validation only, mirroring rotation_policy: the
            # gateway parses again at build time.
            from repro.service.cluster.ring import parse_picker

            parse_picker(self.router)
        if self.rate_limit is not None and self.rate_limit <= 0:
            raise ParameterError("rate_limit must be positive (or None)")
        if self.burst <= 0:
            raise ParameterError("burst must be positive")
        for name in ("coalesce_window_us", "coalesce_max_batch", "pipeline_depth"):
            if getattr(self, name) < 0:
                raise ParameterError(f"{name} must be non-negative")
        if self.coalesce_window_us > 0 and self.coalesce_max_batch == 0:
            raise ParameterError(
                "coalesce_window_us needs coalesce_max_batch > 0"
            )

    @property
    def total_bits(self) -> int:
        """Bits held across all shards."""
        return self.shards * self.shard_m


@dataclass(frozen=True)
class AttackBudgetConfig:
    """Resource bounds of one attack campaign, as a frozen literal.

    Parameters
    ----------
    max_trials:
        Total brute-force hash trials across all attack clients sharing
        the campaign (``None`` = unmetered).
    requests_per_s:
        Transport request-rate ceiling the attacker self-paces under
        (``None`` = unpaced).
    deadline_s:
        Wall-clock seconds from the first charge before every budget
        operation raises (``None`` = open-ended).
    strategy:
        ``"static"`` (craft every query fresh) or ``"adaptive"`` (feed
        answers back: replay confirmed ghosts, promote their prefixes).
        The driver maps it onto the ``ghost_queries`` vs
        ``adaptive_ghost_queries`` workload knobs.

    The config is hashable and comparable (sweep axes in experiments);
    :meth:`build` mints a fresh, independently-metered
    :class:`~repro.adversary.budget.AttackBudget` per call.
    """

    max_trials: int | None = None
    requests_per_s: float | None = None
    deadline_s: float | None = None
    strategy: str = "static"

    def __post_init__(self) -> None:
        if self.strategy not in ("static", "adaptive"):
            raise ParameterError(
                f"strategy must be 'static' or 'adaptive', got {self.strategy!r}"
            )
        if self.max_trials is not None and self.max_trials <= 0:
            raise ParameterError("max_trials must be positive (or None)")
        if self.requests_per_s is not None and self.requests_per_s <= 0:
            raise ParameterError("requests_per_s must be positive (or None)")
        if self.deadline_s is not None and self.deadline_s <= 0:
            raise ParameterError("deadline_s must be positive (or None)")

    @property
    def adaptive(self) -> bool:
        """True for the answer-feedback strategy."""
        return self.strategy == "adaptive"

    def build(self, **overrides):
        """A fresh :class:`~repro.adversary.budget.AttackBudget` with
        these bounds (``overrides`` reach the constructor, e.g. a pinned
        test clock)."""
        from repro.adversary.budget import AttackBudget

        return AttackBudget(
            max_trials=self.max_trials,
            requests_per_s=self.requests_per_s,
            deadline_s=self.deadline_s,
            **overrides,
        )

    def describe(self) -> str:
        """Short label for experiment tables (e.g. ``"3000t@2000/s"``)."""
        trials = f"{self.max_trials}t" if self.max_trials is not None else "inf"
        parts = [trials]
        if self.requests_per_s is not None:
            parts.append(f"@{self.requests_per_s:g}/s")
        if self.deadline_s is not None:
            parts.append(f"<{self.deadline_s:g}s")
        return "".join(parts)
