"""Shard lifecycle management: rotation policies as first-class objects.

The paper's strongest deployable countermeasure is filter recycling
(Section 8, Table 2): retire a shard's filter before an adversary can
finish measuring it.  *When* to retire is a policy question, and the
literature answers it several ways -- fill thresholds (the saturation
guard), dablooms-style age/op-count recycling, and adaptive reactions to
the query stream itself (Naor-Yogev's adversarial model is exactly an
attacker probing a filter over time).  This module makes that axis
pluggable: a :class:`RotationPolicy` consumes one per-shard
:class:`ShardObservation` and emits a :class:`RotationDecision` with a
machine-readable reason, and the gateway delegates every rotate/keep
choice to it.

Policies are deliberately *stateless*: everything they need is in the
observation, and the mutable per-shard history behind it lives in one
:class:`ShardLifecycleState` owned by the gateway.  That split is what
makes decisions survive warm restarts -- the gateway snapshot persists
the lifecycle state (age, op counts, restore epoch), not policy
internals, so a restored gateway can even be handed a *different*
policy and keep deciding sensibly.

Shipped policies:

* :class:`FillThresholdPolicy` -- today's saturation-guard behaviour
  (the default; ``ServiceConfig.rotation_threshold`` maps to it);
* :class:`TimeBasedRecyclingPolicy` -- retire after a fixed operation
  budget, whatever the fill (dablooms-style recycling);
* :class:`AdaptivePositiveRatePolicy` -- retire on a positive-rate
  spike, the anti-adaptive-adversary defence (a ghost-query storm
  answers positive far above the honest mix); measured since the last
  rotation by default, or over a sliding window of recent queries so a
  late-life spike on a long-lived shard is not diluted by its honest
  history;
* :class:`RotateOnRestorePolicy` -- a wrapper expiring shards that were
  restored mid-life from a snapshot (their bits have been observable
  longer than their in-process age suggests), delegating to an inner
  policy otherwise;
* :class:`NeverRotatePolicy` -- explicit no-rotation baseline.

``parse_policy`` turns the ``ServiceConfig.rotation_policy`` string
(``"fill:0.5"``, ``"age:4000"``, ``"adaptive:0.8:32"``,
``"restore:2000+fill:0.5"``, ``"never"``) into a policy object, and
every policy renders back via ``.spec``.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from collections import deque
from dataclasses import dataclass

from repro.exceptions import ParameterError

__all__ = [
    "ShardObservation",
    "RotationDecision",
    "ShardLifecycleState",
    "RotationPolicy",
    "NeverRotatePolicy",
    "FillThresholdPolicy",
    "TimeBasedRecyclingPolicy",
    "AdaptivePositiveRatePolicy",
    "RotateOnRestorePolicy",
    "parse_policy",
    "policy_from_guard",
]


@dataclass(frozen=True)
class ShardObservation:
    """Everything a rotation policy may look at for one shard.

    Combines the filter state the backend returned with the batch (no
    extra hop), the gateway's per-shard lifecycle history, and the
    gateway-wide operation epoch.
    """

    shard_id: int
    #: Filter state (from the backend's :class:`~repro.service.backends.
    #: ShardState`, returned with every batch).
    hamming_weight: int
    fill_ratio: float
    insertions: int
    #: Operations (inserts + queries) served by this shard's current
    #: filter since it was built, rotated, or restored -- including any
    #: age inherited from a snapshot.
    age_ops: int
    #: Gateway-side history since the shard's last rotation.
    inserts: int
    queries: int
    positives: int
    #: True when the shard's bits were loaded mid-life from a snapshot.
    restored: bool
    #: Operations served since the latest restore (equals ``age_ops``
    #: for never-restored shards).
    ops_since_restore: int
    #: Gateway-wide monotonic operation counter at observation time.
    op_epoch: int
    #: Recent query batches ``(queries, positives)``, oldest first, as
    #: retained by the lifecycle state's sliding window (covers at least
    #: :attr:`ShardLifecycleState.WINDOW_CAP` queries once enough have
    #: been served).  This is what lets a windowed policy see a
    #: late-life spike that the since-rotation totals have diluted.
    recent: tuple[tuple[int, int], ...] = ()

    @property
    def positive_rate(self) -> float:
        """Fraction of queries answered positive since the last rotation."""
        return self.positives / self.queries if self.queries else 0.0

    def windowed_positive_rate(self, window: int) -> tuple[int, int]:
        """``(queries, positives)`` over the most recent batches covering
        at least ``window`` queries.

        Whole batches are counted (never split), so the coverage may
        overshoot ``window`` by up to one batch; fewer than ``window``
        queries served simply yields what there is.  Callers decide what
        rate and minimum coverage to require.
        """
        if window <= 0:
            raise ParameterError("window must be positive")
        covered = positives = 0
        for queries, batch_positives in reversed(self.recent):
            if covered >= window:
                break
            covered += queries
            positives += batch_positives
        return covered, positives


@dataclass(frozen=True)
class RotationDecision:
    """A policy's verdict for one shard: rotate or keep, and why.

    ``reason`` is a stable, machine-readable slug (it names the rule and
    its configured bound, never live values), so rotation events can be
    grouped and counted across a run.
    """

    rotate: bool
    reason: str = ""


#: The shared "nothing to do" decision.
KEEP = RotationDecision(rotate=False, reason="keep")


class ShardLifecycleState:
    """Mutable per-shard history the gateway feeds into observations.

    One instance per shard, owned by the gateway, updated under the
    shard's lock.  ``age_base`` carries the operation age inherited from
    a snapshot (the backend's own counter restarts at zero whenever the
    filter instance is rebuilt or restored); the insert/query/positive
    counters run since the shard's last rotation.  All of it is
    persisted in the gateway snapshot's lifecycle section.

    On top of the since-rotation totals, a sliding window of recent
    query batches (``(queries, positives)`` pairs, capped to cover
    :attr:`WINDOW_CAP` queries) feeds
    :meth:`ShardObservation.windowed_positive_rate` -- the signal that
    catches an adaptive attacker who strikes late in a long-lived
    shard's life, after honest history has diluted the since-rotation
    rate.  The window is persisted with the rest of the lifecycle state
    (gateway snapshot version 3), so a windowed policy resumes deciding
    on the same recent history after a warm restart.
    """

    #: Queries the sliding window retains (at least; whole batches are
    #: kept, so retention can overshoot by one batch).  Windowed
    #: policies must use a window no larger than this.
    WINDOW_CAP = 1024

    __slots__ = (
        "shard_id",
        "age_base",
        "inserts",
        "queries",
        "positives",
        "restored",
        "restore_epoch",
        "_window",
        "_window_queries",
        "_window_positives",
    )

    def __init__(self, shard_id: int) -> None:
        self.shard_id = shard_id
        self.age_base = 0
        self.inserts = 0
        self.queries = 0
        self.positives = 0
        self.restored = False
        self.restore_epoch = 0
        self._window: deque[tuple[int, int]] = deque()
        self._window_queries = 0
        self._window_positives = 0

    def note_inserts(self, count: int) -> None:
        """Account one insert group dispatched to this shard."""
        self.inserts += count

    def note_queries(self, count: int, positives: int) -> None:
        """Account one query group (and its positive answers)."""
        self.queries += count
        self.positives += positives
        self._window.append((count, positives))
        self._window_queries += count
        self._window_positives += positives
        # Evict whole old batches while the remainder still covers the
        # cap -- retention stays in [cap, cap + one batch).
        while (
            len(self._window) > 1
            and self._window_queries - self._window[0][0] >= self.WINDOW_CAP
        ):
            old_queries, old_positives = self._window.popleft()
            self._window_queries -= old_queries
            self._window_positives -= old_positives

    def window_rate(self) -> float:
        """Positive rate over everything the window retains (telemetry's
        ``recent_pos`` column; 0.0 before any queries)."""
        if not self._window_queries:
            return 0.0
        return self._window_positives / self._window_queries

    def reset(self) -> None:
        """Forget everything: the shard just rotated to a fresh filter."""
        self.age_base = 0
        self.inserts = 0
        self.queries = 0
        self.positives = 0
        self.restored = False
        self.restore_epoch = 0
        self._window.clear()
        self._window_queries = 0
        self._window_positives = 0

    def observe(
        self, state, op_epoch: int, include_recent: bool = True
    ) -> ShardObservation:
        """Build the policy-facing observation from backend ``state``
        (any object with ``hamming_weight``/``fill_ratio``/
        ``insertions``/``age_ops`` attributes) plus this history.

        ``include_recent=False`` skips materialising the sliding window
        into the observation (an O(window) copy) -- the gateway passes
        the policy's :attr:`RotationPolicy.needs_recent` here so
        non-windowed policies never pay for it on the hot path.
        """
        instance_ops = getattr(state, "age_ops", 0)
        age_ops = self.age_base + instance_ops
        return ShardObservation(
            shard_id=self.shard_id,
            hamming_weight=state.hamming_weight,
            fill_ratio=state.fill_ratio,
            insertions=state.insertions,
            age_ops=age_ops,
            inserts=self.inserts,
            queries=self.queries,
            positives=self.positives,
            restored=self.restored,
            ops_since_restore=instance_ops if self.restored else age_ops,
            op_epoch=op_epoch,
            recent=tuple(self._window) if include_recent else (),
        )

    # -- snapshot round trip -------------------------------------------

    def to_state(self, instance_ops: int) -> dict:
        """Durable form for the gateway snapshot's lifecycle section.

        ``instance_ops`` is the backend's current per-instance operation
        count; the persisted age is the shard's *total* age so a restore
        can rebuild it without the original backend counter.  The
        sliding window rides along (as ``(queries, positives)`` pairs)
        so a windowed policy keeps deciding correctly across a warm
        restart instead of going blind until fresh traffic refills it.
        """
        return {
            "age_ops": self.age_base + instance_ops,
            "inserts": self.inserts,
            "queries": self.queries,
            "positives": self.positives,
            "restored": self.restored,
            "restore_epoch": self.restore_epoch,
            "window": tuple(self._window),
        }

    @classmethod
    def from_state(
        cls, shard_id: int, state: dict, restore_epoch: int
    ) -> "ShardLifecycleState":
        """Rebuild a shard's history from a snapshot, marking it restored.

        A shard whose persisted age is non-zero (or that was already
        flagged) comes back *restored*: its bits were observable before
        this process existed, which is exactly what
        :class:`RotateOnRestorePolicy` expires.  Fresh-and-empty shards
        stay unflagged.  A shard restored for the first time stamps
        ``restore_epoch`` (the gateway op-epoch at restore time, i.e.
        the snapshot's own epoch); an already-flagged shard keeps its
        persisted first-restore epoch, so the field is stable across
        repeated snapshot/restore cycles.
        """
        life = cls(shard_id)
        life.age_base = state["age_ops"]
        life.inserts = state["inserts"]
        life.queries = state["queries"]
        life.positives = state["positives"]
        life.restored = bool(state["restored"]) or state["age_ops"] > 0
        if life.restored:
            life.restore_epoch = (
                state["restore_epoch"] if state["restored"] else restore_epoch
            )
        for queries, positives in state.get("window", ()):
            life._window.append((queries, positives))
            life._window_queries += queries
            life._window_positives += positives
        return life


# ----------------------------------------------------------------------
# Policies
# ----------------------------------------------------------------------


class RotationPolicy(ABC):
    """The rotate/keep rule a gateway consults after every batch.

    Implementations must be stateless across calls (all inputs arrive in
    the observation): that is what keeps decisions reproducible and
    snapshot-restartable.
    """

    #: Stable identifier recorded in rotation events and reports.
    name: str = "policy"

    #: Whether :meth:`evaluate` reads ``observation.recent``.  The
    #: gateway skips materialising the sliding window for policies that
    #: don't (an O(window) copy per batch on the hot path).  Defaults to
    #: True so custom policies are correct out of the box; the shipped
    #: non-windowed policies opt out.
    needs_recent: bool = True

    @abstractmethod
    def evaluate(self, observation: ShardObservation) -> RotationDecision:
        """Decide for one shard; must not mutate anything."""

    @property
    def spec(self) -> str:
        """Canonical config string; ``parse_policy(p.spec)`` rebuilds an
        equivalent policy for every shipped policy.  (Adapters wrapping
        arbitrary guard objects are the one exception -- an opaque
        ``should_rotate`` callable has no spec grammar.)"""
        return self.name

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<{type(self).__name__} {self.spec!r}>"


class NeverRotatePolicy(RotationPolicy):
    """Explicit no-rotation baseline (distinct from having no policy
    only in that it shows up, named, in reports)."""

    name = "never"
    needs_recent = False

    def evaluate(self, observation: ShardObservation) -> RotationDecision:
        return KEEP


class FillThresholdPolicy(RotationPolicy):
    """Rotate once the shard's fill ratio reaches ``threshold``.

    Byte-for-byte today's saturation-guard behaviour, now expressed as a
    policy; the legacy ``ServiceConfig.rotation_threshold`` knob maps
    here unchanged.
    """

    name = "fill"
    needs_recent = False

    def __init__(self, threshold: float = 0.5) -> None:
        if not 0 < threshold <= 1:
            raise ParameterError("threshold must be in (0, 1]")
        self.threshold = threshold
        self._reason = f"fill_ratio>={threshold:g}"

    def evaluate(self, observation: ShardObservation) -> RotationDecision:
        if observation.fill_ratio >= self.threshold:
            return RotationDecision(rotate=True, reason=self._reason)
        return KEEP

    @property
    def spec(self) -> str:
        return f"fill:{self.threshold:g}"


class TimeBasedRecyclingPolicy(RotationPolicy):
    """Rotate after ``max_age_ops`` operations, whatever the fill.

    Dablooms-style recycling measured in served operations rather than
    wall clock (deterministic under replay): the filter is retired on a
    fixed budget, so an adversary's accumulated knowledge of its bits
    expires on a schedule the adversary cannot influence.
    """

    name = "age"
    needs_recent = False

    def __init__(self, max_age_ops: int = 10_000) -> None:
        if max_age_ops <= 0:
            raise ParameterError("max_age_ops must be positive")
        self.max_age_ops = max_age_ops
        self._reason = f"age_ops>={max_age_ops}"

    def evaluate(self, observation: ShardObservation) -> RotationDecision:
        if observation.age_ops >= self.max_age_ops:
            return RotationDecision(rotate=True, reason=self._reason)
        return KEEP

    @property
    def spec(self) -> str:
        return f"age:{self.max_age_ops}"


class AdaptivePositiveRatePolicy(RotationPolicy):
    """Rotate on a positive-rate spike: the FP-blowup tripwire.

    A ghost-forgery stream answers positive on essentially every crafted
    query, pushing a shard's positive rate far above any honest mix of
    known items and fresh probes.  Once at least ``min_queries`` have
    been served and the positive rate reaches ``max_positive_rate``, the
    shard rotates -- which invalidates every crafted ghost at once (they
    were forged against the retired bits).

    Without ``window`` the rate is measured since the shard's last
    rotation.  That leaves a blind spot: on a long-lived shard the
    honest history dilutes a late ghost storm (50 ghosts after 500
    honest queries barely move the lifetime average), which is exactly
    when a budgeted adaptive attacker strikes -- after the shard filled
    and crafting got cheap.  Pass ``window`` to measure the rate over
    the most recent ``window`` queries instead (served by the lifecycle
    state's sliding window, so ``window`` must not exceed
    :attr:`ShardLifecycleState.WINDOW_CAP`); the spike then stands out
    whatever came before it.

    ``min_queries`` keeps a couple of early lucky positives from
    triggering a spurious rotation (for windowed policies it is the
    minimum coverage the window must have accumulated, and must fit
    inside the window).  Note the threshold must sit above the
    deployment's honest positive rate (e.g. ``0.8`` when honest traffic
    re-queries half its own inserts), or the policy will rotate on
    legitimate traffic.
    """

    name = "adaptive"

    def __init__(
        self,
        max_positive_rate: float = 0.8,
        min_queries: int = 64,
        window: int | None = None,
    ) -> None:
        if not 0 < max_positive_rate <= 1:
            raise ParameterError("max_positive_rate must be in (0, 1]")
        if min_queries <= 0:
            raise ParameterError("min_queries must be positive")
        if window is not None:
            if window <= 0:
                raise ParameterError("window must be positive")
            if window > ShardLifecycleState.WINDOW_CAP:
                raise ParameterError(
                    f"window must not exceed the lifecycle retention cap "
                    f"({ShardLifecycleState.WINDOW_CAP})"
                )
            if min_queries > window:
                raise ParameterError("min_queries must fit inside the window")
        self.max_positive_rate = max_positive_rate
        self.min_queries = min_queries
        self.window = window
        self.needs_recent = window is not None
        self._reason = (
            f"window_positive_rate>={max_positive_rate:g}"
            if window is not None
            else f"positive_rate>={max_positive_rate:g}"
        )

    def evaluate(self, observation: ShardObservation) -> RotationDecision:
        if self.window is not None:
            covered, positives = observation.windowed_positive_rate(self.window)
            if (
                covered >= self.min_queries
                and positives / covered >= self.max_positive_rate
            ):
                return RotationDecision(rotate=True, reason=self._reason)
            return KEEP
        if (
            observation.queries >= self.min_queries
            and observation.positive_rate >= self.max_positive_rate
        ):
            return RotationDecision(rotate=True, reason=self._reason)
        return KEEP

    @property
    def spec(self) -> str:
        base = f"adaptive:{self.max_positive_rate:g}:{self.min_queries}"
        return f"{base}:{self.window}" if self.window is not None else base


class RotateOnRestorePolicy(RotationPolicy):
    """Expire shards restored mid-life from a snapshot; wrap any inner.

    A restored shard's bits were sitting on disk (and serving, before
    the restart) for longer than its in-process age shows -- the
    adversary may have finished measuring it while the service was down.
    This wrapper retires any restored shard after ``max_restored_age``
    post-restore operations (``0`` means: on its first post-restore
    decision), and otherwise delegates to ``inner`` (keep, when no inner
    is given).
    """

    name = "restore"

    def __init__(
        self, max_restored_age: int = 0, inner: RotationPolicy | None = None
    ) -> None:
        if max_restored_age < 0:
            raise ParameterError("max_restored_age must be non-negative")
        self.max_restored_age = max_restored_age
        self.inner = inner
        self.needs_recent = inner.needs_recent if inner is not None else False
        self._reason = f"restored_age>={max_restored_age}"

    def evaluate(self, observation: ShardObservation) -> RotationDecision:
        if (
            observation.restored
            and observation.ops_since_restore >= self.max_restored_age
        ):
            return RotationDecision(rotate=True, reason=self._reason)
        if self.inner is not None:
            return self.inner.evaluate(observation)
        return KEEP

    @property
    def spec(self) -> str:
        own = f"restore:{self.max_restored_age}"
        return f"{own}+{self.inner.spec}" if self.inner is not None else own


# ----------------------------------------------------------------------
# Config-string parsing and legacy-guard mapping
# ----------------------------------------------------------------------


def _parse_number(text: str, what: str, integer: bool) -> float:
    try:
        return int(text) if integer else float(text)
    except ValueError:
        raise ParameterError(f"rotation policy {what} must be a number, got {text!r}")


def parse_policy(spec: str) -> RotationPolicy:
    """Build a policy from its config string.

    Grammar (all numbers validated by the policy constructors)::

        never
        fill:<threshold>                  e.g. fill:0.5
        age:<max_age_ops>                 e.g. age:4000
        adaptive:<rate>[:<min_queries>[:<window>]]
                                          e.g. adaptive:0.8:32 (since
                                          rotation) or adaptive:0.8:32:128
                                          (over the last 128 queries)
        restore:<max_restored_age>        e.g. restore:2000
        restore:<age>+<inner-spec>        e.g. restore:2000+fill:0.5
    """
    if not isinstance(spec, str) or not spec.strip():
        raise ParameterError(f"rotation policy spec must be a non-empty string, got {spec!r}")
    spec = spec.strip()
    head, _, tail = spec.partition("+")
    if tail:
        outer = parse_policy(head)
        if not isinstance(outer, RotateOnRestorePolicy) or outer.inner is not None:
            raise ParameterError(
                f"only 'restore:<age>' can wrap another policy, got {head!r}"
            )
        return RotateOnRestorePolicy(outer.max_restored_age, inner=parse_policy(tail))
    kind, _, args = head.partition(":")
    parts = args.split(":") if args else []
    if kind == "never":
        if parts:
            raise ParameterError("'never' takes no arguments")
        return NeverRotatePolicy()
    if kind == "fill":
        if len(parts) != 1:
            raise ParameterError(f"'fill' needs exactly one threshold, got {head!r}")
        return FillThresholdPolicy(_parse_number(parts[0], "threshold", integer=False))
    if kind == "age":
        if len(parts) != 1:
            raise ParameterError(f"'age' needs exactly one op budget, got {head!r}")
        return TimeBasedRecyclingPolicy(int(_parse_number(parts[0], "age", integer=True)))
    if kind == "adaptive":
        if len(parts) not in (1, 2, 3):
            raise ParameterError(
                f"'adaptive' takes <rate>[:<min_queries>[:<window>]], got {head!r}"
            )
        rate = _parse_number(parts[0], "rate", integer=False)
        if len(parts) == 3:
            return AdaptivePositiveRatePolicy(
                rate,
                int(_parse_number(parts[1], "min_queries", integer=True)),
                window=int(_parse_number(parts[2], "window", integer=True)),
            )
        if len(parts) == 2:
            return AdaptivePositiveRatePolicy(
                rate, int(_parse_number(parts[1], "min_queries", integer=True))
            )
        return AdaptivePositiveRatePolicy(rate)
    if kind == "restore":
        if len(parts) != 1:
            raise ParameterError(f"'restore' needs exactly one age, got {head!r}")
        return RotateOnRestorePolicy(int(_parse_number(parts[0], "age", integer=True)))
    raise ParameterError(
        f"unknown rotation policy kind {kind!r}; "
        "known: never, fill, age, adaptive, restore"
    )


class _GuardPolicy(RotationPolicy):
    """Adapter wrapping a legacy guard object (anything with
    ``should_rotate``) so pre-policy callers keep working.

    Its ``spec`` is just the name ``"guard"`` and does *not* parse back
    -- an opaque callable cannot round-trip through the config grammar.
    """

    name = "guard"
    needs_recent = False

    def __init__(self, guard) -> None:
        self.guard = guard

    def evaluate(self, observation: ShardObservation) -> RotationDecision:
        # The observation exposes hamming_weight/fill_ratio attributes,
        # which is all filter_state-style guards read.
        if self.guard.should_rotate(observation):
            return RotationDecision(rotate=True, reason="guard")
        return KEEP


def policy_from_guard(guard) -> RotationPolicy:
    """Map a legacy saturation guard onto the policy layer.

    A plain :class:`~repro.service.admission.SaturationGuard` becomes an
    exact :class:`FillThresholdPolicy`; anything else with a
    ``should_rotate`` is wrapped as-is.
    """
    from repro.service.admission import SaturationGuard

    if isinstance(guard, SaturationGuard):
        return FillThresholdPolicy(guard.threshold)
    return _GuardPolicy(guard)
