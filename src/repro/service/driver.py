"""Adversarial traffic driver: replay paper workloads against the gateway.

Everything before this module attacks a filter object in-process, one
query at a time.  The driver closes the loop to the deployed setting:
several honest clients and an adversary run concurrently as asyncio
tasks against a :class:`~repro.service.gateway.MembershipGateway`, and
the result is reported in service terms -- throughput, rate-limited
calls, rotations, and *attack amplification* (how much better crafted
ghost queries hit than honest false positives).

The adversary model follows the paper: it knows the shard filters' bit
state (white-box) and crafts with :class:`~repro.adversary.pollution.
PollutionAttack` / :class:`~repro.adversary.query.GhostForgery` /
:class:`~repro.adversary.query.LatencyQueryForgery`, but it must route
its items through the same shard router as everyone else.  With the
public :class:`~repro.service.sharding.HashShardPicker` it can aim every
crafted item at one shard; hand the driver a mismatched
``attacker_router`` (the gateway holding a keyed one) and the same
attack sprays shards uselessly.  Crafting re-binds to the *current*
shard filter every chunk, so a rotation silently invalidates the
adversary's accumulated knowledge -- exactly the operational value of
the recycled-filter countermeasure.

Transport is a knob: by default traffic goes straight into the gateway
object (in-process), but any object with the gateway's
``insert_batch``/``query_batch`` signature -- notably
:class:`~repro.service.client.MembershipClient` -- can carry it instead,
so the identical seeded workload replays over TCP against a local or
process-pool backend and the serving overhead becomes measurable.  The
white-box crafting state is always read from the gateway itself: the
paper's adversary knows the filter, however the traffic travels.

The adversary is resource-bounded end to end: hand the driver an
:class:`~repro.adversary.budget.AttackBudget` and all four attack
clients (pollution, ghost, latency, adaptive-ghost) draw from the one
purse -- every brute-force trial is charged by the crafting layer,
every sent item is paced under the request-rate ceiling, and the
wall-clock deadline ends the campaign.  The adaptive-ghost client plays
the Naor-Yogev game: answers from ``query_batch`` feed an
:class:`~repro.adversary.budget.AdaptiveQueryStrategy` whose confirmed
ghosts are re-sent for zero further trials and whose promoted prefixes
concentrate fresh crafting, until a negative answer on a confirmed
ghost betrays a rotation and flushes everything learned.

Rate-limited chunks are *retried* (bounded), never silently skipped:
delivered work, throttled attempts and retry-cap drops are all
accounted separately, so budget arithmetic stays honest.
"""

from __future__ import annotations

import asyncio
import time
from dataclasses import dataclass, field
from typing import Protocol

from repro.adversary.budget import AdaptiveQueryStrategy, AttackBudget
from repro.adversary.pollution import PollutionAttack
from repro.adversary.query import GhostForgery, LatencyQueryForgery
from repro.exceptions import (
    AttackBudgetExhausted,
    CraftingBudgetExceeded,
    ParameterError,
)
from repro.service.admission import RateLimited
from repro.service.gateway import MembershipGateway
from repro.service.sharding import ShardPicker
from repro.service.telemetry import ShardSnapshot, render_snapshots
from repro.urlgen.faker import UrlFactory

__all__ = ["ServiceTransport", "TrafficReport", "AdversarialTrafficDriver", "replay"]


class ServiceTransport(Protocol):
    """Anything that can carry the driver's traffic to a gateway."""

    async def insert_batch(
        self, items: list[str | bytes], client: str = "anon"
    ) -> list[bool]: ...

    async def query_batch(
        self, items: list[str | bytes], client: str = "anon"
    ) -> list[bool]: ...


@dataclass
class TrafficReport:
    """Outcome of one mixed honest/adversarial replay."""

    elapsed_s: float = 0.0
    operations: int = 0
    honest_inserts: int = 0
    honest_queries: int = 0
    rate_limited: int = 0
    #: Items abandoned after the bounded retry cap ran out (explicit
    #: drops -- never silently folded into delivered counts).
    send_dropped: int = 0
    pollution_crafted: int = 0
    pollution_trials: int = 0
    crafting_exhausted: int = 0
    #: Attack clients whose campaign hit the shared AttackBudget's wall
    #: (trials drained or deadline passed), at most once per client --
    #: an adaptive client that loses crafting but keeps replaying its
    #: confirmed pool still counts.
    budget_exhausted: int = 0
    ghost_crafted: int = 0
    ghost_queries: int = 0
    ghost_hits: int = 0
    #: The adaptive-ghost client's campaign (the Naor-Yogev player).
    adaptive_crafted: int = 0
    adaptive_queries: int = 0
    adaptive_hits: int = 0
    adaptive_resends: int = 0
    adaptive_flushes: int = 0
    latency_crafted: int = 0
    latency_queries: int = 0
    latency_probes_touched: int = 0
    probe_queries: int = 0
    probe_false_positives: int = 0
    rotations: int = 0
    #: Rotations a composed policy's cool-down wrapper refused during
    #: this replay (summed across shards; 0 without such a policy).
    rotations_suppressed: int = 0
    #: Per-attack-client spend against the shared budget:
    #: label -> {"trials": n, "requests": r}.  Empty without a budget.
    budget_spend: dict[str, dict[str, int]] = field(default_factory=dict)
    #: Machine-readable rotation reasons -> count (from the lifecycle
    #: policy's decisions during this replay).
    rotation_reasons: dict[str, int] = field(default_factory=dict)
    #: Micro-batch coalescing during the replay window (probe excluded):
    #: client sub-batches submitted, merged backend calls issued.  Both
    #: stay 0 when the gateway runs uncoalesced.
    coalesce_requests: int = 0
    coalesce_flushes: int = 0
    snapshots: list[ShardSnapshot] = field(default_factory=list)

    @property
    def throughput(self) -> float:
        """Gateway operations per wall-clock second of the replay.

        Wall-clock includes the adversary's in-loop crafting time (the
        deployed view of the attack's cost); only the honest-only
        scenario measures pure gateway capacity.
        """
        return self.operations / self.elapsed_s if self.elapsed_s > 0 else 0.0

    @property
    def honest_fp_rate(self) -> float:
        """False-positive rate of never-inserted honest probes."""
        if not self.probe_queries:
            return 0.0
        return self.probe_false_positives / self.probe_queries

    @property
    def ghost_hit_rate(self) -> float:
        """Fraction of crafted ghost queries the service answered present."""
        return self.ghost_hits / self.ghost_queries if self.ghost_queries else 0.0

    @property
    def adaptive_hit_rate(self) -> float:
        """Fraction of adaptive-ghost queries answered present."""
        if not self.adaptive_queries:
            return 0.0
        return self.adaptive_hits / self.adaptive_queries

    def hits_per_kilotrial(self, label: str) -> float:
        """Ghost hits per 1000 budgeted trials for one attack client --
        the study's efficiency figure (0.0 without budget accounting)."""
        spend = self.budget_spend.get(label)
        if not spend or not spend.get("trials"):
            return 0.0
        hits = self.adaptive_hits if label == "adaptive" else self.ghost_hits
        return 1000.0 * hits / spend["trials"]

    def trials_per_sec(self, label: str) -> float:
        """Crafting throughput of one attack client: budgeted brute-force
        trials per wall-clock second of the replay (0.0 without budget
        accounting).  Wall-clock is the whole replay's, so this is the
        deployed rate the defender actually faces, not a kernel bench."""
        spend = self.budget_spend.get(label)
        if not spend or not spend.get("trials") or self.elapsed_s <= 0:
            return 0.0
        return spend["trials"] / self.elapsed_s

    @property
    def coalesce_ratio(self) -> float:
        """Client requests absorbed per merged backend call during the
        replay (0.0 when coalescing was off or saw no traffic)."""
        if not self.coalesce_flushes:
            return 0.0
        return self.coalesce_requests / self.coalesce_flushes

    @property
    def latency_mean_probes(self) -> float:
        """Mean bit positions a short-circuit query walks per crafted
        worst-case-latency item (k for a k-index filter, by design)."""
        if not self.latency_crafted:
            return 0.0
        return self.latency_probes_touched / self.latency_crafted

    @property
    def amplification(self) -> float:
        """Ghost hit rate over the honest FP base rate (floored at one
        probe's resolution so an all-negative probe set stays finite).

        With zero probe queries there is no honest baseline at all, so
        the ratio is undefined; 0.0 is returned (and :meth:`render` says
        so) rather than passing the raw hit rate off as "amplification
        x1-denominated"."""
        if not self.ghost_queries or not self.probe_queries:
            return 0.0
        floor = 1.0 / self.probe_queries
        return self.ghost_hit_rate / max(self.honest_fp_rate, floor)

    def render(self) -> str:
        """Human-readable replay summary plus the per-shard table."""
        amplification = (
            "no probe baseline (amplification undefined)"
            if not self.probe_queries
            else f"honest FP rate {self.honest_fp_rate:.4f}, "
            f"amplification x{self.amplification:,.0f}"
        )
        lines = [
            f"elapsed: {self.elapsed_s:.3f}s  "
            f"ops: {self.operations}  throughput: {self.throughput:,.0f} ops/s",
            f"honest: {self.honest_inserts} inserts, {self.honest_queries} queries"
            f"  rate-limited: {self.rate_limited}"
            f"  dropped after retries: {self.send_dropped}",
            f"pollution: {self.pollution_crafted} crafted "
            f"({self.pollution_trials} trials, {self.crafting_exhausted} exhausted)",
            f"ghosts: {self.ghost_hits}/{self.ghost_queries} hit ({amplification})",
            f"latency queries: {self.latency_queries} sent "
            f"({self.latency_mean_probes:.1f} probes walked/crafted item)",
            f"rotations: {self.rotations}"
            + (
                "  ("
                + ", ".join(f"{reason}: {n}" for reason, n in self.rotation_reasons.items())
                + ")"
                if self.rotation_reasons
                else ""
            )
            + (
                f"  suppressed by cooldown: {self.rotations_suppressed}"
                if self.rotations_suppressed
                else ""
            ),
        ]
        if self.adaptive_queries:
            lines.insert(
                5,
                f"adaptive ghosts: {self.adaptive_hits}/{self.adaptive_queries} hit "
                f"({self.adaptive_resends} re-sent from the confirmed pool, "
                f"{self.adaptive_flushes} rotation flush(es))",
            )
        if self.coalesce_flushes:
            lines.append(
                f"coalesced: {self.coalesce_requests} requests -> "
                f"{self.coalesce_flushes} backend calls "
                f"(x{self.coalesce_ratio:.1f} merge)"
            )
        if self.budget_spend:
            spend = ", ".join(
                f"{label}: {counts['trials']} trials / {counts['requests']} requests"
                + (
                    f" ({self.trials_per_sec(label):,.0f} trials/s)"
                    if self.trials_per_sec(label)
                    else ""
                )
                for label, counts in self.budget_spend.items()
            )
            lines.append(
                f"attack budget spend: {spend}"
                + (
                    f"  (stopped {self.budget_exhausted} client(s))"
                    if self.budget_exhausted
                    else ""
                )
            )
        lines += ["", render_snapshots(self.snapshots)]
        return "\n".join(lines)


class AdversarialTrafficDriver:
    """Concurrent replay of honest + adversarial traffic.

    Parameters
    ----------
    gateway:
        The service under test (always the white-box state source).
    seed:
        Base seed; every client derives its own stream from it.
    attacker_router:
        The adversary's view of the shard router.  Defaults to the
        gateway's own picker (public routing = white-box aiming); pass a
        different picker to model a keyed router the adversary can only
        guess at.
    max_trials:
        Per-item crafting budget for pollution/ghost/latency forging.
    craft_chunk:
        Items crafted per re-bind to the live shard filter; small chunks
        track rotations closely, large ones amortise setup.
    backoff:
        Seconds a client sleeps after a :class:`RateLimited` rejection
        before trying again (keeps throttled clients from spinning).
    transport:
        Carrier of the actual traffic; defaults to the gateway itself
        (in-process).  Pass a :class:`~repro.service.client.
        MembershipClient` to replay the same workload over TCP.
    budget:
        Optional shared :class:`~repro.adversary.budget.AttackBudget`
        all attack clients draw from: crafting charges trials, the send
        path paces and counts requests, the deadline ends the campaign.
        Honest clients and the measurement probe are never charged.
    send_retries:
        Bounded retry cap after :class:`RateLimited` rejections; past
        it a chunk is dropped and counted in ``send_dropped`` (so a
        saturated limiter can never hang the replay, and nothing is
        dropped silently).
    craft_patience:
        How many consecutive *empty* craft chunks an attack client
        tolerates (sleeping ``backoff`` between attempts) before giving
        up on its campaign.  The default ``0`` keeps the historical
        behaviour -- one dry chunk ends the client.  A patient attacker
        (the defence-frontier search models one) sets this positive so
        a rotation-emptied shard does not end the campaign outright:
        crafting resumes once concurrent honest traffic refills the
        bits.  Budget exhaustion is unaffected -- a drained purse ends
        the client whatever the patience.
    coalesce:
        Gateway coalescing override for this driver's replays: ``True``
        enables micro-batch coalescing with driver defaults (200 µs
        window, merge up to the admission burst or 32 items), ``False``
        disables it, ``None`` (default) leaves the gateway exactly as it
        was built.  Lets the ``service`` experiment replay the same
        workload in both modes on one gateway config.
    """

    def __init__(
        self,
        gateway: MembershipGateway,
        seed: int = 0,
        attacker_router: ShardPicker | None = None,
        max_trials: int = 250_000,
        craft_chunk: int = 8,
        backoff: float = 0.01,
        transport: ServiceTransport | None = None,
        budget: AttackBudget | None = None,
        send_retries: int = 25,
        craft_patience: int = 0,
        coalesce: bool | None = None,
    ) -> None:
        if craft_chunk <= 0:
            raise ParameterError("craft_chunk must be positive")
        if send_retries < 0:
            raise ParameterError("send_retries must be non-negative")
        if craft_patience < 0:
            raise ParameterError("craft_patience must be non-negative")
        if coalesce is True:
            burst = gateway.max_batch
            gateway.configure_coalescing(
                window_us=200,
                max_batch=min(32, burst) if burst is not None else 32,
            )
        elif coalesce is False:
            gateway.configure_coalescing(0, 0)
        self.gateway = gateway
        self.transport: ServiceTransport = transport if transport is not None else gateway
        self.seed = seed
        self.attacker_router = attacker_router or gateway.picker
        self.max_trials = max_trials
        self.craft_chunk = craft_chunk
        self.backoff = backoff
        self.budget = budget
        self.send_retries = send_retries
        self.craft_patience = craft_patience

    # ------------------------------------------------------------------
    # Adversarial crafting
    # ------------------------------------------------------------------

    def _routed(self, candidates, shard_id: int):
        """Filter any candidate stream down to URLs the *attacker's*
        router maps to ``shard_id``."""
        pick = self.attacker_router.pick
        shards = self.gateway.shards
        return (url for url in candidates if pick(url, shards) == shard_id)

    def _routed_candidates(self, factory: UrlFactory, shard_id: int):
        """Candidate URLs the *attacker's* router maps to ``shard_id``."""
        return self._routed(factory.candidate_stream(), shard_id)

    def craft_pollution(
        self, shard_id: int, count: int, report: TrafficReport, seed_offset: int = 0
    ) -> list[str]:
        """Craft up to ``count`` polluting items aimed at ``shard_id``,
        judged against the shard's *current* filter state."""
        factory = UrlFactory(seed=self.seed ^ 0xA77AC3 ^ seed_offset)
        attack = PollutionAttack(
            self.gateway.shard_view(shard_id),
            candidates=self._routed_candidates(factory, shard_id),
            max_trials=self.max_trials,
            budget=self.budget,
        )
        items: list[str] = []
        for _ in range(count):
            try:
                result = attack.craft_one()
            except CraftingBudgetExceeded as exc:
                report.crafting_exhausted += 1
                report.pollution_trials += exc.trials
                break
            except AttackBudgetExhausted as exc:
                # Trials spent by the aborted search were charged to the
                # budget, so the report must see them too -- the two
                # ledgers stay reconcilable.
                report.pollution_trials += exc.trials
                # Items crafted before the purse ran dry are paid for;
                # return them for sending.  An empty batch propagates so
                # the attack loop can record the stop.
                if not items:
                    raise
                break
            items.append(result.item)
            report.pollution_trials += result.trials
        report.pollution_crafted += len(items)
        return items

    def craft_ghosts(
        self, shard_id: int, count: int, report: TrafficReport, seed_offset: int = 0
    ) -> list[str]:
        """Craft up to ``count`` ghost (false-positive) queries for
        ``shard_id``'s current filter."""
        factory = UrlFactory(seed=self.seed ^ 0x6057 ^ seed_offset)
        forgery = GhostForgery(
            self.gateway.shard_view(shard_id),
            candidates=self._routed_candidates(factory, shard_id),
            max_trials=self.max_trials,
            budget=self.budget,
        )
        items: list[str] = []
        for _ in range(count):
            try:
                items.append(forgery.craft_one().item)
            except CraftingBudgetExceeded:
                report.crafting_exhausted += 1
                break
            except AttackBudgetExhausted:
                if not items:
                    raise
                break
        report.ghost_crafted += len(items)
        return items

    def craft_adaptive_ghosts(
        self,
        shard_id: int,
        count: int,
        strategy: AdaptiveQueryStrategy,
        report: TrafficReport,
        seed_offset: int = 0,
    ) -> list[str]:
        """Craft up to ``count`` fresh ghosts with the adaptive
        strategy's candidate stream (concentrated on promoted prefixes)."""
        factory = UrlFactory(seed=self.seed ^ 0xADA9 ^ seed_offset)
        forgery = GhostForgery(
            self.gateway.shard_view(shard_id),
            candidates=self._routed(strategy.candidates(factory), shard_id),
            max_trials=self.max_trials,
            budget=self.budget,
            label="adaptive",
        )
        items: list[str] = []
        for _ in range(count):
            try:
                items.append(forgery.craft_one().item)
            except CraftingBudgetExceeded:
                report.crafting_exhausted += 1
                break
            except AttackBudgetExhausted:
                if not items:
                    raise
                break
        report.adaptive_crafted += len(items)
        return items

    def craft_latency_queries(
        self, shard_id: int, count: int, report: TrafficReport, seed_offset: int = 0
    ) -> list[str]:
        """Craft up to ``count`` worst-case-latency queries (k-1 set bits
        then one unset) for ``shard_id``'s current filter."""
        view = self.gateway.shard_view(shard_id)
        factory = UrlFactory(seed=self.seed ^ 0x1A7EC1 ^ seed_offset)
        forgery = LatencyQueryForgery(
            view,
            candidates=self._routed_candidates(factory, shard_id),
            max_trials=self.max_trials,
            budget=self.budget,
        )
        items: list[str] = []
        for _ in range(count):
            try:
                item = forgery.craft_one().item
            except CraftingBudgetExceeded:
                report.crafting_exhausted += 1
                break
            except AttackBudgetExhausted:
                if not items:
                    raise
                break
            items.append(item)
            report.latency_probes_touched += forgery.probes_touched(view.indexes(item))
        report.latency_crafted += len(items)
        return items

    # ------------------------------------------------------------------
    # Client coroutines
    # ------------------------------------------------------------------

    async def _deliver(
        self,
        send,
        items: list[str],
        report: TrafficReport,
        label: str | None = None,
    ) -> list[bool] | None:
        """Carry one chunk over the transport, retrying on admission.

        A :class:`RateLimited` rejection backs off and *retries the same
        chunk* -- rate-limited traffic used to be silently dropped while
        still counted as delivered, which made any budget arithmetic
        wrong.  The retry cap (``send_retries``) bounds the loop so a
        saturated limiter cannot hang the replay; past it the chunk is
        dropped explicitly into ``report.send_dropped`` and ``None`` is
        returned.  Attack chunks (``label`` set) are paced and counted
        against the shared budget per attempt -- a rejected request was
        still sent.
        """
        for _ in range(self.send_retries + 1):
            if label is not None and self.budget is not None:
                await self.budget.pace(len(items), label)
            try:
                return await send(items)
            except RateLimited:
                report.rate_limited += len(items)
                await asyncio.sleep(self.backoff)
        report.send_dropped += len(items)
        return None

    async def _honest_client(
        self,
        index: int,
        inserts: int,
        queries: int,
        batch: int,
        report: TrafficReport,
    ) -> None:
        """Insert fresh URLs, then query a mix of known and fresh ones."""
        transport = self.transport
        client = f"honest-{index}"
        factory = UrlFactory(seed=self.seed + 7919 * (index + 1))
        inserted: list[str] = []
        attempted = 0
        while attempted < inserts:
            size = min(batch, inserts - attempted)
            chunk = factory.urls(size)
            answers = await self._deliver(
                lambda items: transport.insert_batch(items, client=client),
                chunk,
                report,
            )
            if answers is not None:
                inserted.extend(chunk)
                report.honest_inserts += size
                report.operations += size
            attempted += size
            await asyncio.sleep(0)
        sent = 0
        while sent < queries:
            size = min(batch, queries - sent)
            half = size // 2
            known = inserted[sent % max(len(inserted), 1) :][:half] if inserted else []
            fresh = factory.urls(size - len(known))
            chunk = known + fresh
            answers = await self._deliver(
                lambda items: transport.query_batch(items, client=client),
                chunk,
                report,
            )
            if answers is not None:
                report.honest_queries += len(chunk)
                report.operations += len(chunk)
            sent += size
            await asyncio.sleep(0)

    async def _attack_loop(
        self,
        count: int,
        report: TrafficReport,
        craft,
        send,
        on_sent=None,
        label: str = "attack",
    ) -> None:
        """Shared craft/send/backoff chunk loop of every attack client.

        ``craft(size, chunk_index)`` re-binds to the live shard filter
        each chunk (so rotations reset the adversary's knowledge),
        ``send(items)`` carries one crafted chunk over the transport
        (retried on admission, paced under the budget's rate ceiling),
        and ``on_sent(items, answers)`` does the per-attack accounting;
        the admitted-operation / rate-limited / budget bookkeeping is
        identical for all of them and lives here once.  A drained
        :class:`~repro.adversary.budget.AttackBudget` (trials or
        deadline) ends the client, is counted once in
        ``report.budget_exhausted``, and is reported back (``True``) so
        a caller that already absorbed an earlier budget wall can avoid
        counting the same client twice.
        """
        chunk = self.craft_chunk
        if self.gateway.max_batch is not None:
            chunk = min(chunk, self.gateway.max_batch)
        sent = 0
        chunk_index = 0
        dry_chunks = 0
        while sent < count:
            size = min(chunk, count - sent)
            try:
                items = craft(size, chunk_index)
            except AttackBudgetExhausted:
                report.budget_exhausted += 1
                return True
            chunk_index += 1
            if not items:
                # A dry chunk usually means the shard just rotated out
                # from under the client (nothing to forge against, pool
                # flushed).  A patient attacker waits for the concurrent
                # traffic to refill the bits and tries again, up to
                # ``craft_patience`` consecutive dry chunks.
                dry_chunks += 1
                if dry_chunks > self.craft_patience:
                    break
                await asyncio.sleep(self.backoff)
                continue
            dry_chunks = 0
            try:
                answers = await self._deliver(send, items, report, label=label)
            except AttackBudgetExhausted:
                report.budget_exhausted += 1
                return True
            if answers is not None:
                if on_sent is not None:
                    on_sent(items, answers)
                report.operations += len(items)
            sent += len(items)
            await asyncio.sleep(0)
        return False

    async def _pollution_client(
        self, target_shard: int, count: int, report: TrafficReport
    ) -> None:
        """Craft-and-insert loop aimed at one shard."""
        await self._attack_loop(
            count,
            report,
            craft=lambda size, index: self.craft_pollution(
                target_shard, size, report, seed_offset=index
            ),
            send=lambda items: self.transport.insert_batch(items, client="attacker"),
            label="pollution",
        )

    async def _wait_for_fill(self, shard_id: int, min_fill: float) -> None:
        """Idle (bounded) until the shard is worth forging against.

        Forging cost per item is ~``fill^-k`` trials, so crafting against
        a near-empty shard would burn the whole trial budget; honest and
        pollution traffic raise the fill first.  The 5 s bound is real
        wall clock (``time.monotonic``): each iteration's off-thread
        state probe can take arbitrarily long on a busy process backend,
        so counting iterations would stretch the bound unboundedly.
        """
        deadline = time.monotonic() + 5.0
        while time.monotonic() < deadline:
            if self.budget is not None and self.budget.expired:
                break  # campaign over: nothing left to wait for
            # Off-thread: a process backend answers over a pipe that may
            # be busy with an in-flight batch, and this poll must not
            # stall the event loop (and with it, that very batch).
            state = await asyncio.to_thread(self.gateway.shard_state, shard_id)
            if state.fill_ratio >= min_fill:
                # The off-thread probe yielded the loop, so a concurrent
                # client may have tipped the shard over its rotation
                # threshold while this coroutine waited to resume -- the
                # reading above can be stale.  Confirm synchronously:
                # between this check and the caller's craft there is no
                # await point, so the fill the caller forges against is
                # the fill confirmed here.
                if self.gateway.shard_state(shard_id).fill_ratio >= min_fill:
                    break
                continue
            await asyncio.sleep(0.005)

    async def _ghost_client(
        self,
        target_shard: int,
        count: int,
        min_fill: float,
        report: TrafficReport,
    ) -> None:
        """Fire crafted false-positive queries once the shard fills."""
        await self._wait_for_fill(target_shard, min_fill)

        def on_sent(items: list[str], answers: list[bool]) -> None:
            report.ghost_queries += len(items)
            report.ghost_hits += sum(answers)

        await self._attack_loop(
            count,
            report,
            craft=lambda size, index: self.craft_ghosts(
                target_shard, size, report, seed_offset=index
            ),
            send=lambda items: self.transport.query_batch(items, client="ghost"),
            on_sent=on_sent,
            label="ghost",
        )

    async def _adaptive_ghost_client(
        self,
        target_shard: int,
        count: int,
        min_fill: float,
        report: TrafficReport,
    ) -> None:
        """The Naor-Yogev player: ghost queries with answer feedback.

        Every answer flows into an :class:`~repro.adversary.budget.
        AdaptiveQueryStrategy`: confirmed ghosts are re-sent (zero
        further trials per hit), their prefixes concentrate fresh
        crafting, and a negative answer on a confirmed ghost (a
        rotation's fingerprint) flushes the learned state.  Under a
        trial-bounded budget this client keeps milking its confirmed
        pool after crafting becomes unaffordable -- exactly the
        adaptive advantage the static ghost client lacks.
        """
        await self._wait_for_fill(target_shard, min_fill)
        strategy = AdaptiveQueryStrategy(seed=self.seed ^ 0xADA7)
        trials_gone = False

        def craft(size: int, index: int) -> list[str]:
            nonlocal trials_gone
            # Keep discovering while trials last (at least a quarter of
            # each chunk fresh), otherwise replay the confirmed pool.
            fresh_want = 0 if trials_gone else max(1, size // 4)
            resend = strategy.replay_items(size - fresh_want)
            fresh: list[str] = []
            want = size - len(resend)
            if want and not trials_gone:
                try:
                    fresh = self.craft_adaptive_ghosts(
                        target_shard, want, strategy, report, seed_offset=index
                    )
                except AttackBudgetExhausted:
                    # Latch and keep replaying; the client is counted as
                    # budget-hit once, after the loop (never double-
                    # counted if the deadline later ends the loop too).
                    trials_gone = True
                if len(fresh) < want:
                    # Crafting came up short: top the chunk up from the
                    # pool rather than shrinking the request stream.
                    resend += strategy.replay_items(want - len(fresh))
            report.adaptive_resends += len(resend)
            return resend + fresh

        def on_sent(items: list[str], answers: list[bool]) -> None:
            report.adaptive_queries += len(items)
            report.adaptive_hits += sum(answers)
            strategy.observe(items, answers)

        stopped = await self._attack_loop(
            count,
            report,
            craft=craft,
            send=lambda items: self.transport.query_batch(items, client="adaptive"),
            on_sent=on_sent,
            label="adaptive",
        )
        if trials_gone and not stopped:
            # Crafting hit the wall even though pool replay carried on.
            report.budget_exhausted += 1
        report.adaptive_flushes += strategy.flushes

    async def _latency_client(
        self,
        target_shard: int,
        count: int,
        min_fill: float,
        report: TrafficReport,
    ) -> None:
        """Fire worst-case-latency negative queries (paper Section 4.2).

        Each crafted item walks a short-circuiting query through k-1 set
        bits before the final miss -- the per-lookup worst case.  The
        effect is read off the target shard's query latency histogram
        (p99) in the per-shard snapshot table.
        """
        await self._wait_for_fill(target_shard, min_fill)

        def on_sent(items: list[str], answers: list[bool]) -> None:
            report.latency_queries += len(items)

        await self._attack_loop(
            count,
            report,
            craft=lambda size, index: self.craft_latency_queries(
                target_shard, size, report, seed_offset=index
            ),
            send=lambda items: self.transport.query_batch(items, client="latency"),
            on_sent=on_sent,
            label="latency",
        )

    # ------------------------------------------------------------------
    # Entry points
    # ------------------------------------------------------------------

    async def run(
        self,
        honest_clients: int = 3,
        honest_inserts: int = 300,
        honest_queries: int = 300,
        batch: int = 16,
        pollution_inserts: int = 120,
        ghost_queries: int = 32,
        ghost_min_fill: float = 0.3,
        adaptive_ghost_queries: int = 0,
        adaptive_min_fill: float = 0.3,
        latency_queries: int = 0,
        latency_min_fill: float = 0.3,
        target_shard: int = 0,
        probe_queries: int = 400,
    ) -> TrafficReport:
        """Replay the full mixed workload concurrently and report.

        Honest clients and the four attack clients -- the pollution
        attacker, the (static) ghost forger, the worst-case-latency
        forger and the adaptive ghost campaign -- all run as parallel
        tasks, sharing one :class:`~repro.adversary.budget.AttackBudget`
        when the driver holds one; afterwards a quiet probe of fresh
        URLs measures the service-wide honest false-positive rate so the
        report can state the attack amplification.
        """
        if (
            honest_clients < 0
            or pollution_inserts < 0
            or ghost_queries < 0
            or adaptive_ghost_queries < 0
            or latency_queries < 0
        ):
            raise ParameterError("workload sizes must be non-negative")
        # Batches beyond the admission burst can never be admitted; the
        # gateway rejects them outright, so well-behaved clients clamp.
        if self.gateway.max_batch is not None:
            batch = min(batch, self.gateway.max_batch)
        report = TrafficReport()
        rotations_before = self.gateway.rotations
        suppressed_before = sum(life.suppressed for life in self.gateway.lifecycle)
        coalesce_stats = self.gateway.coalesce_telemetry
        coalesce_before = (coalesce_stats.requests, coalesce_stats.flushes)
        per_client_inserts = honest_inserts // max(honest_clients, 1)
        per_client_queries = honest_queries // max(honest_clients, 1)
        tasks = [
            self._honest_client(
                i, per_client_inserts, per_client_queries, batch, report
            )
            for i in range(honest_clients)
        ]
        if pollution_inserts:
            tasks.append(
                self._pollution_client(target_shard, pollution_inserts, report)
            )
        if ghost_queries:
            tasks.append(
                self._ghost_client(target_shard, ghost_queries, ghost_min_fill, report)
            )
        if adaptive_ghost_queries:
            tasks.append(
                self._adaptive_ghost_client(
                    target_shard, adaptive_ghost_queries, adaptive_min_fill, report
                )
            )
        if latency_queries:
            tasks.append(
                self._latency_client(
                    target_shard, latency_queries, latency_min_fill, report
                )
            )
        start = time.perf_counter()
        await asyncio.gather(*tasks)
        # Throughput covers the concurrent replay only; the probe below
        # is measurement, not load, so it stays outside the clock.
        report.elapsed_s = time.perf_counter() - start
        # Coalescing deltas close with the clock, so the ratio describes
        # the measured window, not the probe's uncontended tail.
        report.coalesce_requests = coalesce_stats.requests - coalesce_before[0]
        report.coalesce_flushes = coalesce_stats.flushes - coalesce_before[1]
        # Quiet probe: fresh, never-inserted URLs through the whole service.
        # The probe backs off politely when admission pushes back, so the
        # FP measurement completes even under a strict rate limit.
        probe_factory = UrlFactory(seed=self.seed ^ 0xF0F0F0)
        for offset in range(0, probe_queries, batch):
            chunk = probe_factory.urls(min(batch, probe_queries - offset))
            for _ in range(50):
                try:
                    answers = await self.transport.query_batch(chunk, client="probe")
                except RateLimited:
                    await asyncio.sleep(0.02)
                    continue
                report.probe_queries += len(chunk)
                report.probe_false_positives += sum(answers)
                break
        report.rotations = self.gateway.rotations - rotations_before
        report.rotations_suppressed = (
            sum(life.suppressed for life in self.gateway.lifecycle)
            - suppressed_before
        )
        for event in self.gateway.rotation_log[rotations_before:]:
            key = event.reason or event.policy or "unknown"
            report.rotation_reasons[key] = report.rotation_reasons.get(key, 0) + 1
        report.snapshots = self.gateway.snapshot()
        if self.budget is not None:
            report.budget_spend = {
                label: {"trials": spend.trials, "requests": spend.requests}
                for label, spend in self.budget.spend_by_label().items()
            }
        return report


def replay(
    gateway: MembershipGateway,
    transport: ServiceTransport | None = None,
    **workload,
) -> TrafficReport:
    """Synchronous convenience wrapper around
    :meth:`AdversarialTrafficDriver.run` (fresh event loop)."""
    driver = AdversarialTrafficDriver(gateway, transport=transport)
    return asyncio.run(driver.run(**workload))
