"""Adversarial traffic driver: replay paper workloads against the gateway.

Everything before this module attacks a filter object in-process, one
query at a time.  The driver closes the loop to the deployed setting:
several honest clients and an adversary run concurrently as asyncio
tasks against a :class:`~repro.service.gateway.MembershipGateway`, and
the result is reported in service terms -- throughput, rate-limited
calls, rotations, and *attack amplification* (how much better crafted
ghost queries hit than honest false positives).

The adversary model follows the paper: it knows the shard filters' bit
state (white-box) and crafts with :class:`~repro.adversary.pollution.
PollutionAttack` / :class:`~repro.adversary.query.GhostForgery` /
:class:`~repro.adversary.query.LatencyQueryForgery`, but it must route
its items through the same shard router as everyone else.  With the
public :class:`~repro.service.sharding.HashShardPicker` it can aim every
crafted item at one shard; hand the driver a mismatched
``attacker_router`` (the gateway holding a keyed one) and the same
attack sprays shards uselessly.  Crafting re-binds to the *current*
shard filter every chunk, so a rotation silently invalidates the
adversary's accumulated knowledge -- exactly the operational value of
the recycled-filter countermeasure.

Transport is a knob: by default traffic goes straight into the gateway
object (in-process), but any object with the gateway's
``insert_batch``/``query_batch`` signature -- notably
:class:`~repro.service.client.MembershipClient` -- can carry it instead,
so the identical seeded workload replays over TCP against a local or
process-pool backend and the serving overhead becomes measurable.  The
white-box crafting state is always read from the gateway itself: the
paper's adversary knows the filter, however the traffic travels.
"""

from __future__ import annotations

import asyncio
import time
from dataclasses import dataclass, field
from typing import Protocol

from repro.adversary.pollution import PollutionAttack
from repro.adversary.query import GhostForgery, LatencyQueryForgery
from repro.exceptions import CraftingBudgetExceeded, ParameterError
from repro.service.admission import RateLimited
from repro.service.gateway import MembershipGateway
from repro.service.sharding import ShardPicker
from repro.service.telemetry import ShardSnapshot, render_snapshots
from repro.urlgen.faker import UrlFactory

__all__ = ["ServiceTransport", "TrafficReport", "AdversarialTrafficDriver", "replay"]


class ServiceTransport(Protocol):
    """Anything that can carry the driver's traffic to a gateway."""

    async def insert_batch(
        self, items: list[str | bytes], client: str = "anon"
    ) -> list[bool]: ...

    async def query_batch(
        self, items: list[str | bytes], client: str = "anon"
    ) -> list[bool]: ...


@dataclass
class TrafficReport:
    """Outcome of one mixed honest/adversarial replay."""

    elapsed_s: float = 0.0
    operations: int = 0
    honest_inserts: int = 0
    honest_queries: int = 0
    rate_limited: int = 0
    pollution_crafted: int = 0
    pollution_trials: int = 0
    crafting_exhausted: int = 0
    ghost_crafted: int = 0
    ghost_queries: int = 0
    ghost_hits: int = 0
    latency_crafted: int = 0
    latency_queries: int = 0
    latency_probes_touched: int = 0
    probe_queries: int = 0
    probe_false_positives: int = 0
    rotations: int = 0
    #: Machine-readable rotation reasons -> count (from the lifecycle
    #: policy's decisions during this replay).
    rotation_reasons: dict[str, int] = field(default_factory=dict)
    snapshots: list[ShardSnapshot] = field(default_factory=list)

    @property
    def throughput(self) -> float:
        """Gateway operations per wall-clock second of the replay.

        Wall-clock includes the adversary's in-loop crafting time (the
        deployed view of the attack's cost); only the honest-only
        scenario measures pure gateway capacity.
        """
        return self.operations / self.elapsed_s if self.elapsed_s > 0 else 0.0

    @property
    def honest_fp_rate(self) -> float:
        """False-positive rate of never-inserted honest probes."""
        if not self.probe_queries:
            return 0.0
        return self.probe_false_positives / self.probe_queries

    @property
    def ghost_hit_rate(self) -> float:
        """Fraction of crafted ghost queries the service answered present."""
        return self.ghost_hits / self.ghost_queries if self.ghost_queries else 0.0

    @property
    def latency_mean_probes(self) -> float:
        """Mean bit positions a short-circuit query walks per crafted
        worst-case-latency item (k for a k-index filter, by design)."""
        if not self.latency_crafted:
            return 0.0
        return self.latency_probes_touched / self.latency_crafted

    @property
    def amplification(self) -> float:
        """Ghost hit rate over the honest FP base rate (floored at one
        probe's resolution so an all-negative probe set stays finite)."""
        if not self.ghost_queries:
            return 0.0
        floor = 1.0 / self.probe_queries if self.probe_queries else 1.0
        return self.ghost_hit_rate / max(self.honest_fp_rate, floor)

    def render(self) -> str:
        """Human-readable replay summary plus the per-shard table."""
        lines = [
            f"elapsed: {self.elapsed_s:.3f}s  "
            f"ops: {self.operations}  throughput: {self.throughput:,.0f} ops/s",
            f"honest: {self.honest_inserts} inserts, {self.honest_queries} queries"
            f"  rate-limited: {self.rate_limited}",
            f"pollution: {self.pollution_crafted} crafted "
            f"({self.pollution_trials} trials, {self.crafting_exhausted} exhausted)",
            f"ghosts: {self.ghost_hits}/{self.ghost_queries} hit "
            f"(honest FP rate {self.honest_fp_rate:.4f}, "
            f"amplification x{self.amplification:,.0f})",
            f"latency queries: {self.latency_queries} sent "
            f"({self.latency_mean_probes:.1f} probes walked/crafted item)",
            f"rotations: {self.rotations}"
            + (
                "  ("
                + ", ".join(f"{reason}: {n}" for reason, n in self.rotation_reasons.items())
                + ")"
                if self.rotation_reasons
                else ""
            ),
            "",
            render_snapshots(self.snapshots),
        ]
        return "\n".join(lines)


class AdversarialTrafficDriver:
    """Concurrent replay of honest + adversarial traffic.

    Parameters
    ----------
    gateway:
        The service under test (always the white-box state source).
    seed:
        Base seed; every client derives its own stream from it.
    attacker_router:
        The adversary's view of the shard router.  Defaults to the
        gateway's own picker (public routing = white-box aiming); pass a
        different picker to model a keyed router the adversary can only
        guess at.
    max_trials:
        Per-item crafting budget for pollution/ghost/latency forging.
    craft_chunk:
        Items crafted per re-bind to the live shard filter; small chunks
        track rotations closely, large ones amortise setup.
    backoff:
        Seconds a client sleeps after a :class:`RateLimited` rejection
        before trying again (keeps throttled clients from spinning).
    transport:
        Carrier of the actual traffic; defaults to the gateway itself
        (in-process).  Pass a :class:`~repro.service.client.
        MembershipClient` to replay the same workload over TCP.
    """

    def __init__(
        self,
        gateway: MembershipGateway,
        seed: int = 0,
        attacker_router: ShardPicker | None = None,
        max_trials: int = 250_000,
        craft_chunk: int = 8,
        backoff: float = 0.01,
        transport: ServiceTransport | None = None,
    ) -> None:
        if craft_chunk <= 0:
            raise ParameterError("craft_chunk must be positive")
        self.gateway = gateway
        self.transport: ServiceTransport = transport if transport is not None else gateway
        self.seed = seed
        self.attacker_router = attacker_router or gateway.picker
        self.max_trials = max_trials
        self.craft_chunk = craft_chunk
        self.backoff = backoff

    # ------------------------------------------------------------------
    # Adversarial crafting
    # ------------------------------------------------------------------

    def _routed_candidates(self, factory: UrlFactory, shard_id: int):
        """Candidate URLs the *attacker's* router maps to ``shard_id``."""
        pick = self.attacker_router.pick
        shards = self.gateway.shards
        return (
            url for url in factory.candidate_stream() if pick(url, shards) == shard_id
        )

    def craft_pollution(
        self, shard_id: int, count: int, report: TrafficReport, seed_offset: int = 0
    ) -> list[str]:
        """Craft up to ``count`` polluting items aimed at ``shard_id``,
        judged against the shard's *current* filter state."""
        factory = UrlFactory(seed=self.seed ^ 0xA77AC3 ^ seed_offset)
        attack = PollutionAttack(
            self.gateway.shard_view(shard_id),
            candidates=self._routed_candidates(factory, shard_id),
            max_trials=self.max_trials,
        )
        items: list[str] = []
        for _ in range(count):
            try:
                result = attack.craft_one()
            except CraftingBudgetExceeded as exc:
                report.crafting_exhausted += 1
                report.pollution_trials += exc.trials
                break
            items.append(result.item)
            report.pollution_trials += result.trials
        report.pollution_crafted += len(items)
        return items

    def craft_ghosts(
        self, shard_id: int, count: int, report: TrafficReport, seed_offset: int = 0
    ) -> list[str]:
        """Craft up to ``count`` ghost (false-positive) queries for
        ``shard_id``'s current filter."""
        factory = UrlFactory(seed=self.seed ^ 0x6057 ^ seed_offset)
        forgery = GhostForgery(
            self.gateway.shard_view(shard_id),
            candidates=self._routed_candidates(factory, shard_id),
            max_trials=self.max_trials,
        )
        items: list[str] = []
        for _ in range(count):
            try:
                items.append(forgery.craft_one().item)
            except CraftingBudgetExceeded:
                report.crafting_exhausted += 1
                break
        report.ghost_crafted += len(items)
        return items

    def craft_latency_queries(
        self, shard_id: int, count: int, report: TrafficReport, seed_offset: int = 0
    ) -> list[str]:
        """Craft up to ``count`` worst-case-latency queries (k-1 set bits
        then one unset) for ``shard_id``'s current filter."""
        view = self.gateway.shard_view(shard_id)
        factory = UrlFactory(seed=self.seed ^ 0x1A7EC1 ^ seed_offset)
        forgery = LatencyQueryForgery(
            view,
            candidates=self._routed_candidates(factory, shard_id),
            max_trials=self.max_trials,
        )
        items: list[str] = []
        for _ in range(count):
            try:
                item = forgery.craft_one().item
            except CraftingBudgetExceeded:
                report.crafting_exhausted += 1
                break
            items.append(item)
            report.latency_probes_touched += forgery.probes_touched(view.indexes(item))
        report.latency_crafted += len(items)
        return items

    # ------------------------------------------------------------------
    # Client coroutines
    # ------------------------------------------------------------------

    async def _honest_client(
        self,
        index: int,
        inserts: int,
        queries: int,
        batch: int,
        report: TrafficReport,
    ) -> None:
        """Insert fresh URLs, then query a mix of known and fresh ones."""
        transport = self.transport
        client = f"honest-{index}"
        factory = UrlFactory(seed=self.seed + 7919 * (index + 1))
        inserted: list[str] = []
        attempted = 0
        while attempted < inserts:
            size = min(batch, inserts - attempted)
            chunk = factory.urls(size)
            try:
                await transport.insert_batch(chunk, client=client)
                inserted.extend(chunk)
                report.honest_inserts += size
                report.operations += size
            except RateLimited:
                # Dropped, not retried: progress must not depend on
                # admission, so a throttled client sheds load instead
                # of queueing it.
                report.rate_limited += size
                await asyncio.sleep(self.backoff)
            attempted += size
            await asyncio.sleep(0)
        sent = 0
        while sent < queries:
            size = min(batch, queries - sent)
            half = size // 2
            known = inserted[sent % max(len(inserted), 1) :][:half] if inserted else []
            fresh = factory.urls(size - len(known))
            chunk = known + fresh
            try:
                await transport.query_batch(chunk, client=client)
                report.honest_queries += len(chunk)
                report.operations += len(chunk)
            except RateLimited:
                report.rate_limited += len(chunk)
                await asyncio.sleep(self.backoff)
            sent += size
            await asyncio.sleep(0)

    async def _attack_loop(
        self,
        count: int,
        report: TrafficReport,
        craft,
        send,
        on_sent=None,
    ) -> None:
        """Shared craft/send/backoff chunk loop of every attack client.

        ``craft(size, chunk_index)`` re-binds to the live shard filter
        each chunk (so rotations reset the adversary's knowledge),
        ``send(items)`` carries one crafted chunk over the transport, and
        ``on_sent(items, answers)`` does the per-attack accounting; the
        admitted-operation and rate-limited bookkeeping is identical for
        all of them and lives here once.
        """
        chunk = self.craft_chunk
        if self.gateway.max_batch is not None:
            chunk = min(chunk, self.gateway.max_batch)
        sent = 0
        chunk_index = 0
        while sent < count:
            size = min(chunk, count - sent)
            items = craft(size, chunk_index)
            chunk_index += 1
            if not items:
                break
            try:
                answers = await send(items)
                if on_sent is not None:
                    on_sent(items, answers)
                report.operations += len(items)
            except RateLimited:
                report.rate_limited += len(items)
                await asyncio.sleep(self.backoff)
            sent += len(items)
            await asyncio.sleep(0)

    async def _pollution_client(
        self, target_shard: int, count: int, report: TrafficReport
    ) -> None:
        """Craft-and-insert loop aimed at one shard."""
        await self._attack_loop(
            count,
            report,
            craft=lambda size, index: self.craft_pollution(
                target_shard, size, report, seed_offset=index
            ),
            send=lambda items: self.transport.insert_batch(items, client="attacker"),
        )

    async def _wait_for_fill(self, shard_id: int, min_fill: float) -> None:
        """Idle (bounded) until the shard is worth forging against.

        Forging cost per item is ~``fill^-k`` trials, so crafting against
        a near-empty shard would burn the whole trial budget; honest and
        pollution traffic raise the fill first.
        """
        waited = 0.0
        while waited < 5.0:
            # Off-thread: a process backend answers over a pipe that may
            # be busy with an in-flight batch, and this poll must not
            # stall the event loop (and with it, that very batch).
            state = await asyncio.to_thread(self.gateway.shard_state, shard_id)
            if state.fill_ratio >= min_fill:
                break
            await asyncio.sleep(0.005)
            waited += 0.005

    async def _ghost_client(
        self,
        target_shard: int,
        count: int,
        min_fill: float,
        report: TrafficReport,
    ) -> None:
        """Fire crafted false-positive queries once the shard fills."""
        await self._wait_for_fill(target_shard, min_fill)

        def on_sent(items: list[str], answers: list[bool]) -> None:
            report.ghost_queries += len(items)
            report.ghost_hits += sum(answers)

        await self._attack_loop(
            count,
            report,
            craft=lambda size, index: self.craft_ghosts(
                target_shard, size, report, seed_offset=index
            ),
            send=lambda items: self.transport.query_batch(items, client="ghost"),
            on_sent=on_sent,
        )

    async def _latency_client(
        self,
        target_shard: int,
        count: int,
        min_fill: float,
        report: TrafficReport,
    ) -> None:
        """Fire worst-case-latency negative queries (paper Section 4.2).

        Each crafted item walks a short-circuiting query through k-1 set
        bits before the final miss -- the per-lookup worst case.  The
        effect is read off the target shard's query latency histogram
        (p99) in the per-shard snapshot table.
        """
        await self._wait_for_fill(target_shard, min_fill)

        def on_sent(items: list[str], answers: list[bool]) -> None:
            report.latency_queries += len(items)

        await self._attack_loop(
            count,
            report,
            craft=lambda size, index: self.craft_latency_queries(
                target_shard, size, report, seed_offset=index
            ),
            send=lambda items: self.transport.query_batch(items, client="latency"),
            on_sent=on_sent,
        )

    # ------------------------------------------------------------------
    # Entry points
    # ------------------------------------------------------------------

    async def run(
        self,
        honest_clients: int = 3,
        honest_inserts: int = 300,
        honest_queries: int = 300,
        batch: int = 16,
        pollution_inserts: int = 120,
        ghost_queries: int = 32,
        ghost_min_fill: float = 0.3,
        latency_queries: int = 0,
        latency_min_fill: float = 0.3,
        target_shard: int = 0,
        probe_queries: int = 400,
    ) -> TrafficReport:
        """Replay the full mixed workload concurrently and report.

        Honest clients, the pollution attacker, the ghost forger and the
        worst-case-latency forger all run as parallel tasks; afterwards a
        quiet probe of fresh URLs measures the service-wide honest
        false-positive rate so the report can state the attack
        amplification.
        """
        if (
            honest_clients < 0
            or pollution_inserts < 0
            or ghost_queries < 0
            or latency_queries < 0
        ):
            raise ParameterError("workload sizes must be non-negative")
        # Batches beyond the admission burst can never be admitted; the
        # gateway rejects them outright, so well-behaved clients clamp.
        if self.gateway.max_batch is not None:
            batch = min(batch, self.gateway.max_batch)
        report = TrafficReport()
        rotations_before = self.gateway.rotations
        per_client_inserts = honest_inserts // max(honest_clients, 1)
        per_client_queries = honest_queries // max(honest_clients, 1)
        tasks = [
            self._honest_client(
                i, per_client_inserts, per_client_queries, batch, report
            )
            for i in range(honest_clients)
        ]
        if pollution_inserts:
            tasks.append(
                self._pollution_client(target_shard, pollution_inserts, report)
            )
        if ghost_queries:
            tasks.append(
                self._ghost_client(target_shard, ghost_queries, ghost_min_fill, report)
            )
        if latency_queries:
            tasks.append(
                self._latency_client(
                    target_shard, latency_queries, latency_min_fill, report
                )
            )
        start = time.perf_counter()
        await asyncio.gather(*tasks)
        # Throughput covers the concurrent replay only; the probe below
        # is measurement, not load, so it stays outside the clock.
        report.elapsed_s = time.perf_counter() - start
        # Quiet probe: fresh, never-inserted URLs through the whole service.
        # The probe backs off politely when admission pushes back, so the
        # FP measurement completes even under a strict rate limit.
        probe_factory = UrlFactory(seed=self.seed ^ 0xF0F0F0)
        for offset in range(0, probe_queries, batch):
            chunk = probe_factory.urls(min(batch, probe_queries - offset))
            for _ in range(50):
                try:
                    answers = await self.transport.query_batch(chunk, client="probe")
                except RateLimited:
                    await asyncio.sleep(0.02)
                    continue
                report.probe_queries += len(chunk)
                report.probe_false_positives += sum(answers)
                break
        report.rotations = self.gateway.rotations - rotations_before
        for event in self.gateway.rotation_log[rotations_before:]:
            key = event.reason or event.policy or "unknown"
            report.rotation_reasons[key] = report.rotation_reasons.get(key, 0) + 1
        report.snapshots = self.gateway.snapshot()
        return report


def replay(
    gateway: MembershipGateway,
    transport: ServiceTransport | None = None,
    **workload,
) -> TrafficReport:
    """Synchronous convenience wrapper around
    :meth:`AdversarialTrafficDriver.run` (fresh event loop)."""
    driver = AdversarialTrafficDriver(gateway, transport=transport)
    return asyncio.run(driver.run(**workload))
