"""Asyncio TCP front-end for the membership gateway.

Puts an actual protocol on the serving API: clients connect over a
socket, speak the length-prefixed codec of :mod:`repro.service.codec`,
and hit the same admission control, shard routing and telemetry as
in-process callers -- which is exactly the setting the paper's
adversaries assume (a query interface, not an object reference).

Connections are *pipelined*: a v2 frame (codec envelope with a
correlation id) is dispatched as its own task and the reply -- tagged
with the same id -- goes out whenever it is ready, so one connection can
keep up to ``pipeline_depth`` requests in flight and replies may arrive
out of order.  Replies are write-coalesced (buffered, one ``drain()``
per flush).  A v1 frame (no id) is served strictly serially, exactly
the legacy read/dispatch/reply/drain loop, so old clients see
byte-identical behaviour; the two generations may interleave freely on
one connection.

Error discipline mirrors the gateway's: retryable admission pushback
becomes a ``ST_RATE_LIMITED`` response, permanent misuse (over-burst
batches) becomes ``ST_INVALID``, and protocol violations get a
best-effort ``ST_PROTOCOL`` reply before the connection is dropped --
a client sending garbage forfeits the stream, not the server.  Reusing
a correlation id while it is still in flight is such a violation: the
reply channel for that id is ambiguous, so the connection is forfeit.
"""

from __future__ import annotations

import asyncio

from repro.exceptions import NotOwner, ParameterError, ProtocolError
from repro.service.admission import RateLimited
from repro.service.codec import (
    OP_HANDOFF,
    OP_INSERT,
    OP_INSERT_BATCH,
    OP_QUERY,
    OP_QUERY_BATCH,
    OP_STATS,
    ST_ERROR,
    ST_INVALID,
    ST_PROTOCOL,
    ST_RATE_LIMITED,
    BufferedFrameWriter,
    Request,
    decode_request_envelope,
    encode_answers_frame,
    encode_error_frame,
    encode_not_owner_frame,
    encode_stats_frame,
    read_frame,
)
from repro.service.gateway import MembershipGateway

__all__ = ["MembershipServer"]


class MembershipServer:
    """Serve a :class:`~repro.service.gateway.MembershipGateway` over TCP.

    Parameters
    ----------
    gateway:
        The gateway to front; the server adds no policy of its own.
    host, port:
        Bind address; port 0 picks an ephemeral port (read it back from
        :attr:`address` after :meth:`start`).
    pipeline_depth:
        How many v2 (correlated) requests one connection may have in
        flight concurrently.  0 dispatches everything serially -- v2
        frames still get their ids echoed, but no overlap happens; v1
        frames are always serial regardless.
    """

    def __init__(
        self,
        gateway: MembershipGateway,
        host: str = "127.0.0.1",
        port: int = 0,
        pipeline_depth: int = 32,
    ) -> None:
        if pipeline_depth < 0:
            raise ParameterError("pipeline_depth must be non-negative")
        self.gateway = gateway
        self.pipeline_depth = pipeline_depth
        self._host = host
        self._port = port
        self._server: asyncio.AbstractServer | None = None
        self._handlers: set[asyncio.Task] = set()
        #: Connections accepted over the server's lifetime.
        self.connections = 0
        #: Protocol violations that caused a connection drop.
        self.protocol_errors = 0

    @property
    def address(self) -> tuple[str, int]:
        """The bound ``(host, port)``; valid after :meth:`start`."""
        if self._server is None:
            raise ProtocolError("server is not started")
        sock = self._server.sockets[0]
        host, port = sock.getsockname()[:2]
        return host, port

    async def start(self) -> tuple[str, int]:
        """Bind and start accepting; returns the bound address."""
        if self._server is not None:
            raise ProtocolError("server is already started")
        self._server = await asyncio.start_server(
            self._handle, self._host, self._port
        )
        return self.address

    async def aclose(self) -> None:
        """Stop accepting, drop open connections, close the socket."""
        if self._server is None:
            return
        self._server.close()
        for task in tuple(self._handlers):
            task.cancel()
        if self._handlers:
            await asyncio.gather(*self._handlers, return_exceptions=True)
        await self._server.wait_closed()
        self._server = None

    async def __aenter__(self) -> "MembershipServer":
        await self.start()
        return self

    async def __aexit__(self, *exc_info: object) -> None:
        await self.aclose()

    # ------------------------------------------------------------------
    # Connection handling
    # ------------------------------------------------------------------

    async def _handle(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        self.connections += 1
        task = asyncio.current_task()
        if task is not None:
            self._handlers.add(task)
            task.add_done_callback(self._handlers.discard)
        peer = writer.get_extra_info("peername")
        default_client = f"{peer[0]}:{peer[1]}" if peer else "tcp"
        replies = BufferedFrameWriter(writer)
        inflight: dict[int, asyncio.Task] = {}
        depth = (
            asyncio.Semaphore(self.pipeline_depth)
            if self.pipeline_depth > 0
            else None
        )
        graceful = False
        try:
            while True:
                try:
                    payload = await read_frame(reader)
                except ProtocolError as exc:
                    self.protocol_errors += 1
                    await self._try_reply(writer, encode_error_frame(ST_PROTOCOL, str(exc)))
                    break
                if payload is None:
                    graceful = True
                    break
                try:
                    request_id, request = decode_request_envelope(payload)
                except ProtocolError as exc:
                    self.protocol_errors += 1
                    await self._try_reply(writer, encode_error_frame(ST_PROTOCOL, str(exc)))
                    break
                if request_id is None:
                    # v1: the legacy strictly-serial request/reply loop.
                    # _dispatch returns a complete frame assembled in one
                    # buffer; it goes to the transport without re-framing.
                    writer.write(await self._dispatch(request, default_client, None))
                    await writer.drain()
                    continue
                if request_id in inflight:
                    self.protocol_errors += 1
                    await self._try_reply(
                        writer,
                        encode_error_frame(
                            ST_PROTOCOL,
                            f"correlation id {request_id} is already in flight",
                            request_id=request_id,
                        ),
                    )
                    break
                if depth is None:
                    replies.send(await self._dispatch(request, default_client, request_id))
                    continue
                # Backpressure: the read loop stalls (and so, via TCP,
                # does the sender) once pipeline_depth dispatches are in
                # flight, instead of buffering unboundedly.
                await depth.acquire()
                inflight[request_id] = asyncio.get_running_loop().create_task(
                    self._serve_pipelined(
                        request, default_client, request_id, replies, inflight, depth
                    )
                )
        except (ConnectionError, asyncio.IncompleteReadError):
            pass  # peer went away mid-stream; nothing to clean up
        except asyncio.CancelledError:
            pass  # server shutdown drops open connections cleanly
        finally:
            if inflight:
                if not graceful:
                    for job in tuple(inflight.values()):
                        job.cancel()
                await asyncio.gather(*inflight.values(), return_exceptions=True)
            try:
                await replies.flush()
            except asyncio.CancelledError:
                pass  # shutdown mid-flush: the socket is closing anyway
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError, asyncio.CancelledError):
                pass  # a second cancel can land while the socket drains

    async def _serve_pipelined(
        self,
        request: Request,
        default_client: str,
        request_id: int,
        replies: BufferedFrameWriter,
        inflight: dict[int, asyncio.Task],
        depth: asyncio.Semaphore,
    ) -> None:
        """One in-flight v2 request: dispatch, then queue the tagged reply."""
        try:
            replies.send(await self._dispatch(request, default_client, request_id))
        finally:
            inflight.pop(request_id, None)
            depth.release()

    @staticmethod
    async def _try_reply(writer: asyncio.StreamWriter, frame: bytes) -> None:
        """Best-effort error reply; the connection is dropped either way."""
        try:
            writer.write(frame)
            await writer.drain()
        except (ConnectionError, OSError):
            pass

    async def _dispatch(
        self, request: Request, default_client: str, request_id: int | None
    ) -> bytes:
        """Run one decoded request against the gateway; returns a frame
        tagged with ``request_id`` (or a bare v1 frame when it is None)."""
        client = request.client or default_client
        try:
            if request.op in (OP_INSERT, OP_INSERT_BATCH):
                answers = await self.gateway.insert_batch(request.items, client=client)
                return encode_answers_frame(answers, request_id=request_id)
            if request.op in (OP_QUERY, OP_QUERY_BATCH):
                answers = await self.gateway.query_batch(request.items, client=client)
                return encode_answers_frame(answers, request_id=request_id)
            if request.op == OP_STATS:
                # snapshot_async() reads each shard under its serving
                # lock (no torn counters while batches are in flight) and
                # pushes the blocking backend state probe to a thread.
                snapshots = await self.gateway.snapshot_async()
                return encode_stats_frame(
                    snapshots, extra=self._server_stats(), request_id=request_id
                )
            if request.op == OP_HANDOFF:
                # Adoption validates epoch and block before touching any
                # state; an empty OK answer frame acknowledges it.
                self.gateway.adopt_shard(
                    request.shard_id, request.epoch, request.block
                )
                return encode_answers_frame([], request_id=request_id)
            return encode_error_frame(
                ST_PROTOCOL, f"unhandled opcode {request.op}", request_id=request_id
            )
        except NotOwner as exc:
            return encode_not_owner_frame(
                exc.shard_id, exc.epoch, exc.owner, request_id=request_id
            )
        except RateLimited as exc:
            return encode_error_frame(ST_RATE_LIMITED, str(exc), request_id=request_id)
        except ParameterError as exc:
            return encode_error_frame(ST_INVALID, str(exc), request_id=request_id)
        except Exception as exc:  # noqa: BLE001 - the server must not die
            return encode_error_frame(
                ST_ERROR, f"{type(exc).__name__}: {exc}", request_id=request_id
            )

    def _server_stats(self) -> dict:
        """The stats frame's server-side extra entry (no ``shard_id``)."""
        return {
            "server": {
                "connections": self.connections,
                "protocol_errors": self.protocol_errors,
                "pipeline_depth": self.pipeline_depth,
                "coalesce": self.gateway.coalesce_stats(),
            }
        }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        state = "listening" if self._server else "stopped"
        return (
            f"<MembershipServer {state} pipeline_depth={self.pipeline_depth} "
            f"gateway={self.gateway!r}>"
        )
