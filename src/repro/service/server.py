"""Asyncio TCP front-end for the membership gateway.

Puts an actual protocol on the serving API: clients connect over a
socket, speak the length-prefixed codec of :mod:`repro.service.codec`,
and hit the same admission control, shard routing and telemetry as
in-process callers -- which is exactly the setting the paper's
adversaries assume (a query interface, not an object reference).

Error discipline mirrors the gateway's: retryable admission pushback
becomes a ``ST_RATE_LIMITED`` response, permanent misuse (over-burst
batches) becomes ``ST_INVALID``, and protocol violations get a
best-effort ``ST_PROTOCOL`` reply before the connection is dropped --
a client sending garbage forfeits the stream, not the server.
"""

from __future__ import annotations

import asyncio

from repro.exceptions import ParameterError, ProtocolError
from repro.service.admission import RateLimited
from repro.service.codec import (
    OP_INSERT,
    OP_INSERT_BATCH,
    OP_QUERY,
    OP_QUERY_BATCH,
    OP_STATS,
    ST_ERROR,
    ST_INVALID,
    ST_PROTOCOL,
    ST_RATE_LIMITED,
    Request,
    decode_request,
    encode_answers_frame,
    encode_error_frame,
    encode_stats_frame,
    read_frame,
)
from repro.service.gateway import MembershipGateway

__all__ = ["MembershipServer"]


class MembershipServer:
    """Serve a :class:`~repro.service.gateway.MembershipGateway` over TCP.

    Parameters
    ----------
    gateway:
        The gateway to front; the server adds no policy of its own.
    host, port:
        Bind address; port 0 picks an ephemeral port (read it back from
        :attr:`address` after :meth:`start`).
    """

    def __init__(
        self, gateway: MembershipGateway, host: str = "127.0.0.1", port: int = 0
    ) -> None:
        self.gateway = gateway
        self._host = host
        self._port = port
        self._server: asyncio.AbstractServer | None = None
        self._handlers: set[asyncio.Task] = set()
        #: Connections accepted over the server's lifetime.
        self.connections = 0
        #: Protocol violations that caused a connection drop.
        self.protocol_errors = 0

    @property
    def address(self) -> tuple[str, int]:
        """The bound ``(host, port)``; valid after :meth:`start`."""
        if self._server is None:
            raise ProtocolError("server is not started")
        sock = self._server.sockets[0]
        host, port = sock.getsockname()[:2]
        return host, port

    async def start(self) -> tuple[str, int]:
        """Bind and start accepting; returns the bound address."""
        if self._server is not None:
            raise ProtocolError("server is already started")
        self._server = await asyncio.start_server(
            self._handle, self._host, self._port
        )
        return self.address

    async def aclose(self) -> None:
        """Stop accepting, drop open connections, close the socket."""
        if self._server is None:
            return
        self._server.close()
        for task in tuple(self._handlers):
            task.cancel()
        if self._handlers:
            await asyncio.gather(*self._handlers, return_exceptions=True)
        await self._server.wait_closed()
        self._server = None

    async def __aenter__(self) -> "MembershipServer":
        await self.start()
        return self

    async def __aexit__(self, *exc_info: object) -> None:
        await self.aclose()

    # ------------------------------------------------------------------
    # Connection handling
    # ------------------------------------------------------------------

    async def _handle(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        self.connections += 1
        task = asyncio.current_task()
        if task is not None:
            self._handlers.add(task)
            task.add_done_callback(self._handlers.discard)
        peer = writer.get_extra_info("peername")
        default_client = f"{peer[0]}:{peer[1]}" if peer else "tcp"
        try:
            while True:
                try:
                    payload = await read_frame(reader)
                except ProtocolError as exc:
                    self.protocol_errors += 1
                    await self._try_reply(writer, encode_error_frame(ST_PROTOCOL, str(exc)))
                    break
                if payload is None:
                    break
                try:
                    request = decode_request(payload)
                except ProtocolError as exc:
                    self.protocol_errors += 1
                    await self._try_reply(writer, encode_error_frame(ST_PROTOCOL, str(exc)))
                    break
                # _dispatch returns a complete frame assembled in one
                # buffer; it goes to the transport without re-framing.
                writer.write(await self._dispatch(request, default_client))
                await writer.drain()
        except (ConnectionError, asyncio.IncompleteReadError):
            pass  # peer went away mid-stream; nothing to clean up
        except asyncio.CancelledError:
            pass  # server shutdown drops open connections cleanly
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError, asyncio.CancelledError):
                pass  # a second cancel can land while the socket drains

    @staticmethod
    async def _try_reply(writer: asyncio.StreamWriter, frame: bytes) -> None:
        """Best-effort error reply; the connection is dropped either way."""
        try:
            writer.write(frame)
            await writer.drain()
        except (ConnectionError, OSError):
            pass

    async def _dispatch(self, request: Request, default_client: str) -> bytes:
        """Run one decoded request against the gateway; returns a frame."""
        client = request.client or default_client
        try:
            if request.op in (OP_INSERT, OP_INSERT_BATCH):
                answers = await self.gateway.insert_batch(request.items, client=client)
                return encode_answers_frame(answers)
            if request.op in (OP_QUERY, OP_QUERY_BATCH):
                answers = await self.gateway.query_batch(request.items, client=client)
                return encode_answers_frame(answers)
            if request.op == OP_STATS:
                # snapshot() probes every shard synchronously; for a
                # process backend that is one pipe round trip per shard,
                # so keep it off the event-loop thread.
                snapshots = await asyncio.to_thread(self.gateway.snapshot)
                return encode_stats_frame(snapshots)
            return encode_error_frame(ST_PROTOCOL, f"unhandled opcode {request.op}")
        except RateLimited as exc:
            return encode_error_frame(ST_RATE_LIMITED, str(exc))
        except ParameterError as exc:
            return encode_error_frame(ST_INVALID, str(exc))
        except Exception as exc:  # noqa: BLE001 - the server must not die
            return encode_error_frame(ST_ERROR, f"{type(exc).__name__}: {exc}")

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        state = "listening" if self._server else "stopped"
        return f"<MembershipServer {state} gateway={self.gateway!r}>"
