"""Shard routing: which filter shard owns an item.

The routers live in :mod:`repro.service.cluster.ring` now -- the
cluster tier reuses the same hash choice for shard-to-gateway placement
(consistent-hash ring), so the pickers moved next to the ring and this
module keeps the historical import path alive.  See the ring module for
the adversarial framing (public Murmur routing is offline-predictable,
keyed SipHash routing degrades aimed pollution to spraying) and for the
``parse_picker`` spec grammar.
"""

from __future__ import annotations

from repro.service.cluster.ring import (
    HashShardPicker,
    KeyedShardPicker,
    ShardPicker,
    parse_picker,
)

__all__ = ["ShardPicker", "HashShardPicker", "KeyedShardPicker", "parse_picker"]
