"""Shard routing: which filter shard owns an item.

The router is the first thing adversarial traffic meets, so its hash
choice matters exactly the way the paper says filter hashes do: a public
routing hash lets the adversary compute ``pick(item)`` offline and aim
every crafted item at one shard (concentrating pollution ``shards``-fold),
while a keyed router -- the same MAC countermeasure as
:mod:`repro.countermeasures.keyed`, applied one layer up -- reduces the
attacker to spraying shards blindly.

The routing hash must also be independent of the shard filters' index
strategy; reusing the filter hash would correlate shard choice with
filter positions and skew per-shard fill.
"""

from __future__ import annotations

from abc import ABC, abstractmethod

from repro.countermeasures.keyed import generate_key
from repro.exceptions import ParameterError
from repro.hashing.murmur import Murmur3_32
from repro.hashing.siphash import SipHash24

__all__ = ["ShardPicker", "HashShardPicker", "KeyedShardPicker"]


class ShardPicker(ABC):
    """A rule assigning items to shards; stateless, like an IndexStrategy."""

    #: Display name for telemetry tables.
    name: str = "picker"

    @abstractmethod
    def pick(self, item: str | bytes, shard_count: int) -> int:
        """Return the owning shard in ``[0, shard_count)``."""

    def _check(self, shard_count: int) -> None:
        if shard_count <= 0:
            raise ParameterError(f"shard_count must be positive, got {shard_count}")

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<{type(self).__name__} {self.name}>"


class HashShardPicker(ShardPicker):
    """Public MurmurHash3 routing -- fast, uniform, and fully predictable.

    This is how real deployments shard (consistent hashing over a public
    function); it is also the adversary's entry point, since anyone can
    evaluate the route offline and craft items that all land on one
    shard.
    """

    def __init__(self, seed: int = 0x5A4D) -> None:
        self._hash = Murmur3_32(seed)
        self.seed = seed
        self.name = f"murmur3(seed={seed:#x})"

    def pick(self, item: str | bytes, shard_count: int) -> int:
        self._check(shard_count)
        return self._hash.hash_int(item) % shard_count


class KeyedShardPicker(ShardPicker):
    """Secret-keyed SipHash routing: the keyed countermeasure for the router.

    Without the key an adversary cannot predict which shard an item hits,
    so aimed pollution degrades to uniform spraying -- each shard absorbs
    only ``1/shard_count`` of the crafted stream.
    """

    def __init__(self, key: bytes | None = None) -> None:
        self.key = key if key is not None else generate_key(16)
        if len(self.key) != 16:
            raise ParameterError("SipHash routing requires a 16-byte key")
        self._hash = SipHash24(self.key)
        self.name = "siphash(keyed)"

    def pick(self, item: str | bytes, shard_count: int) -> int:
        self._check(shard_count)
        return self._hash.hash_int(item) % shard_count
