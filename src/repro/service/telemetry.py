"""Lightweight per-shard telemetry for the membership gateway.

Pure-python, allocation-light instrumentation: log2-bucketed latency
histograms (fixed 32-bucket arrays, no per-sample storage) plus mutable
per-shard counters the gateway bumps on its hot path.  ``snapshot()``
freezes everything into plain dataclasses for reporting, so readers
never race the serving loop.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.exceptions import ParameterError
from repro.experiments.runner import render_table

__all__ = [
    "CoalesceTelemetry",
    "LatencyHistogram",
    "ShardTelemetry",
    "ShardSnapshot",
    "render_snapshots",
]

#: Histogram bucket count: bucket ``i`` holds calls in ``[2^i, 2^(i+1))``
#: microseconds, so 32 buckets span sub-microsecond to ~71 minutes.
_BUCKETS = 32


class LatencyHistogram:
    """Log2-bucketed latency histogram with microsecond resolution.

    ``record`` costs one bit_length and one list increment -- cheap
    enough to sit inside the gateway's per-call path.  Quantiles are
    resolved to the upper edge of the owning bucket (conservative).
    """

    __slots__ = ("_buckets", "_count", "_sum")

    def __init__(self) -> None:
        self._buckets = [0] * _BUCKETS
        self._count = 0
        self._sum = 0.0

    def record(self, seconds: float) -> None:
        """Record one call latency (in seconds)."""
        if seconds < 0:
            raise ParameterError("latency cannot be negative")
        micros = int(seconds * 1e6)
        bucket = micros.bit_length() - 1 if micros > 0 else 0
        self._buckets[min(bucket, _BUCKETS - 1)] += 1
        self._count += 1
        self._sum += seconds

    @property
    def count(self) -> int:
        """Number of recorded calls."""
        return self._count

    @property
    def mean(self) -> float:
        """Mean latency in seconds (0.0 when empty)."""
        return self._sum / self._count if self._count else 0.0

    def quantile(self, q: float) -> float:
        """Latency (seconds) bounding the ``q``-quantile from above."""
        if not 0 <= q <= 1:
            raise ParameterError("quantile must be in [0, 1]")
        if not self._count:
            return 0.0
        rank = q * self._count
        seen = 0
        for bucket, hits in enumerate(self._buckets):
            seen += hits
            if seen >= rank and hits:
                return (2 ** (bucket + 1)) / 1e6
        return (2**_BUCKETS) / 1e6  # pragma: no cover - unreachable

    def merge(self, other: "LatencyHistogram") -> None:
        """Fold another histogram into this one (cross-shard rollups)."""
        for i, hits in enumerate(other._buckets):
            self._buckets[i] += hits
        self._count += other._count
        self._sum += other._sum

    def to_state(self) -> tuple[int, float, tuple[int, ...]]:
        """Durable state ``(count, sum_seconds, buckets)`` for snapshots."""
        return (self._count, self._sum, tuple(self._buckets))

    @classmethod
    def from_state(
        cls, count: int, total: float, buckets: Sequence[int]
    ) -> "LatencyHistogram":
        """Rebuild a histogram from :meth:`to_state` output."""
        if len(buckets) != _BUCKETS:
            raise ParameterError(
                f"histogram state needs {_BUCKETS} buckets, got {len(buckets)}"
            )
        histogram = cls()
        histogram._count = count
        histogram._sum = total
        histogram._buckets = list(buckets)
        return histogram


class CoalesceTelemetry:
    """Counters for the gateway's micro-batch coalescer.

    One instance covers the whole gateway (the coalescer merges across
    clients, not across shards, so per-shard split would hide the thing
    being measured: how many client requests each backend call absorbs).
    All counters are monotonic; readers that want per-replay numbers
    diff two :meth:`snapshot` calls.
    """

    __slots__ = (
        "requests",
        "items",
        "flushes",
        "flush_size",
        "flush_window",
        "isolation_splits",
        "max_queue_depth",
    )

    def __init__(self) -> None:
        #: Client sub-batches submitted to the coalescer.
        self.requests = 0
        #: Items carried by those sub-batches.
        self.items = 0
        #: Merged backend calls actually issued.
        self.flushes = 0
        #: Flushes triggered by the queue reaching ``coalesce_max_batch``.
        self.flush_size = 0
        #: Flushes triggered by the ``coalesce_window_us`` deadline.
        self.flush_window = 0
        #: Merged calls that failed and were re-run request-by-request so
        #: one client's bad item fails only that client's request.
        self.isolation_splits = 0
        #: Deepest any (shard, op) queue got, in queued sub-batches.
        self.max_queue_depth = 0

    @property
    def coalesce_ratio(self) -> float:
        """Client requests per merged backend call (1.0 = no merging
        happened, 0.0 = nothing coalesced yet)."""
        return self.requests / self.flushes if self.flushes else 0.0

    def snapshot(self) -> dict:
        """Plain-dict view (stats frames, reports, bench output)."""
        return {
            "requests": self.requests,
            "items": self.items,
            "flushes": self.flushes,
            "flush_size": self.flush_size,
            "flush_window": self.flush_window,
            "isolation_splits": self.isolation_splits,
            "max_queue_depth": self.max_queue_depth,
            "coalesce_ratio": round(self.coalesce_ratio, 3),
        }


class ShardTelemetry:
    """Mutable counters for one shard, owned by the gateway."""

    __slots__ = (
        "shard_id",
        "inserts",
        "queries",
        "positives",
        "rotations",
        "insert_latency",
        "query_latency",
    )

    def __init__(self, shard_id: int) -> None:
        self.shard_id = shard_id
        self.inserts = 0
        self.queries = 0
        self.positives = 0
        self.rotations = 0
        self.insert_latency = LatencyHistogram()
        self.query_latency = LatencyHistogram()

    def to_state(self) -> dict:
        """Durable counter state for gateway snapshots."""
        return {
            "inserts": self.inserts,
            "queries": self.queries,
            "positives": self.positives,
            "rotations": self.rotations,
            "insert_latency": self.insert_latency.to_state(),
            "query_latency": self.query_latency.to_state(),
        }

    @classmethod
    def from_state(cls, shard_id: int, state: dict) -> "ShardTelemetry":
        """Rebuild one shard's counters from :meth:`to_state` output."""
        telemetry = cls(shard_id)
        telemetry.inserts = state["inserts"]
        telemetry.queries = state["queries"]
        telemetry.positives = state["positives"]
        telemetry.rotations = state["rotations"]
        telemetry.insert_latency = LatencyHistogram.from_state(*state["insert_latency"])
        telemetry.query_latency = LatencyHistogram.from_state(*state["query_latency"])
        return telemetry

    def snapshot(
        self,
        weight: int,
        fill_ratio: float,
        recent_positive_rate: float = 0.0,
        rotations_suppressed: int = 0,
    ) -> "ShardSnapshot":
        """Freeze the counters together with the filter state.

        ``recent_positive_rate`` is the lifecycle window's positive rate
        (the gateway passes it in); it is what an operator watches for a
        late-life ghost storm that the lifetime counters have diluted.
        ``rotations_suppressed`` is the lifecycle state's tally of
        rotations a :class:`~repro.service.lifecycle.Cooldown` wrapper
        refused -- non-zero means the composed defence is actively
        holding a thrash-inducing trigger at bay.
        """
        return ShardSnapshot(
            shard_id=self.shard_id,
            inserts=self.inserts,
            queries=self.queries,
            positives=self.positives,
            rotations=self.rotations,
            weight=weight,
            fill_ratio=fill_ratio,
            query_p50_us=self.query_latency.quantile(0.5) * 1e6,
            query_p99_us=self.query_latency.quantile(0.99) * 1e6,
            recent_positive_rate=recent_positive_rate,
            rotations_suppressed=rotations_suppressed,
        )


@dataclass(frozen=True)
class ShardSnapshot:
    """Point-in-time view of one shard (counters + filter state)."""

    shard_id: int
    inserts: int
    queries: int
    positives: int
    rotations: int
    weight: int
    fill_ratio: float
    query_p50_us: float
    query_p99_us: float
    #: Positive rate over the shard's recent-query window (0.0 when the
    #: source has no window, e.g. snapshots built outside a gateway).
    recent_positive_rate: float = 0.0
    #: Rotations refused by a cool-down wrapper on this shard (0 when no
    #: composed policy with a cool-down is running).
    rotations_suppressed: int = 0


def render_snapshots(snapshots: list[ShardSnapshot]) -> str:
    """Aligned per-shard stats table (the demo / experiment output)."""
    headers = [
        "shard",
        "inserts",
        "queries",
        "positives",
        "recent_pos",
        "rotations",
        "suppressed",
        "weight",
        "fill",
        "q_p50_us",
        "q_p99_us",
    ]
    rows = [
        [
            s.shard_id,
            s.inserts,
            s.queries,
            s.positives,
            round(s.recent_positive_rate, 3),
            s.rotations,
            s.rotations_suppressed,
            s.weight,
            round(s.fill_ratio, 3),
            round(s.query_p50_us, 1),
            round(s.query_p99_us, 1),
        ]
        for s in snapshots
    ]
    return render_table(headers, rows)
