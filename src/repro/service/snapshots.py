"""Warm-restart snapshots: durable gateway state on disk.

The recycled-filter countermeasure only works operationally if its state
survives restarts -- a gateway that forgets its rotation history (and
its shard bits) on every deploy hands the adversary a fresh, empty
filter to measure against.  This module serialises everything a gateway
accumulates at serving time:

* every shard's filter, via the stable per-filter header of
  :meth:`repro.core.bloom.BloomFilter.snapshot_bytes`;
* the rotation log (which shard retired what, at which fill);
* per-shard telemetry (counters and both latency histograms).

What is *not* serialised is configuration: shard geometry, routing and
filter keys, admission limits.  Restore targets a gateway built from
the same :class:`~repro.service.config.ServiceConfig`; geometry is
checked shard by shard, keys must be pinned for restored filters to
answer identically (the config docstring says the same).

The layout is fixed-width big-endian throughout, magic-and-versioned,
and every length is validated before any state is touched -- a corrupt
snapshot fails cleanly, it never half-restores.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from pathlib import Path
from typing import TYPE_CHECKING

from repro.exceptions import SnapshotError
from repro.service.telemetry import _BUCKETS, ShardTelemetry

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.service.gateway import MembershipGateway, RotationEvent

__all__ = [
    "GATEWAY_MAGIC",
    "GATEWAY_VERSION",
    "GatewaySnapshot",
    "snapshot_gateway",
    "parse_gateway_snapshot",
    "restore_gateway",
    "save_snapshot",
    "load_snapshot",
]

#: Magic bytes opening every gateway snapshot file.
GATEWAY_MAGIC = b"RGSN"
#: Version written into new snapshots; bump on any layout change.
GATEWAY_VERSION = 1

_HEADER = struct.Struct(">4sHII")          # magic, version, shards, rotations
_ROTATION = struct.Struct(">IQQd")         # shard_id, weight, insertions, fill
_COUNTERS = struct.Struct(">QQQQ")         # inserts, queries, positives, rotations
# count, sum_seconds, one u64 per latency bucket (width shared with
# telemetry so the formats cannot drift apart).
_HISTOGRAM = struct.Struct(f">Qd{_BUCKETS}Q")
_BLOCK_LEN = struct.Struct(">I")           # per-shard filter block length


@dataclass(frozen=True)
class GatewaySnapshot:
    """Parsed form of one gateway snapshot."""

    shards: int
    rotation_log: list["RotationEvent"]
    telemetry: list[ShardTelemetry]
    filter_blocks: list[bytes]


def _histogram_state(packed: tuple) -> tuple[int, float, tuple[int, ...]]:
    count, total, *buckets = packed
    return count, total, tuple(buckets)


def snapshot_gateway(gateway: "MembershipGateway") -> bytes:
    """Serialise ``gateway`` into one warm-restart payload."""
    parts = [
        _HEADER.pack(
            GATEWAY_MAGIC, GATEWAY_VERSION, gateway.shards, len(gateway.rotation_log)
        )
    ]
    for event in gateway.rotation_log:
        parts.append(
            _ROTATION.pack(
                event.shard_id,
                event.retired_weight,
                event.retired_insertions,
                event.retired_fill,
            )
        )
    for shard_id, telemetry in enumerate(gateway.telemetry):
        state = telemetry.to_state()
        parts.append(
            _COUNTERS.pack(
                state["inserts"], state["queries"], state["positives"], state["rotations"]
            )
        )
        for key in ("insert_latency", "query_latency"):
            count, total, buckets = state[key]
            parts.append(_HISTOGRAM.pack(count, total, *buckets))
        block = gateway.backend.export_shard(shard_id)
        parts.append(_BLOCK_LEN.pack(len(block)))
        parts.append(block)
    return b"".join(parts)


def parse_gateway_snapshot(raw: bytes) -> GatewaySnapshot:
    """Validate and parse a :func:`snapshot_gateway` payload."""
    from repro.service.gateway import RotationEvent

    def take(size: int, what: str) -> bytes:
        nonlocal pos
        end = pos + size
        if end > len(raw):
            raise SnapshotError(
                f"gateway snapshot ends inside {what} "
                f"(need {size} bytes at offset {pos})"
            )
        chunk = raw[pos:end]
        pos = end
        return chunk

    pos = 0
    magic, version, shards, rotation_count = _HEADER.unpack(
        take(_HEADER.size, "header")
    )
    if magic != GATEWAY_MAGIC:
        raise SnapshotError(f"bad gateway snapshot magic {magic!r}")
    if version != GATEWAY_VERSION:
        raise SnapshotError(f"unsupported gateway snapshot version {version}")
    rotation_log = []
    for _ in range(rotation_count):
        shard_id, weight, insertions, fill = _ROTATION.unpack(
            take(_ROTATION.size, "rotation event")
        )
        rotation_log.append(
            RotationEvent(
                shard_id=shard_id,
                retired_weight=weight,
                retired_fill=fill,
                retired_insertions=insertions,
            )
        )
    telemetry: list[ShardTelemetry] = []
    filter_blocks: list[bytes] = []
    for shard_id in range(shards):
        inserts, queries, positives, rotations = _COUNTERS.unpack(
            take(_COUNTERS.size, f"shard {shard_id} counters")
        )
        insert_hist = _histogram_state(
            _HISTOGRAM.unpack(take(_HISTOGRAM.size, f"shard {shard_id} insert histogram"))
        )
        query_hist = _histogram_state(
            _HISTOGRAM.unpack(take(_HISTOGRAM.size, f"shard {shard_id} query histogram"))
        )
        telemetry.append(
            ShardTelemetry.from_state(
                shard_id,
                {
                    "inserts": inserts,
                    "queries": queries,
                    "positives": positives,
                    "rotations": rotations,
                    "insert_latency": insert_hist,
                    "query_latency": query_hist,
                },
            )
        )
        (block_len,) = _BLOCK_LEN.unpack(take(_BLOCK_LEN.size, f"shard {shard_id} block length"))
        filter_blocks.append(take(block_len, f"shard {shard_id} filter block"))
    if pos != len(raw):
        raise SnapshotError(f"{len(raw) - pos} trailing bytes after gateway snapshot")
    return GatewaySnapshot(
        shards=shards,
        rotation_log=rotation_log,
        telemetry=telemetry,
        filter_blocks=filter_blocks,
    )


def restore_gateway(gateway: "MembershipGateway", raw: bytes) -> None:
    """Load a snapshot into a gateway built from the same config.

    Shard filters are restored through the backend (so this works for
    local and process-pool deployments alike), then the rotation log and
    telemetry are replaced.  Geometry mismatches abort before the first
    shard is touched.
    """
    snapshot = parse_gateway_snapshot(raw)
    if snapshot.shards != gateway.shards:
        raise SnapshotError(
            f"snapshot holds {snapshot.shards} shards, gateway has {gateway.shards}"
        )
    # Dry-run the geometry check across every block first: restore must
    # be all-or-nothing, and backends validate only at apply time.
    from repro.core.bloom import parse_snapshot

    for shard_id, block in enumerate(snapshot.filter_blocks):
        m, k, _, _ = parse_snapshot(block)
        # Header-only comparison: export_shard ships the current bits,
        # but parse_snapshot reads geometry without rebuilding a filter.
        current_m, current_k, _, _ = parse_snapshot(
            gateway.backend.export_shard(shard_id)
        )
        if (m, k) != (current_m, current_k):
            raise SnapshotError(
                f"shard {shard_id} snapshot is (m={m}, k={k}), "
                f"gateway shard is (m={current_m}, k={current_k})"
            )
    for shard_id, block in enumerate(snapshot.filter_blocks):
        gateway.backend.restore_shard(shard_id, block)
    gateway.rotation_log[:] = snapshot.rotation_log
    gateway._telemetry[:] = snapshot.telemetry


def save_snapshot(gateway: "MembershipGateway", path: str | Path) -> Path:
    """Write :func:`snapshot_gateway` output to ``path`` atomically-ish
    (tmp file + rename) and return the final path."""
    path = Path(path)
    tmp = path.with_suffix(path.suffix + ".tmp")
    tmp.write_bytes(snapshot_gateway(gateway))
    tmp.replace(path)
    return path


def load_snapshot(gateway: "MembershipGateway", path: str | Path) -> None:
    """Read a snapshot file and restore it into ``gateway``."""
    restore_gateway(gateway, Path(path).read_bytes())
