"""Warm-restart snapshots: durable gateway state on disk.

The recycled-filter countermeasure only works operationally if its state
survives restarts -- a gateway that forgets its rotation history (and
its shard bits) on every deploy hands the adversary a fresh, empty
filter to measure against.  This module serialises everything a gateway
accumulates at serving time:

* every shard's filter, via the stable per-filter snapshot header
  (:meth:`repro.core.bloom.BloomFilter.snapshot_bytes` for bit shards,
  :meth:`repro.core.counting.CountingBloomFilter.snapshot_bytes` for
  counting shards -- the payload carries its own magic, so one gateway
  snapshot mixes families freely);
* the rotation log (which shard retired what, at which fill, at which
  operation epoch, under which policy and reason);
* per-shard lifecycle state (operation age, insert/query/positive
  counts, restored flag, restore epoch, and -- since version 3 -- the
  recent-query sliding window, so :mod:`repro.service.lifecycle`
  policies, windowed ones included, keep deciding correctly across a
  warm restart; since version 4 also the composed-policy scratch: the
  cool-down suppression tally and the hysteresis streaks, keyed by
  wrapper spec) plus the gateway-wide operation epoch;
* per-shard telemetry (counters and both latency histograms).

What is *not* serialised is configuration: shard geometry, routing and
filter keys, admission limits.  Restore targets a gateway built from
the same :class:`~repro.service.config.ServiceConfig`; geometry is
checked shard by shard, keys must be pinned for restored filters to
answer identically (the config docstring says the same).

The cluster tier reuses the exact per-shard section for *handoff
blocks* (magic ``RGSB``): one shard's lifecycle, telemetry and filter
bits, prefixed with the global shard id, exported under the serving
lock by :meth:`~repro.service.gateway.MembershipGateway.release_shard`
and restored byte-identically by :meth:`~repro.service.gateway.
MembershipGateway.adopt_shard`.  Because the section layout is shared,
a shard that moves between gateways re-exports the same bytes it
arrived as.

The layout is fixed-width big-endian throughout, magic-and-versioned,
and every length is validated before any state is touched -- a corrupt
snapshot fails cleanly, it never half-restores.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from pathlib import Path
from typing import TYPE_CHECKING

from repro.exceptions import SnapshotError
from repro.service.telemetry import _BUCKETS, ShardTelemetry

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.service.gateway import MembershipGateway, RotationEvent

__all__ = [
    "GATEWAY_MAGIC",
    "GATEWAY_VERSION",
    "SHARD_BLOCK_MAGIC",
    "SHARD_BLOCK_VERSION",
    "GatewaySnapshot",
    "ShardBlock",
    "snapshot_gateway",
    "parse_gateway_snapshot",
    "restore_gateway",
    "snapshot_shard",
    "parse_shard_block",
    "save_snapshot",
    "load_snapshot",
]

#: Magic bytes opening every gateway snapshot file.
GATEWAY_MAGIC = b"RGSN"
#: Version written into new snapshots; bump on any layout change.
#: Version 2 added the gateway op-epoch, the per-shard lifecycle section
#: and the policy/reason fields on rotation events.  Version 3 appends
#: each shard's recent-query sliding window to the lifecycle section, so
#: windowed positive-rate policies keep deciding correctly across a warm
#: restart.  Version 4 appends the composed-policy scratch (the
#: cool-down suppression tally and the hysteresis streaks) so stateful
#: defence wrappers keep their place across a warm restart; version-3
#: payloads still restore, with that scratch zero-initialised.
GATEWAY_VERSION = 4
#: Oldest version :func:`parse_gateway_snapshot` still accepts.
GATEWAY_MIN_VERSION = 3

#: Magic bytes opening a single-shard handoff block.
SHARD_BLOCK_MAGIC = b"RGSB"
#: Handoff block version 1 wraps the gateway-snapshot v4 shard section.
SHARD_BLOCK_VERSION = 1

_HEADER = struct.Struct(">4sHIIQ")         # magic, version, shards, rotations, op_epoch
_ROTATION = struct.Struct(">IQQdQ")        # shard_id, weight, insertions, fill, op_epoch
_STR_LEN = struct.Struct(">H")             # length prefix of policy/reason strings
# age_ops, inserts, queries, positives, restored, restore_epoch
_LIFECYCLE = struct.Struct(">QQQQBQ")
_WINDOW_LEN = struct.Struct(">H")          # retained window batches per shard
_WINDOW_ENTRY = struct.Struct(">II")       # one window batch: queries, positives
# v4 policy scratch: cooldown-suppressed tally, hysteresis streak count;
# each streak is a u16-prefixed wrapper-spec key plus a u64 streak value.
_POLICY_STATE = struct.Struct(">QH")
_STREAK_VALUE = struct.Struct(">Q")
_COUNTERS = struct.Struct(">QQQQ")         # inserts, queries, positives, rotations
# count, sum_seconds, one u64 per latency bucket (width shared with
# telemetry so the formats cannot drift apart).
_HISTOGRAM = struct.Struct(f">Qd{_BUCKETS}Q")
_BLOCK_LEN = struct.Struct(">I")           # per-shard filter block length
_SHARD_HEADER = struct.Struct(">4sHI")     # magic, version, global shard id


@dataclass(frozen=True)
class GatewaySnapshot:
    """Parsed form of one gateway snapshot."""

    shards: int
    op_epoch: int
    rotation_log: list["RotationEvent"]
    lifecycle: list[dict]
    telemetry: list[ShardTelemetry]
    filter_blocks: list[bytes]


@dataclass(frozen=True)
class ShardBlock:
    """Parsed form of one handoff block: a single shard's full state."""

    shard_id: int
    lifecycle: dict
    telemetry: ShardTelemetry
    filter_block: bytes


class _SnapshotReader:
    """Bounds-checked cursor over a snapshot payload."""

    __slots__ = ("raw", "pos", "label")

    def __init__(self, raw: bytes, label: str) -> None:
        self.raw = raw
        self.pos = 0
        self.label = label

    def take(self, size: int, what: str) -> bytes:
        end = self.pos + size
        if end > len(self.raw):
            raise SnapshotError(
                f"{self.label} ends inside {what} "
                f"(need {size} bytes at offset {self.pos})"
            )
        chunk = self.raw[self.pos:end]
        self.pos = end
        return chunk

    def take_str(self, what: str) -> str:
        (length,) = _STR_LEN.unpack(self.take(_STR_LEN.size, f"{what} length"))
        try:
            return self.take(length, what).decode("utf-8")
        except UnicodeDecodeError as exc:
            raise SnapshotError(f"{what} is not valid UTF-8") from exc

    def expect_end(self) -> None:
        if self.pos != len(self.raw):
            raise SnapshotError(
                f"{len(self.raw) - self.pos} trailing bytes after {self.label}"
            )


def _histogram_state(packed: tuple) -> tuple[int, float, tuple[int, ...]]:
    count, total, *buckets = packed
    return count, total, tuple(buckets)


def _pack_str(text: str) -> bytes:
    raw = text.encode("utf-8")
    if len(raw) > 0xFFFF:
        raise SnapshotError(f"string field of {len(raw)} bytes exceeds the u16 prefix")
    return _STR_LEN.pack(len(raw)) + raw


def _block_geometry(raw: bytes) -> tuple:
    """(family, geometry...) of one per-shard filter block, dispatched on
    the block's own magic so bit and counting shards coexist."""
    from repro.core.bloom import parse_snapshot
    from repro.core.counting import COUNTING_SNAPSHOT_MAGIC, parse_counting_snapshot

    if raw[:4] == COUNTING_SNAPSHOT_MAGIC:
        m, k, bits, _, _, _ = parse_counting_snapshot(raw)
        return ("counting", f"m={m}", f"k={k}", f"counter_bits={bits}")
    m, k, _, _ = parse_snapshot(raw)
    return ("bloom", f"m={m}", f"k={k}")


def _pack_shard_section(life: dict, telemetry_state: dict, block: bytes) -> list[bytes]:
    """Serialise one shard's lifecycle + telemetry + filter block.

    This is *the* per-shard layout (gateway snapshot v4); handoff blocks
    wrap exactly this section, so a shard's bytes are identical whether
    it rides a whole-gateway snapshot or moves between gateways.
    """
    parts = [
        _LIFECYCLE.pack(
            life["age_ops"],
            life["inserts"],
            life["queries"],
            life["positives"],
            int(life["restored"]),
            life["restore_epoch"],
        )
    ]
    window = life["window"]
    if len(window) > 0xFFFF:  # pragma: no cover - cap is far below u16
        raise SnapshotError(
            f"shard window of {len(window)} batches exceeds the u16 prefix"
        )
    parts.append(_WINDOW_LEN.pack(len(window)))
    for queries, positives in window:
        parts.append(_WINDOW_ENTRY.pack(queries, positives))
    streaks = life["streaks"]
    if len(streaks) > 0xFFFF:  # pragma: no cover - trees are tiny
        raise SnapshotError(
            f"shard policy scratch of {len(streaks)} streaks exceeds the u16 prefix"
        )
    parts.append(_POLICY_STATE.pack(life["suppressed"], len(streaks)))
    for key in sorted(streaks):
        parts.append(_pack_str(key))
        parts.append(_STREAK_VALUE.pack(streaks[key]))
    parts.append(
        _COUNTERS.pack(
            telemetry_state["inserts"],
            telemetry_state["queries"],
            telemetry_state["positives"],
            telemetry_state["rotations"],
        )
    )
    for key in ("insert_latency", "query_latency"):
        count, total, buckets = telemetry_state[key]
        parts.append(_HISTOGRAM.pack(count, total, *buckets))
    parts.append(_BLOCK_LEN.pack(len(block)))
    parts.append(block)
    return parts


def _parse_shard_section(
    reader: _SnapshotReader, shard_id: int, version: int
) -> tuple[dict, ShardTelemetry, bytes]:
    """Parse one shard's section; inverse of :func:`_pack_shard_section`.

    ``version`` is the enclosing gateway snapshot's (3 or 4); handoff
    blocks always carry the v4 layout.
    """
    age_ops, life_inserts, life_queries, life_positives, restored, restore_epoch = (
        _LIFECYCLE.unpack(reader.take(_LIFECYCLE.size, f"shard {shard_id} lifecycle"))
    )
    (window_len,) = _WINDOW_LEN.unpack(
        reader.take(_WINDOW_LEN.size, f"shard {shard_id} window length")
    )
    window = tuple(
        _WINDOW_ENTRY.unpack(
            reader.take(_WINDOW_ENTRY.size, f"shard {shard_id} window entry")
        )
        for _ in range(window_len)
    )
    # Version 3 predates the composed-policy scratch: restore it
    # zero-initialised (cool-down history starts fresh).
    suppressed = 0
    streaks: dict[str, int] = {}
    if version >= 4:
        suppressed, streak_count = _POLICY_STATE.unpack(
            reader.take(_POLICY_STATE.size, f"shard {shard_id} policy scratch")
        )
        for _ in range(streak_count):
            key = reader.take_str(f"shard {shard_id} streak key")
            (value,) = _STREAK_VALUE.unpack(
                reader.take(_STREAK_VALUE.size, f"shard {shard_id} streak value")
            )
            streaks[key] = value
    life = {
        "age_ops": age_ops,
        "inserts": life_inserts,
        "queries": life_queries,
        "positives": life_positives,
        "restored": bool(restored),
        "restore_epoch": restore_epoch,
        "window": window,
        "suppressed": suppressed,
        "streaks": streaks,
    }
    inserts, queries, positives, rotations = _COUNTERS.unpack(
        reader.take(_COUNTERS.size, f"shard {shard_id} counters")
    )
    insert_hist = _histogram_state(
        _HISTOGRAM.unpack(
            reader.take(_HISTOGRAM.size, f"shard {shard_id} insert histogram")
        )
    )
    query_hist = _histogram_state(
        _HISTOGRAM.unpack(
            reader.take(_HISTOGRAM.size, f"shard {shard_id} query histogram")
        )
    )
    telemetry = ShardTelemetry.from_state(
        shard_id,
        {
            "inserts": inserts,
            "queries": queries,
            "positives": positives,
            "rotations": rotations,
            "insert_latency": insert_hist,
            "query_latency": query_hist,
        },
    )
    (block_len,) = _BLOCK_LEN.unpack(
        reader.take(_BLOCK_LEN.size, f"shard {shard_id} block length")
    )
    block = reader.take(block_len, f"shard {shard_id} filter block")
    return life, telemetry, block


def snapshot_gateway(gateway: "MembershipGateway") -> bytes:
    """Serialise ``gateway`` into one warm-restart payload."""
    parts = [
        _HEADER.pack(
            GATEWAY_MAGIC,
            GATEWAY_VERSION,
            gateway.shards,
            len(gateway.rotation_log),
            gateway.op_epoch,
        )
    ]
    for event in gateway.rotation_log:
        parts.append(
            _ROTATION.pack(
                event.shard_id,
                event.retired_weight,
                event.retired_insertions,
                event.retired_fill,
                event.op_epoch,
            )
        )
        parts.append(_pack_str(event.policy))
        parts.append(_pack_str(event.reason))
    for slot, telemetry in enumerate(gateway.telemetry):
        # The lifecycle section persists the shard's *total* operation
        # age (gateway base + the backend instance's counter), read in
        # the same sync probe the stats table uses.
        life = gateway.lifecycle[slot].to_state(
            gateway.backend.state(slot).age_ops
        )
        parts.extend(
            _pack_shard_section(
                life, telemetry.to_state(), gateway.backend.export_shard(slot)
            )
        )
    return b"".join(parts)


def parse_gateway_snapshot(raw: bytes) -> GatewaySnapshot:
    """Validate and parse a :func:`snapshot_gateway` payload."""
    from repro.service.gateway import RotationEvent

    reader = _SnapshotReader(raw, "gateway snapshot")
    magic, version, shards, rotation_count, op_epoch = _HEADER.unpack(
        reader.take(_HEADER.size, "header")
    )
    if magic != GATEWAY_MAGIC:
        raise SnapshotError(f"bad gateway snapshot magic {magic!r}")
    if not GATEWAY_MIN_VERSION <= version <= GATEWAY_VERSION:
        raise SnapshotError(f"unsupported gateway snapshot version {version}")
    rotation_log = []
    for _ in range(rotation_count):
        shard_id, weight, insertions, fill, event_epoch = _ROTATION.unpack(
            reader.take(_ROTATION.size, "rotation event")
        )
        policy = reader.take_str("rotation policy name")
        reason = reader.take_str("rotation reason")
        rotation_log.append(
            RotationEvent(
                shard_id=shard_id,
                retired_weight=weight,
                retired_fill=fill,
                retired_insertions=insertions,
                op_epoch=event_epoch,
                policy=policy,
                reason=reason,
            )
        )
    lifecycle: list[dict] = []
    telemetry: list[ShardTelemetry] = []
    filter_blocks: list[bytes] = []
    for shard_id in range(shards):
        life, shard_telemetry, block = _parse_shard_section(
            reader, shard_id, version
        )
        lifecycle.append(life)
        telemetry.append(shard_telemetry)
        filter_blocks.append(block)
    reader.expect_end()
    return GatewaySnapshot(
        shards=shards,
        op_epoch=op_epoch,
        rotation_log=rotation_log,
        lifecycle=lifecycle,
        telemetry=telemetry,
        filter_blocks=filter_blocks,
    )


def restore_gateway(gateway: "MembershipGateway", raw: bytes) -> None:
    """Load a snapshot into a gateway built from the same config.

    Shard filters are restored through the backend (so this works for
    local and process-pool deployments alike), then the rotation log,
    lifecycle state and telemetry are replaced.  Geometry mismatches
    abort before the first shard is touched, and a backend failure
    mid-apply rolls the already-restored shards back to their previous
    bits -- restore is all-or-nothing, the gateway stays usable either
    way.

    Shards whose persisted state shows a lived life (non-zero operation
    age) come back flagged *restored* -- the observation
    :class:`~repro.service.lifecycle.RotateOnRestorePolicy` expires --
    with the snapshot's own op-epoch as their restore epoch.
    """
    from repro.service.lifecycle import ShardLifecycleState

    snapshot = parse_gateway_snapshot(raw)
    if gateway.shard_ids != list(range(gateway.shards)):
        raise SnapshotError(
            "whole-gateway restore targets an identity shard mapping; "
            f"this gateway owns the subset {gateway.shard_ids} -- move "
            "shards with handoff blocks instead"
        )
    if snapshot.shards != gateway.shards:
        raise SnapshotError(
            f"snapshot holds {snapshot.shards} shards, gateway has {gateway.shards}"
        )
    # Dry-run the geometry check across every block first: restore must
    # be all-or-nothing, and backends validate only at apply time.
    backups: list[bytes] = []
    for shard_id, block in enumerate(snapshot.filter_blocks):
        # Header-only comparison: export_shard ships the current bits,
        # but the geometry probe reads headers without rebuilding.
        wanted = _block_geometry(block)
        backup = gateway.backend.export_shard(shard_id)
        current = _block_geometry(backup)
        if wanted != current:
            raise SnapshotError(
                f"shard {shard_id} snapshot is {wanted}, gateway shard is {current}"
            )
        backups.append(backup)
    applied: list[int] = []
    try:
        for shard_id, block in enumerate(snapshot.filter_blocks):
            gateway.backend.restore_shard(shard_id, block)
            applied.append(shard_id)
    except Exception:
        # Geometry already matched, so rolling the applied shards back
        # to their own exported bits cannot fail the same way.
        for shard_id in applied:
            gateway.backend.restore_shard(shard_id, backups[shard_id])
        raise
    gateway.rotation_log[:] = snapshot.rotation_log
    gateway._telemetry[:] = snapshot.telemetry
    gateway.op_epoch = snapshot.op_epoch
    gateway.lifecycle[:] = [
        ShardLifecycleState.from_state(shard_id, state, restore_epoch=snapshot.op_epoch)
        for shard_id, state in enumerate(snapshot.lifecycle)
    ]


def snapshot_shard(gateway: "MembershipGateway", shard_id: int) -> bytes:
    """Serialise one owned shard into a handoff block (magic ``RGSB``).

    The caller (the gateway's handoff path) holds the shard's serving
    lock, so lifecycle, telemetry and filter bits are mutually
    consistent.  The payload wraps the gateway-snapshot v4 per-shard
    section, so a moved shard's bytes round-trip exactly.
    """
    slot = gateway._slot_of(shard_id)
    life = gateway.lifecycle[slot].to_state(
        gateway.backend.state(slot).age_ops
    )
    parts = [_SHARD_HEADER.pack(SHARD_BLOCK_MAGIC, SHARD_BLOCK_VERSION, shard_id)]
    parts.extend(
        _pack_shard_section(
            life,
            gateway._telemetry[slot].to_state(),
            gateway.backend.export_shard(slot),
        )
    )
    return b"".join(parts)


def parse_shard_block(raw: bytes) -> ShardBlock:
    """Validate and parse a :func:`snapshot_shard` handoff block.

    Every length is checked before any caller state changes, so a
    hostile or truncated block raises :class:`SnapshotError` without
    side effects.
    """
    reader = _SnapshotReader(raw, "shard handoff block")
    magic, version, shard_id = _SHARD_HEADER.unpack(
        reader.take(_SHARD_HEADER.size, "header")
    )
    if magic != SHARD_BLOCK_MAGIC:
        raise SnapshotError(f"bad shard block magic {magic!r}")
    if version != SHARD_BLOCK_VERSION:
        raise SnapshotError(f"unsupported shard block version {version}")
    life, telemetry, block = _parse_shard_section(
        reader, shard_id, GATEWAY_VERSION
    )
    reader.expect_end()
    return ShardBlock(
        shard_id=shard_id,
        lifecycle=life,
        telemetry=telemetry,
        filter_block=block,
    )


def save_snapshot(gateway: "MembershipGateway", path: str | Path) -> Path:
    """Write :func:`snapshot_gateway` output to ``path`` atomically-ish
    (tmp file + rename) and return the final path."""
    path = Path(path)
    tmp = path.with_suffix(path.suffix + ".tmp")
    tmp.write_bytes(snapshot_gateway(gateway))
    tmp.replace(path)
    return path


def load_snapshot(gateway: "MembershipGateway", path: str | Path) -> None:
    """Read a snapshot file and restore it into ``gateway``."""
    restore_gateway(gateway, Path(path).read_bytes())
