"""The routing client: batches to owning gateways, redirects followed.

:class:`ClusterClient` is gateway-shaped on the outside (``insert`` /
``query`` / ``insert_batch`` / ``query_batch``) and a router on the
inside: it splits every batch by the global shard each item hashes to,
looks the shard's owner up in its *local* copy of the
:class:`~repro.service.cluster.ownership.OwnershipMap`, and sends each
sub-batch to that node's transport (an in-process
:class:`~repro.service.gateway.MembershipGateway` or a
:class:`~repro.service.client.MembershipClient` over TCP -- anything
with the serving API).

The local map may be stale: shards move.  A gateway answering
:class:`~repro.exceptions.NotOwner` costs the client one retry round --
the redirect carries the new owner and epoch, the map applies it only
if *strictly newer* (a replayed or reordered redirect cannot roll the
view backwards), and the affected items go back into the next round.
Rounds are bounded by ``max_redirects``: a routing view that does not
converge (gateways disagreeing about ownership, a redirect loop) fails
loudly with :class:`~repro.exceptions.ProtocolError` instead of
spinning.
"""

from __future__ import annotations

import asyncio
from typing import Mapping, Sequence

from repro.exceptions import NotOwner, ParameterError, ProtocolError
from repro.service.cluster.ownership import OwnershipMap
from repro.service.cluster.ring import ShardPicker

__all__ = ["ClusterClient"]


class ClusterClient:
    """Route batches across a cluster of membership gateways.

    Parameters
    ----------
    transports:
        Node name -> transport (gateway-shaped: ``insert_batch`` /
        ``query_batch`` coroutines).  Must cover every owner the
        ownership map can name.
    ownership:
        The client's *own* view of shard ownership (take
        ``OwnershipMap.copy()`` of the authoritative map; redirects
        mutate it).
    picker:
        The item router -- must match the gateways' picker, or routed
        batches bounce forever.
    max_redirects:
        Redirect rounds one logical batch may consume before the client
        declares the routing view non-convergent.
    retry_backoff_s:
        Sleep before retrying when a redirect taught the map nothing
        new (the move's epoch has not reached the gateway yet); keeps a
        tight in-process race from busy-spinning.
    """

    def __init__(
        self,
        transports: Mapping[str, object],
        ownership: OwnershipMap,
        picker: ShardPicker,
        max_redirects: int = 8,
        retry_backoff_s: float = 0.005,
    ) -> None:
        if not transports:
            raise ParameterError("a cluster client needs at least one transport")
        if max_redirects < 0:
            raise ParameterError("max_redirects must be non-negative")
        if retry_backoff_s < 0:
            raise ParameterError("retry_backoff_s must be non-negative")
        missing = [
            node for node in ownership.nodes() if node not in transports
        ]
        if missing:
            raise ParameterError(
                f"ownership names nodes with no transport: {missing}"
            )
        self.transports = dict(transports)
        self.ownership = ownership
        self.picker = picker
        self.max_redirects = max_redirects
        self.retry_backoff_s = retry_backoff_s
        #: Redirect rounds taken over the client's lifetime (telemetry).
        self.redirects_followed = 0

    # ------------------------------------------------------------------
    # Serving API (gateway-shaped)
    # ------------------------------------------------------------------

    async def insert(self, item: str | bytes, client: str = "anon") -> bool:
        """Insert one item on its owning gateway."""
        return (await self._run("insert", [item], client))[0]

    async def query(self, item: str | bytes, client: str = "anon") -> bool:
        """Membership query on the item's owning gateway."""
        return (await self._run("query", [item], client))[0]

    async def insert_batch(
        self, items: Sequence[str | bytes], client: str = "anon"
    ) -> list[bool]:
        """Insert a batch, split per owning gateway."""
        if not items:
            return []
        return await self._run("insert", list(items), client)

    async def query_batch(
        self, items: Sequence[str | bytes], client: str = "anon"
    ) -> list[bool]:
        """Query a batch, split per owning gateway."""
        if not items:
            return []
        return await self._run("query", list(items), client)

    # ------------------------------------------------------------------
    # Routing core
    # ------------------------------------------------------------------

    def _transport_of(self, node: str):
        transport = self.transports.get(node)
        if transport is None:
            raise ProtocolError(
                f"redirect names node {node!r} but the client has no "
                "transport for it"
            )
        return transport

    async def _run(
        self, op: str, items: list, client: str
    ) -> list[bool]:
        """Route one logical batch, following redirects until it lands.

        Item positions are tracked through every round so the reply
        order matches the caller's batch whatever sub-batches it split
        into (the same contract as the gateway's ``_fan_out``).
        """
        total = self.ownership.total_shards
        results: list[bool] = [False] * len(items)
        pending = list(range(len(items)))
        for round_no in range(self.max_redirects + 1):
            # Group the still-unanswered positions by owning node under
            # the *current* view (it may have learned from redirects).
            by_node: dict[str, list[int]] = {}
            for position in pending:
                shard = self.picker.pick(items[position], total)
                by_node.setdefault(
                    self.ownership.owner_of(shard), []
                ).append(position)
            retry: list[int] = []
            learned = False
            for node, positions in by_node.items():
                transport = self._transport_of(node)
                batch = [items[p] for p in positions]
                try:
                    if op == "insert":
                        answers = await transport.insert_batch(batch, client=client)
                    else:
                        answers = await transport.query_batch(batch, client=client)
                except NotOwner as exc:
                    # The gateway refuses before mutating anything, so
                    # the whole sub-batch retries under the new view.
                    self.redirects_followed += 1
                    learned = (
                        self.ownership.note(exc.shard_id, exc.owner, exc.epoch)
                        or learned
                    )
                    retry.extend(positions)
                    continue
                for position, answer in zip(positions, answers):
                    results[position] = answer
            if not retry:
                return results
            pending = retry
            if not learned and self.retry_backoff_s:
                # The redirect taught us nothing (stale epoch or no
                # ownership view attached): give the move a moment to
                # land instead of hammering the same gateway.
                await asyncio.sleep(self.retry_backoff_s)
        raise ProtocolError(
            f"shard routing did not converge after {self.max_redirects} "
            f"redirect rounds ({len(pending)} items still bouncing)"
        )

    async def aclose(self) -> None:
        """Close every transport that has an ``aclose`` (TCP clients);
        in-process gateways are left running (the harness owns them)."""
        for transport in self.transports.values():
            closer = getattr(transport, "aclose", None)
            if closer is not None:
                await closer()

    async def __aenter__(self) -> "ClusterClient":
        return self

    async def __aexit__(self, *exc_info: object) -> None:
        await self.aclose()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"<ClusterClient nodes={sorted(self.transports)} "
            f"epoch={self.ownership.epoch} "
            f"redirects={self.redirects_followed}>"
        )
