"""Multi-gateway cluster tier: shard ownership, handoff, routing.

One :class:`~repro.service.gateway.MembershipGateway` used to own every
shard lock; this package scales the serving layer past one event loop by
making shard ownership explicit and movable:

* :mod:`~repro.service.cluster.ring` -- the shard routers (moved here
  from ``service/sharding.py``, with a parsed spec grammar) and a
  consistent-hash ring with virtual nodes that assigns global shard ids
  to gateway nodes, in a public (Murmur) or keyed (SipHash) variant;
* :mod:`~repro.service.cluster.ownership` -- the epoch-versioned
  ownership map: every shard move bumps the epoch, which is what lets a
  gateway reject stale handoffs and a client discard stale redirects;
* :mod:`~repro.service.cluster.client` -- :class:`ClusterClient`, which
  routes each batch to the owning gateway under its own (possibly
  stale) view and transparently follows ``NotOwner`` redirects carrying
  the new epoch;
* :mod:`~repro.service.cluster.harness` -- :class:`ClusterHarness`, N
  gateways on one loop (in-process or each behind its own TCP server)
  plus the gateway-shaped :class:`ClusterView` facade so the
  adversarial traffic driver runs unchanged against the whole cluster.

Ownership movement is *snapshot handoff*: the losing gateway exports
the shard's versioned block (filter bits + lifecycle scratch +
telemetry) under its serving lock, the gaining gateway restores it
byte-identically, and the epoch bump invalidates every stale route.
"""

from repro.service.cluster.ownership import OwnershipMap
from repro.service.cluster.ring import (
    HashRing,
    HashShardPicker,
    KeyedShardPicker,
    ShardPicker,
    parse_picker,
)

# The client and harness sit above the gateway (which itself imports the
# ring), so they load lazily -- importing `repro.service.cluster.ring`
# from inside the gateway must not drag the whole tier in a cycle.
_LAZY = {
    "ClusterClient": "repro.service.cluster.client",
    "ClusterHarness": "repro.service.cluster.harness",
    "ClusterView": "repro.service.cluster.harness",
}


def __getattr__(name: str):
    module_name = _LAZY.get(name)
    if module_name is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    import importlib

    return getattr(importlib.import_module(module_name), name)

__all__ = [
    "ClusterClient",
    "ClusterHarness",
    "ClusterView",
    "HashRing",
    "HashShardPicker",
    "KeyedShardPicker",
    "OwnershipMap",
    "ShardPicker",
    "parse_picker",
]
