"""The epoch-versioned shard ownership map.

One :class:`OwnershipMap` answers "which gateway serves shard S?" for
the whole global shard space, and stamps every answer with an *epoch* --
a monotonic version that bumps on every ownership move.  The epoch is
the cluster's staleness defence on both sides of the wire:

* a gateway adopting a shard rejects handoffs whose epoch is not newer
  than the epoch at which it last released that shard (a replayed
  handoff frame cannot resurrect a shard on its old owner);
* a routing client updates its local copy only from redirects carrying
  a *newer* epoch (a delayed or replayed ``ST_NOT_OWNER`` cannot roll
  the client's view backwards).

The authoritative map is shared by the gateways of one in-process
cluster (the harness owns it); clients hold independent :meth:`copy`
views that converge through redirects.
"""

from __future__ import annotations

from typing import Mapping

from repro.exceptions import ParameterError

__all__ = ["OwnershipMap"]


class OwnershipMap:
    """Shard id -> owning node, versioned by a monotonic epoch.

    Parameters
    ----------
    assignment:
        Owner for every shard id in ``[0, total_shards)`` -- the map
        covers the *whole* global space, always; partial maps are a
        routing hole, not a configuration.
    epoch:
        Starting version (defaults to 1; 0 is reserved for "no view"
        in redirects).
    """

    def __init__(self, assignment: Mapping[int, str], epoch: int = 1) -> None:
        if not assignment:
            raise ParameterError("ownership map cannot be empty")
        total = len(assignment)
        if sorted(assignment) != list(range(total)):
            raise ParameterError(
                "ownership map must cover contiguous shard ids "
                f"0..{total - 1}, got {sorted(assignment)}"
            )
        if any(not isinstance(owner, str) or not owner for owner in assignment.values()):
            raise ParameterError("shard owners must be non-empty node names")
        if epoch <= 0:
            raise ParameterError(f"epoch must be positive, got {epoch}")
        self._owners = {shard: assignment[shard] for shard in range(total)}
        self.epoch = epoch

    @classmethod
    def from_ring(cls, ring, total_shards: int, epoch: int = 1) -> "OwnershipMap":
        """Seed a map from a :class:`~repro.service.cluster.ring.HashRing`."""
        return cls(ring.assign(total_shards), epoch=epoch)

    @property
    def total_shards(self) -> int:
        """Size of the global shard space this map covers."""
        return len(self._owners)

    def owner_of(self, shard_id: int) -> str:
        """The node currently owning ``shard_id``."""
        owner = self._owners.get(shard_id)
        if owner is None:
            raise ParameterError(
                f"shard_id {shard_id} outside the map's space "
                f"[0, {self.total_shards})"
            )
        return owner

    def shards_of(self, node: str) -> tuple[int, ...]:
        """Every shard id ``node`` owns, ascending (possibly empty)."""
        return tuple(
            shard for shard, owner in self._owners.items() if owner == node
        )

    def nodes(self) -> tuple[str, ...]:
        """Distinct owner names, sorted."""
        return tuple(sorted(set(self._owners.values())))

    def move(self, shard_id: int, new_owner: str) -> int:
        """Reassign one shard and bump the epoch; returns the new epoch.

        This is the *authoritative* mutation (the harness calls it after
        a successful handoff).  Moving a shard to its current owner is a
        no-op that does not burn an epoch.
        """
        if not isinstance(new_owner, str) or not new_owner:
            raise ParameterError("new_owner must be a non-empty node name")
        current = self.owner_of(shard_id)
        if current == new_owner:
            return self.epoch
        self._owners[shard_id] = new_owner
        self.epoch += 1
        return self.epoch

    def note(self, shard_id: int, owner: str, epoch: int) -> bool:
        """Apply a redirect's hint to this (client-side) view.

        Only a strictly newer epoch is believed -- a stale or replayed
        redirect is ignored.  Returns whether the view changed.
        """
        if epoch <= self.epoch or not owner:
            return False
        self.owner_of(shard_id)  # bounds check
        self._owners[shard_id] = owner
        self.epoch = epoch
        return True

    def copy(self) -> "OwnershipMap":
        """An independent snapshot of this map (a client's starting view)."""
        return OwnershipMap(dict(self._owners), epoch=self.epoch)

    def assignment(self) -> dict[int, str]:
        """Plain-dict view of the current shard -> owner table."""
        return dict(self._owners)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"<OwnershipMap epoch={self.epoch} shards={self.total_shards} "
            f"nodes={list(self.nodes())}>"
        )
