"""N gateways, one loop: the in-process (or tcp-local) cluster harness.

:class:`ClusterHarness` builds the whole tier from one
:class:`~repro.service.config.ServiceConfig`: a consistent-hash ring
assigns the global shard space to named nodes, every node gets a
:class:`~repro.service.gateway.MembershipGateway` owning exactly its
subset, and :meth:`client` mints routing
:class:`~repro.service.cluster.client.ClusterClient` views.  Two modes:

* ``"inproc"`` -- transports are the gateway objects themselves; zero
  wire cost, and :meth:`move_shard` is atomic with respect to client
  requests (no awaits between the release completing and the ownership
  map bumping);
* ``"tcp"`` -- each gateway sits behind its own
  :class:`~repro.service.server.MembershipServer` on a loopback port
  and transports are :class:`~repro.service.client.MembershipClient`
  connections, so redirects and handoffs cross a real codec round trip.

:class:`ClusterView` is the other half of the bargain: a gateway-shaped
facade over the whole cluster (total shard space, concatenated
lifecycle/telemetry, white-box shard views routed to the owning node)
so the adversarial traffic driver -- written against one gateway --
drives N of them unchanged.
"""

from __future__ import annotations

import asyncio
from typing import Sequence

from repro.core.bloom import BloomFilter
from repro.countermeasures.keyed import KeyedBloomFilter
from repro.exceptions import ParameterError
from repro.service.cluster.client import ClusterClient
from repro.service.cluster.ownership import OwnershipMap
from repro.service.cluster.ring import (
    HashRing,
    HashShardPicker,
    KeyedShardPicker,
    ShardPicker,
    parse_picker,
)
from repro.service.config import ServiceConfig
from repro.service.gateway import MembershipGateway
from repro.service.lifecycle import FillThresholdPolicy, parse_policy
from repro.service.telemetry import render_snapshots

__all__ = ["ClusterHarness", "ClusterView"]


class _ClusterCoalesceTelemetry:
    """Summed coalescer counters across the cluster's gateways (the
    driver reads ``requests``/``flushes`` for its report)."""

    def __init__(self, gateways: dict[str, MembershipGateway]) -> None:
        self._gateways = gateways

    @property
    def requests(self) -> int:
        return sum(g.coalesce_telemetry.requests for g in self._gateways.values())

    @property
    def flushes(self) -> int:
        return sum(g.coalesce_telemetry.flushes for g in self._gateways.values())


class ClusterView:
    """Gateway-shaped facade over a whole cluster.

    Exposes the attribute surface the adversarial traffic driver (and
    the reporting helpers) expect from one gateway -- total shard count,
    the item router, white-box shard views, lifecycle/telemetry/rotation
    aggregates -- with every per-shard access routed to the owning
    gateway through the authoritative ownership map.  Serving calls go
    through a routing client, so redirects behave exactly as they would
    for an external caller.
    """

    def __init__(self, harness: "ClusterHarness") -> None:
        self._harness = harness
        self._client = harness.client()
        self.picker = harness.picker
        self.coalesce_telemetry = _ClusterCoalesceTelemetry(harness.gateways)

    # -- sizing and routing -------------------------------------------

    @property
    def shards(self) -> int:
        """The *global* shard count (what the router picks over)."""
        return self._harness.ownership.total_shards

    @property
    def total_shards(self) -> int:
        return self._harness.ownership.total_shards

    @property
    def max_batch(self) -> int | None:
        """The tightest per-gateway admission burst (``None`` when every
        gateway is unlimited)."""
        limits = [
            g.max_batch
            for g in self._harness.gateways.values()
            if g.max_batch is not None
        ]
        return min(limits) if limits else None

    def shard_of(self, item: str | bytes) -> int:
        return self.picker.pick(item, self.shards)

    def _owning_gateway(self, shard_id: int) -> MembershipGateway:
        return self._harness.gateways[
            self._harness.ownership.owner_of(shard_id)
        ]

    def shard_view(self, shard_id: int):
        """The owning gateway's white-box view of one global shard."""
        return self._owning_gateway(shard_id).shard_view(shard_id)

    def shard_state(self, shard_id: int):
        return self._owning_gateway(shard_id).shard_state(shard_id)

    # -- serving (routed) ---------------------------------------------

    async def insert(self, item, client: str = "anon") -> bool:
        return await self._client.insert(item, client=client)

    async def query(self, item, client: str = "anon") -> bool:
        return await self._client.query(item, client=client)

    async def insert_batch(self, items, client: str = "anon") -> list[bool]:
        return await self._client.insert_batch(items, client=client)

    async def query_batch(self, items, client: str = "anon") -> list[bool]:
        return await self._client.query_batch(items, client=client)

    # -- aggregates ----------------------------------------------------

    @property
    def lifecycle(self) -> list:
        """Every shard's lifecycle state, ordered by global shard id."""
        out = []
        for shard_id in range(self.shards):
            gateway = self._owning_gateway(shard_id)
            out.append(gateway.lifecycle[gateway._slots[shard_id]])
        return out

    @property
    def rotations(self) -> int:
        return sum(g.rotations for g in self._harness.gateways.values())

    @property
    def rotation_log(self) -> list:
        """All gateways' rotation events, ordered by op epoch."""
        events = [
            event
            for gateway in self._harness.gateways.values()
            for event in gateway.rotation_log
        ]
        events.sort(key=lambda event: event.op_epoch)
        return events

    def snapshot(self) -> list:
        """Per-shard snapshots across the cluster, ordered by shard id."""
        rows = [
            snapshot
            for gateway in self._harness.gateways.values()
            for snapshot in gateway.snapshot()
        ]
        rows.sort(key=lambda row: row.shard_id)
        return rows

    def configure_coalescing(self, window_us: int = 0, max_batch: int = 0) -> None:
        for gateway in self._harness.gateways.values():
            gateway.configure_coalescing(window_us, max_batch)

    def render_stats(self) -> str:
        """Cluster-wide stats table plus a per-node ownership line."""
        lines = [render_snapshots(self.snapshot()), ""]
        ownership = self._harness.ownership
        lines.append(f"ownership epoch {ownership.epoch}:")
        for node in ownership.nodes():
            shards = ",".join(str(s) for s in ownership.shards_of(node))
            lines.append(f"  {node}: shards [{shards or '-'}]")
        return "\n".join(lines)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"<ClusterView nodes={len(self._harness.gateways)} "
            f"shards={self.shards} epoch={self._harness.ownership.epoch}>"
        )


class ClusterHarness:
    """Build and run one multi-gateway cluster on the current loop.

    Parameters
    ----------
    nodes:
        Gateway node names (ring membership).
    total_shards:
        Size of the global shard space split across the nodes.
    config:
        Per-gateway deployment knobs (geometry, rotation policy,
        admission, the item router).  The backend must be ``"local"`` --
        handoff moves backend slots dynamically, which the process pool
        does not support.
    ring_picker:
        Hash behind the *placement* ring (shard id -> node).  Public
        Murmur by default; pass a
        :class:`~repro.service.cluster.ring.KeyedShardPicker` to hide
        placement from the adversary.  Independent of the item router.
    vnodes:
        Virtual points per node on the ring.
    mode:
        ``"inproc"`` (default) or ``"tcp"`` (each gateway behind its own
        loopback server; requires :meth:`start`).
    """

    def __init__(
        self,
        nodes: Sequence[str],
        total_shards: int,
        config: ServiceConfig | None = None,
        ring_picker: ShardPicker | None = None,
        vnodes: int = 64,
        mode: str = "inproc",
    ) -> None:
        if mode not in ("inproc", "tcp"):
            raise ParameterError(f"mode must be 'inproc' or 'tcp', got {mode!r}")
        config = config or ServiceConfig()
        if config.backend != "local":
            raise ParameterError(
                "cluster gateways need the local backend: handoff "
                "attaches/detaches shard slots dynamically"
            )
        self.config = config
        self.mode = mode
        self.ring = HashRing(nodes, picker=ring_picker, vnodes=vnodes)
        self.ownership = OwnershipMap.from_ring(self.ring, total_shards)
        # One shared item router: gateways and clients must agree, and a
        # keyed picker with an unpinned key only exists as this object.
        if config.router is not None:
            self.picker: ShardPicker = parse_picker(config.router)
        elif config.keyed_routing:
            self.picker = KeyedShardPicker(config.routing_key)
        else:
            self.picker = HashShardPicker()
        self.gateways: dict[str, MembershipGateway] = {
            node: self._build_gateway(node) for node in self.ring.nodes
        }
        self._servers: dict[str, object] = {}
        self._server_addresses: dict[str, tuple[str, int]] = {}
        self._clients: list[object] = []
        self._move_lock = asyncio.Lock()
        self._started = mode == "inproc"

    def _build_gateway(self, node: str) -> MembershipGateway:
        config = self.config
        if config.keyed_filters:
            factory = lambda: KeyedBloomFilter(  # noqa: E731
                config.shard_m, config.shard_k, key=config.filter_key
            )
        else:
            factory = lambda: BloomFilter(config.shard_m, config.shard_k)  # noqa: E731
        # Policies are parsed per gateway: stateful wrappers must not
        # share scratch across nodes.
        if config.rotation_policy is not None:
            policy = parse_policy(config.rotation_policy)
        elif config.rotation_threshold is not None:
            policy = FillThresholdPolicy(config.rotation_threshold)
        else:
            policy = None
        from repro.service.admission import ClientRateLimiter

        return MembershipGateway(
            factory,
            picker=self.picker,
            limiter=ClientRateLimiter(config.rate_limit, config.burst),
            policy=policy,
            coalesce_window_us=config.coalesce_window_us,
            coalesce_max_batch=config.coalesce_max_batch,
            shard_ids=self.ownership.shards_of(node),
            total_shards=self.ownership.total_shards,
            name=node,
            ownership=self.ownership,
        )

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    async def start(self) -> "ClusterHarness":
        """Bind the per-node servers (tcp mode; no-op in-process)."""
        if self.mode == "tcp" and not self._started:
            from repro.service.server import MembershipServer

            for node, gateway in self.gateways.items():
                server = MembershipServer(
                    gateway, pipeline_depth=self.config.pipeline_depth
                )
                self._server_addresses[node] = await server.start()
                self._servers[node] = server
            self._started = True
        return self

    def client(self, max_redirects: int = 8) -> ClusterClient:
        """A routing client with its own (initially current) ownership
        view; in tcp mode each call opens fresh per-node connections."""
        if not self._started:
            raise ParameterError("start() the tcp harness before client()")
        if self.mode == "inproc":
            transports: dict[str, object] = dict(self.gateways)
        else:
            from repro.service.client import MembershipClient

            transports = {}
            for node, (host, port) in self._server_addresses.items():
                transport = MembershipClient(
                    host, port, pipeline=self.config.pipeline_depth
                )
                transports[node] = transport
                self._clients.append(transport)
        return ClusterClient(
            transports,
            self.ownership.copy(),
            picker=self.picker,
            max_redirects=max_redirects,
        )

    @property
    def view(self) -> ClusterView:
        """A fresh gateway-shaped facade over the whole cluster."""
        return ClusterView(self)

    # ------------------------------------------------------------------
    # Rebalancing
    # ------------------------------------------------------------------

    async def move_shard(self, shard_id: int, to_node: str) -> int:
        """Move one shard to ``to_node`` by snapshot handoff.

        The losing gateway exports and drops the shard under its serving
        lock; the gaining gateway restores it byte-identically (over the
        wire in tcp mode); the authoritative map bumps its epoch last,
        so clients racing the move see ``NotOwner`` redirects, never a
        half-moved shard.  Returns the new ownership epoch.  A no-op
        when ``to_node`` already owns the shard.
        """
        if to_node not in self.gateways:
            raise ParameterError(f"unknown node {to_node!r}")
        async with self._move_lock:
            source = self.ownership.owner_of(shard_id)
            if source == to_node:
                return self.ownership.epoch
            epoch = self.ownership.epoch + 1
            block = await self.gateways[source].release_shard(shard_id, epoch)
            try:
                if self.mode == "tcp":
                    from repro.service.client import MembershipClient

                    host, port = self._server_addresses[to_node]
                    courier = MembershipClient(host, port)
                    try:
                        await courier.handoff(shard_id, epoch, block)
                    finally:
                        await courier.aclose()
                else:
                    self.gateways[to_node].adopt_shard(shard_id, epoch, block)
            except Exception:
                # The move failed after release: re-adopt on the source
                # (epoch + 1 beats its own release record) so the shard
                # is never orphaned.  The map never bumped, so clients
                # kept routing to the source all along.
                self.gateways[source].adopt_shard(shard_id, epoch + 1, block)
                raise
            return self.ownership.move(shard_id, to_node)

    async def aclose(self) -> None:
        """Close clients, servers and every gateway's backend."""
        for transport in self._clients:
            closer = getattr(transport, "aclose", None)
            if closer is not None:
                await closer()
        self._clients.clear()
        for server in self._servers.values():
            await server.aclose()
        self._servers.clear()
        for gateway in self.gateways.values():
            gateway.close()

    async def __aenter__(self) -> "ClusterHarness":
        return await self.start()

    async def __aexit__(self, *exc_info: object) -> None:
        await self.aclose()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"<ClusterHarness mode={self.mode} nodes={list(self.ring.nodes)} "
            f"shards={self.ownership.total_shards} "
            f"epoch={self.ownership.epoch}>"
        )
