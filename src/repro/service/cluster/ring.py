"""Shard routers and the consistent-hash ring for the cluster tier.

The shard pickers lived in ``service/sharding.py`` while one gateway
owned every shard; the cluster tier reuses the exact same hash choice
one layer up (shard id -> owning gateway node), so they moved here and
``sharding.py`` re-exports them.  The adversarial framing carries over
unchanged: a *public* Murmur ring lets the adversary compute both the
item's shard and the shard's node offline (aim every crafted item at
one shard of one gateway), while a *keyed* SipHash ring reduces the
attacker to spraying -- the same MAC countermeasure as
:mod:`repro.countermeasures.keyed`, applied to placement.

Pickers also gained a parsed spec grammar mirroring
:func:`~repro.service.lifecycle.parse_policy`: ``picker.spec()`` emits
``"murmur:0x5a4d"`` / ``"siphash:<32-hex-key>"`` and
:func:`parse_picker` round-trips it, so ring/router choice is a
validated :class:`~repro.service.config.ServiceConfig` string knob
instead of a constructed object.

:class:`HashRing` is the placement rule: each node projects ``vnodes``
virtual points onto the hash circle, each shard id hashes to a point,
and the shard belongs to the first node point at or after it (wrapping).
Virtual nodes smooth the split; consistent hashing keeps it *stable* --
removing a node moves only that node's shards, everything else stays
put, which is what makes rebalancing a handful of snapshot handoffs
instead of a full reshuffle.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from bisect import bisect_right
from typing import Sequence

from repro.countermeasures.keyed import generate_key
from repro.exceptions import ConfigError, ParameterError
from repro.hashing.murmur import Murmur3_32
from repro.hashing.siphash import SipHash24

__all__ = [
    "ShardPicker",
    "HashShardPicker",
    "KeyedShardPicker",
    "parse_picker",
    "HashRing",
]

#: Default Murmur routing seed (the historical public-router seed).
DEFAULT_MURMUR_SEED = 0x5A4D


class ShardPicker(ABC):
    """A rule assigning items to shards; stateless, like an IndexStrategy."""

    #: Display name for telemetry tables.
    name: str = "picker"

    @abstractmethod
    def pick(self, item: str | bytes, shard_count: int) -> int:
        """Return the owning shard in ``[0, shard_count)``."""

    def hash_item(self, item: str | bytes) -> int:
        """The raw routing hash of ``item`` (before any modulo).

        The ring places nodes and shards with this, so ring placement
        inherits the picker's public/keyed character.
        """
        hash_fn = getattr(self, "_hash", None)
        if hash_fn is None:  # pragma: no cover - custom pickers only
            raise ParameterError(
                f"{type(self).__name__} exposes no routing hash; "
                "override hash_item() to use it on a ring"
            )
        return hash_fn.hash_int(item)

    def spec(self) -> str:
        """Canonical spec string; :func:`parse_picker` round-trips it."""
        raise ConfigError(f"picker {type(self).__name__} has no spec form")

    def _check(self, shard_count: int) -> None:
        if shard_count <= 0:
            raise ParameterError(f"shard_count must be positive, got {shard_count}")

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<{type(self).__name__} {self.name}>"


class HashShardPicker(ShardPicker):
    """Public MurmurHash3 routing -- fast, uniform, and fully predictable.

    This is how real deployments shard (consistent hashing over a public
    function); it is also the adversary's entry point, since anyone can
    evaluate the route offline and craft items that all land on one
    shard.
    """

    def __init__(self, seed: int = DEFAULT_MURMUR_SEED) -> None:
        self._hash = Murmur3_32(seed)
        self.seed = seed
        self.name = f"murmur3(seed={seed:#x})"

    def pick(self, item: str | bytes, shard_count: int) -> int:
        self._check(shard_count)
        return self._hash.hash_int(item) % shard_count

    def spec(self) -> str:
        return f"murmur:{self.seed:#x}"


class KeyedShardPicker(ShardPicker):
    """Secret-keyed SipHash routing: the keyed countermeasure for the router.

    Without the key an adversary cannot predict which shard an item hits,
    so aimed pollution degrades to uniform spraying -- each shard absorbs
    only ``1/shard_count`` of the crafted stream.
    """

    def __init__(self, key: bytes | None = None) -> None:
        self.key = key if key is not None else generate_key(16)
        if len(self.key) != 16:
            raise ParameterError("SipHash routing requires a 16-byte key")
        self._hash = SipHash24(self.key)
        self.name = "siphash(keyed)"

    def pick(self, item: str | bytes, shard_count: int) -> int:
        self._check(shard_count)
        return self._hash.hash_int(item) % shard_count

    def spec(self) -> str:
        # The spec *is* the secret; treat spec strings for keyed pickers
        # like the key material they carry.
        return f"siphash:{self.key.hex()}"


def parse_picker(spec: str) -> ShardPicker:
    """Build a picker from its spec string (inverse of ``picker.spec()``).

    Grammar::

        "murmur"             -> HashShardPicker()            (default seed)
        "murmur:<int>"       -> HashShardPicker(seed)        (0x-hex or decimal)
        "siphash"            -> KeyedShardPicker()           (fresh random key)
        "siphash:<32 hex>"   -> KeyedShardPicker(bytes.fromhex(key))

    Raises :class:`~repro.exceptions.ConfigError` on unknown kinds,
    malformed arguments, wrong key lengths and trailing garbage --
    mirroring :func:`~repro.service.lifecycle.parse_policy` so configs
    fail at build time, not at serve time.
    """
    if not isinstance(spec, str):
        raise ConfigError(f"picker spec must be a string, got {type(spec).__name__}")
    text = spec.strip()
    if not text:
        raise ConfigError("picker spec is empty")
    kind, sep, arg = text.partition(":")
    if kind == "murmur":
        if not sep:
            return HashShardPicker()
        try:
            seed = int(arg, 0)
        except ValueError as exc:
            raise ConfigError(f"bad murmur seed {arg!r} in picker spec") from exc
        if not 0 <= seed <= 0xFFFFFFFF:
            raise ConfigError(f"murmur seed {arg} outside the u32 range")
        return HashShardPicker(seed)
    if kind == "siphash":
        if not sep or not arg:
            return KeyedShardPicker()
        try:
            key = bytes.fromhex(arg)
        except ValueError as exc:
            raise ConfigError(f"bad siphash key {arg!r} in picker spec") from exc
        if len(key) != 16:
            raise ConfigError(
                f"siphash key must be 32 hex chars (16 bytes), got {len(key)} bytes"
            )
        return KeyedShardPicker(key)
    raise ConfigError(f"unknown picker kind {kind!r} (expected murmur or siphash)")


class HashRing:
    """Consistent-hash placement of global shard ids onto named nodes.

    Parameters
    ----------
    nodes:
        Gateway node names; order is cosmetic, placement depends only on
        the names' hashes.
    picker:
        The hash behind the ring.  A public
        :class:`HashShardPicker` makes placement offline-computable (the
        adversary's ring); a :class:`KeyedShardPicker` hides it.
        Defaults to the public router.
    vnodes:
        Virtual points per node.  More points = smoother shard split
        and smaller movement on membership change, at O(nodes * vnodes
        * log) build cost.
    """

    def __init__(
        self,
        nodes: Sequence[str],
        picker: ShardPicker | None = None,
        vnodes: int = 64,
    ) -> None:
        if not nodes:
            raise ParameterError("a ring needs at least one node")
        if len(set(nodes)) != len(nodes):
            raise ParameterError(f"ring nodes must be unique, got {list(nodes)}")
        if any(not isinstance(node, str) or not node for node in nodes):
            raise ParameterError("ring node names must be non-empty strings")
        if vnodes <= 0:
            raise ParameterError(f"vnodes must be positive, got {vnodes}")
        self.nodes = tuple(nodes)
        self.picker = picker or HashShardPicker()
        self.vnodes = vnodes
        # Ties on a hash point resolve by node name (sort on the pair),
        # so placement is deterministic whatever order nodes were given.
        points = sorted(
            (self.picker.hash_item(f"{node}#{i}"), node)
            for node in nodes
            for i in range(vnodes)
        )
        self._keys = [key for key, _ in points]
        self._owners = [node for _, node in points]

    def node_for(self, key: str | bytes) -> str:
        """The node owning ``key``: first ring point at or after its hash."""
        index = bisect_right(self._keys, self.picker.hash_item(key))
        return self._owners[index % len(self._owners)]

    def owner_of_shard(self, shard_id: int) -> str:
        """The node a global shard id places on."""
        if shard_id < 0:
            raise ParameterError(f"shard_id must be non-negative, got {shard_id}")
        return self.node_for(f"shard:{shard_id}")

    def assign(self, total_shards: int) -> dict[int, str]:
        """Shard id -> owning node for the whole global shard space."""
        if total_shards <= 0:
            raise ParameterError(
                f"total_shards must be positive, got {total_shards}"
            )
        return {
            shard_id: self.owner_of_shard(shard_id)
            for shard_id in range(total_shards)
        }

    def with_nodes(self, nodes: Sequence[str]) -> "HashRing":
        """A new ring over ``nodes`` with the same picker and vnodes.

        Diffing ``assign()`` between the two rings is how a rebalance
        plan is computed: consistent hashing guarantees only shards
        whose owner left (or that a new node's points capture) move.
        """
        return HashRing(nodes, picker=self.picker, vnodes=self.vnodes)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"<HashRing nodes={list(self.nodes)} vnodes={self.vnodes} "
            f"picker={self.picker.name}>"
        )
