"""Admission control: per-client rate limiting and the saturation guard.

Two of the paper's attack classes are resource attacks -- pollution
pushes a filter toward saturation, query blowup burns server time -- and
both are cheapest when the service admits unlimited traffic.  This
module supplies the deployment-side brakes: a token-bucket rate limiter
keyed by client id, and a saturation guard that watches each shard's
fill ratio and triggers rotation (a fresh filter) once it crosses a
threshold -- the recycled-filter countermeasure, operationalized.
"""

from __future__ import annotations

import time
from typing import Callable

from repro.exceptions import ParameterError, ReproError

__all__ = [
    "RateLimited",
    "TokenBucket",
    "ClientRateLimiter",
    "SaturationGuard",
    "filter_state",
]


def filter_state(filt: object) -> tuple[int, float]:
    """(hamming weight, fill ratio) of any filter-like object.

    Accepts either property or method spellings (``BloomFilter`` exposes
    properties, ``BitVector`` methods); objects without the attributes
    report ``(0, 0.0)``.  The saturation guard, the gateway's telemetry
    and the traffic driver all read shard state through this one probe.
    """
    weight = getattr(filt, "hamming_weight", 0)
    fill = getattr(filt, "fill_ratio", 0.0)
    return (
        weight() if callable(weight) else weight,
        fill() if callable(fill) else fill,
    )


class RateLimited(ReproError):
    """An operation was rejected by admission control.

    Attributes
    ----------
    client:
        The client id whose budget was exhausted.
    """

    def __init__(self, client: str):
        super().__init__(f"client {client!r} exceeded its admission rate")
        self.client = client


class TokenBucket:
    """Classic token bucket: ``rate`` tokens/second, capacity ``burst``."""

    __slots__ = ("rate", "burst", "_tokens", "_last")

    def __init__(self, rate: float, burst: int, now: float) -> None:
        if rate <= 0:
            raise ParameterError("rate must be positive")
        if burst <= 0:
            raise ParameterError("burst must be positive")
        self.rate = rate
        self.burst = burst
        self._tokens = float(burst)
        self._last = now

    def try_acquire(self, tokens: int, now: float) -> bool:
        """Take ``tokens`` if available; refill happens lazily on call."""
        self._tokens = min(self.burst, self._tokens + (now - self._last) * self.rate)
        self._last = now
        if self._tokens >= tokens:
            self._tokens -= tokens
            return True
        return False


class ClientRateLimiter:
    """Per-client token buckets with a shared rate/burst policy.

    Parameters
    ----------
    rate:
        Admitted operations per second per client; ``None`` disables
        limiting entirely (every ``admit`` succeeds).
    burst:
        Bucket capacity; batch calls of up to this size pass at once.
    clock:
        Injectable monotonic clock (tests pin it to a counter).
    max_clients:
        Cap on tracked buckets.  Client ids come from untrusted callers,
        so without a bound an attacker minting fresh ids per request
        would grow the table forever; past the cap the oldest bucket is
        evicted (that client restarts from a full burst -- a small
        leniency, never a lockout).
    """

    def __init__(
        self,
        rate: float | None,
        burst: int = 64,
        clock: Callable[[], float] = time.monotonic,
        max_clients: int = 10_000,
    ) -> None:
        if rate is not None and rate <= 0:
            raise ParameterError("rate must be positive (or None)")
        if max_clients <= 0:
            raise ParameterError("max_clients must be positive")
        self.rate = rate
        self.burst = burst
        self.max_clients = max_clients
        self._clock = clock
        self._buckets: dict[str, TokenBucket] = {}
        self.denied = 0

    def admit(self, client: str, tokens: int = 1) -> bool:
        """True if ``client`` may perform ``tokens`` operations now."""
        if self.rate is None:
            return True
        now = self._clock()
        bucket = self._buckets.get(client)
        if bucket is None:
            if len(self._buckets) >= self.max_clients:
                self._buckets.pop(next(iter(self._buckets)))
            bucket = self._buckets[client] = TokenBucket(self.rate, self.burst, now)
        if bucket.try_acquire(tokens, now):
            return True
        self.denied += 1
        return False


class SaturationGuard:
    """Rotate a shard once its fill ratio crosses ``threshold``.

    Legacy interface: the gateway now delegates rotation to the
    :mod:`repro.service.lifecycle` policy layer, and a guard handed to
    it is mapped onto an equivalent :class:`~repro.service.lifecycle.
    FillThresholdPolicy` (via :func:`~repro.service.lifecycle.
    policy_from_guard`).  The class stays because the threshold rule is
    the sensible default and plenty of callers build one directly.

    The guard is deliberately dumb -- it looks at one number the filter
    already maintains -- because that is what makes it deployable: no
    attack detection, no per-client attribution, just a bound on how
    much damage any insertion stream (honest or crafted) can do before
    the filter is recycled.  The paper's pollution attack saturates a
    shard *faster* than honest traffic, so under this guard the attack's
    main effect becomes triggering earlier rotations.
    """

    def __init__(self, threshold: float = 0.5) -> None:
        if not 0 < threshold <= 1:
            raise ParameterError("threshold must be in (0, 1]")
        self.threshold = threshold

    def should_rotate(self, filt: object) -> bool:
        """True when ``filt`` reports a fill ratio at/above the threshold.

        Works with anything :func:`filter_state` understands; structures
        that report no fill ratio are never rotated.
        """
        return filter_state(filt)[1] >= self.threshold
