"""The membership gateway: N filter shards behind one serving API.

This is the serving layer the paper's attacks assume exists: a network
membership service (Squid digest peer, dupefilter RPC, spam-check
endpoint) fronting Bloom filters and fed by untrusted clients.  The
gateway hash-partitions the key space across shards, serialises access
per shard with an ``asyncio.Lock`` (so concurrent batches interleave
across shards but never corrupt one), records per-shard telemetry, and
runs admission control -- rate limiting on the way in, policy-driven
shard rotation (see :mod:`repro.service.lifecycle`) on the way out.

Since the layered refactor the gateway no longer owns its filters: a
:class:`~repro.service.backends.ShardBackend` does.  The default
:class:`~repro.service.backends.LocalBackend` keeps them in-process (the
original arrangement); a :class:`~repro.service.backends.
ProcessPoolBackend` runs each shard in its own worker process so the
CPU-bound hashing parallelises across cores.  Every backend returns the
shard's post-operation state with each batch, so rotation decisions cost
no extra hop.

Batches are first-class: ``query_batch``/``insert_batch`` group items by
shard and hand each group to the backend in one lock acquisition, which
is where the hot-path speedup of :mod:`repro.core.bitvector` (and, for
process backends, the per-core parallelism) actually pays off.

Since the cluster tier the gateway serves an *owned subset* of a global
shard space: ``shard_ids`` names the global ids this gateway holds (one
backend slot each) and ``total_shards`` sizes the space the router picks
over.  The default -- all of a ``total_shards``-sized space, identity
slot mapping -- is byte-identical to the single-gateway arrangement.  A
batch routed to an unowned shard raises
:class:`~repro.exceptions.NotOwner` *before any owned shard is touched*
(the server maps it to the ``ST_NOT_OWNER`` redirect), so a stale route
never half-applies a batch.  Ownership moves by snapshot handoff:
:meth:`release_shard` exports the shard's versioned block (bits +
lifecycle + telemetry) under its serving lock and drops the slot,
:meth:`adopt_shard` restores the block byte-identically on the gaining
gateway, and the ownership epoch carried with the handoff rejects
replays.
"""

from __future__ import annotations

import asyncio
import time
from dataclasses import dataclass
from functools import partial
from typing import TYPE_CHECKING, Callable, Sequence

from repro.core.bloom import BloomFilter
from repro.core.interfaces import MembershipFilter
from repro.countermeasures.keyed import KeyedBloomFilter, generate_key
from repro.exceptions import NotOwner, ParameterError
from repro.service.admission import (
    ClientRateLimiter,
    RateLimited,
    SaturationGuard,
)
from repro.service.backends import LocalBackend, ProcessPoolBackend, ShardBackend, ShardState
from repro.service.cluster.ring import (
    HashShardPicker,
    KeyedShardPicker,
    ShardPicker,
    parse_picker,
)
from repro.service.coalesce import MicroBatchCoalescer
from repro.service.config import ServiceConfig
from repro.service.lifecycle import (
    FillThresholdPolicy,
    RotationPolicy,
    ShardLifecycleState,
    parse_policy,
    policy_from_guard,
)
from repro.service.telemetry import (
    CoalesceTelemetry,
    ShardSnapshot,
    ShardTelemetry,
    render_snapshots,
)

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.service.cluster.ownership import OwnershipMap

__all__ = ["RotationEvent", "MembershipGateway"]


@dataclass(frozen=True)
class RotationEvent:
    """One lifecycle rotation: which shard retired what, when, and why.

    ``op_epoch`` is the gateway-wide monotonic operation count at the
    moment of rotation (a logical clock that survives snapshots, unlike
    wall time); ``policy``/``reason`` name the triggering policy and its
    machine-readable rule so rotation histories can be grouped.
    """

    shard_id: int
    retired_weight: int
    retired_fill: float
    retired_insertions: int
    op_epoch: int = 0
    policy: str = ""
    reason: str = ""


def _config_filter(m: int, k: int, keyed: bool, key: bytes | None) -> MembershipFilter:
    """Module-level shard factory (picklable, so it crosses to workers)."""
    if keyed:
        return KeyedBloomFilter(m, k, key=key)
    return BloomFilter(m, k)


class MembershipGateway:
    """Sharded membership service over any :class:`MembershipFilter`.

    Parameters
    ----------
    filter_factory:
        Zero-argument callable building one shard's filter; used to
        construct the default :class:`~repro.service.backends.
        LocalBackend` (and by it, again on every rotation).  Optional
        when an explicit ``backend`` is supplied.
    shards:
        Number of shards (ignored when ``backend`` is given -- the
        backend's count wins).
    picker:
        Shard router; defaults to the (attackable) public
        :class:`~repro.service.sharding.HashShardPicker`.
    guard:
        Legacy saturation guard; mapped onto the policy layer via
        :func:`~repro.service.lifecycle.policy_from_guard` when no
        explicit ``policy`` is given.
    policy:
        Shard rotation policy (see :mod:`repro.service.lifecycle`);
        wins over ``guard``.  ``None`` (with no guard) disables
        rotation.
    limiter:
        Per-client admission; defaults to unlimited.
    clock:
        Injectable latency clock (tests pin it).
    backend:
        Explicit shard backend; ``None`` builds a ``LocalBackend`` from
        ``filter_factory``.
    coalesce_window_us / coalesce_max_batch:
        Micro-batch coalescing knobs (see :mod:`repro.service.coalesce`).
        ``coalesce_max_batch`` of 0 (the default) disables coalescing --
        the serving path is then byte-identical to the pre-coalescer
        gateway.  When enabled, concurrent sub-batches aimed at the same
        shard merge into one backend call, flushed at ``max_batch``
        items or after ``window_us`` microseconds.
    shard_ids:
        Global shard ids this gateway owns, one backend slot each (in
        slot order).  ``None`` (the default) means "all of them":
        identity mapping over ``total_shards``.  Requires an explicit
        ``total_shards`` when given.
    total_shards:
        Size of the global shard space the router picks over; defaults
        to the owned count (the single-gateway arrangement).
    name:
        Node name, echoed in redirects and cluster reports.
    ownership:
        Optional shared :class:`~repro.service.cluster.ownership.
        OwnershipMap`; when present, ``NotOwner`` errors carry the
        current owner and epoch so clients can re-route in one hop.
    """

    def __init__(
        self,
        filter_factory: Callable[[], MembershipFilter] | None = None,
        shards: int = 4,
        picker: ShardPicker | None = None,
        guard: SaturationGuard | None = None,
        limiter: ClientRateLimiter | None = None,
        clock: Callable[[], float] = time.perf_counter,
        backend: ShardBackend | None = None,
        policy: RotationPolicy | None = None,
        coalesce_window_us: int = 0,
        coalesce_max_batch: int = 0,
        shard_ids: Sequence[int] | None = None,
        total_shards: int | None = None,
        name: str = "gateway",
        ownership: "OwnershipMap | None" = None,
    ) -> None:
        if backend is None:
            if filter_factory is None:
                raise ParameterError("provide a filter_factory or a backend")
            if shard_ids is None and shards <= 0:
                raise ParameterError(f"shards must be positive, got {shards}")
            backend = LocalBackend(
                filter_factory,
                shards if shard_ids is None else len(tuple(shard_ids)),
            )
        self.backend = backend
        self.filter_factory = filter_factory
        owned = backend.shards
        if shard_ids is None:
            if total_shards is None:
                total_shards = owned
            self.shard_ids = list(range(owned))
        else:
            if total_shards is None:
                raise ParameterError(
                    "shard_ids needs an explicit total_shards (the size of "
                    "the global space the owned subset comes from)"
                )
            self.shard_ids = [int(gid) for gid in shard_ids]
            if len(self.shard_ids) != owned:
                raise ParameterError(
                    f"{len(self.shard_ids)} shard_ids for a backend with "
                    f"{owned} slots"
                )
        if total_shards <= 0:
            raise ParameterError(
                f"total_shards must be positive, got {total_shards}"
            )
        if len(set(self.shard_ids)) != len(self.shard_ids):
            raise ParameterError(f"duplicate shard_ids: {self.shard_ids}")
        for gid in self.shard_ids:
            if not 0 <= gid < total_shards:
                raise ParameterError(
                    f"shard_id {gid} outside the global space "
                    f"[0, {total_shards})"
                )
        self.total_shards = total_shards
        self._slots = {gid: slot for slot, gid in enumerate(self.shard_ids)}
        # Epoch at which each shard was last released -- the replay
        # guard: a handoff may only bring a shard back with a newer one.
        self._released: dict[int, int] = {}
        self.name = name
        self.ownership = ownership
        self.picker = picker or HashShardPicker()
        self.guard = guard
        if policy is None and guard is not None:
            policy = policy_from_guard(guard)
        self.policy = policy
        self.limiter = limiter or ClientRateLimiter(None)
        self._clock = clock
        # All four lists are slot-indexed and always the same length;
        # handoff pops/appends the same index in each, so a slot's lock,
        # counters and lifecycle scratch travel together.
        self._locks = [asyncio.Lock() for _ in self.shard_ids]
        self._telemetry = [ShardTelemetry(gid) for gid in self.shard_ids]
        self.lifecycle = [ShardLifecycleState(gid) for gid in self.shard_ids]
        self.op_epoch = 0
        self.rotation_log: list[RotationEvent] = []
        # One telemetry object outlives configure_coalescing() toggles so
        # report deltas survive an on/off/on comparison run.
        self.coalesce_telemetry = CoalesceTelemetry()
        self._coalescer: MicroBatchCoalescer | None = None
        self.configure_coalescing(coalesce_window_us, coalesce_max_batch)

    @classmethod
    def from_config(cls, config: ServiceConfig) -> "MembershipGateway":
        """Build a gateway (backend, filters, router, admission) from one
        config.

        With ``backend="process"`` the shard factory must be
        deterministic so the workers, the parent's white-box views and
        any snapshot restore all agree -- an unpinned ``filter_key`` is
        therefore resolved to one fresh key *here* (shared by all
        shards) rather than drawn per shard as the local backend does.
        """
        if config.backend == "process":
            key = config.filter_key
            if config.keyed_filters and key is None:
                key = generate_key(16)
            factory: Callable[[], MembershipFilter] = partial(
                _config_filter, config.shard_m, config.shard_k,
                config.keyed_filters, key,
            )
            backend: ShardBackend | None = ProcessPoolBackend(factory, config.shards)
        else:
            if config.keyed_filters:
                factory = lambda: KeyedBloomFilter(
                    config.shard_m, config.shard_k, key=config.filter_key
                )
            else:
                factory = lambda: BloomFilter(config.shard_m, config.shard_k)
            backend = None
        if config.router is not None:
            picker: ShardPicker = parse_picker(config.router)
        elif config.keyed_routing:
            picker = KeyedShardPicker(config.routing_key)
        else:
            picker = HashShardPicker()
        # The lifecycle knob wins; the legacy rotation_threshold still
        # maps to the saturation-guard behaviour (FillThresholdPolicy).
        policy: RotationPolicy | None = None
        guard = None
        if config.rotation_policy is not None:
            policy = parse_policy(config.rotation_policy)
        elif config.rotation_threshold is not None:
            guard = SaturationGuard(config.rotation_threshold)
            policy = FillThresholdPolicy(config.rotation_threshold)
        limiter = ClientRateLimiter(config.rate_limit, config.burst)
        return cls(
            factory,
            shards=config.shards,
            picker=picker,
            guard=guard,
            limiter=limiter,
            backend=backend,
            policy=policy,
            coalesce_window_us=config.coalesce_window_us,
            coalesce_max_batch=config.coalesce_max_batch,
        )

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def shards(self) -> int:
        """Number of shards this gateway currently owns (= backend slots)."""
        return len(self.shard_ids)

    def _not_owner(self, shard_id: int) -> NotOwner:
        """Build the redirect-bearing error for an unowned shard."""
        if self.ownership is not None:
            return NotOwner(
                shard_id,
                epoch=self.ownership.epoch,
                owner=self.ownership.owner_of(shard_id),
            )
        return NotOwner(shard_id)

    def _slot_of(self, shard_id: int) -> int:
        """Backend slot serving global ``shard_id``, or :class:`NotOwner`."""
        if not 0 <= shard_id < self.total_shards:
            raise ParameterError(
                f"shard_id {shard_id} outside the global space "
                f"[0, {self.total_shards})"
            )
        slot = self._slots.get(shard_id)
        if slot is None:
            raise self._not_owner(shard_id)
        return slot

    @property
    def filters(self) -> tuple[MembershipFilter, ...]:
        """Owned filter views in slot order (live objects for a local
        backend, reconstructed copies for a process backend)."""
        return tuple(self.backend.shard_view(s) for s in range(self.shards))

    def shard_view(self, shard_id: int) -> MembershipFilter:
        """One shard's filter view (the white-box adversary's window)."""
        return self.backend.shard_view(self._slot_of(shard_id))

    def shard_state(self, shard_id: int) -> ShardState:
        """One shard's (weight, fill, insertions) without copying bits."""
        return self.backend.state(self._slot_of(shard_id))

    def shard_of(self, item: str | bytes) -> int:
        """Which global shard ``item`` routes to under the current router."""
        return self.picker.pick(item, self.total_shards)

    @property
    def rotations(self) -> int:
        """Total lifecycle rotations across all shards."""
        return len(self.rotation_log)

    @property
    def telemetry(self) -> tuple[ShardTelemetry, ...]:
        """Live per-shard counters (mutated by the serving path)."""
        return tuple(self._telemetry)

    def snapshot(self) -> list[ShardSnapshot]:
        """Frozen per-shard stats (counters + live filter state).

        Synchronous and lock-free: safe when nothing else is touching
        the gateway (reports after a run, single-threaded scripts).  A
        live server must use :meth:`snapshot_async` instead -- calling
        this from a worker thread races the event loop's mutations.
        """
        out = []
        for slot, telemetry in enumerate(self._telemetry):
            state = self.backend.state(slot)
            out.append(
                telemetry.snapshot(
                    state.hamming_weight,
                    state.fill_ratio,
                    recent_positive_rate=self.lifecycle[slot].window_rate(),
                    rotations_suppressed=self.lifecycle[slot].suppressed,
                )
            )
        return out

    async def snapshot_async(self) -> list[ShardSnapshot]:
        """Race-free :meth:`snapshot` for use on the serving loop.

        Each shard is read under its serving lock, so counters, lifecycle
        window and filter state are mutually consistent -- no shard is
        mid-batch (or mid-rotation) while we look at it.  Only the
        potentially-blocking backend ``state`` probe (a pipe round trip
        on a process backend) is pushed to a thread; the counter reads
        happen on the loop, under the lock, where every writer lives.
        """
        out = []
        for gid in list(self.shard_ids):
            slot = self._slots.get(gid)
            if slot is None:  # released while we iterated
                continue
            lock = self._locks[slot]  # travels with the slot if it shifts
            async with lock:
                slot = self._slots.get(gid)
                if slot is None:
                    continue
                telemetry = self._telemetry[slot]
                state = await asyncio.to_thread(self.backend.state, slot)
                out.append(
                    telemetry.snapshot(
                        state.hamming_weight,
                        state.fill_ratio,
                        recent_positive_rate=self.lifecycle[slot].window_rate(),
                        rotations_suppressed=self.lifecycle[slot].suppressed,
                    )
                )
        return out

    def render_stats(self) -> str:
        """Human-readable per-shard stats table plus the rotation log."""
        table = render_snapshots(self.snapshot())
        if not self.rotation_log:
            return table
        lines = [table, "", f"rotation log ({len(self.rotation_log)} events, last 8):"]
        for event in self.rotation_log[-8:]:
            lines.append(
                f"  epoch {event.op_epoch}: shard {event.shard_id} retired "
                f"weight={event.retired_weight} fill={event.retired_fill:.3f} "
                f"n={event.retired_insertions}"
                + (f" [{event.policy}: {event.reason}]" if event.policy else "")
            )
        return "\n".join(lines)

    # ------------------------------------------------------------------
    # Persistence
    # ------------------------------------------------------------------

    def export_snapshot(self) -> bytes:
        """Serialise every shard, the rotation log and telemetry into one
        warm-restart payload (see :mod:`repro.service.snapshots`)."""
        from repro.service.snapshots import snapshot_gateway

        return snapshot_gateway(self)

    def restore_snapshot(self, raw: bytes) -> None:
        """Load an :meth:`export_snapshot` payload into this gateway.

        The gateway must be built from the same config (shard count and
        geometry are checked; routing/filter keys are configuration and
        must be pinned for the restored filters to answer identically).
        """
        from repro.service.snapshots import restore_gateway

        restore_gateway(self, raw)

    # ------------------------------------------------------------------
    # Shard handoff (cluster tier)
    # ------------------------------------------------------------------

    async def export_shard_block(self, shard_id: int) -> bytes:
        """Serialise one owned shard's versioned block under its lock.

        The block carries filter bits, lifecycle scratch and telemetry
        (see :func:`repro.service.snapshots.snapshot_shard`); the shard
        keeps serving afterwards.  This is the non-destructive half of a
        handoff -- use :meth:`release_shard` to also drop ownership.
        """
        from repro.service.snapshots import snapshot_shard

        slot = self._slots.get(shard_id)
        if slot is None:
            raise self._not_owner(shard_id)
        lock = self._locks[slot]
        async with lock:
            if self._slots.get(shard_id) is None:
                raise self._not_owner(shard_id)
            return snapshot_shard(self, shard_id)

    async def release_shard(self, shard_id: int, epoch: int) -> bytes:
        """Export ``shard_id``'s block and drop the slot, atomically.

        Runs under the shard's serving lock: any in-flight batch for the
        shard completes first, every later one sees :class:`NotOwner`.
        ``epoch`` is the ownership epoch of the move; it is recorded so
        a replayed handoff cannot re-adopt the shard here without a
        newer epoch.  Returns the block for :meth:`adopt_shard` on the
        gaining gateway.
        """
        from repro.service.snapshots import snapshot_shard

        if epoch <= 0:
            raise ParameterError(f"epoch must be positive, got {epoch}")
        slot = self._slots.get(shard_id)
        if slot is None:
            raise self._not_owner(shard_id)
        lock = self._locks[slot]
        async with lock:
            slot = self._slots.get(shard_id)
            if slot is None:
                raise self._not_owner(shard_id)
            block = snapshot_shard(self, shard_id)
            self._detach_slot(slot)
            self._released[shard_id] = max(
                epoch, self._released.get(shard_id, 0)
            )
        return block

    def _detach_slot(self, slot: int) -> None:
        """Pop the same index from every slot-indexed structure (no
        awaits between pops -- the lists never disagree)."""
        self.shard_ids.pop(slot)
        self._locks.pop(slot)
        self._telemetry.pop(slot)
        self.lifecycle.pop(slot)
        self.backend.detach_shard(slot)
        self._slots = {gid: s for s, gid in enumerate(self.shard_ids)}

    def adopt_shard(self, shard_id: int, epoch: int, block: bytes) -> None:
        """Restore a released shard's block here and start serving it.

        Validates everything *before* mutating any state: the shard must
        not already be owned, must fall inside the global space, the
        epoch must beat the epoch at which this gateway last released
        the shard (replay guard), and the block must parse.  A backend
        restore failure rolls the fresh slot back out, so a poisoned
        block leaves the gateway exactly as it was.
        """
        from repro.service.snapshots import parse_shard_block

        if shard_id in self._slots:
            raise ParameterError(
                f"shard {shard_id} is already served by {self.name!r}"
            )
        if not 0 <= shard_id < self.total_shards:
            raise ParameterError(
                f"shard_id {shard_id} outside the global space "
                f"[0, {self.total_shards})"
            )
        if epoch <= self._released.get(shard_id, 0):
            raise ParameterError(
                f"stale handoff for shard {shard_id}: epoch {epoch} is not "
                f"newer than the release epoch "
                f"{self._released.get(shard_id, 0)}"
            )
        parsed = parse_shard_block(block)
        if parsed.shard_id != shard_id:
            raise ParameterError(
                f"handoff block is for shard {parsed.shard_id}, "
                f"not {shard_id}"
            )
        slot = self.backend.attach_shard()
        try:
            self.backend.restore_shard(slot, parsed.filter_block)
        except Exception:
            self.backend.detach_shard(slot)
            raise
        self.shard_ids.append(shard_id)
        self._locks.append(asyncio.Lock())
        self._telemetry.append(parsed.telemetry)
        self.lifecycle.append(
            ShardLifecycleState.adopt(shard_id, parsed.lifecycle)
        )
        self._slots[shard_id] = slot
        self._released.pop(shard_id, None)

    # ------------------------------------------------------------------
    # Serving API
    # ------------------------------------------------------------------

    @property
    def max_batch(self) -> int | None:
        """Largest admissible batch (the limiter's burst), or ``None``
        when admission is unlimited."""
        return self.limiter.burst if self.limiter.rate is not None else None

    def _admit(self, client: str, tokens: int) -> None:
        limit = self.max_batch
        if limit is not None and tokens > limit:
            # A bucket can never hold more than its burst, so this batch
            # would be rejected forever -- fail loudly and permanently
            # instead of raising the (retryable) RateLimited.
            raise ParameterError(
                f"batch of {tokens} exceeds the admission burst {limit}; "
                "split the batch"
            )
        if not self.limiter.admit(client, tokens):
            raise RateLimited(client)

    def _group_by_shard(
        self, items: Sequence[str | bytes]
    ) -> dict[int, list[int]]:
        """Map global shard id -> positions in ``items`` routed to it."""
        pick = self.picker.pick
        shards = self.total_shards
        groups: dict[int, list[int]] = {}
        for position, item in enumerate(items):
            groups.setdefault(pick(item, shards), []).append(position)
        return groups

    async def _maybe_rotate(
        self, shard_id: int, slot: int, state: ShardState
    ) -> bool:
        """Swap in a fresh filter when the policy says so (lock held).

        ``state`` is the post-operation shard state the backend returned
        with the batch (including the shard's instance age), so the
        policy decision costs no extra hop.
        """
        if self.policy is None:
            return False
        life = self.lifecycle[slot]
        decision = self.policy.decide(
            life.observe(
                state,
                self.op_epoch,
                include_recent=getattr(self.policy, "needs_recent", True),
            ),
            life,
        )
        if not decision.rotate:
            return False
        self.rotation_log.append(
            RotationEvent(
                shard_id=shard_id,
                retired_weight=state.hamming_weight,
                retired_fill=state.fill_ratio,
                retired_insertions=state.insertions,
                op_epoch=self.op_epoch,
                policy=self.policy.name,
                reason=decision.reason,
            )
        )
        await self.backend.rotate(slot)
        life.reset()
        self._telemetry[slot].rotations += 1
        return True

    async def _run_shard_batch(
        self, shard_id: int, op: str, items: list
    ) -> list[bool]:
        """Run one shard-bound batch under the shard's lock.

        This is *the* serialised section of the serving path -- backend
        call, telemetry, op-epoch advance, lifecycle accounting and the
        rotation decision, in that order -- shared verbatim by the
        direct (uncoalesced) path and the coalescer's merged flushes, so
        merging cannot change what a batch observes or triggers.

        ``shard_id`` is global; the slot is resolved twice -- once to
        find the lock (which travels with the slot if others shift) and
        again under it, so a shard released mid-flight raises
        :class:`NotOwner` instead of landing on whatever moved in.
        """
        clock = self._clock
        slot = self._slots.get(shard_id)
        if slot is None:
            raise self._not_owner(shard_id)
        lock = self._locks[slot]
        async with lock:
            slot = self._slots.get(shard_id)
            if slot is None:
                raise self._not_owner(shard_id)
            start = clock()
            if op == "insert":
                reply = await self.backend.insert_batch(slot, items)
            else:
                reply = await self.backend.query_batch(slot, items)
            elapsed = clock() - start
            telemetry = self._telemetry[slot]
            self.op_epoch += len(items)
            if op == "insert":
                telemetry.inserts += len(items)
                telemetry.insert_latency.record(elapsed)
                self.lifecycle[slot].note_inserts(len(items))
            else:
                positives = sum(reply.answers)
                telemetry.queries += len(items)
                telemetry.positives += positives
                telemetry.query_latency.record(elapsed)
                self.lifecycle[slot].note_queries(len(items), positives)
            # Unlike the fill-only guard, lifecycle policies react to
            # the query stream too (positive-rate spikes, op age), so
            # the decision runs on both paths.  Answers were computed
            # before any swap, so this batch's reply is unaffected.
            await self._maybe_rotate(shard_id, slot, reply.state)
        return reply.answers

    async def _fan_out(
        self, op: str, items: Sequence[str | bytes]
    ) -> list[bool]:
        """Group ``items`` by shard, run every group, reassemble answers.

        Uncoalesced, groups run sequentially under their shard locks --
        the exact pre-coalescer behaviour.  Coalesced, all groups are
        submitted before any is awaited, so one request's shard groups
        can share merged batches with other requests concurrently.
        """
        results: list[bool] = [False] * len(items)
        groups = self._group_by_shard(items)
        # Reject a stale route before touching any shard: either the
        # whole batch lands on owned shards or nothing is mutated.  (The
        # in-flight re-check in _run_shard_batch still guards the racing
        # case where a shard is released after this gate.)
        for shard_id in groups:
            if shard_id not in self._slots:
                raise self._not_owner(shard_id)
        if self._coalescer is None:
            for shard_id, positions in groups.items():
                answers = await self._run_shard_batch(
                    shard_id, op, [items[p] for p in positions]
                )
                for position, answer in zip(positions, answers):
                    results[position] = answer
            return results
        submitted = [
            (positions, self._coalescer.submit(
                shard_id, op, [items[p] for p in positions]
            ))
            for shard_id, positions in groups.items()
        ]
        # gather() retrieves every future even when one fails, so a
        # multi-shard request that dies on one shard leaves no
        # "exception was never retrieved" orphans behind.
        outcomes = await asyncio.gather(
            *(future for _, future in submitted), return_exceptions=True
        )
        for (positions, _), outcome in zip(submitted, outcomes):
            if isinstance(outcome, BaseException):
                raise outcome
            for position, answer in zip(positions, outcome):
                results[position] = answer
        return results

    async def insert(self, item: str | bytes, client: str = "anon") -> bool:
        """Insert one item; returns the filter's ``add`` result."""
        results = await self.insert_batch([item], client=client)
        return results[0]

    async def query(self, item: str | bytes, client: str = "anon") -> bool:
        """Membership query for one item."""
        results = await self.query_batch([item], client=client)
        return results[0]

    async def insert_batch(
        self, items: Sequence[str | bytes], client: str = "anon"
    ) -> list[bool]:
        """Insert a batch; items are grouped per shard and each group is
        dispatched to the backend under that shard's lock.

        Raises :class:`RateLimited` (before touching any shard) when the
        client's token bucket cannot cover the whole batch.
        """
        if not items:
            return []
        self._admit(client, len(items))
        return await self._fan_out("insert", items)

    async def query_batch(
        self, items: Sequence[str | bytes], client: str = "anon"
    ) -> list[bool]:
        """Query a batch; same shard-grouped, lock-per-shard discipline."""
        if not items:
            return []
        self._admit(client, len(items))
        return await self._fan_out("query", items)

    # ------------------------------------------------------------------
    # Coalescing
    # ------------------------------------------------------------------

    @property
    def coalescing(self) -> bool:
        """Whether cross-client micro-batch coalescing is active."""
        return self._coalescer is not None

    def configure_coalescing(self, window_us: int = 0, max_batch: int = 0) -> None:
        """Install (``max_batch > 0``) or remove (``max_batch == 0``) the
        micro-batch coalescer.

        Safe to call between replays: the accumulated
        :attr:`coalesce_telemetry` counters are kept, so before/after
        deltas spanning a toggle stay meaningful.
        """
        if max_batch < 0 or window_us < 0:
            raise ParameterError("coalesce knobs must be non-negative")
        if max_batch == 0:
            if window_us:
                raise ParameterError(
                    "coalesce_window_us needs coalesce_max_batch > 0"
                )
            if self._coalescer is not None:
                self._coalescer.close()
            self._coalescer = None
            return
        self._coalescer = MicroBatchCoalescer(
            self._run_shard_batch,
            window_us=window_us,
            max_batch=max_batch,
            telemetry=self.coalesce_telemetry,
        )

    def coalesce_stats(self) -> dict:
        """Coalescer counters plus current configuration, as one dict."""
        stats = self.coalesce_telemetry.snapshot()
        stats["enabled"] = self._coalescer is not None
        stats["queue_depth"] = (
            self._coalescer.queue_depth if self._coalescer is not None else 0
        )
        return stats

    def close(self) -> None:
        """Release the backend's resources (worker processes etc.)."""
        if self._coalescer is not None:
            self._coalescer.close()
        self.backend.close()

    def __enter__(self) -> "MembershipGateway":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        policy = self.policy.spec() if self.policy is not None else "none"
        coalesce = (
            f"window_us={self._coalescer.window_us},"
            f"max_batch={self._coalescer.max_batch}"
            if self._coalescer is not None
            else "off"
        )
        return (
            f"<MembershipGateway {self.name!r} "
            f"shards={self.shards}/{self.total_shards} "
            f"picker={self.picker.name} "
            f"backend={self.backend.name} policy={policy} coalesce={coalesce} "
            f"rotations={self.rotations}>"
        )
