"""The asyncio membership gateway: N filter shards behind one API.

This is the serving layer the paper's attacks assume exists: a network
membership service (Squid digest peer, dupefilter RPC, spam-check
endpoint) fronting Bloom filters and fed by untrusted clients.  The
gateway hash-partitions the key space across shards, serialises access
per shard with an ``asyncio.Lock`` (so concurrent batches interleave
across shards but never corrupt one), records per-shard telemetry, and
runs admission control -- rate limiting on the way in, saturation-guard
rotation on the way out.

Batches are first-class: ``query_batch``/``insert_batch`` group items by
shard and hand each group to the filter's vectorized
``contains_batch``/``add_batch`` in one lock acquisition, which is where
the hot-path speedup of :mod:`repro.core.bitvector` actually pays off.
"""

from __future__ import annotations

import asyncio
import time
from dataclasses import dataclass
from typing import Callable, Sequence

from repro.core.bloom import BloomFilter
from repro.core.interfaces import MembershipFilter
from repro.countermeasures.keyed import KeyedBloomFilter
from repro.exceptions import ParameterError
from repro.service.admission import (
    ClientRateLimiter,
    RateLimited,
    SaturationGuard,
    filter_state,
)
from repro.service.config import ServiceConfig
from repro.service.sharding import HashShardPicker, KeyedShardPicker, ShardPicker
from repro.service.telemetry import ShardSnapshot, ShardTelemetry, render_snapshots

__all__ = ["RotationEvent", "MembershipGateway"]


@dataclass(frozen=True)
class RotationEvent:
    """One saturation-guard rotation: which shard retired what."""

    shard_id: int
    retired_weight: int
    retired_fill: float
    retired_insertions: int


class MembershipGateway:
    """Sharded membership service over any :class:`MembershipFilter`.

    Parameters
    ----------
    filter_factory:
        Zero-argument callable building one shard's filter; called once
        per shard at start and again on every rotation.
    shards:
        Number of shards.
    picker:
        Shard router; defaults to the (attackable) public
        :class:`~repro.service.sharding.HashShardPicker`.
    guard:
        Saturation guard; ``None`` disables rotation.
    limiter:
        Per-client admission; defaults to unlimited.
    clock:
        Injectable latency clock (tests pin it).
    """

    def __init__(
        self,
        filter_factory: Callable[[], MembershipFilter],
        shards: int = 4,
        picker: ShardPicker | None = None,
        guard: SaturationGuard | None = None,
        limiter: ClientRateLimiter | None = None,
        clock: Callable[[], float] = time.perf_counter,
    ) -> None:
        if shards <= 0:
            raise ParameterError(f"shards must be positive, got {shards}")
        self.filter_factory = filter_factory
        self.shards = shards
        self.picker = picker or HashShardPicker()
        self.guard = guard
        self.limiter = limiter or ClientRateLimiter(None)
        self._clock = clock
        self._filters = [filter_factory() for _ in range(shards)]
        self._locks = [asyncio.Lock() for _ in range(shards)]
        self._telemetry = [ShardTelemetry(i) for i in range(shards)]
        self.rotation_log: list[RotationEvent] = []

    @classmethod
    def from_config(cls, config: ServiceConfig) -> "MembershipGateway":
        """Build a gateway (filters, router, admission) from one config."""
        if config.keyed_filters:
            factory: Callable[[], MembershipFilter] = lambda: KeyedBloomFilter(
                config.shard_m, config.shard_k, key=config.filter_key
            )
        else:
            factory = lambda: BloomFilter(config.shard_m, config.shard_k)
        picker: ShardPicker = (
            KeyedShardPicker(config.routing_key)
            if config.keyed_routing
            else HashShardPicker()
        )
        guard = (
            SaturationGuard(config.rotation_threshold)
            if config.rotation_threshold is not None
            else None
        )
        limiter = ClientRateLimiter(config.rate_limit, config.burst)
        return cls(
            factory, shards=config.shards, picker=picker, guard=guard, limiter=limiter
        )

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def filters(self) -> tuple[MembershipFilter, ...]:
        """Current shard filters (replaced on rotation; treat as a view)."""
        return tuple(self._filters)

    def shard_of(self, item: str | bytes) -> int:
        """Which shard owns ``item`` under the current router."""
        return self.picker.pick(item, self.shards)

    @property
    def rotations(self) -> int:
        """Total saturation-guard rotations across all shards."""
        return len(self.rotation_log)

    def snapshot(self) -> list[ShardSnapshot]:
        """Frozen per-shard stats (counters + live filter state)."""
        out = []
        for telemetry, filt in zip(self._telemetry, self._filters):
            weight, fill = filter_state(filt)
            out.append(telemetry.snapshot(weight, fill))
        return out

    def render_stats(self) -> str:
        """Human-readable per-shard stats table."""
        return render_snapshots(self.snapshot())

    # ------------------------------------------------------------------
    # Serving API
    # ------------------------------------------------------------------

    @property
    def max_batch(self) -> int | None:
        """Largest admissible batch (the limiter's burst), or ``None``
        when admission is unlimited."""
        return self.limiter.burst if self.limiter.rate is not None else None

    def _admit(self, client: str, tokens: int) -> None:
        limit = self.max_batch
        if limit is not None and tokens > limit:
            # A bucket can never hold more than its burst, so this batch
            # would be rejected forever -- fail loudly and permanently
            # instead of raising the (retryable) RateLimited.
            raise ParameterError(
                f"batch of {tokens} exceeds the admission burst {limit}; "
                "split the batch"
            )
        if not self.limiter.admit(client, tokens):
            raise RateLimited(client)

    def _group_by_shard(
        self, items: Sequence[str | bytes]
    ) -> dict[int, list[int]]:
        """Map shard id -> positions in ``items`` routed to it."""
        pick = self.picker.pick
        shards = self.shards
        groups: dict[int, list[int]] = {}
        for position, item in enumerate(items):
            groups.setdefault(pick(item, shards), []).append(position)
        return groups

    def _maybe_rotate(self, shard_id: int) -> bool:
        """Swap in a fresh filter when the guard fires (lock must be held)."""
        filt = self._filters[shard_id]
        if self.guard is None or not self.guard.should_rotate(filt):
            return False
        weight, fill = filter_state(filt)
        self.rotation_log.append(
            RotationEvent(
                shard_id=shard_id,
                retired_weight=weight,
                retired_fill=fill,
                retired_insertions=len(filt),
            )
        )
        self._filters[shard_id] = self.filter_factory()
        self._telemetry[shard_id].rotations += 1
        return True

    async def insert(self, item: str | bytes, client: str = "anon") -> bool:
        """Insert one item; returns the filter's ``add`` result."""
        results = await self.insert_batch([item], client=client)
        return results[0]

    async def query(self, item: str | bytes, client: str = "anon") -> bool:
        """Membership query for one item."""
        results = await self.query_batch([item], client=client)
        return results[0]

    async def insert_batch(
        self, items: Sequence[str | bytes], client: str = "anon"
    ) -> list[bool]:
        """Insert a batch; items are grouped per shard and each group is
        applied under that shard's lock via the vectorized ``add_batch``.

        Raises :class:`RateLimited` (before touching any shard) when the
        client's token bucket cannot cover the whole batch.
        """
        if not items:
            return []
        self._admit(client, len(items))
        clock = self._clock
        results: list[bool] = [False] * len(items)
        for shard_id, positions in self._group_by_shard(items).items():
            async with self._locks[shard_id]:
                filt = self._filters[shard_id]
                start = clock()
                answers = filt.add_batch([items[p] for p in positions])
                elapsed = clock() - start
                telemetry = self._telemetry[shard_id]
                telemetry.inserts += len(positions)
                telemetry.insert_latency.record(elapsed)
                self._maybe_rotate(shard_id)
            for position, answer in zip(positions, answers):
                results[position] = answer
        return results

    async def query_batch(
        self, items: Sequence[str | bytes], client: str = "anon"
    ) -> list[bool]:
        """Query a batch; same shard-grouped, lock-per-shard discipline."""
        if not items:
            return []
        self._admit(client, len(items))
        clock = self._clock
        results: list[bool] = [False] * len(items)
        for shard_id, positions in self._group_by_shard(items).items():
            async with self._locks[shard_id]:
                filt = self._filters[shard_id]
                start = clock()
                answers = filt.contains_batch([items[p] for p in positions])
                elapsed = clock() - start
                telemetry = self._telemetry[shard_id]
                telemetry.queries += len(positions)
                telemetry.positives += sum(answers)
                telemetry.query_latency.record(elapsed)
            for position, answer in zip(positions, answers):
                results[position] = answer
        return results

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"<MembershipGateway shards={self.shards} picker={self.picker.name} "
            f"rotations={self.rotations}>"
        )
