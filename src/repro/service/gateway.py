"""The membership gateway: N filter shards behind one serving API.

This is the serving layer the paper's attacks assume exists: a network
membership service (Squid digest peer, dupefilter RPC, spam-check
endpoint) fronting Bloom filters and fed by untrusted clients.  The
gateway hash-partitions the key space across shards, serialises access
per shard with an ``asyncio.Lock`` (so concurrent batches interleave
across shards but never corrupt one), records per-shard telemetry, and
runs admission control -- rate limiting on the way in, policy-driven
shard rotation (see :mod:`repro.service.lifecycle`) on the way out.

Since the layered refactor the gateway no longer owns its filters: a
:class:`~repro.service.backends.ShardBackend` does.  The default
:class:`~repro.service.backends.LocalBackend` keeps them in-process (the
original arrangement); a :class:`~repro.service.backends.
ProcessPoolBackend` runs each shard in its own worker process so the
CPU-bound hashing parallelises across cores.  Every backend returns the
shard's post-operation state with each batch, so rotation decisions cost
no extra hop.

Batches are first-class: ``query_batch``/``insert_batch`` group items by
shard and hand each group to the backend in one lock acquisition, which
is where the hot-path speedup of :mod:`repro.core.bitvector` (and, for
process backends, the per-core parallelism) actually pays off.
"""

from __future__ import annotations

import asyncio
import time
from dataclasses import dataclass
from functools import partial
from typing import Callable, Sequence

from repro.core.bloom import BloomFilter
from repro.core.interfaces import MembershipFilter
from repro.countermeasures.keyed import KeyedBloomFilter, generate_key
from repro.exceptions import ParameterError
from repro.service.admission import (
    ClientRateLimiter,
    RateLimited,
    SaturationGuard,
)
from repro.service.backends import LocalBackend, ProcessPoolBackend, ShardBackend, ShardState
from repro.service.coalesce import MicroBatchCoalescer
from repro.service.config import ServiceConfig
from repro.service.lifecycle import (
    FillThresholdPolicy,
    RotationPolicy,
    ShardLifecycleState,
    parse_policy,
    policy_from_guard,
)
from repro.service.sharding import HashShardPicker, KeyedShardPicker, ShardPicker
from repro.service.telemetry import (
    CoalesceTelemetry,
    ShardSnapshot,
    ShardTelemetry,
    render_snapshots,
)

__all__ = ["RotationEvent", "MembershipGateway"]


@dataclass(frozen=True)
class RotationEvent:
    """One lifecycle rotation: which shard retired what, when, and why.

    ``op_epoch`` is the gateway-wide monotonic operation count at the
    moment of rotation (a logical clock that survives snapshots, unlike
    wall time); ``policy``/``reason`` name the triggering policy and its
    machine-readable rule so rotation histories can be grouped.
    """

    shard_id: int
    retired_weight: int
    retired_fill: float
    retired_insertions: int
    op_epoch: int = 0
    policy: str = ""
    reason: str = ""


def _config_filter(m: int, k: int, keyed: bool, key: bytes | None) -> MembershipFilter:
    """Module-level shard factory (picklable, so it crosses to workers)."""
    if keyed:
        return KeyedBloomFilter(m, k, key=key)
    return BloomFilter(m, k)


class MembershipGateway:
    """Sharded membership service over any :class:`MembershipFilter`.

    Parameters
    ----------
    filter_factory:
        Zero-argument callable building one shard's filter; used to
        construct the default :class:`~repro.service.backends.
        LocalBackend` (and by it, again on every rotation).  Optional
        when an explicit ``backend`` is supplied.
    shards:
        Number of shards (ignored when ``backend`` is given -- the
        backend's count wins).
    picker:
        Shard router; defaults to the (attackable) public
        :class:`~repro.service.sharding.HashShardPicker`.
    guard:
        Legacy saturation guard; mapped onto the policy layer via
        :func:`~repro.service.lifecycle.policy_from_guard` when no
        explicit ``policy`` is given.
    policy:
        Shard rotation policy (see :mod:`repro.service.lifecycle`);
        wins over ``guard``.  ``None`` (with no guard) disables
        rotation.
    limiter:
        Per-client admission; defaults to unlimited.
    clock:
        Injectable latency clock (tests pin it).
    backend:
        Explicit shard backend; ``None`` builds a ``LocalBackend`` from
        ``filter_factory``.
    coalesce_window_us / coalesce_max_batch:
        Micro-batch coalescing knobs (see :mod:`repro.service.coalesce`).
        ``coalesce_max_batch`` of 0 (the default) disables coalescing --
        the serving path is then byte-identical to the pre-coalescer
        gateway.  When enabled, concurrent sub-batches aimed at the same
        shard merge into one backend call, flushed at ``max_batch``
        items or after ``window_us`` microseconds.
    """

    def __init__(
        self,
        filter_factory: Callable[[], MembershipFilter] | None = None,
        shards: int = 4,
        picker: ShardPicker | None = None,
        guard: SaturationGuard | None = None,
        limiter: ClientRateLimiter | None = None,
        clock: Callable[[], float] = time.perf_counter,
        backend: ShardBackend | None = None,
        policy: RotationPolicy | None = None,
        coalesce_window_us: int = 0,
        coalesce_max_batch: int = 0,
    ) -> None:
        if backend is None:
            if filter_factory is None:
                raise ParameterError("provide a filter_factory or a backend")
            if shards <= 0:
                raise ParameterError(f"shards must be positive, got {shards}")
            backend = LocalBackend(filter_factory, shards)
        self.backend = backend
        self.filter_factory = filter_factory
        self.shards = backend.shards
        self.picker = picker or HashShardPicker()
        self.guard = guard
        if policy is None and guard is not None:
            policy = policy_from_guard(guard)
        self.policy = policy
        self.limiter = limiter or ClientRateLimiter(None)
        self._clock = clock
        self._locks = [asyncio.Lock() for _ in range(self.shards)]
        self._telemetry = [ShardTelemetry(i) for i in range(self.shards)]
        self.lifecycle = [ShardLifecycleState(i) for i in range(self.shards)]
        self.op_epoch = 0
        self.rotation_log: list[RotationEvent] = []
        # One telemetry object outlives configure_coalescing() toggles so
        # report deltas survive an on/off/on comparison run.
        self.coalesce_telemetry = CoalesceTelemetry()
        self._coalescer: MicroBatchCoalescer | None = None
        self.configure_coalescing(coalesce_window_us, coalesce_max_batch)

    @classmethod
    def from_config(cls, config: ServiceConfig) -> "MembershipGateway":
        """Build a gateway (backend, filters, router, admission) from one
        config.

        With ``backend="process"`` the shard factory must be
        deterministic so the workers, the parent's white-box views and
        any snapshot restore all agree -- an unpinned ``filter_key`` is
        therefore resolved to one fresh key *here* (shared by all
        shards) rather than drawn per shard as the local backend does.
        """
        if config.backend == "process":
            key = config.filter_key
            if config.keyed_filters and key is None:
                key = generate_key(16)
            factory: Callable[[], MembershipFilter] = partial(
                _config_filter, config.shard_m, config.shard_k,
                config.keyed_filters, key,
            )
            backend: ShardBackend | None = ProcessPoolBackend(factory, config.shards)
        else:
            if config.keyed_filters:
                factory = lambda: KeyedBloomFilter(
                    config.shard_m, config.shard_k, key=config.filter_key
                )
            else:
                factory = lambda: BloomFilter(config.shard_m, config.shard_k)
            backend = None
        picker: ShardPicker = (
            KeyedShardPicker(config.routing_key)
            if config.keyed_routing
            else HashShardPicker()
        )
        # The lifecycle knob wins; the legacy rotation_threshold still
        # maps to the saturation-guard behaviour (FillThresholdPolicy).
        policy: RotationPolicy | None = None
        guard = None
        if config.rotation_policy is not None:
            policy = parse_policy(config.rotation_policy)
        elif config.rotation_threshold is not None:
            guard = SaturationGuard(config.rotation_threshold)
            policy = FillThresholdPolicy(config.rotation_threshold)
        limiter = ClientRateLimiter(config.rate_limit, config.burst)
        return cls(
            factory,
            shards=config.shards,
            picker=picker,
            guard=guard,
            limiter=limiter,
            backend=backend,
            policy=policy,
            coalesce_window_us=config.coalesce_window_us,
            coalesce_max_batch=config.coalesce_max_batch,
        )

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def filters(self) -> tuple[MembershipFilter, ...]:
        """Per-shard filter views (live objects for a local backend,
        reconstructed copies for a process backend; treat as a view)."""
        return tuple(self.backend.shard_view(i) for i in range(self.shards))

    def shard_view(self, shard_id: int) -> MembershipFilter:
        """One shard's filter view (the white-box adversary's window)."""
        return self.backend.shard_view(shard_id)

    def shard_state(self, shard_id: int) -> ShardState:
        """One shard's (weight, fill, insertions) without copying bits."""
        return self.backend.state(shard_id)

    def shard_of(self, item: str | bytes) -> int:
        """Which shard owns ``item`` under the current router."""
        return self.picker.pick(item, self.shards)

    @property
    def rotations(self) -> int:
        """Total lifecycle rotations across all shards."""
        return len(self.rotation_log)

    @property
    def telemetry(self) -> tuple[ShardTelemetry, ...]:
        """Live per-shard counters (mutated by the serving path)."""
        return tuple(self._telemetry)

    def snapshot(self) -> list[ShardSnapshot]:
        """Frozen per-shard stats (counters + live filter state).

        Synchronous and lock-free: safe when nothing else is touching
        the gateway (reports after a run, single-threaded scripts).  A
        live server must use :meth:`snapshot_async` instead -- calling
        this from a worker thread races the event loop's mutations.
        """
        out = []
        for shard_id, telemetry in enumerate(self._telemetry):
            state = self.backend.state(shard_id)
            out.append(
                telemetry.snapshot(
                    state.hamming_weight,
                    state.fill_ratio,
                    recent_positive_rate=self.lifecycle[shard_id].window_rate(),
                    rotations_suppressed=self.lifecycle[shard_id].suppressed,
                )
            )
        return out

    async def snapshot_async(self) -> list[ShardSnapshot]:
        """Race-free :meth:`snapshot` for use on the serving loop.

        Each shard is read under its serving lock, so counters, lifecycle
        window and filter state are mutually consistent -- no shard is
        mid-batch (or mid-rotation) while we look at it.  Only the
        potentially-blocking backend ``state`` probe (a pipe round trip
        on a process backend) is pushed to a thread; the counter reads
        happen on the loop, under the lock, where every writer lives.
        """
        out = []
        for shard_id, telemetry in enumerate(self._telemetry):
            async with self._locks[shard_id]:
                state = await asyncio.to_thread(self.backend.state, shard_id)
                out.append(
                    telemetry.snapshot(
                        state.hamming_weight,
                        state.fill_ratio,
                        recent_positive_rate=self.lifecycle[shard_id].window_rate(),
                        rotations_suppressed=self.lifecycle[shard_id].suppressed,
                    )
                )
        return out

    def render_stats(self) -> str:
        """Human-readable per-shard stats table plus the rotation log."""
        table = render_snapshots(self.snapshot())
        if not self.rotation_log:
            return table
        lines = [table, "", f"rotation log ({len(self.rotation_log)} events, last 8):"]
        for event in self.rotation_log[-8:]:
            lines.append(
                f"  epoch {event.op_epoch}: shard {event.shard_id} retired "
                f"weight={event.retired_weight} fill={event.retired_fill:.3f} "
                f"n={event.retired_insertions}"
                + (f" [{event.policy}: {event.reason}]" if event.policy else "")
            )
        return "\n".join(lines)

    # ------------------------------------------------------------------
    # Persistence
    # ------------------------------------------------------------------

    def export_snapshot(self) -> bytes:
        """Serialise every shard, the rotation log and telemetry into one
        warm-restart payload (see :mod:`repro.service.snapshots`)."""
        from repro.service.snapshots import snapshot_gateway

        return snapshot_gateway(self)

    def restore_snapshot(self, raw: bytes) -> None:
        """Load an :meth:`export_snapshot` payload into this gateway.

        The gateway must be built from the same config (shard count and
        geometry are checked; routing/filter keys are configuration and
        must be pinned for the restored filters to answer identically).
        """
        from repro.service.snapshots import restore_gateway

        restore_gateway(self, raw)

    # ------------------------------------------------------------------
    # Serving API
    # ------------------------------------------------------------------

    @property
    def max_batch(self) -> int | None:
        """Largest admissible batch (the limiter's burst), or ``None``
        when admission is unlimited."""
        return self.limiter.burst if self.limiter.rate is not None else None

    def _admit(self, client: str, tokens: int) -> None:
        limit = self.max_batch
        if limit is not None and tokens > limit:
            # A bucket can never hold more than its burst, so this batch
            # would be rejected forever -- fail loudly and permanently
            # instead of raising the (retryable) RateLimited.
            raise ParameterError(
                f"batch of {tokens} exceeds the admission burst {limit}; "
                "split the batch"
            )
        if not self.limiter.admit(client, tokens):
            raise RateLimited(client)

    def _group_by_shard(
        self, items: Sequence[str | bytes]
    ) -> dict[int, list[int]]:
        """Map shard id -> positions in ``items`` routed to it."""
        pick = self.picker.pick
        shards = self.shards
        groups: dict[int, list[int]] = {}
        for position, item in enumerate(items):
            groups.setdefault(pick(item, shards), []).append(position)
        return groups

    async def _maybe_rotate(self, shard_id: int, state: ShardState) -> bool:
        """Swap in a fresh filter when the policy says so (lock held).

        ``state`` is the post-operation shard state the backend returned
        with the batch (including the shard's instance age), so the
        policy decision costs no extra hop.
        """
        if self.policy is None:
            return False
        life = self.lifecycle[shard_id]
        decision = self.policy.decide(
            life.observe(
                state,
                self.op_epoch,
                include_recent=getattr(self.policy, "needs_recent", True),
            ),
            life,
        )
        if not decision.rotate:
            return False
        self.rotation_log.append(
            RotationEvent(
                shard_id=shard_id,
                retired_weight=state.hamming_weight,
                retired_fill=state.fill_ratio,
                retired_insertions=state.insertions,
                op_epoch=self.op_epoch,
                policy=self.policy.name,
                reason=decision.reason,
            )
        )
        await self.backend.rotate(shard_id)
        life.reset()
        self._telemetry[shard_id].rotations += 1
        return True

    async def _run_shard_batch(
        self, shard_id: int, op: str, items: list
    ) -> list[bool]:
        """Run one shard-bound batch under the shard's lock.

        This is *the* serialised section of the serving path -- backend
        call, telemetry, op-epoch advance, lifecycle accounting and the
        rotation decision, in that order -- shared verbatim by the
        direct (uncoalesced) path and the coalescer's merged flushes, so
        merging cannot change what a batch observes or triggers.
        """
        clock = self._clock
        async with self._locks[shard_id]:
            start = clock()
            if op == "insert":
                reply = await self.backend.insert_batch(shard_id, items)
            else:
                reply = await self.backend.query_batch(shard_id, items)
            elapsed = clock() - start
            telemetry = self._telemetry[shard_id]
            self.op_epoch += len(items)
            if op == "insert":
                telemetry.inserts += len(items)
                telemetry.insert_latency.record(elapsed)
                self.lifecycle[shard_id].note_inserts(len(items))
            else:
                positives = sum(reply.answers)
                telemetry.queries += len(items)
                telemetry.positives += positives
                telemetry.query_latency.record(elapsed)
                self.lifecycle[shard_id].note_queries(len(items), positives)
            # Unlike the fill-only guard, lifecycle policies react to
            # the query stream too (positive-rate spikes, op age), so
            # the decision runs on both paths.  Answers were computed
            # before any swap, so this batch's reply is unaffected.
            await self._maybe_rotate(shard_id, reply.state)
        return reply.answers

    async def _fan_out(
        self, op: str, items: Sequence[str | bytes]
    ) -> list[bool]:
        """Group ``items`` by shard, run every group, reassemble answers.

        Uncoalesced, groups run sequentially under their shard locks --
        the exact pre-coalescer behaviour.  Coalesced, all groups are
        submitted before any is awaited, so one request's shard groups
        can share merged batches with other requests concurrently.
        """
        results: list[bool] = [False] * len(items)
        groups = self._group_by_shard(items)
        if self._coalescer is None:
            for shard_id, positions in groups.items():
                answers = await self._run_shard_batch(
                    shard_id, op, [items[p] for p in positions]
                )
                for position, answer in zip(positions, answers):
                    results[position] = answer
            return results
        submitted = [
            (positions, self._coalescer.submit(
                shard_id, op, [items[p] for p in positions]
            ))
            for shard_id, positions in groups.items()
        ]
        # gather() retrieves every future even when one fails, so a
        # multi-shard request that dies on one shard leaves no
        # "exception was never retrieved" orphans behind.
        outcomes = await asyncio.gather(
            *(future for _, future in submitted), return_exceptions=True
        )
        for (positions, _), outcome in zip(submitted, outcomes):
            if isinstance(outcome, BaseException):
                raise outcome
            for position, answer in zip(positions, outcome):
                results[position] = answer
        return results

    async def insert(self, item: str | bytes, client: str = "anon") -> bool:
        """Insert one item; returns the filter's ``add`` result."""
        results = await self.insert_batch([item], client=client)
        return results[0]

    async def query(self, item: str | bytes, client: str = "anon") -> bool:
        """Membership query for one item."""
        results = await self.query_batch([item], client=client)
        return results[0]

    async def insert_batch(
        self, items: Sequence[str | bytes], client: str = "anon"
    ) -> list[bool]:
        """Insert a batch; items are grouped per shard and each group is
        dispatched to the backend under that shard's lock.

        Raises :class:`RateLimited` (before touching any shard) when the
        client's token bucket cannot cover the whole batch.
        """
        if not items:
            return []
        self._admit(client, len(items))
        return await self._fan_out("insert", items)

    async def query_batch(
        self, items: Sequence[str | bytes], client: str = "anon"
    ) -> list[bool]:
        """Query a batch; same shard-grouped, lock-per-shard discipline."""
        if not items:
            return []
        self._admit(client, len(items))
        return await self._fan_out("query", items)

    # ------------------------------------------------------------------
    # Coalescing
    # ------------------------------------------------------------------

    @property
    def coalescing(self) -> bool:
        """Whether cross-client micro-batch coalescing is active."""
        return self._coalescer is not None

    def configure_coalescing(self, window_us: int = 0, max_batch: int = 0) -> None:
        """Install (``max_batch > 0``) or remove (``max_batch == 0``) the
        micro-batch coalescer.

        Safe to call between replays: the accumulated
        :attr:`coalesce_telemetry` counters are kept, so before/after
        deltas spanning a toggle stay meaningful.
        """
        if max_batch < 0 or window_us < 0:
            raise ParameterError("coalesce knobs must be non-negative")
        if max_batch == 0:
            if window_us:
                raise ParameterError(
                    "coalesce_window_us needs coalesce_max_batch > 0"
                )
            if self._coalescer is not None:
                self._coalescer.close()
            self._coalescer = None
            return
        self._coalescer = MicroBatchCoalescer(
            self._run_shard_batch,
            window_us=window_us,
            max_batch=max_batch,
            telemetry=self.coalesce_telemetry,
        )

    def coalesce_stats(self) -> dict:
        """Coalescer counters plus current configuration, as one dict."""
        stats = self.coalesce_telemetry.snapshot()
        stats["enabled"] = self._coalescer is not None
        stats["queue_depth"] = (
            self._coalescer.queue_depth if self._coalescer is not None else 0
        )
        return stats

    def close(self) -> None:
        """Release the backend's resources (worker processes etc.)."""
        if self._coalescer is not None:
            self._coalescer.close()
        self.backend.close()

    def __enter__(self) -> "MembershipGateway":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        policy = self.policy.spec() if self.policy is not None else "none"
        coalesce = (
            f"window_us={self._coalescer.window_us},"
            f"max_batch={self._coalescer.max_batch}"
            if self._coalescer is not None
            else "off"
        )
        return (
            f"<MembershipGateway shards={self.shards} picker={self.picker.name} "
            f"backend={self.backend.name} policy={policy} coalesce={coalesce} "
            f"rotations={self.rotations}>"
        )
