"""The membership-service subsystem: filters as deployed.

Everything else in the package studies a Bloom filter as an object; this
package studies it as a *service* -- the setting in which the paper's
attacks actually bite.  The stack is layered, transport-agnostic, and
restartable:

* :mod:`repro.service.backends` -- where shard filters live: in-process
  (:class:`LocalBackend`) or one worker process per shard
  (:class:`ProcessPoolBackend`), behind one batched contract;
* :mod:`repro.service.gateway` -- the asyncio membership gateway
  fronting N shards with batched query/insert APIs over any backend;
* :mod:`repro.service.sharding` -- pluggable shard routers (public hash
  vs the keyed countermeasure applied to routing); the pickers now live
  in :mod:`repro.service.cluster.ring` and re-export here;
* :mod:`repro.service.cluster` -- the multi-gateway tier: a
  consistent-hash ring with virtual nodes assigns global shard ids to
  gateway nodes, an epoch-versioned :class:`OwnershipMap` makes moves
  explicit, :class:`ClusterClient` routes batches and follows
  ``ST_NOT_OWNER`` redirects, and :class:`ClusterHarness` runs N
  gateways (in-process or tcp-local) behind a gateway-shaped
  :class:`ClusterView` facade; ownership moves by byte-exact snapshot
  handoff of one shard's filter bits + lifecycle + telemetry;
* :mod:`repro.service.admission` -- per-client rate limiting and the
  legacy saturation guard;
* :mod:`repro.service.lifecycle` -- shard lifecycle management: pluggable
  rotation policies (fill threshold, op-age recycling, adaptive
  positive-rate, rotate-on-restore) over per-shard observations,
  composable through a defence algebra (``&``/``|``/``!`` plus the
  stateful ``cooldown:N(...)``/``hysteresis:N(...)`` wrappers), with
  snapshot-persistent policy state;
* :mod:`repro.service.telemetry` -- per-shard counters, latency
  histograms and the coalescer's merge/flush counters;
* :mod:`repro.service.coalesce` -- cross-client micro-batch coalescing:
  concurrent small batches merge into kernel-sized backend calls with
  per-request answer slicing and exception isolation;
* :mod:`repro.service.codec` / :mod:`repro.service.server` /
  :mod:`repro.service.client` -- a length-prefixed binary wire protocol
  (v2 frames carry correlation ids) with a pipelining asyncio TCP
  server and a pooled-or-pipelined client;
* :mod:`repro.service.snapshots` -- warm-restart persistence of shard
  bits, the rotation log and telemetry;
* :mod:`repro.service.driver` -- a concurrent traffic driver replaying
  honest + adversarial workloads over any transport and reporting
  attack amplification; its four attack clients can share one
  :class:`~repro.adversary.budget.AttackBudget` (total trials, request
  rate, deadline -- the :class:`AttackBudgetConfig` literal), with the
  adaptive-ghost client feeding answers back into crafting.
"""

from repro.service.admission import (
    ClientRateLimiter,
    RateLimited,
    SaturationGuard,
    TokenBucket,
)
from repro.service.backends import (
    BatchReply,
    LocalBackend,
    ProcessPoolBackend,
    ShardBackend,
    ShardState,
)
from repro.service.client import MembershipClient
from repro.service.cluster import (
    ClusterClient,
    ClusterHarness,
    ClusterView,
    HashRing,
    OwnershipMap,
)
from repro.service.coalesce import MicroBatchCoalescer
from repro.service.config import AttackBudgetConfig, ServiceConfig
from repro.service.driver import (
    AdversarialTrafficDriver,
    ServiceTransport,
    TrafficReport,
    replay,
)
from repro.service.gateway import MembershipGateway, RotationEvent
from repro.service.lifecycle import (
    AdaptivePositiveRatePolicy,
    AllOf,
    AnyOf,
    Cooldown,
    FillThresholdPolicy,
    Hysteresis,
    NeverRotatePolicy,
    Not,
    RotateOnRestorePolicy,
    RotationDecision,
    RotationPolicy,
    ShardLifecycleState,
    ShardObservation,
    TimeBasedRecyclingPolicy,
    parse_policy,
    policy_from_guard,
)
from repro.service.server import MembershipServer
from repro.service.sharding import (
    HashShardPicker,
    KeyedShardPicker,
    ShardPicker,
    parse_picker,
)
from repro.service.snapshots import (
    GatewaySnapshot,
    ShardBlock,
    load_snapshot,
    parse_shard_block,
    restore_gateway,
    save_snapshot,
    snapshot_gateway,
    snapshot_shard,
)
from repro.service.telemetry import (
    CoalesceTelemetry,
    LatencyHistogram,
    ShardSnapshot,
    ShardTelemetry,
    render_snapshots,
)

__all__ = [
    "AdaptivePositiveRatePolicy",
    "AdversarialTrafficDriver",
    "AllOf",
    "AnyOf",
    "AttackBudgetConfig",
    "BatchReply",
    "ClientRateLimiter",
    "ClusterClient",
    "ClusterHarness",
    "ClusterView",
    "CoalesceTelemetry",
    "Cooldown",
    "FillThresholdPolicy",
    "Hysteresis",
    "GatewaySnapshot",
    "HashRing",
    "HashShardPicker",
    "KeyedShardPicker",
    "LatencyHistogram",
    "LocalBackend",
    "MembershipClient",
    "MembershipGateway",
    "MembershipServer",
    "MicroBatchCoalescer",
    "NeverRotatePolicy",
    "Not",
    "OwnershipMap",
    "ProcessPoolBackend",
    "RateLimited",
    "RotateOnRestorePolicy",
    "RotationDecision",
    "RotationEvent",
    "RotationPolicy",
    "SaturationGuard",
    "ServiceConfig",
    "ServiceTransport",
    "ShardBackend",
    "ShardBlock",
    "ShardLifecycleState",
    "ShardObservation",
    "ShardPicker",
    "ShardSnapshot",
    "ShardState",
    "ShardTelemetry",
    "TimeBasedRecyclingPolicy",
    "TokenBucket",
    "TrafficReport",
    "load_snapshot",
    "parse_picker",
    "parse_policy",
    "parse_shard_block",
    "policy_from_guard",
    "render_snapshots",
    "replay",
    "restore_gateway",
    "save_snapshot",
    "snapshot_gateway",
    "snapshot_shard",
]
