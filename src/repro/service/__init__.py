"""The membership-service subsystem: filters as deployed.

Everything else in the package studies a Bloom filter as an object; this
package studies it as a *service* -- the setting in which the paper's
attacks actually bite.  It provides:

* :mod:`repro.service.gateway` -- an asyncio membership gateway fronting
  N filter shards with batched query/insert APIs;
* :mod:`repro.service.sharding` -- pluggable shard routers (public hash
  vs the keyed countermeasure applied to routing);
* :mod:`repro.service.admission` -- per-client rate limiting and the
  saturation guard that operationalizes filter rotation;
* :mod:`repro.service.telemetry` -- per-shard counters and latency
  histograms;
* :mod:`repro.service.driver` -- a concurrent traffic driver replaying
  honest + adversarial workloads and reporting attack amplification.
"""

from repro.service.admission import (
    ClientRateLimiter,
    RateLimited,
    SaturationGuard,
    TokenBucket,
)
from repro.service.config import ServiceConfig
from repro.service.driver import AdversarialTrafficDriver, TrafficReport, replay
from repro.service.gateway import MembershipGateway, RotationEvent
from repro.service.sharding import HashShardPicker, KeyedShardPicker, ShardPicker
from repro.service.telemetry import (
    LatencyHistogram,
    ShardSnapshot,
    ShardTelemetry,
    render_snapshots,
)

__all__ = [
    "AdversarialTrafficDriver",
    "ClientRateLimiter",
    "HashShardPicker",
    "KeyedShardPicker",
    "LatencyHistogram",
    "MembershipGateway",
    "RateLimited",
    "RotationEvent",
    "SaturationGuard",
    "ServiceConfig",
    "ShardPicker",
    "ShardSnapshot",
    "ShardTelemetry",
    "TokenBucket",
    "TrafficReport",
    "render_snapshots",
    "replay",
]
