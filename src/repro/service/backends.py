"""Shard backends: where a gateway's filters actually live.

The gateway used to own its shard filters directly; this module makes
that a pluggable layer so the same serving API can front

* :class:`LocalBackend` -- filters in the gateway's own process (the
  original in-loop arrangement, zero overhead, no parallelism), and
* :class:`ProcessPoolBackend` -- one dedicated worker process per shard,
  batched dispatch over a pipe, so the CPU-bound work (hashing every
  item of a batch, crafting-heavy adversarial streams) runs on as many
  cores as there are shards.

Both speak the same small contract: batched insert/query that return the
answers *and* the shard's post-operation state in one hop (so the
saturation guard never needs a second round trip), plus rotation,
snapshot export/restore, and a white-box ``shard_view`` for the paper's
adversary model and for tests.

Process workers ship batch answers as a packed bitmap (the codec's
``pack_bools``), not a pickled list of bools -- one byte per eight
answers instead of a pickle opcode per answer, which matters once the
gateway's coalescer starts merging many clients' items into one pipe
hop.
"""

from __future__ import annotations

import asyncio
import mmap
import multiprocessing
import os
import sys
import threading
import weakref
from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Callable, Sequence

from repro.core.bloom import BloomFilter
from repro.core.interfaces import MembershipFilter
from repro.exceptions import BackendError, ParameterError
from repro.service.admission import filter_state
from repro.service.codec import pack_bools, unpack_bools

__all__ = [
    "ShardState",
    "BatchReply",
    "ShardBackend",
    "LocalBackend",
    "ProcessPoolBackend",
    "shared_memory_supported",
]


@dataclass(frozen=True)
class ShardState:
    """Point-in-time filter state of one shard.

    Field names deliberately mirror :class:`~repro.core.bloom.
    BloomFilter` properties so :func:`~repro.service.admission.
    filter_state` (and hence a fill-threshold rotation policy) reads a
    state the same way it reads a live filter.  ``age_ops`` is the
    backend-side operation count (inserts + queries) applied to the
    shard's *current* filter instance -- it travels back with every
    batch so lifecycle policies get their age observation in the same
    single hop as the answers, and it restarts at zero whenever the
    instance is rebuilt (rotation) or overwritten (snapshot restore).
    """

    hamming_weight: int
    fill_ratio: float
    insertions: int
    age_ops: int = 0


@dataclass(frozen=True)
class BatchReply:
    """Answers of one batched operation plus the shard's state after it."""

    answers: list[bool]
    state: ShardState


def _state_of(filt: MembershipFilter, age_ops: int = 0) -> ShardState:
    weight, fill = filter_state(filt)
    return ShardState(
        hamming_weight=weight,
        fill_ratio=fill,
        insertions=len(filt),
        age_ops=age_ops,
    )


class ShardBackend(ABC):
    """N filter shards behind a uniform batched interface.

    The batched operations are async (a process backend awaits a worker
    round trip); the state/snapshot accessors are sync -- they are used
    by telemetry, the adversary's white-box probes and persistence, all
    off the latency-critical path.
    """

    #: Number of shards this backend serves.
    shards: int
    #: Display name for reports ("local", "process-pool").
    name: str = "backend"

    @abstractmethod
    async def insert_batch(self, shard_id: int, items: Sequence[str | bytes]) -> BatchReply:
        """Apply ``add_batch`` on one shard; answers + post-op state."""

    @abstractmethod
    async def query_batch(self, shard_id: int, items: Sequence[str | bytes]) -> BatchReply:
        """Apply ``contains_batch`` on one shard; answers + post-op state."""

    @abstractmethod
    async def rotate(self, shard_id: int) -> None:
        """Replace one shard's filter with a fresh factory build."""

    @abstractmethod
    def state(self, shard_id: int) -> ShardState:
        """Current filter state of one shard (cheap, lock-free probe)."""

    @abstractmethod
    def export_shard(self, shard_id: int) -> bytes:
        """Serialise one shard via the stable core snapshot header."""

    @abstractmethod
    def restore_shard(self, shard_id: int, raw: bytes) -> None:
        """Load a snapshot payload into one shard (geometry-checked)."""

    @abstractmethod
    def shard_view(self, shard_id: int) -> MembershipFilter:
        """A filter exposing the shard's current bit state.

        For a local backend this is the live filter itself; for a
        process backend it is a reconstructed copy (the white-box
        adversary's view -- mutating it does not touch the shard).
        """

    def attach_shard(self) -> int:
        """Grow the backend by one fresh shard slot; returns its id.

        The cluster tier's snapshot-handoff target: a gateway adopting a
        shard attaches a slot, then restores the handed-off block into
        it.  Backends without dynamic membership raise
        :class:`~repro.exceptions.BackendError` (the process pool pins
        one worker per slot at build time, so handoff is local-only for
        now).
        """
        raise BackendError(
            f"{self.name} backend does not support attaching shard slots"
        )

    def detach_shard(self, slot: int) -> None:
        """Drop one shard slot; slots above it shift down by one.

        Counterpart of :meth:`attach_shard` for the losing side of a
        handoff.  The caller owns the slot-id translation (the gateway
        re-derives its global-to-slot map after every detach).
        """
        raise BackendError(
            f"{self.name} backend does not support detaching shard slots"
        )

    def close(self) -> None:
        """Release backend resources (idempotent; no-op by default)."""

    def _check_shard(self, shard_id: int) -> None:
        if not 0 <= shard_id < self.shards:
            raise ParameterError(
                f"shard_id {shard_id} out of range [0, {self.shards})"
            )

    def __enter__(self) -> "ShardBackend":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<{type(self).__name__} shards={self.shards}>"


def _snapshot_capable(filt: MembershipFilter):
    """Any shard filter carrying the stable snapshot header protocol
    (``BloomFilter`` and ``CountingBloomFilter`` families both do)."""
    if not (hasattr(filt, "snapshot_bytes") and hasattr(filt, "restore_snapshot")):
        raise BackendError(
            f"shard snapshots need a filter with snapshot_bytes/"
            f"restore_snapshot, got {type(filt).__name__}"
        )
    return filt


def _rebuild_view(template: MembershipFilter, raw: bytes) -> MembershipFilter:
    """Reconstruct a white-box filter view from an exported snapshot,
    matching the template's family and (stateless) strategy."""
    from repro.core.counting import CountingBloomFilter

    if isinstance(template, CountingBloomFilter):
        return CountingBloomFilter.from_snapshot(
            raw, strategy=template.strategy, overflow=template.overflow
        )
    return BloomFilter.from_snapshot(raw, strategy=_snapshot_capable(template).strategy)


class LocalBackend(ShardBackend):
    """The original arrangement: shard filters live in this process.

    Zero serving overhead (method calls), full white-box access, no
    parallelism -- everything runs on the event loop's core.
    """

    name = "local"

    def __init__(
        self, filter_factory: Callable[[], MembershipFilter], shards: int
    ) -> None:
        # Zero shards is legal here (a cluster gateway may own nothing
        # until a handoff lands); the gateway's own constructor still
        # rejects zero for the single-gateway arrangement.
        if shards < 0:
            raise ParameterError(f"shards must be non-negative, got {shards}")
        self.shards = shards
        self._factory = filter_factory
        self._filters = [filter_factory() for _ in range(shards)]
        self._ops = [0] * shards

    async def insert_batch(self, shard_id: int, items: Sequence[str | bytes]) -> BatchReply:
        self._check_shard(shard_id)
        filt = self._filters[shard_id]
        answers = filt.add_batch(items)
        self._ops[shard_id] += len(answers)
        return BatchReply(answers=answers, state=_state_of(filt, self._ops[shard_id]))

    async def query_batch(self, shard_id: int, items: Sequence[str | bytes]) -> BatchReply:
        self._check_shard(shard_id)
        filt = self._filters[shard_id]
        answers = filt.contains_batch(items)
        self._ops[shard_id] += len(answers)
        return BatchReply(answers=answers, state=_state_of(filt, self._ops[shard_id]))

    async def rotate(self, shard_id: int) -> None:
        self._check_shard(shard_id)
        self._filters[shard_id] = self._factory()
        self._ops[shard_id] = 0

    def state(self, shard_id: int) -> ShardState:
        self._check_shard(shard_id)
        return _state_of(self._filters[shard_id], self._ops[shard_id])

    def export_shard(self, shard_id: int) -> bytes:
        self._check_shard(shard_id)
        return _snapshot_capable(self._filters[shard_id]).snapshot_bytes()

    def restore_shard(self, shard_id: int, raw: bytes) -> None:
        self._check_shard(shard_id)
        _snapshot_capable(self._filters[shard_id]).restore_snapshot(raw)
        # The instance's op clock restarts: post-restore age is measured
        # from here, any inherited age lives in the gateway's lifecycle.
        self._ops[shard_id] = 0

    def shard_view(self, shard_id: int) -> MembershipFilter:
        self._check_shard(shard_id)
        return self._filters[shard_id]

    def attach_shard(self) -> int:
        self._filters.append(self._factory())
        self._ops.append(0)
        self.shards += 1
        return self.shards - 1

    def detach_shard(self, slot: int) -> None:
        self._check_shard(slot)
        self._filters.pop(slot)
        self._ops.pop(slot)
        self.shards -= 1


# ----------------------------------------------------------------------
# Process-pool backend
# ----------------------------------------------------------------------

#: Directory POSIX shared-memory segments surface under on Linux.
_SHM_DIR = "/dev/shm"


def shared_memory_supported() -> bool:
    """Can snapshots ride per-shard shared-memory segments here?

    The parent owns :class:`multiprocessing.shared_memory.SharedMemory`
    segments; workers attach by mapping the segment's ``/dev/shm`` file
    directly (plain ``mmap``, no resource-tracker involvement -- on
    Python < 3.13 an attaching ``SharedMemory`` object re-registers the
    segment and a ``spawn`` worker's tracker would unlink it from under
    the parent).  That makes the fast path Linux-shaped; elsewhere the
    pipe fallback carries snapshots, bit-identically.
    """
    return sys.platform.startswith("linux") and os.path.isdir(_SHM_DIR)


class _WorkerShmMaps:
    """Worker-side cache of shared-memory attachments, keyed by name."""

    def __init__(self) -> None:
        self._maps: dict[str, mmap.mmap] = {}

    def get(self, name: str) -> mmap.mmap:
        mapped = self._maps.get(name)
        if mapped is None:
            path = os.path.join(_SHM_DIR, name.lstrip("/"))
            with open(path, "r+b") as handle:
                mapped = mmap.mmap(handle.fileno(), 0)
            self._maps[name] = mapped
        return mapped

    def close(self) -> None:
        for mapped in self._maps.values():
            try:
                mapped.close()
            except (BufferError, ValueError):  # pragma: no cover - defensive
                pass
        self._maps.clear()


def _shard_worker_main(conn, filter_factory: Callable[[], MembershipFilter]) -> None:
    """One shard's worker loop: recv an op, run it on the filter, reply.

    Runs until the pipe closes or a ``close`` op arrives.  Errors are
    shipped back as ``("err", message)`` instead of killing the worker,
    so one bad batch cannot take a shard down.
    """
    filt = filter_factory()
    ops = 0
    shm_maps = _WorkerShmMaps()
    while True:
        try:
            op, payload = conn.recv()
        except (EOFError, OSError):
            break
        try:
            if op == "insert":
                answers = filt.add_batch(payload)
                ops += len(answers)
                reply = (pack_bools(answers), len(answers), _state_of(filt, ops))
            elif op == "query":
                answers = filt.contains_batch(payload)
                ops += len(answers)
                reply = (pack_bools(answers), len(answers), _state_of(filt, ops))
            elif op == "state":
                reply = _state_of(filt, ops)
            elif op == "rotate":
                filt = filter_factory()
                ops = 0
                reply = None
            elif op == "export":
                reply = _snapshot_capable(filt).snapshot_bytes()
            elif op == "export_shm":
                # Write the snapshot straight into the parent-owned
                # segment; only its length crosses the pipe.  A snapshot
                # the segment cannot hold degrades to the pipe reply.
                name, capacity = payload
                snapshot = _snapshot_capable(filt).snapshot_bytes()
                if len(snapshot) <= capacity:
                    mapped = shm_maps.get(name)
                    mapped[: len(snapshot)] = snapshot
                    reply = ("shm", len(snapshot))
                else:
                    reply = ("raw", snapshot)
            elif op == "restore":
                _snapshot_capable(filt).restore_snapshot(payload)
                ops = 0
                reply = None
            elif op == "restore_shm":
                name, size = payload
                mapped = shm_maps.get(name)
                _snapshot_capable(filt).restore_snapshot(bytes(mapped[:size]))
                ops = 0
                reply = None
            elif op == "close":
                conn.send(("ok", None))
                break
            else:
                raise ValueError(f"unknown shard op {op!r}")
            conn.send(("ok", reply))
        except Exception as exc:  # noqa: BLE001 - forwarded to the parent
            try:
                conn.send(("err", f"{type(exc).__name__}: {exc}"))
            except (BrokenPipeError, OSError):
                break
    shm_maps.close()
    conn.close()


def _terminate_processes(processes) -> None:
    for process in processes:
        if process.is_alive():
            process.terminate()
    for process in processes:
        process.join(timeout=2.0)


def _release_backend_resources(processes, segments) -> None:
    """Terminate workers, then close and unlink the parent-owned
    shared-memory segments (idempotent; used by close() and the GC
    safety-net finalizer)."""
    _terminate_processes(processes)
    for i, segment in enumerate(segments):
        if segment is None:
            continue
        segments[i] = None
        try:
            segment.close()
        except (BufferError, OSError):  # pragma: no cover - defensive
            pass
        try:
            segment.unlink()
        except (FileNotFoundError, OSError):  # pragma: no cover - defensive
            pass


class _Worker:
    """Parent-side handle on one shard worker: process, pipe, pipe lock."""

    __slots__ = ("process", "conn", "lock")

    def __init__(self, process, conn) -> None:
        self.process = process
        self.conn = conn
        # The pipe carries strictly alternating request/reply pairs; the
        # lock keeps the asyncio batch path and the sync state/snapshot
        # probes from interleaving frames.
        self.lock = threading.Lock()


class ProcessPoolBackend(ShardBackend):
    """One worker process per shard, batched dispatch over pipes.

    Each shard's hashing and bit work runs in its own process, so a
    multi-shard gateway under concurrent batches uses multiple cores --
    the scaling step the ROADMAP asks for.  Per-shard dispatch stays
    batched: one pipe round trip carries a whole ``add_batch``/
    ``contains_batch`` group, which is what keeps the hop affordable.

    Parameters
    ----------
    filter_factory:
        Zero-argument callable building one shard's filter, executed in
        the worker.  It must be *deterministic* (pin any keys): the
        parent builds one template from the same factory to reconstruct
        white-box views, and rotation rebuilds in the worker.  Under the
        default ``fork`` start method any callable works; under
        ``spawn`` it must be picklable.
    shards:
        Number of worker processes.
    mp_context:
        Explicit multiprocessing context; defaults to ``fork`` where
        available (lets closures cross), else the platform default.
    use_shared_memory:
        Carry snapshot export/restore payloads through per-shard
        shared-memory segments instead of pickling megabytes through
        the pipe (only the segment name and byte count cross it).
        Silently degrades to the pipe whenever shared memory is
        unsupported or a segment cannot be created.
    """

    name = "process-pool"

    def __init__(
        self,
        filter_factory: Callable[[], MembershipFilter],
        shards: int,
        mp_context=None,
        use_shared_memory: bool = True,
    ) -> None:
        if shards <= 0:
            raise ParameterError(f"shards must be positive, got {shards}")
        if mp_context is None:
            try:
                mp_context = multiprocessing.get_context("fork")
            except ValueError:  # pragma: no cover - non-POSIX platforms
                mp_context = multiprocessing.get_context()
        self.shards = shards
        self._template = filter_factory()
        self._workers: list[_Worker] = []
        self._closed = False
        self._shm_enabled = use_shared_memory and shared_memory_supported()
        self._segments: list = [None] * shards
        self._snapshot_hint: int | None = -1  # -1 = not probed yet
        try:
            for _ in range(shards):
                parent_conn, child_conn = mp_context.Pipe()
                process = mp_context.Process(
                    target=_shard_worker_main,
                    args=(child_conn, filter_factory),
                    daemon=True,
                )
                process.start()
                child_conn.close()
                self._workers.append(_Worker(process, parent_conn))
        except Exception:
            _terminate_processes([w.process for w in self._workers])
            raise
        # Safety net: if close() is never called, clean up at GC/exit.
        self._finalizer = weakref.finalize(
            self,
            _release_backend_resources,
            [w.process for w in self._workers],
            self._segments,
        )

    # -- shared-memory segment management ------------------------------

    def _snapshot_size_hint(self) -> int | None:
        """Byte size of one shard snapshot (geometry-fixed, so probed
        once on the template); ``None`` for non-snapshot filters."""
        if self._snapshot_hint == -1:
            try:
                self._snapshot_hint = len(
                    _snapshot_capable(self._template).snapshot_bytes()
                )
            except BackendError:
                self._snapshot_hint = None
        return self._snapshot_hint

    def _segment_for(self, shard_id: int, min_size: int | None = None):
        """The shard's shared segment, created or regrown to hold at
        least ``min_size`` bytes; ``None`` when shm cannot be used."""
        if min_size is None:
            min_size = self._snapshot_size_hint()
            if min_size is None:
                return None
        segment = self._segments[shard_id]
        if segment is not None and segment.size >= min_size:
            return segment
        if segment is not None:
            self._segments[shard_id] = None
            segment.close()
            try:
                segment.unlink()
            except (FileNotFoundError, OSError):  # pragma: no cover
                pass
        from multiprocessing import shared_memory

        try:
            segment = shared_memory.SharedMemory(create=True, size=max(min_size, 1))
        except (OSError, ValueError):  # pragma: no cover - /dev/shm exhausted
            self._shm_enabled = False
            return None
        self._segments[shard_id] = segment
        return segment

    # -- pipe protocol -------------------------------------------------

    def _send_recv(self, shard_id: int, worker: _Worker, op: str, payload):
        """One request/reply exchange; the caller holds ``worker.lock``."""
        try:
            worker.conn.send((op, payload))
            status, reply = worker.conn.recv()
        except (EOFError, OSError, BrokenPipeError) as exc:
            raise BackendError(
                f"shard {shard_id} worker is gone ({exc!r})"
            ) from exc
        if status == "err":
            raise BackendError(f"shard {shard_id} worker failed: {reply}")
        return reply

    def _roundtrip(self, shard_id: int, op: str, payload=None):
        self._check_shard(shard_id)
        if self._closed:
            raise BackendError("backend is closed")
        worker = self._workers[shard_id]
        with worker.lock:
            return self._send_recv(shard_id, worker, op, payload)

    async def insert_batch(self, shard_id: int, items: Sequence[str | bytes]) -> BatchReply:
        packed, count, state = await asyncio.to_thread(
            self._roundtrip, shard_id, "insert", list(items)
        )
        return BatchReply(unpack_bools(packed, count), state)

    async def query_batch(self, shard_id: int, items: Sequence[str | bytes]) -> BatchReply:
        packed, count, state = await asyncio.to_thread(
            self._roundtrip, shard_id, "query", list(items)
        )
        return BatchReply(unpack_bools(packed, count), state)

    async def rotate(self, shard_id: int) -> None:
        await asyncio.to_thread(self._roundtrip, shard_id, "rotate")

    def state(self, shard_id: int) -> ShardState:
        return self._roundtrip(shard_id, "state")

    def export_shard(self, shard_id: int) -> bytes:
        """Serialise one shard; the payload rides the shard's shared
        segment when available, the pipe otherwise."""
        self._check_shard(shard_id)
        if self._closed:
            raise BackendError("backend is closed")
        segment = self._segment_for(shard_id) if self._shm_enabled else None
        if segment is None:
            return self._roundtrip(shard_id, "export")
        worker = self._workers[shard_id]
        # The segment read happens under the worker lock so a concurrent
        # export/restore on the same shard cannot rewrite it mid-copy.
        with worker.lock:
            kind, value = self._send_recv(
                shard_id, worker, "export_shm", (segment.name, segment.size)
            )
            if kind == "shm":
                return bytes(segment.buf[:value])
        return value  # "raw": the snapshot outgrew the segment

    def restore_shard(self, shard_id: int, raw: bytes) -> None:
        """Load a snapshot; payload transfer mirrors :meth:`export_shard`."""
        self._check_shard(shard_id)
        if self._closed:
            raise BackendError("backend is closed")
        segment = (
            self._segment_for(shard_id, min_size=len(raw))
            if self._shm_enabled and raw
            else None
        )
        if segment is None:
            self._roundtrip(shard_id, "restore", raw)
            return
        worker = self._workers[shard_id]
        with worker.lock:
            segment.buf[: len(raw)] = raw
            self._send_recv(
                shard_id, worker, "restore_shm", (segment.name, len(raw))
            )

    def shard_view(self, shard_id: int) -> MembershipFilter:
        """Reconstruct the shard's filter from an exported snapshot.

        The view shares the parent template's strategy, so it answers
        ``indexes``/``__contains__`` exactly like the worker's filter --
        provided the factory is deterministic (see class docstring).
        """
        raw = self.export_shard(shard_id)
        return _rebuild_view(self._template, raw)

    def close(self) -> None:
        """Shut every worker down (graceful close, then terminate)."""
        if self._closed:
            return
        self._closed = True
        for worker in self._workers:
            with worker.lock:
                try:
                    worker.conn.send(("close", None))
                    worker.conn.recv()
                except (EOFError, OSError, BrokenPipeError):
                    pass
                worker.conn.close()
        self._finalizer()
