"""Cross-client micro-batch coalescing for the membership gateway.

The numpy hot path (PR 7) only pays off at batch sizes the kernels can
vectorise, but realistic traffic is many clients sending *small*
requests -- the paper's serving setting, where each adversary or honest
client queries a handful of URLs at a time.  Routed naively, every such
request costs one full gateway round (lock, backend call, telemetry,
rotation decision) and, on a process backend, one pipe hop.

The coalescer closes that gap: concurrent sub-batches aimed at the same
``(shard, op)`` park in a submit queue and are merged into one backend
call, flushed either when the queue reaches ``max_batch`` items (the
batch shape the kernels want) or when the oldest entry has waited
``window_us`` microseconds (bounded added latency).  Answers come back
sliced per submission, so callers cannot tell they shared a ride --
except that admission, rate limiting and per-request exception
semantics are all preserved per *client* request:

* admission runs before submission (the gateway admits, then submits);
* answers are sliced by submission offset, order preserved;
* a merged call that fails is re-run request-by-request, so one
  client's poisoned item fails only that client's request (isolation).

A ``window_us`` of 0 still coalesces: the flush is scheduled for the
next event-loop turn, merging exactly the requests that were submitted
concurrently in the current one.
"""

from __future__ import annotations

import asyncio
from typing import Awaitable, Callable, Sequence

from repro.exceptions import ParameterError
from repro.service.telemetry import CoalesceTelemetry

__all__ = ["MicroBatchCoalescer"]

#: ``runner(shard_id, op, items) -> answers``: the gateway's locked
#: per-shard batch section (backend call + telemetry + rotation).
BatchRunner = Callable[[int, str, list], Awaitable[list]]


class _Pending:
    """One submitted sub-batch waiting for its slice of a merged reply."""

    __slots__ = ("items", "future")

    def __init__(self, items: list, future: asyncio.Future) -> None:
        self.items = items
        self.future = future


class _Queue:
    """Per-``(shard, op)`` submit queue plus its deadline timer."""

    __slots__ = ("pending", "items", "timer")

    def __init__(self) -> None:
        self.pending: list[_Pending] = []
        self.items = 0
        self.timer: asyncio.TimerHandle | None = None


class MicroBatchCoalescer:
    """Merge concurrent small batches into kernel-sized backend calls.

    Parameters
    ----------
    runner:
        The gateway's per-shard batch executor (runs under the shard
        lock; the coalescer itself takes no locks).
    window_us:
        Microseconds a queued request may wait for co-riders before the
        deadline flush; 0 flushes on the next event-loop turn.
    max_batch:
        Queued item count that triggers an immediate flush.  Must be
        positive -- a zero ``max_batch`` means "coalescing off" and is
        the caller's signal not to build a coalescer at all.
    telemetry:
        Counter sink; a fresh :class:`CoalesceTelemetry` by default.
    """

    def __init__(
        self,
        runner: BatchRunner,
        window_us: int = 200,
        max_batch: int = 64,
        telemetry: CoalesceTelemetry | None = None,
    ) -> None:
        if max_batch <= 0:
            raise ParameterError("coalesce max_batch must be positive")
        if window_us < 0:
            raise ParameterError("coalesce window_us must be non-negative")
        self._runner = runner
        self.window_us = window_us
        self.max_batch = max_batch
        self.telemetry = telemetry if telemetry is not None else CoalesceTelemetry()
        self._queues: dict[tuple[int, str], _Queue] = {}
        self._flushers: set[asyncio.Task] = set()

    # ------------------------------------------------------------------
    # Submission
    # ------------------------------------------------------------------

    def submit(
        self, shard_id: int, op: str, items: Sequence
    ) -> asyncio.Future:
        """Queue one sub-batch; the future resolves to its answers.

        Runs synchronously on the event loop (no awaits), so every
        request submitted in one loop turn lands in the queue before any
        flush for that turn runs -- that is what makes merging
        deterministic for concurrently-submitted work.
        """
        loop = asyncio.get_running_loop()
        future: asyncio.Future = loop.create_future()
        pending = _Pending(list(items), future)
        key = (shard_id, op)
        queue = self._queues.get(key)
        if queue is None:
            queue = self._queues[key] = _Queue()
        queue.pending.append(pending)
        queue.items += len(pending.items)
        stats = self.telemetry
        stats.requests += 1
        stats.items += len(pending.items)
        if len(queue.pending) > stats.max_queue_depth:
            stats.max_queue_depth = len(queue.pending)
        if queue.items >= self.max_batch:
            self._launch_flush(key, "size")
        elif queue.timer is None:
            queue.timer = loop.call_later(
                self.window_us / 1e6, self._launch_flush, key, "window"
            )
        return future

    # ------------------------------------------------------------------
    # Flushing
    # ------------------------------------------------------------------

    def _launch_flush(self, key: tuple[int, str], reason: str) -> None:
        """Detach the queue and run its merged batch as a task."""
        queue = self._queues.pop(key, None)
        if queue is None or not queue.pending:
            return  # a size flush beat this deadline to the queue
        if queue.timer is not None:
            queue.timer.cancel()
        stats = self.telemetry
        stats.flushes += 1
        if reason == "size":
            stats.flush_size += 1
        else:
            stats.flush_window += 1
        task = asyncio.get_running_loop().create_task(
            self._flush(key[0], key[1], queue.pending)
        )
        # Flush tasks are created in submission order and hit the shard
        # lock as their first await, so merged batches stay FIFO per
        # shard; the set only keeps them alive and drainable.
        self._flushers.add(task)
        task.add_done_callback(self._flushers.discard)

    async def _flush(self, shard_id: int, op: str, batch: list[_Pending]) -> None:
        merged: list = []
        for pending in batch:
            merged.extend(pending.items)
        try:
            answers = await self._runner(shard_id, op, merged)
        except Exception as exc:  # noqa: BLE001 - isolated per request below
            await self._isolate(shard_id, op, batch, exc)
            return
        offset = 0
        for pending in batch:
            end = offset + len(pending.items)
            if not pending.future.done():
                pending.future.set_result(answers[offset:end])
            offset = end

    async def _isolate(
        self, shard_id: int, op: str, batch: list[_Pending], exc: Exception
    ) -> None:
        """Re-run a failed merge request-by-request.

        A lone request keeps its exception as-is.  A genuinely merged
        batch is replayed one submission at a time so the requests that
        were fine still get answers and only the offender(s) fail --
        the per-request error contract callers had before coalescing.
        """
        if len(batch) == 1:
            if not batch[0].future.done():
                batch[0].future.set_exception(exc)
            return
        self.telemetry.isolation_splits += 1
        for pending in batch:
            try:
                answers = await self._runner(shard_id, op, pending.items)
            except Exception as solo_exc:  # noqa: BLE001 - delivered per future
                if not pending.future.done():
                    pending.future.set_exception(solo_exc)
            else:
                if not pending.future.done():
                    pending.future.set_result(answers)

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    @property
    def queue_depth(self) -> int:
        """Sub-batches currently parked across all queues."""
        return sum(len(q.pending) for q in self._queues.values())

    def close(self) -> None:
        """Cancel pending deadline timers (queues should be empty: every
        submitter awaits its future, so live entries imply live callers)."""
        for queue in self._queues.values():
            if queue.timer is not None:
                queue.timer.cancel()
        self._queues.clear()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"<MicroBatchCoalescer window_us={self.window_us} "
            f"max_batch={self.max_batch} queued={self.queue_depth}>"
        )
