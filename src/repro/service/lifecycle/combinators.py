"""Composable defence-policy algebra: AND/OR/NOT plus stateful wrappers.

Naor-Yogev's feedback-driven adversary defeats any single tripwire: a
fill threshold never sees a ghost storm, a positive-rate tripwire can be
thrashed into rotating the filter so often that honest capacity
collapses.  Real deployments therefore *compose* defences -- "rotate on
the ghost-storm signature, but only once the filter holds something
worth protecting, and never twice within the same few hundred
operations".  This module is that algebra:

* :class:`AllOf` (``a&b``) -- rotate only when every child votes rotate;
* :class:`AnyOf` (``a|b``) -- rotate when any child votes rotate;
* :class:`Not` (``!a``) -- invert a child's vote (a guard, composed
  under :class:`AllOf`);
* :class:`Cooldown` (``cooldown:N(a)``) -- refuse the subtree's
  rotations until the shard's current filter has served ``N``
  operations, so a fresh filter is guaranteed a minimum lifetime and a
  sustained attack cannot thrash the shard into permanent emptiness.
  Refusals are tallied per shard (``ShardLifecycleState.suppressed``,
  surfaced as the stats table's ``suppressed`` column and persisted in
  gateway snapshots since version 4);
* :class:`Hysteresis` (``hysteresis:N(a)``) -- require the subtree to
  vote rotate on ``N`` *consecutive* decisions before the rotation
  passes through, so a single transient spike (one unlucky batch) never
  retires a healthy filter.  The per-shard streak lives in
  ``ShardLifecycleState.streaks`` keyed by this wrapper's spec string,
  rides gateway snapshots (version 4), and clears on rotation.

Combinators evaluate *every* child on every decision -- no
short-circuiting -- because stateful wrappers anywhere in the tree must
see every observation to keep their streaks honest.  The tree is built
from :func:`~repro.service.lifecycle.parser.parse_policy` specs like
``(adaptive:0.8:24:32&fill:0.5)|age:4000`` or
``cooldown:200(hysteresis:2(adaptive:0.85:24:32))`` and renders back via
``spec()``.
"""

from __future__ import annotations

from typing import Sequence

from repro.exceptions import ParameterError
from repro.service.lifecycle.policies import RotationPolicy
from repro.service.lifecycle.state import (
    KEEP,
    RotationDecision,
    ShardLifecycleState,
    ShardObservation,
)

__all__ = ["AllOf", "AnyOf", "Not", "Cooldown", "Hysteresis"]


def _walk(policy: RotationPolicy):
    """Depth-first traversal of a policy tree (the wrapper/combinator
    child attributes are the edges)."""
    yield policy
    for attribute in ("children", "inner", "child"):
        below = getattr(policy, attribute, None)
        if below is None:
            continue
        for node in below if isinstance(below, tuple) else (below,):
            yield from _walk(node)


def _assign_streak_keys(root: RotationPolicy) -> None:
    """Give every :class:`Hysteresis` in ``root``'s tree a unique,
    position-stable streak key.

    Two *identical* wrappers in one tree must not share a streak entry:
    within a single gateway decision both would read-modify the same
    key, so a ``hold=2`` pair would fire on the very first rotate vote.
    Keys are the wrapper's spec, disambiguated ``#2``, ``#3``, ... in
    depth-first order -- re-parsing the same config string rebuilds the
    same tree shape, so the keys (and with them the snapshotted
    streaks) are stable across restarts.  Every combinator re-runs this
    from its own root at construction time; the outermost build wins
    and sees the whole tree.  (One Hysteresis *instance* aliased into
    two branches keeps a single key: shared object, genuinely shared
    streak.)
    """
    seen: dict[str, int] = {}
    for node in _walk(root):
        if isinstance(node, Hysteresis):
            spec = node.spec()
            count = seen.get(spec, 0) + 1
            seen[spec] = count
            node._streak_key = spec if count == 1 else f"{spec}#{count}"


def _child_spec(child: RotationPolicy) -> str:
    """A child's spec, parenthesised when its top-level operator binds
    looser than the parent's context requires."""
    spec = child.spec()
    if isinstance(child, AnyOf):
        return f"({spec})"
    return spec


class _Combinator(RotationPolicy):
    """Shared n-ary plumbing: children, recent-window needs, threading."""

    def __init__(self, children: Sequence[RotationPolicy]) -> None:
        if len(children) < 2:
            raise ParameterError(
                f"'{self.name}' composition needs at least two policies"
            )
        self.children = tuple(children)
        self.needs_recent = any(child.needs_recent for child in self.children)
        _assign_streak_keys(self)

    def evaluate(self, observation: ShardObservation) -> RotationDecision:
        return self.decide(observation)

    def _votes(
        self,
        observation: ShardObservation,
        life: ShardLifecycleState | None,
    ) -> list[RotationDecision]:
        # Every child decides on every observation (no short-circuit):
        # a hysteresis wrapper in any branch must see the full stream or
        # its consecutive-vote streak would depend on sibling order.
        return [child.decide(observation, life) for child in self.children]


class AllOf(_Combinator):
    """Rotate only when *every* child votes rotate (``a&b&c``).

    The conjunction is how a tripwire gets a guard: e.g.
    ``adaptive:0.8:24:32&fill:0.2`` rotates on the ghost-storm signature
    only once the filter actually holds state worth invalidating.
    """

    name = "all"

    def decide(
        self,
        observation: ShardObservation,
        life: ShardLifecycleState | None = None,
    ) -> RotationDecision:
        votes = self._votes(observation, life)
        if all(vote.rotate for vote in votes):
            return RotationDecision(
                rotate=True, reason=" & ".join(vote.reason for vote in votes)
            )
        return KEEP

    def spec(self) -> str:
        return "&".join(_child_spec(child) for child in self.children)


class AnyOf(_Combinator):
    """Rotate when *any* child votes rotate (``a|b``); first rotating
    child's reason wins (children are still all evaluated)."""

    name = "any"

    def decide(
        self,
        observation: ShardObservation,
        life: ShardLifecycleState | None = None,
    ) -> RotationDecision:
        votes = self._votes(observation, life)
        for vote in votes:
            if vote.rotate:
                return vote
        return KEEP

    def spec(self) -> str:
        # `|` is the loosest operator, so children never need parens
        # for precedence -- but AnyOf children keep theirs for clarity
        # of nested trees.
        return "|".join(_child_spec(child) for child in self.children)


class Not(RotationPolicy):
    """Invert a child's vote (``!a``): rotate when the child keeps.

    On its own this rotates nearly always -- its use is as a guard under
    :class:`AllOf`, e.g. ``age:4000&!adaptive:0.9:16`` (recycle on age,
    but never in the middle of an active probe storm the operator wants
    to study).
    """

    name = "not"

    def __init__(self, child: RotationPolicy) -> None:
        self.child = child
        self.needs_recent = child.needs_recent
        self._reason = f"not({child.spec()})"
        _assign_streak_keys(self)

    def evaluate(self, observation: ShardObservation) -> RotationDecision:
        return self.decide(observation)

    def decide(
        self,
        observation: ShardObservation,
        life: ShardLifecycleState | None = None,
    ) -> RotationDecision:
        vote = self.child.decide(observation, life)
        if vote.rotate:
            return KEEP
        return RotationDecision(rotate=True, reason=self._reason)

    def spec(self) -> str:
        child = self.child.spec()
        if isinstance(self.child, (AllOf, AnyOf)):
            return f"!({child})"
        return f"!{child}"


class Cooldown(RotationPolicy):
    """Refuse the subtree's rotations while the filter is younger than
    ``ops`` operations (``cooldown:N(inner)``).

    Because a rotation (whoever triggered it) swaps in a fresh filter
    whose operation age restarts at zero, this is exactly a guaranteed
    minimum lifetime: no two rotations of one shard can ever be fewer
    than ``ops`` shard-operations apart, and a sustained ghost storm
    cannot thrash the shard into serving from a permanently-empty
    filter.  Each refusal bumps the shard's ``suppressed`` tally (when
    the gateway threads its lifecycle state through), which lands in the
    stats table and the gateway snapshot (version 4).

    The inner subtree is still evaluated on every decision -- its own
    stateful wrappers keep seeing the stream -- only its rotate verdict
    is withheld.
    """

    name = "cooldown"

    def __init__(self, ops: int, inner: RotationPolicy) -> None:
        if ops <= 0:
            raise ParameterError("cooldown ops must be positive")
        self.ops = ops
        self.inner = inner
        self.needs_recent = inner.needs_recent
        self._reason = f"cooldown<{ops}"
        _assign_streak_keys(self)

    def evaluate(self, observation: ShardObservation) -> RotationDecision:
        return self.decide(observation)

    def decide(
        self,
        observation: ShardObservation,
        life: ShardLifecycleState | None = None,
    ) -> RotationDecision:
        vote = self.inner.decide(observation, life)
        if vote.rotate and observation.age_ops < self.ops:
            if life is not None:
                life.suppressed += 1
            return RotationDecision(rotate=False, reason=self._reason)
        return vote

    def spec(self) -> str:
        return f"cooldown:{self.ops}({self.inner.spec()})"


class Hysteresis(RotationPolicy):
    """Pass a rotation through only after ``hold`` consecutive rotate
    votes from the subtree (``hysteresis:N(inner)``).

    One spiky batch -- a burst of lucky honest positives, a short probe
    -- is not a campaign; requiring the condition to *persist* across
    ``hold`` decisions keeps transients from retiring a healthy filter
    while a genuine sustained ghost storm still trips it within a few
    batches.  The per-shard streak lives in
    ``ShardLifecycleState.streaks`` under this wrapper's spec string,
    disambiguated ``#2``, ``#3``, ... when one tree contains identical
    wrappers (two hold-2 twins sharing one entry would otherwise fire
    on the first vote -- each would bump the same streak once per
    decision).  The keys are assigned in depth-first order whenever a
    combinator is built, so re-parsing the same config string rebuilds
    the same keys and the streaks persist across warm restarts via
    gateway snapshot version 4; they clear when the shard rotates.

    Without a threaded lifecycle state (standalone evaluation, tests)
    the streak falls back to a per-instance, per-shard scratch -- fine
    for a single process, but only the gateway-threaded form survives
    snapshots.
    """

    name = "hysteresis"

    def __init__(self, hold: int, inner: RotationPolicy) -> None:
        if hold <= 0:
            raise ParameterError("hysteresis hold must be positive")
        self.hold = hold
        self.inner = inner
        self.needs_recent = inner.needs_recent
        self._transient: dict[int, int] = {}
        self._streak_key = self.spec()
        _assign_streak_keys(self)

    @property
    def streak_key(self) -> str:
        """The ``ShardLifecycleState.streaks`` key this wrapper owns
        (its spec, plus a ``#n`` suffix when a tree holds duplicates)."""
        return self._streak_key

    def evaluate(self, observation: ShardObservation) -> RotationDecision:
        return self.decide(observation)

    def decide(
        self,
        observation: ShardObservation,
        life: ShardLifecycleState | None = None,
    ) -> RotationDecision:
        vote = self.inner.decide(observation, life)
        key = self._streak_key
        if life is not None:
            streak = life.streaks.get(key, 0)
        else:
            streak = self._transient.get(observation.shard_id, 0)
        streak = streak + 1 if vote.rotate else 0
        fired = vote.rotate and streak >= self.hold
        if fired:
            streak = 0
        if life is not None:
            life.streaks[key] = streak
        else:
            self._transient[observation.shard_id] = streak
        if fired:
            return RotationDecision(
                rotate=True, reason=f"hold{self.hold}:{vote.reason}"
            )
        return KEEP if not vote.rotate else RotationDecision(
            rotate=False, reason=f"holding:{streak}/{self.hold}"
        )

    def spec(self) -> str:
        return f"hysteresis:{self.hold}({self.inner.spec()})"
