"""The rotation-policy contract and the shipped leaf policies.

The paper's strongest deployable countermeasure is filter recycling
(Section 8, Table 2): retire a shard's filter before an adversary can
finish measuring it.  *When* to retire is a policy question, and the
literature answers it several ways -- fill thresholds (the saturation
guard), dablooms-style age/op-count recycling, and adaptive reactions to
the query stream itself (Naor-Yogev's adversarial model is exactly an
attacker probing a filter over time).  A :class:`RotationPolicy`
consumes one per-shard :class:`~repro.service.lifecycle.state.
ShardObservation` and emits a :class:`~repro.service.lifecycle.state.
RotationDecision` with a machine-readable reason, and the gateway
delegates every rotate/keep choice to it.

Leaf policies here are pure; composition (AND/OR/NOT and the stateful
cool-down/hysteresis wrappers) lives in :mod:`~repro.service.lifecycle.
combinators`.  The gateway enters through :meth:`RotationPolicy.decide`,
which threads the per-shard :class:`~repro.service.lifecycle.state.
ShardLifecycleState` down to any stateful wrappers in the tree; plain
policies ignore it and stay pure ``evaluate`` implementations.

Every policy renders its canonical config string via ``spec()`` and
``parse_policy(p.spec()).spec() == p.spec()`` round-trips for the whole
algebra.
"""

from __future__ import annotations

from abc import ABC, abstractmethod

from repro.exceptions import ParameterError
from repro.service.lifecycle.state import (
    KEEP,
    RotationDecision,
    ShardLifecycleState,
    ShardObservation,
)

__all__ = [
    "RotationPolicy",
    "NeverRotatePolicy",
    "FillThresholdPolicy",
    "TimeBasedRecyclingPolicy",
    "AdaptivePositiveRatePolicy",
    "RotateOnRestorePolicy",
]


class RotationPolicy(ABC):
    """The rotate/keep rule a gateway consults after every batch.

    Leaf implementations must be stateless across calls (all inputs
    arrive in the observation): that is what keeps decisions
    reproducible and snapshot-restartable.  Wrappers that genuinely
    need memory (cool-down, hysteresis) keep it in the per-shard
    :class:`~repro.service.lifecycle.state.ShardLifecycleState` the
    gateway threads through :meth:`decide` -- never on the policy
    object itself.
    """

    #: Stable identifier recorded in rotation events and reports.
    name: str = "policy"

    #: Whether :meth:`evaluate` reads ``observation.recent``.  The
    #: gateway skips materialising the sliding window for policies that
    #: don't (an O(window) copy per batch on the hot path).  Defaults to
    #: True so custom policies are correct out of the box; the shipped
    #: non-windowed policies opt out.
    needs_recent: bool = True

    @abstractmethod
    def evaluate(self, observation: ShardObservation) -> RotationDecision:
        """Decide for one shard; must not mutate anything."""

    def decide(
        self,
        observation: ShardObservation,
        life: ShardLifecycleState | None = None,
    ) -> RotationDecision:
        """The gateway's entry point: decide, with per-shard memory.

        ``life`` is the shard's lifecycle state; stateful wrappers read
        and write their scratch there (hysteresis streaks, the cool-down
        suppression tally) so it is snapshotted with everything else.
        Plain policies ignore it -- the default simply delegates to
        :meth:`evaluate`.  Combinators override this to thread ``life``
        down to every child, so a stateful wrapper works at any depth of
        a composed tree.
        """
        return self.evaluate(observation)

    def spec(self) -> str:
        """Canonical config string; ``parse_policy(p.spec())`` rebuilds
        an equivalent policy for every shipped policy and combinator.
        (Adapters wrapping arbitrary guard objects are the one exception
        -- an opaque ``should_rotate`` callable has no spec grammar.)"""
        return self.name

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<{type(self).__name__} {self.spec()!r}>"


class NeverRotatePolicy(RotationPolicy):
    """Explicit no-rotation baseline (distinct from having no policy
    only in that it shows up, named, in reports)."""

    name = "never"
    needs_recent = False

    def evaluate(self, observation: ShardObservation) -> RotationDecision:
        return KEEP


class FillThresholdPolicy(RotationPolicy):
    """Rotate once the shard's fill ratio reaches ``threshold``.

    Byte-for-byte the original saturation-guard behaviour, expressed as
    a policy; the legacy ``ServiceConfig.rotation_threshold`` knob maps
    here unchanged.
    """

    name = "fill"
    needs_recent = False

    def __init__(self, threshold: float = 0.5) -> None:
        if not 0 < threshold <= 1:
            raise ParameterError("threshold must be in (0, 1]")
        self.threshold = threshold
        self._reason = f"fill_ratio>={threshold:g}"

    def evaluate(self, observation: ShardObservation) -> RotationDecision:
        if observation.fill_ratio >= self.threshold:
            return RotationDecision(rotate=True, reason=self._reason)
        return KEEP

    def spec(self) -> str:
        return f"fill:{self.threshold:g}"


class TimeBasedRecyclingPolicy(RotationPolicy):
    """Rotate after ``max_age_ops`` operations, whatever the fill.

    Dablooms-style recycling measured in served operations rather than
    wall clock (deterministic under replay): the filter is retired on a
    fixed budget, so an adversary's accumulated knowledge of its bits
    expires on a schedule the adversary cannot influence.
    """

    name = "age"
    needs_recent = False

    def __init__(self, max_age_ops: int = 10_000) -> None:
        if max_age_ops <= 0:
            raise ParameterError("max_age_ops must be positive")
        self.max_age_ops = max_age_ops
        self._reason = f"age_ops>={max_age_ops}"

    def evaluate(self, observation: ShardObservation) -> RotationDecision:
        if observation.age_ops >= self.max_age_ops:
            return RotationDecision(rotate=True, reason=self._reason)
        return KEEP

    def spec(self) -> str:
        return f"age:{self.max_age_ops}"


class AdaptivePositiveRatePolicy(RotationPolicy):
    """Rotate on a positive-rate spike: the FP-blowup tripwire.

    A ghost-forgery stream answers positive on essentially every crafted
    query, pushing a shard's positive rate far above any honest mix of
    known items and fresh probes.  Once at least ``min_queries`` have
    been served and the positive rate reaches ``max_positive_rate``, the
    shard rotates -- which invalidates every crafted ghost at once (they
    were forged against the retired bits).

    Without ``window`` the rate is measured since the shard's last
    rotation.  That leaves a blind spot: on a long-lived shard the
    honest history dilutes a late ghost storm (50 ghosts after 500
    honest queries barely move the lifetime average), which is exactly
    when a budgeted adaptive attacker strikes -- after the shard filled
    and crafting got cheap.  Pass ``window`` to measure the rate over
    the most recent ``window`` queries instead (served by the lifecycle
    state's sliding window, so ``window`` must not exceed
    :attr:`ShardLifecycleState.WINDOW_CAP`); the spike then stands out
    whatever came before it.

    ``min_queries`` keeps a couple of early lucky positives from
    triggering a spurious rotation (for windowed policies it is the
    minimum coverage the window must have accumulated, and must fit
    inside the window).  Note the threshold must sit above the
    deployment's honest positive rate (e.g. ``0.8`` when honest traffic
    re-queries half its own inserts), or the policy will rotate on
    legitimate traffic.
    """

    name = "adaptive"

    def __init__(
        self,
        max_positive_rate: float = 0.8,
        min_queries: int = 64,
        window: int | None = None,
    ) -> None:
        if not 0 < max_positive_rate <= 1:
            raise ParameterError("max_positive_rate must be in (0, 1]")
        if min_queries <= 0:
            raise ParameterError("min_queries must be positive")
        if window is not None:
            if window <= 0:
                raise ParameterError("window must be positive")
            if window > ShardLifecycleState.WINDOW_CAP:
                raise ParameterError(
                    f"window must not exceed the lifecycle retention cap "
                    f"({ShardLifecycleState.WINDOW_CAP})"
                )
            if min_queries > window:
                raise ParameterError("min_queries must fit inside the window")
        self.max_positive_rate = max_positive_rate
        self.min_queries = min_queries
        self.window = window
        self.needs_recent = window is not None
        self._reason = (
            f"window_positive_rate>={max_positive_rate:g}"
            if window is not None
            else f"positive_rate>={max_positive_rate:g}"
        )

    def evaluate(self, observation: ShardObservation) -> RotationDecision:
        if self.window is not None:
            covered, positives = observation.windowed_positive_rate(self.window)
            if (
                covered >= self.min_queries
                and positives / covered >= self.max_positive_rate
            ):
                return RotationDecision(rotate=True, reason=self._reason)
            return KEEP
        if (
            observation.queries >= self.min_queries
            and observation.positive_rate >= self.max_positive_rate
        ):
            return RotationDecision(rotate=True, reason=self._reason)
        return KEEP

    def spec(self) -> str:
        base = f"adaptive:{self.max_positive_rate:g}:{self.min_queries}"
        return f"{base}:{self.window}" if self.window is not None else base


class RotateOnRestorePolicy(RotationPolicy):
    """Expire shards restored mid-life from a snapshot; wrap any inner.

    A restored shard's bits were sitting on disk (and serving, before
    the restart) for longer than its in-process age shows -- the
    adversary may have finished measuring it while the service was down.
    This wrapper retires any restored shard after ``max_restored_age``
    post-restore operations (``0`` means: on its first post-restore
    decision), and otherwise delegates to ``inner`` (keep, when no inner
    is given).
    """

    name = "restore"

    def __init__(
        self, max_restored_age: int = 0, inner: RotationPolicy | None = None
    ) -> None:
        if max_restored_age < 0:
            raise ParameterError("max_restored_age must be non-negative")
        self.max_restored_age = max_restored_age
        self.inner = inner
        self.needs_recent = inner.needs_recent if inner is not None else False
        self._reason = f"restored_age>={max_restored_age}"
        if inner is not None:
            # Deferred import: combinators import this module.  The
            # inner tree may hold stateful wrappers whose streak keys
            # need position-stable disambiguation (see combinators).
            from repro.service.lifecycle.combinators import _assign_streak_keys

            _assign_streak_keys(self)

    def evaluate(self, observation: ShardObservation) -> RotationDecision:
        return self.decide(observation)

    def decide(
        self,
        observation: ShardObservation,
        life: ShardLifecycleState | None = None,
    ) -> RotationDecision:
        if (
            observation.restored
            and observation.ops_since_restore >= self.max_restored_age
        ):
            return RotationDecision(rotate=True, reason=self._reason)
        if self.inner is not None:
            return self.inner.decide(observation, life)
        return KEEP

    def spec(self) -> str:
        own = f"restore:{self.max_restored_age}"
        if self.inner is None:
            return own
        inner = self.inner.spec()
        # Legacy `+` binds a single atom-or-wrapper token; any other
        # inner (combinator, negation) needs parens to survive the
        # round trip through the grammar.
        from repro.service.lifecycle.combinators import AllOf, AnyOf, Not

        if isinstance(self.inner, (AllOf, AnyOf, Not)):
            return f"{own}+({inner})"
        return f"{own}+{inner}"
