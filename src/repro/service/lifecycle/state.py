"""Per-shard lifecycle state and the observations policies consume.

Policies themselves are deliberately *stateless*: everything a decision
needs arrives in one frozen :class:`ShardObservation`, and the mutable
per-shard history behind it lives in one :class:`ShardLifecycleState`
owned by the gateway.  That split is what makes decisions survive warm
restarts -- the gateway snapshot persists the lifecycle state (age, op
counts, restore epoch, the recent-query window), not policy internals,
so a restored gateway can even be handed a *different* policy and keep
deciding sensibly.

The one carve-out is the *policy scratch*: stateful wrappers
(:class:`~repro.service.lifecycle.combinators.Cooldown`,
:class:`~repro.service.lifecycle.combinators.Hysteresis`) need a few
integers of per-shard memory -- how many consecutive rotate votes a
hysteresis streak has accumulated, how many rotations a cool-down has
suppressed.  That memory also lives here (``streaks`` /``suppressed``),
keyed by the wrapper's own spec string, and rides the gateway snapshot
(version 4) so composed defences keep their place across a warm
restart.  Streaks clear with the rest of the history on rotation (a
fresh filter starts a fresh streak); the suppression counter is a
cumulative operator-facing tally and survives rotations.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

from repro.exceptions import ParameterError

__all__ = [
    "ShardObservation",
    "RotationDecision",
    "KEEP",
    "ShardLifecycleState",
]


@dataclass(frozen=True)
class ShardObservation:
    """Everything a rotation policy may look at for one shard.

    Combines the filter state the backend returned with the batch (no
    extra hop), the gateway's per-shard lifecycle history, and the
    gateway-wide operation epoch.
    """

    shard_id: int
    #: Filter state (from the backend's :class:`~repro.service.backends.
    #: ShardState`, returned with every batch).
    hamming_weight: int
    fill_ratio: float
    insertions: int
    #: Operations (inserts + queries) served by this shard's current
    #: filter since it was built, rotated, or restored -- including any
    #: age inherited from a snapshot.
    age_ops: int
    #: Gateway-side history since the shard's last rotation.
    inserts: int
    queries: int
    positives: int
    #: True when the shard's bits were loaded mid-life from a snapshot.
    restored: bool
    #: Operations served since the latest restore (equals ``age_ops``
    #: for never-restored shards).
    ops_since_restore: int
    #: Gateway-wide monotonic operation counter at observation time.
    op_epoch: int
    #: Recent query batches ``(queries, positives)``, oldest first, as
    #: retained by the lifecycle state's sliding window (covers at least
    #: :attr:`ShardLifecycleState.WINDOW_CAP` queries once enough have
    #: been served).  This is what lets a windowed policy see a
    #: late-life spike that the since-rotation totals have diluted.
    recent: tuple[tuple[int, int], ...] = ()

    @property
    def positive_rate(self) -> float:
        """Fraction of queries answered positive since the last rotation."""
        return self.positives / self.queries if self.queries else 0.0

    def windowed_positive_rate(self, window: int) -> tuple[int, int]:
        """``(queries, positives)`` over the most recent batches covering
        at least ``window`` queries.

        Whole batches are counted (never split), so the coverage may
        overshoot ``window`` by up to one batch; fewer than ``window``
        queries served simply yields what there is.  Callers decide what
        rate and minimum coverage to require.
        """
        if window <= 0:
            raise ParameterError("window must be positive")
        covered = positives = 0
        for queries, batch_positives in reversed(self.recent):
            if covered >= window:
                break
            covered += queries
            positives += batch_positives
        return covered, positives


@dataclass(frozen=True)
class RotationDecision:
    """A policy's verdict for one shard: rotate or keep, and why.

    ``reason`` is a stable, machine-readable slug (it names the rule and
    its configured bound, never live values), so rotation events can be
    grouped and counted across a run.
    """

    rotate: bool
    reason: str = ""


#: The shared "nothing to do" decision.
KEEP = RotationDecision(rotate=False, reason="keep")


class ShardLifecycleState:
    """Mutable per-shard history the gateway feeds into observations.

    One instance per shard, owned by the gateway, updated under the
    shard's lock.  ``age_base`` carries the operation age inherited from
    a snapshot (the backend's own counter restarts at zero whenever the
    filter instance is rebuilt or restored); the insert/query/positive
    counters run since the shard's last rotation.  All of it is
    persisted in the gateway snapshot's lifecycle section.

    On top of the since-rotation totals, a sliding window of recent
    query batches (``(queries, positives)`` pairs, capped to cover
    :attr:`WINDOW_CAP` queries) feeds
    :meth:`ShardObservation.windowed_positive_rate` -- the signal that
    catches an adaptive attacker who strikes late in a long-lived
    shard's life, after honest history has diluted the since-rotation
    rate.  The window is persisted with the rest of the lifecycle state
    (gateway snapshot version 3), so a windowed policy resumes deciding
    on the same recent history after a warm restart.

    ``streaks`` and ``suppressed`` are the stateful policy wrappers'
    per-shard scratch (gateway snapshot version 4): consecutive
    rotate-vote counts keyed by a :class:`~repro.service.lifecycle.
    combinators.Hysteresis` wrapper's spec string, and the cumulative
    count of rotations a :class:`~repro.service.lifecycle.combinators.
    Cooldown` wrapper refused.  A snapshot from before version 4 simply
    restores both zero-initialised.
    """

    #: Queries the sliding window retains (at least; whole batches are
    #: kept, so retention can overshoot by one batch).  Windowed
    #: policies must use a window no larger than this.
    WINDOW_CAP = 1024

    __slots__ = (
        "shard_id",
        "age_base",
        "inserts",
        "queries",
        "positives",
        "restored",
        "restore_epoch",
        "streaks",
        "suppressed",
        "_window",
        "_window_queries",
        "_window_positives",
    )

    def __init__(self, shard_id: int) -> None:
        self.shard_id = shard_id
        self.age_base = 0
        self.inserts = 0
        self.queries = 0
        self.positives = 0
        self.restored = False
        self.restore_epoch = 0
        #: Hysteresis streaks: wrapper spec -> consecutive rotate votes.
        self.streaks: dict[str, int] = {}
        #: Rotations refused by cool-down wrappers (cumulative tally).
        self.suppressed = 0
        self._window: deque[tuple[int, int]] = deque()
        self._window_queries = 0
        self._window_positives = 0

    def note_inserts(self, count: int) -> None:
        """Account one insert group dispatched to this shard."""
        self.inserts += count

    def note_queries(self, count: int, positives: int) -> None:
        """Account one query group (and its positive answers)."""
        self.queries += count
        self.positives += positives
        self._window.append((count, positives))
        self._window_queries += count
        self._window_positives += positives
        # Evict whole old batches while the remainder still covers the
        # cap -- retention stays in [cap, cap + one batch).
        while (
            len(self._window) > 1
            and self._window_queries - self._window[0][0] >= self.WINDOW_CAP
        ):
            old_queries, old_positives = self._window.popleft()
            self._window_queries -= old_queries
            self._window_positives -= old_positives

    def window_rate(self) -> float:
        """Positive rate over everything the window retains (telemetry's
        ``recent_pos`` column; 0.0 before any queries)."""
        if not self._window_queries:
            return 0.0
        return self._window_positives / self._window_queries

    def reset(self) -> None:
        """Forget the filter's life: the shard just rotated to a fresh one.

        Hysteresis streaks go with it (a fresh filter starts a fresh
        streak); the cool-down suppression tally is a cumulative
        operator counter and stays.
        """
        self.age_base = 0
        self.inserts = 0
        self.queries = 0
        self.positives = 0
        self.restored = False
        self.restore_epoch = 0
        self.streaks.clear()
        self._window.clear()
        self._window_queries = 0
        self._window_positives = 0

    def observe(
        self, state, op_epoch: int, include_recent: bool = True
    ) -> ShardObservation:
        """Build the policy-facing observation from backend ``state``
        (any object with ``hamming_weight``/``fill_ratio``/
        ``insertions``/``age_ops`` attributes) plus this history.

        ``include_recent=False`` skips materialising the sliding window
        into the observation (an O(window) copy) -- the gateway passes
        the policy's :attr:`RotationPolicy.needs_recent` here so
        non-windowed policies never pay for it on the hot path.
        """
        instance_ops = getattr(state, "age_ops", 0)
        age_ops = self.age_base + instance_ops
        return ShardObservation(
            shard_id=self.shard_id,
            hamming_weight=state.hamming_weight,
            fill_ratio=state.fill_ratio,
            insertions=state.insertions,
            age_ops=age_ops,
            inserts=self.inserts,
            queries=self.queries,
            positives=self.positives,
            restored=self.restored,
            ops_since_restore=instance_ops if self.restored else age_ops,
            op_epoch=op_epoch,
            recent=tuple(self._window) if include_recent else (),
        )

    # -- snapshot round trip -------------------------------------------

    def to_state(self, instance_ops: int) -> dict:
        """Durable form for the gateway snapshot's lifecycle section.

        ``instance_ops`` is the backend's current per-instance operation
        count; the persisted age is the shard's *total* age so a restore
        can rebuild it without the original backend counter.  The
        sliding window rides along (as ``(queries, positives)`` pairs)
        so a windowed policy keeps deciding correctly across a warm
        restart instead of going blind until fresh traffic refills it,
        and the policy scratch (hysteresis streaks, the cool-down
        suppression tally) rides the same way so composed defences keep
        their place.
        """
        return {
            "age_ops": self.age_base + instance_ops,
            "inserts": self.inserts,
            "queries": self.queries,
            "positives": self.positives,
            "restored": self.restored,
            "restore_epoch": self.restore_epoch,
            "window": tuple(self._window),
            "suppressed": self.suppressed,
            "streaks": dict(self.streaks),
        }

    @classmethod
    def from_state(
        cls, shard_id: int, state: dict, restore_epoch: int
    ) -> "ShardLifecycleState":
        """Rebuild a shard's history from a snapshot, marking it restored.

        A shard whose persisted age is non-zero (or that was already
        flagged) comes back *restored*: its bits were observable before
        this process existed, which is exactly what
        :class:`RotateOnRestorePolicy` expires.  Fresh-and-empty shards
        stay unflagged.  A shard restored for the first time stamps
        ``restore_epoch`` (the gateway op-epoch at restore time, i.e.
        the snapshot's own epoch); an already-flagged shard keeps its
        persisted first-restore epoch, so the field is stable across
        repeated snapshot/restore cycles.

        ``suppressed`` and ``streaks`` default to zero-initialised when
        absent -- that is exactly how a pre-version-4 snapshot restores
        under a composed policy.
        """
        life = cls(shard_id)
        life.age_base = state["age_ops"]
        life.inserts = state["inserts"]
        life.queries = state["queries"]
        life.positives = state["positives"]
        life.restored = bool(state["restored"]) or state["age_ops"] > 0
        if life.restored:
            life.restore_epoch = (
                state["restore_epoch"] if state["restored"] else restore_epoch
            )
        for queries, positives in state.get("window", ()):
            life._window.append((queries, positives))
            life._window_queries += queries
            life._window_positives += positives
        life.suppressed = state.get("suppressed", 0)
        life.streaks = dict(state.get("streaks", {}))
        return life

    @classmethod
    def adopt(cls, shard_id: int, state: dict) -> "ShardLifecycleState":
        """Rebuild a shard's history *verbatim* for a cluster handoff.

        Unlike :meth:`from_state`, adoption does not flip the shard to
        ``restored``: a handoff moves a live shard between gateways of
        one running cluster, it does not resurrect pre-restart bits --
        so age-triggered defences (:class:`RotateOnRestorePolicy`) must
        see exactly the flags the losing gateway saw.  Byte-identical
        round trip: re-exporting the adopted shard yields the original
        block.
        """
        life = cls(shard_id)
        life.age_base = state["age_ops"]
        life.inserts = state["inserts"]
        life.queries = state["queries"]
        life.positives = state["positives"]
        life.restored = bool(state["restored"])
        life.restore_epoch = state["restore_epoch"]
        for queries, positives in state.get("window", ()):
            life._window.append((queries, positives))
            life._window_queries += queries
            life._window_positives += positives
        life.suppressed = state.get("suppressed", 0)
        life.streaks = dict(state.get("streaks", {}))
        return life
