"""Shard lifecycle management: rotation policies as a composable algebra.

The paper's strongest deployable countermeasure is filter recycling
(Section 8, Table 2): retire a shard's filter before an adversary can
finish measuring it.  *When* to retire is a policy question, and this
package makes that axis pluggable and *composable*:

* :mod:`~repro.service.lifecycle.state` -- the frozen per-shard
  :class:`ShardObservation` policies consume, the
  :class:`RotationDecision` they emit, and the mutable
  :class:`ShardLifecycleState` the gateway owns (windowed positive-rate
  tracking, restore flags, and the stateful wrappers' per-shard scratch,
  all persisted in gateway snapshots);
* :mod:`~repro.service.lifecycle.policies` -- the
  :class:`RotationPolicy` contract and the leaf policies:
  :class:`FillThresholdPolicy` (the legacy saturation guard;
  ``ServiceConfig.rotation_threshold`` maps here),
  :class:`TimeBasedRecyclingPolicy` (dablooms-style op-age recycling),
  :class:`AdaptivePositiveRatePolicy` (the FP-spike tripwire, windowed
  or since-rotation), :class:`RotateOnRestorePolicy` (expire shards
  restored mid-life from a snapshot) and :class:`NeverRotatePolicy`;
* :mod:`~repro.service.lifecycle.combinators` -- the defence algebra:
  :class:`AllOf` (``&``), :class:`AnyOf` (``|``), :class:`Not` (``!``),
  and the stateful wrappers :class:`Cooldown` (``cooldown:N(...)``,
  guaranteed minimum filter lifetime, suppressions tallied per shard)
  and :class:`Hysteresis` (``hysteresis:N(...)``, N consecutive votes
  before a rotation passes);
* :mod:`~repro.service.lifecycle.parser` -- the config-string grammar:
  ``(adaptive:0.8:24:32&fill:0.5)|age:4000``,
  ``cooldown:200(hysteresis:2(adaptive:0.85:24:32))``,
  ``restore:2000+fill:0.5``; every policy renders back via ``spec()``
  and ``parse_policy(p.spec()).spec() == p.spec()`` round-trips.

This package replaced the original single-module ``lifecycle.py``; the
import surface is unchanged (``from repro.service.lifecycle import
parse_policy`` keeps working) and grew the combinators.
"""

from repro.service.lifecycle.combinators import AllOf, AnyOf, Cooldown, Hysteresis, Not
from repro.service.lifecycle.parser import parse_policy, policy_from_guard
from repro.service.lifecycle.policies import (
    AdaptivePositiveRatePolicy,
    FillThresholdPolicy,
    NeverRotatePolicy,
    RotateOnRestorePolicy,
    RotationPolicy,
    TimeBasedRecyclingPolicy,
)
from repro.service.lifecycle.state import (
    KEEP,
    RotationDecision,
    ShardLifecycleState,
    ShardObservation,
)

__all__ = [
    "AllOf",
    "AnyOf",
    "Cooldown",
    "Hysteresis",
    "Not",
    "ShardObservation",
    "RotationDecision",
    "KEEP",
    "ShardLifecycleState",
    "RotationPolicy",
    "NeverRotatePolicy",
    "FillThresholdPolicy",
    "TimeBasedRecyclingPolicy",
    "AdaptivePositiveRatePolicy",
    "RotateOnRestorePolicy",
    "parse_policy",
    "policy_from_guard",
]
