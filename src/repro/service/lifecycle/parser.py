"""Config-string grammar for the defence-policy algebra.

``parse_policy`` turns the ``ServiceConfig.rotation_policy`` string into
a policy tree and every policy renders back via ``spec()``;
``parse_policy(p.spec()).spec() == p.spec()`` holds across the whole
algebra.  The grammar (loosest operator first)::

    expr     := and_expr ('|' and_expr)*          -- rotate when any
    and_expr := unary ('&' unary)*                -- rotate when all
    unary    := '!' unary                         -- invert the vote
              | '(' expr ')'
              | 'cooldown:' INT '(' expr ')'      -- minimum lifetime
              | 'hysteresis:' INT '(' expr ')'    -- N consecutive votes
              | atom
    atom     := 'never'
              | 'fill:' FLOAT                     -- e.g. fill:0.5
              | 'age:' INT                        -- e.g. age:4000
              | 'adaptive:' FLOAT [':' INT [':' INT]]
              | 'restore:' INT ['+' (atom-or-wrapper | '(' expr ')')]

Examples: ``fill:0.5``, ``adaptive:0.8:24:32``,
``(adaptive:0.8:24:32&fill:0.5)|age:4000``,
``cooldown:200(hysteresis:2(adaptive:0.85:24:32))``,
``restore:2000+fill:0.5`` (the legacy wrap form, unchanged).

Malformed specs -- unknown kinds, wrong arity, non-numeric arguments,
unbalanced parentheses, and *trailing garbage after a valid spec*
(``fill:0.5xyz``, ``fill:0.5)``) -- are rejected with
:class:`~repro.exceptions.ConfigError` before any policy is built.
Numbers are strict decimal literals: the lenient ``float()``/``int()``
forms (``1_000``, ``nan``, ``inf``) do not parse.
"""

from __future__ import annotations

import re
import warnings

from repro.exceptions import ConfigError
from repro.service.lifecycle.combinators import AllOf, AnyOf, Cooldown, Hysteresis, Not
from repro.service.lifecycle.policies import (
    AdaptivePositiveRatePolicy,
    FillThresholdPolicy,
    NeverRotatePolicy,
    RotateOnRestorePolicy,
    RotationPolicy,
    TimeBasedRecyclingPolicy,
)
from repro.service.lifecycle.state import KEEP, RotationDecision

__all__ = ["parse_policy", "policy_from_guard"]

#: One token: an operator/paren, or a word (kind plus ':'-joined args).
_TOKEN = re.compile(r"\s*(?:(?P<op>[&|!()+])|(?P<word>[A-Za-z0-9_.:]+))")
_INT = re.compile(r"^\d+$")
_FLOAT = re.compile(r"^(?:\d+(?:\.\d*)?|\.\d+)(?:[eE][-+]?\d+)?$")


def _tokenize(spec: str) -> list[str]:
    tokens: list[str] = []
    pos = 0
    while pos < len(spec):
        match = _TOKEN.match(spec, pos)
        if match is None or match.end() == match.start():
            remainder = spec[pos:].strip()
            if not remainder:  # trailing whitespace only
                break
            raise ConfigError(
                f"rotation policy spec has unparseable text {remainder!r} "
                f"(at offset {pos} of {spec!r})"
            )
        tokens.append(match.group("op") or match.group("word"))
        pos = match.end()
    return tokens


def _parse_int(text: str, what: str) -> int:
    if not _INT.match(text):
        raise ConfigError(f"rotation policy {what} must be an integer, got {text!r}")
    return int(text)


def _parse_float(text: str, what: str) -> float:
    if not _FLOAT.match(text):
        raise ConfigError(f"rotation policy {what} must be a number, got {text!r}")
    return float(text)


class _Parser:
    """Recursive-descent parser over the token stream."""

    def __init__(self, spec: str) -> None:
        self.spec = spec
        self.tokens = _tokenize(spec)
        self.pos = 0

    def peek(self) -> str | None:
        return self.tokens[self.pos] if self.pos < len(self.tokens) else None

    def take(self) -> str:
        token = self.peek()
        if token is None:
            raise ConfigError(f"rotation policy spec ends early: {self.spec!r}")
        self.pos += 1
        return token

    def expect(self, token: str, context: str) -> None:
        got = self.peek()
        if got != token:
            raise ConfigError(
                f"expected {token!r} {context} in rotation policy spec "
                f"{self.spec!r}, got {got!r}"
            )
        self.pos += 1

    # -- grammar -------------------------------------------------------

    def parse(self) -> RotationPolicy:
        policy = self.expr()
        if self.peek() is not None:
            raise ConfigError(
                f"trailing {self.peek()!r} after a complete rotation policy "
                f"spec {self.spec!r}"
            )
        return policy

    def expr(self) -> RotationPolicy:
        branches = [self.and_expr()]
        while self.peek() == "|":
            self.take()
            branches.append(self.and_expr())
        return branches[0] if len(branches) == 1 else AnyOf(branches)

    def and_expr(self) -> RotationPolicy:
        branches = [self.unary()]
        while self.peek() == "&":
            self.take()
            branches.append(self.unary())
        return branches[0] if len(branches) == 1 else AllOf(branches)

    def unary(self) -> RotationPolicy:
        token = self.peek()
        if token == "!":
            self.take()
            return Not(self.unary())
        if token == "(":
            self.take()
            inner = self.expr()
            self.expect(")", "to close the group")
            return inner
        return self.atom_or_wrapper()

    def atom_or_wrapper(self) -> RotationPolicy:
        token = self.take()
        if token in "&|!()+":
            raise ConfigError(
                f"expected a policy, got {token!r} in rotation policy spec "
                f"{self.spec!r}"
            )
        kind, _, args = token.partition(":")
        parts = args.split(":") if args else []
        if kind in ("cooldown", "hysteresis"):
            if len(parts) != 1:
                raise ConfigError(
                    f"'{kind}' takes exactly one integer argument, got {token!r}"
                )
            bound = _parse_int(parts[0], "ops" if kind == "cooldown" else "hold")
            self.expect("(", f"after '{token}'")
            inner = self.expr()
            self.expect(")", f"to close '{kind}'")
            return (
                Cooldown(bound, inner) if kind == "cooldown" else Hysteresis(bound, inner)
            )
        policy = self.leaf(token, kind, parts)
        if isinstance(policy, RotateOnRestorePolicy) and self.peek() == "+":
            self.take()
            if self.peek() == "(":
                self.take()
                inner = self.expr()
                self.expect(")", "to close the wrapped policy")
            else:
                inner = self.atom_or_wrapper()
            return RotateOnRestorePolicy(policy.max_restored_age, inner=inner)
        return policy

    def leaf(self, token: str, kind: str, parts: list[str]) -> RotationPolicy:
        if kind == "never":
            if parts:
                raise ConfigError("'never' takes no arguments")
            return NeverRotatePolicy()
        if kind == "fill":
            if len(parts) != 1:
                raise ConfigError(f"'fill' needs exactly one threshold, got {token!r}")
            return FillThresholdPolicy(_parse_float(parts[0], "threshold"))
        if kind == "age":
            if len(parts) != 1:
                raise ConfigError(f"'age' needs exactly one op budget, got {token!r}")
            return TimeBasedRecyclingPolicy(_parse_int(parts[0], "age"))
        if kind == "adaptive":
            if len(parts) not in (1, 2, 3):
                raise ConfigError(
                    f"'adaptive' takes <rate>[:<min_queries>[:<window>]], got {token!r}"
                )
            rate = _parse_float(parts[0], "rate")
            if len(parts) == 3:
                return AdaptivePositiveRatePolicy(
                    rate,
                    _parse_int(parts[1], "min_queries"),
                    window=_parse_int(parts[2], "window"),
                )
            if len(parts) == 2:
                return AdaptivePositiveRatePolicy(rate, _parse_int(parts[1], "min_queries"))
            return AdaptivePositiveRatePolicy(rate)
        if kind == "restore":
            if len(parts) != 1:
                raise ConfigError(f"'restore' needs exactly one age, got {token!r}")
            return RotateOnRestorePolicy(_parse_int(parts[0], "age"))
        raise ConfigError(
            f"unknown rotation policy kind {kind!r}; known: never, fill, age, "
            "adaptive, restore, cooldown, hysteresis"
        )


def parse_policy(spec: str) -> RotationPolicy:
    """Build a policy tree from its config string (see module docstring
    for the grammar).  Raises :class:`~repro.exceptions.ConfigError` on
    malformed specs -- including trailing garbage after a valid prefix
    -- and :class:`~repro.exceptions.ParameterError` when a
    syntactically valid spec carries an out-of-domain value."""
    if not isinstance(spec, str) or not spec.strip():
        raise ConfigError(
            f"rotation policy spec must be a non-empty string, got {spec!r}"
        )
    return _Parser(spec.strip()).parse()


# ----------------------------------------------------------------------
# Legacy-guard mapping (deprecated)
# ----------------------------------------------------------------------


class _GuardPolicy(RotationPolicy):
    """Deprecated adapter wrapping a legacy guard object (anything with
    ``should_rotate``) so pre-policy callers keep working.

    Its ``spec()`` is just the name ``"guard"`` and does *not* parse
    back -- an opaque callable cannot round-trip through the config
    grammar.  New code should implement :class:`RotationPolicy`
    directly.
    """

    name = "guard"
    needs_recent = False

    def __init__(self, guard) -> None:
        self.guard = guard

    def evaluate(self, observation) -> RotationDecision:
        # The observation exposes hamming_weight/fill_ratio attributes,
        # which is all filter_state-style guards read.
        if self.guard.should_rotate(observation):
            return RotationDecision(rotate=True, reason="guard")
        return KEEP


def policy_from_guard(guard) -> RotationPolicy:
    """Deprecated: map a legacy saturation guard onto the policy layer.

    A plain :class:`~repro.service.admission.SaturationGuard` becomes an
    exact :class:`FillThresholdPolicy` (so snapshots written through the
    mapped policy stay byte-identical to the ``rotation_threshold``
    config path); anything else with a ``should_rotate`` is wrapped
    as-is.  Pass ``ServiceConfig.rotation_policy`` (or a
    :class:`RotationPolicy` instance) instead.
    """
    warnings.warn(
        "policy_from_guard() and the gateway 'guard' parameter are "
        "deprecated; pass rotation_policy='fill:<threshold>' (or any "
        "RotationPolicy) instead",
        DeprecationWarning,
        stacklevel=2,
    )
    from repro.service.admission import SaturationGuard

    if isinstance(guard, SaturationGuard):
        return FillThresholdPolicy(guard.threshold)
    return _GuardPolicy(guard)
