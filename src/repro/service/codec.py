"""Length-prefixed binary wire codec for the membership service.

One frame = a 4-byte big-endian payload length followed by the payload.
Requests open with an opcode byte, responses with a status byte; batch
answers travel as packed bits (one byte per eight membership answers),
so a 10k-item query batch replies in ~1.25 KiB.

Two payload generations share the framing.  A *v1* payload starts
directly with the opcode/status byte and implies serial
request/reply alternation on the connection.  A *v2* payload opens with
the :data:`FRAME_V2` marker byte followed by a u32 *correlation id*,
then the unchanged v1 body -- the id lets one connection carry many
requests in flight and replies return out of order, matched by id (the
pipelined wire path).  The marker byte collides with no v1 opcode or
status, so both generations interleave safely on one connection and a
v1-only peer rejects v2 frames loudly instead of misparsing them.

The codec is deliberately paranoid: every field read checks the
remaining length, frame lengths are bounded, and any violation raises
:class:`~repro.exceptions.ProtocolError` *before* partial state is acted
on -- an adversarial client is the normal client for this service.
"""

from __future__ import annotations

import asyncio
import json
import struct
from dataclasses import asdict, dataclass

from repro import accel
from repro.exceptions import ProtocolError
from repro.service.telemetry import ShardSnapshot

__all__ = [
    "FRAME_V2",
    "MAX_FRAME",
    "OP_INSERT",
    "OP_QUERY",
    "OP_INSERT_BATCH",
    "OP_QUERY_BATCH",
    "OP_STATS",
    "OP_HANDOFF",
    "ST_OK",
    "ST_RATE_LIMITED",
    "ST_INVALID",
    "ST_ERROR",
    "ST_PROTOCOL",
    "ST_NOT_OWNER",
    "Redirect",
    "Request",
    "Response",
    "encode_frame",
    "read_frame",
    "BufferedFrameWriter",
    "encode_request",
    "encode_request_frame",
    "decode_request",
    "decode_request_envelope",
    "decode_response_envelope",
    "encode_answers",
    "encode_answers_frame",
    "encode_error",
    "encode_error_frame",
    "encode_handoff_frame",
    "encode_not_owner",
    "encode_not_owner_frame",
    "encode_stats",
    "encode_stats_frame",
    "decode_response",
    "pack_bools",
    "unpack_bools",
]

#: Hard ceiling on one frame's payload (keeps a hostile length prefix
#: from allocating gigabytes); generous for the batch sizes admission
#: control allows.
MAX_FRAME = 4 * 1024 * 1024

# Request opcodes.
OP_INSERT = 1
OP_QUERY = 2
OP_INSERT_BATCH = 3
OP_QUERY_BATCH = 4
OP_STATS = 5
#: Cluster shard handoff: the gaining gateway receives one shard's
#: versioned state block (see :mod:`repro.service.snapshots`).
OP_HANDOFF = 6

_OPS = frozenset(
    {OP_INSERT, OP_QUERY, OP_INSERT_BATCH, OP_QUERY_BATCH, OP_STATS, OP_HANDOFF}
)

# Response status bytes.
ST_OK = 0
ST_RATE_LIMITED = 1
ST_INVALID = 2
ST_ERROR = 3
ST_PROTOCOL = 4
#: Cluster redirect: the addressed gateway does not own the shard; the
#: body carries the shard id, the ownership epoch and the current owner
#: (not a diagnostic message like the other non-OK statuses).
ST_NOT_OWNER = 5

_STATUSES = frozenset(
    {ST_OK, ST_RATE_LIMITED, ST_INVALID, ST_ERROR, ST_PROTOCOL, ST_NOT_OWNER}
)

#: First payload byte of a v2 (correlated) frame.  Deliberately outside
#: both the opcode and the status ranges, so a v1 decoder rejects a v2
#: frame as an unknown opcode/status instead of misreading it.
FRAME_V2 = 0xC2

_U32 = struct.Struct(">I")
_U16 = struct.Struct(">H")
_U64 = struct.Struct(">Q")


@dataclass(frozen=True)
class Redirect:
    """Routing hint carried by an ``ST_NOT_OWNER`` response."""

    shard_id: int
    epoch: int
    owner: str


@dataclass(frozen=True)
class Request:
    """A decoded client request.

    ``shard_id``/``epoch``/``block`` are set only for ``OP_HANDOFF``
    requests (which carry no items); every other op leaves them ``None``.
    """

    op: int
    client: str
    items: list[str | bytes]
    shard_id: int | None = None
    epoch: int | None = None
    block: bytes | None = None


@dataclass(frozen=True)
class Response:
    """A decoded server response; exactly one payload field is set."""

    status: int
    answers: list[bool] | None = None
    message: str | None = None
    stats: list[dict] | None = None
    redirect: Redirect | None = None


# ----------------------------------------------------------------------
# Bit packing
# ----------------------------------------------------------------------

def pack_bools(values: list[bool]) -> bytes:
    """Pack booleans into bytes, LSB-first within each byte (numpy
    ``packbits`` lanes when the accel mode allows)."""
    if accel.accelerated(len(values)):
        from repro.core import _kernels

        return _kernels.pack_bools(values)
    out = bytearray((len(values) + 7) // 8)
    for i, value in enumerate(values):
        if value:
            out[i >> 3] |= 1 << (i & 7)
    return bytes(out)


def unpack_bools(raw, count: int) -> list[bool]:
    """Inverse of :func:`pack_bools` for ``count`` values (accepts any
    bytes-like, including a memoryview into the frame buffer)."""
    if len(raw) != (count + 7) // 8:
        raise ProtocolError(
            f"answer bitmap is {len(raw)} bytes for {count} answers"
        )
    if accel.accelerated(count):
        from repro.core import _kernels

        return _kernels.unpack_bools(raw, count)
    return [bool(raw[i >> 3] & (1 << (i & 7))) for i in range(count)]


# ----------------------------------------------------------------------
# Framing
# ----------------------------------------------------------------------

def encode_frame(payload: bytes) -> bytes:
    """Prefix a payload with its 4-byte length."""
    if not payload:
        raise ProtocolError("refusing to encode an empty frame")
    if len(payload) > MAX_FRAME:
        raise ProtocolError(
            f"frame of {len(payload)} bytes exceeds MAX_FRAME={MAX_FRAME}"
        )
    return _U32.pack(len(payload)) + payload


async def read_frame(reader: asyncio.StreamReader) -> bytes | None:
    """Read one frame; ``None`` on clean EOF at a frame boundary.

    Raises :class:`ProtocolError` on a torn header, a zero/oversized
    length, or a payload cut short.
    """
    try:
        header = await reader.readexactly(4)
    except asyncio.IncompleteReadError as exc:
        if not exc.partial:
            return None
        raise ProtocolError(
            f"connection closed mid-header ({len(exc.partial)}/4 bytes)"
        ) from exc
    (length,) = _U32.unpack(header)
    if length == 0:
        raise ProtocolError("zero-length frame")
    if length > MAX_FRAME:
        raise ProtocolError(
            f"frame length {length} exceeds MAX_FRAME={MAX_FRAME}"
        )
    try:
        return await reader.readexactly(length)
    except asyncio.IncompleteReadError as exc:
        raise ProtocolError(
            f"truncated frame ({len(exc.partial)}/{length} bytes)"
        ) from exc


class BufferedFrameWriter:
    """Write-side counterpart of :func:`read_frame`: coalesce frames.

    ``send`` appends a complete frame to a buffer and (if none is
    running) starts one flusher task; everything that accumulates while
    a ``drain()`` is in flight goes out in the *next* single write --
    so a burst of N pipelined replies costs ~2 syscall rounds instead
    of N write+drain pairs.  Frames are never split or reordered.

    Transport failures are swallowed here (the buffer is dropped); the
    owner notices the dead peer through its read side, which is where
    connection teardown already lives.
    """

    __slots__ = ("_writer", "_buffer", "_flusher", "frames", "flushes")

    def __init__(self, writer: asyncio.StreamWriter) -> None:
        self._writer = writer
        self._buffer: list[bytes] = []
        self._flusher: asyncio.Task | None = None
        #: Frames accepted / physical write+drain rounds issued.  Their
        #: ratio is the wire-side coalescing factor.
        self.frames = 0
        self.flushes = 0

    def send(self, frame: bytes) -> None:
        """Queue one complete frame; returns immediately."""
        self._buffer.append(frame)
        self.frames += 1
        if self._flusher is None:
            self._flusher = asyncio.get_running_loop().create_task(self._drain())

    async def _drain(self) -> None:
        try:
            while self._buffer:
                chunk = (
                    self._buffer[0]
                    if len(self._buffer) == 1
                    else b"".join(self._buffer)
                )
                self._buffer.clear()
                self.flushes += 1
                self._writer.write(chunk)
                await self._writer.drain()
        except (ConnectionError, OSError):
            self._buffer.clear()
        finally:
            # No await points between the loop's empty-buffer check and
            # here (single-threaded loop), so a concurrent send() either
            # saw us running or starts a fresh flusher -- never neither.
            self._flusher = None

    async def flush(self) -> None:
        """Wait until everything queued so far has hit the transport."""
        task = self._flusher
        if task is not None:
            await asyncio.shield(task)


# ----------------------------------------------------------------------
# Cursor-based payload reads (every read is bounds-checked)
# ----------------------------------------------------------------------

class _Cursor:
    """Bounds-checked reader over a payload.

    The payload is wrapped in a :class:`memoryview` once; every
    :meth:`take` returns a zero-copy slice of it and the fixed-width
    readers unpack in place, so parsing a frame allocates nothing but
    the values actually kept.  Callers that store item bytes beyond the
    frame's lifetime copy them explicitly (``bytes(view)``).
    """

    __slots__ = ("raw", "size", "pos")

    def __init__(self, raw) -> None:
        self.raw = memoryview(raw)
        self.size = len(self.raw)
        self.pos = 0

    def take(self, count: int, what: str) -> memoryview:
        end = self.pos + count
        if end > self.size:
            raise ProtocolError(
                f"payload ends inside {what} "
                f"(need {count} bytes at offset {self.pos}, have {self.size - self.pos})"
            )
        chunk = self.raw[self.pos : end]
        self.pos = end
        return chunk

    def u8(self, what: str) -> int:
        if self.pos >= self.size:
            raise ProtocolError(
                f"payload ends inside {what} "
                f"(need 1 bytes at offset {self.pos}, have 0)"
            )
        value = self.raw[self.pos]
        self.pos += 1
        return value

    def u16(self, what: str) -> int:
        return _U16.unpack_from(self.take(2, what))[0]

    def u32(self, what: str) -> int:
        return _U32.unpack_from(self.take(4, what))[0]

    def u64(self, what: str) -> int:
        return _U64.unpack_from(self.take(8, what))[0]

    def peek_u8(self) -> int | None:
        """The next byte without consuming it; ``None`` at payload end."""
        if self.pos >= self.size:
            return None
        return self.raw[self.pos]

    def done(self) -> None:
        if self.pos != self.size:
            raise ProtocolError(
                f"{self.size - self.pos} trailing bytes after payload"
            )


def _decode_text(raw, what: str) -> str:
    try:
        return str(raw, "utf-8")
    except UnicodeDecodeError as exc:
        raise ProtocolError(f"{what} is not valid UTF-8") from exc


# ----------------------------------------------------------------------
# Requests
# ----------------------------------------------------------------------

def encode_request(
    op: int, items: list[str | bytes] | None = None, client: str = "anon"
) -> bytes:
    """Encode a request payload (frame it with :func:`encode_frame`)."""
    if op not in _OPS:
        raise ProtocolError(f"unknown opcode {op}")
    if op == OP_HANDOFF:
        raise ProtocolError("handoff requests use encode_handoff_frame")
    items = items or []
    if op in (OP_INSERT, OP_QUERY) and len(items) != 1:
        raise ProtocolError("single-item ops carry exactly one item")
    client_raw = client.encode("utf-8")
    if len(client_raw) > 0xFFFF:
        raise ProtocolError("client id too long")
    parts = [bytes([op]), _U16.pack(len(client_raw)), client_raw, _U32.pack(len(items))]
    for item in items:
        if isinstance(item, str):
            raw, is_text = item.encode("utf-8"), 1
        elif isinstance(item, bytes):
            raw, is_text = item, 0
        else:
            raise ProtocolError(f"items must be str or bytes, got {type(item).__name__}")
        parts.append(bytes([is_text]))
        parts.append(_U32.pack(len(raw)))
        parts.append(raw)
    return b"".join(parts)


def _take_envelope(cursor: _Cursor, what: str) -> int | None:
    """Consume a v2 envelope if one opens the payload; the correlation
    id, or ``None`` for a v1 payload (cursor untouched)."""
    if cursor.peek_u8() != FRAME_V2:
        return None
    cursor.u8("envelope marker")
    return cursor.u32(f"{what} correlation id")


def decode_request(payload) -> Request:
    """Decode and validate a v1 request payload (any bytes-like)."""
    return _decode_request_body(_Cursor(payload))


def decode_request_envelope(payload) -> tuple[int | None, Request]:
    """Decode a request of either generation.

    Returns ``(correlation_id, request)``; the id is ``None`` for a v1
    payload (the caller owes a serial, id-less reply) and a u32 for a v2
    payload (the reply must echo it, and may return out of order).
    """
    cursor = _Cursor(payload)
    return _take_envelope(cursor, "request"), _decode_request_body(cursor)


def _decode_request_body(cursor: _Cursor) -> Request:
    op = cursor.u8("opcode")
    if op not in _OPS:
        raise ProtocolError(f"unknown opcode {op}")
    client = _decode_text(cursor.take(cursor.u16("client length"), "client id"), "client id")
    if op == OP_HANDOFF:
        shard_id = cursor.u32("handoff shard id")
        epoch = cursor.u64("handoff epoch")
        block_len = cursor.u32("handoff block length")
        if block_len == 0:
            raise ProtocolError("handoff carries an empty shard block")
        # Bounds-checked by the cursor: a hostile length that overruns
        # the payload raises before any allocation.
        block = bytes(cursor.take(block_len, "handoff shard block"))
        cursor.done()
        if epoch == 0:
            raise ProtocolError("handoff epoch must be positive")
        return Request(
            op=op, client=client, items=[],
            shard_id=shard_id, epoch=epoch, block=block,
        )
    count = cursor.u32("item count")
    # Each item costs at least 5 bytes on the wire; a hostile count that
    # cannot fit in the remaining payload is rejected before allocation.
    if count * 5 > cursor.size - cursor.pos:
        raise ProtocolError(f"item count {count} exceeds payload size")
    items: list[str | bytes] = []
    for _ in range(count):
        is_text = cursor.u8("item flag")
        if is_text not in (0, 1):
            raise ProtocolError(f"bad item flag {is_text}")
        raw = cursor.take(cursor.u32("item length"), "item bytes")
        # Items outlive the frame buffer, so binary ones are copied out
        # of the view here -- the only per-item copy on the decode path.
        items.append(_decode_text(raw, "text item") if is_text else bytes(raw))
    cursor.done()
    if op in (OP_INSERT, OP_QUERY) and len(items) != 1:
        raise ProtocolError("single-item ops carry exactly one item")
    if op == OP_STATS and items:
        raise ProtocolError("stats requests carry no items")
    return Request(op=op, client=client, items=items)


# ----------------------------------------------------------------------
# Responses
# ----------------------------------------------------------------------

def encode_answers(answers: list[bool]) -> bytes:
    """OK response carrying packed membership answers."""
    return bytes([ST_OK]) + _U32.pack(len(answers)) + pack_bools(answers)


def encode_error(status: int, message: str) -> bytes:
    """Non-OK response carrying a diagnostic message.

    ``ST_NOT_OWNER`` is rejected here: its body is a structured redirect
    (:func:`encode_not_owner`), not a message.
    """
    if status not in _STATUSES or status in (ST_OK, ST_NOT_OWNER):
        raise ProtocolError(f"bad error status {status}")
    raw = message.encode("utf-8")
    if len(raw) > 0xFFFF:
        # Truncate on a character boundary so the reply stays valid UTF-8.
        raw = raw[:0xFFFF].decode("utf-8", "ignore").encode("utf-8")
    return bytes([status]) + _U16.pack(len(raw)) + raw


def encode_stats(snapshots: list[ShardSnapshot]) -> bytes:
    """OK response carrying per-shard stats as JSON."""
    raw = json.dumps([asdict(s) for s in snapshots]).encode("utf-8")
    return bytes([ST_OK, 0xFF]) + _U32.pack(len(raw)) + raw


def _not_owner_fields(shard_id: int, epoch: int, owner: str) -> bytes:
    if not 0 <= shard_id <= 0xFFFFFFFF:
        raise ProtocolError(f"shard id {shard_id} outside the u32 range")
    if not 0 <= epoch <= 0xFFFFFFFFFFFFFFFF:
        raise ProtocolError(f"epoch {epoch} outside the u64 range")
    owner_raw = owner.encode("utf-8")
    if len(owner_raw) > 0xFFFF:
        raise ProtocolError("owner name too long")
    return (
        _U32.pack(shard_id)
        + _U64.pack(epoch)
        + _U16.pack(len(owner_raw))
        + owner_raw
    )


def encode_not_owner(shard_id: int, epoch: int, owner: str = "") -> bytes:
    """``ST_NOT_OWNER`` redirect response: shard, epoch, current owner.

    ``epoch`` 0 (with an empty owner) means the gateway has no ownership
    view to share -- the client must fall back to its own map.
    """
    return bytes([ST_NOT_OWNER]) + _not_owner_fields(shard_id, epoch, owner)


# ----------------------------------------------------------------------
# Whole-frame encoders (the zero-copy send path)
# ----------------------------------------------------------------------
#
# The payload encoders above build a payload that the caller then frames
# with :func:`encode_frame` -- two buffers and a concatenation per send.
# The ``*_frame`` variants compute the exact frame size up front, allocate
# one buffer, and pack header and payload straight into it; the server
# and client send paths hand that single buffer to the transport.
#
# Every ``*_frame`` encoder takes an optional ``request_id``: ``None``
# emits the byte-identical v1 frame, a u32 prepends the five-byte v2
# envelope (marker + correlation id) to the same body.

def _frame_buffer(payload_len: int) -> bytearray:
    if payload_len == 0:
        raise ProtocolError("refusing to encode an empty frame")
    if payload_len > MAX_FRAME:
        raise ProtocolError(
            f"frame of {payload_len} bytes exceeds MAX_FRAME={MAX_FRAME}"
        )
    out = bytearray(4 + payload_len)
    _U32.pack_into(out, 0, payload_len)
    return out


def _enveloped_buffer(
    payload_len: int, request_id: int | None
) -> tuple[bytearray, int]:
    """One frame buffer plus the body's start offset; a correlation id
    grows the payload by the five-byte v2 envelope."""
    if request_id is None:
        return _frame_buffer(payload_len), 4
    if not 0 <= request_id <= 0xFFFFFFFF:
        raise ProtocolError(f"correlation id {request_id} outside the u32 range")
    out = _frame_buffer(payload_len + 5)
    out[4] = FRAME_V2
    _U32.pack_into(out, 5, request_id)
    return out, 9


def encode_request_frame(
    op: int,
    items: list[str | bytes] | None = None,
    client: str = "anon",
    request_id: int | None = None,
) -> bytes:
    """One ready-to-send request frame, assembled in a single buffer."""
    if op not in _OPS:
        raise ProtocolError(f"unknown opcode {op}")
    items = items or []
    if op in (OP_INSERT, OP_QUERY) and len(items) != 1:
        raise ProtocolError("single-item ops carry exactly one item")
    client_raw = client.encode("utf-8")
    if len(client_raw) > 0xFFFF:
        raise ProtocolError("client id too long")
    encoded: list[tuple[int, bytes]] = []
    total = 1 + 2 + len(client_raw) + 4
    for item in items:
        if isinstance(item, str):
            raw, is_text = item.encode("utf-8"), 1
        elif isinstance(item, bytes):
            raw, is_text = item, 0
        else:
            raise ProtocolError(f"items must be str or bytes, got {type(item).__name__}")
        encoded.append((is_text, raw))
        total += 5 + len(raw)
    out, pos = _enveloped_buffer(total, request_id)
    out[pos] = op
    pos += 1
    _U16.pack_into(out, pos, len(client_raw))
    pos += 2
    out[pos : pos + len(client_raw)] = client_raw
    pos += len(client_raw)
    _U32.pack_into(out, pos, len(encoded))
    pos += 4
    for is_text, raw in encoded:
        out[pos] = is_text
        pos += 1
        _U32.pack_into(out, pos, len(raw))
        pos += 4
        out[pos : pos + len(raw)] = raw
        pos += len(raw)
    return bytes(out)


def encode_answers_frame(
    answers: list[bool], request_id: int | None = None
) -> bytes:
    """One ready-to-send OK frame carrying packed membership answers."""
    bitmap = pack_bools(answers)
    out, pos = _enveloped_buffer(5 + len(bitmap), request_id)
    out[pos] = ST_OK
    _U32.pack_into(out, pos + 1, len(answers))
    out[pos + 5 :] = bitmap
    return bytes(out)


def encode_error_frame(
    status: int, message: str, request_id: int | None = None
) -> bytes:
    """One ready-to-send non-OK frame carrying a diagnostic message
    (``ST_NOT_OWNER`` uses :func:`encode_not_owner_frame` instead)."""
    if status not in _STATUSES or status in (ST_OK, ST_NOT_OWNER):
        raise ProtocolError(f"bad error status {status}")
    raw = message.encode("utf-8")
    if len(raw) > 0xFFFF:
        # Truncate on a character boundary so the reply stays valid UTF-8.
        raw = raw[:0xFFFF].decode("utf-8", "ignore").encode("utf-8")
    out, pos = _enveloped_buffer(3 + len(raw), request_id)
    out[pos] = status
    _U16.pack_into(out, pos + 1, len(raw))
    out[pos + 3 :] = raw
    return bytes(out)


def encode_stats_frame(
    snapshots: list[ShardSnapshot],
    extra: dict | None = None,
    request_id: int | None = None,
) -> bytes:
    """One ready-to-send OK frame carrying per-shard stats as JSON.

    ``extra`` (a JSON-serialisable dict, e.g. server-level counters) is
    appended to the shard list as one more entry; consumers tell it
    apart from shard rows by the absent ``shard_id`` key.
    """
    rows: list[dict] = [asdict(s) for s in snapshots]
    if extra is not None:
        rows.append(extra)
    raw = json.dumps(rows).encode("utf-8")
    out, pos = _enveloped_buffer(6 + len(raw), request_id)
    out[pos] = ST_OK
    out[pos + 1] = 0xFF
    _U32.pack_into(out, pos + 2, len(raw))
    out[pos + 6 :] = raw
    return bytes(out)


def encode_not_owner_frame(
    shard_id: int, epoch: int, owner: str = "", request_id: int | None = None
) -> bytes:
    """One ready-to-send ``ST_NOT_OWNER`` redirect frame."""
    fields = _not_owner_fields(shard_id, epoch, owner)
    out, pos = _enveloped_buffer(1 + len(fields), request_id)
    out[pos] = ST_NOT_OWNER
    out[pos + 1 :] = fields
    return bytes(out)


def encode_handoff_frame(
    shard_id: int,
    epoch: int,
    block: bytes,
    client: str = "anon",
    request_id: int | None = None,
) -> bytes:
    """One ready-to-send ``OP_HANDOFF`` request frame.

    ``block`` is the shard's state block from :func:`repro.service.
    snapshots.snapshot_shard`; ``epoch`` is the ownership epoch of the
    move (must be positive -- 0 is the "no view" sentinel).
    """
    if not 0 <= shard_id <= 0xFFFFFFFF:
        raise ProtocolError(f"shard id {shard_id} outside the u32 range")
    if not 1 <= epoch <= 0xFFFFFFFFFFFFFFFF:
        raise ProtocolError(f"handoff epoch {epoch} must be a positive u64")
    if not block:
        raise ProtocolError("handoff carries an empty shard block")
    if not isinstance(block, (bytes, bytearray, memoryview)):
        raise ProtocolError(
            f"handoff block must be bytes, got {type(block).__name__}"
        )
    client_raw = client.encode("utf-8")
    if len(client_raw) > 0xFFFF:
        raise ProtocolError("client id too long")
    block = bytes(block)
    total = 1 + 2 + len(client_raw) + 4 + 8 + 4 + len(block)
    out, pos = _enveloped_buffer(total, request_id)
    out[pos] = OP_HANDOFF
    pos += 1
    _U16.pack_into(out, pos, len(client_raw))
    pos += 2
    out[pos : pos + len(client_raw)] = client_raw
    pos += len(client_raw)
    _U32.pack_into(out, pos, shard_id)
    pos += 4
    _U64.pack_into(out, pos, epoch)
    pos += 8
    _U32.pack_into(out, pos, len(block))
    pos += 4
    out[pos:] = block
    return bytes(out)


def decode_response(payload) -> Response:
    """Decode a v1 response payload (answers, stats, or an error)."""
    return _decode_response_body(_Cursor(payload))


def decode_response_envelope(payload) -> tuple[int | None, Response]:
    """Decode a response of either generation; ``(correlation_id,
    response)`` with a ``None`` id for v1 payloads."""
    cursor = _Cursor(payload)
    return _take_envelope(cursor, "response"), _decode_response_body(cursor)


def _decode_response_body(cursor: _Cursor) -> Response:
    status = cursor.u8("status")
    if status not in _STATUSES:
        raise ProtocolError(f"unknown status byte {status}")
    if status == ST_NOT_OWNER:
        shard_id = cursor.u32("redirect shard id")
        epoch = cursor.u64("redirect epoch")
        owner = _decode_text(
            cursor.take(cursor.u16("redirect owner length"), "redirect owner"),
            "redirect owner",
        )
        cursor.done()
        return Response(
            status=status, redirect=Redirect(shard_id, epoch, owner)
        )
    if status != ST_OK:
        message = _decode_text(
            cursor.take(cursor.u16("message length"), "message"), "message"
        )
        cursor.done()
        return Response(status=status, message=message)
    # OK responses: answers (count + bitmap) or stats (0xFF marker + JSON).
    # Unambiguous: an answer count opening with 0xFF would mean >= 2^32-2^24
    # answers, far beyond what MAX_FRAME can carry.
    if cursor.peek_u8() == 0xFF:
        cursor.u8("stats marker")
        raw = cursor.take(cursor.u32("stats length"), "stats JSON")
        cursor.done()
        try:
            stats = json.loads(_decode_text(raw, "stats JSON"))
        except json.JSONDecodeError as exc:
            raise ProtocolError("stats payload is not valid JSON") from exc
        if not isinstance(stats, list):
            raise ProtocolError("stats payload must be a JSON list")
        return Response(status=ST_OK, stats=stats)
    count = cursor.u32("answer count")
    answers = unpack_bools(cursor.take((count + 7) // 8, "answer bitmap"), count)
    cursor.done()
    return Response(status=ST_OK, answers=answers)
