"""TCP client for the membership service.

Mirrors the gateway's serving API (``insert``/``query``/``insert_batch``/
``query_batch``/``stats``) over the length-prefixed codec, raising the
same exceptions the in-process gateway raises -- so the adversarial
traffic driver can treat a client and a gateway interchangeably (its
``transport`` knob).

Connections are pooled: each in-flight request checks out one TCP
connection (opening a new one up to ``max_connections``), so concurrent
client coroutines keep multiple requests on the wire at once -- without
that, a single serialized socket would idle every shard but one and
hide the process-pool backend's parallelism entirely.
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass

from repro.exceptions import BackendError, ParameterError, ProtocolError
from repro.service.admission import RateLimited
from repro.service.codec import (
    OP_INSERT,
    OP_INSERT_BATCH,
    OP_QUERY,
    OP_QUERY_BATCH,
    OP_STATS,
    ST_INVALID,
    ST_OK,
    ST_PROTOCOL,
    ST_RATE_LIMITED,
    Response,
    decode_response,
    encode_request_frame,
    read_frame,
)

__all__ = ["MembershipClient"]


@dataclass
class _Connection:
    reader: asyncio.StreamReader
    writer: asyncio.StreamWriter

    async def close(self) -> None:
        self.writer.close()
        try:
            await self.writer.wait_closed()
        except (ConnectionError, OSError):  # pragma: no cover - platform noise
            pass


class MembershipClient:
    """Membership-service client over one or more pooled TCP connections.

    Parameters
    ----------
    host, port:
        The server address (see :meth:`~repro.service.server.
        MembershipServer.start`).
    max_connections:
        Ceiling on concurrently open connections; requests beyond it
        wait for a free one.
    """

    def __init__(self, host: str, port: int, max_connections: int = 8) -> None:
        if max_connections <= 0:
            raise ParameterError("max_connections must be positive")
        self.host = host
        self.port = port
        self._free: list[_Connection] = []
        self._slots = asyncio.Semaphore(max_connections)
        self._closed = False

    # ------------------------------------------------------------------
    # Connection pool
    # ------------------------------------------------------------------

    async def _acquire(self) -> _Connection:
        if self._closed:
            raise ProtocolError("client is closed")
        await self._slots.acquire()
        if self._free:
            return self._free.pop()
        try:
            reader, writer = await asyncio.open_connection(self.host, self.port)
        except BaseException:
            self._slots.release()
            raise
        return _Connection(reader, writer)

    def _release(self, conn: _Connection) -> None:
        if self._closed:
            # aclose() ran while this request was in flight: close the
            # connection now instead of re-pooling it forever.
            conn.writer.close()
        else:
            self._free.append(conn)
        self._slots.release()

    async def _discard(self, conn: _Connection) -> None:
        await conn.close()
        self._slots.release()

    async def _request(self, frame: bytes, client: str) -> Response:
        conn = await self._acquire()
        try:
            conn.writer.write(frame)
            await conn.writer.drain()
            raw = await read_frame(conn.reader)
        except BaseException:
            await self._discard(conn)
            raise
        if raw is None:
            await self._discard(conn)
            raise ProtocolError("server closed the connection mid-request")
        try:
            response = decode_response(raw)
        except ProtocolError:
            await self._discard(conn)
            raise
        if response.status in (ST_PROTOCOL,):
            # The server drops the stream after a protocol error reply.
            await self._discard(conn)
        else:
            self._release(conn)
        return self._check(response, client)

    @staticmethod
    def _check(response: Response, client: str) -> Response:
        """Map non-OK statuses onto the gateway's exception types."""
        if response.status == ST_OK:
            return response
        if response.status == ST_RATE_LIMITED:
            raise RateLimited(client)
        if response.status == ST_INVALID:
            raise ParameterError(response.message or "invalid request")
        if response.status == ST_PROTOCOL:
            raise ProtocolError(response.message or "protocol violation")
        raise BackendError(response.message or "server error")

    # ------------------------------------------------------------------
    # Serving API (gateway-shaped)
    # ------------------------------------------------------------------

    async def insert(self, item: str | bytes, client: str = "anon") -> bool:
        """Insert one item; returns the filter's ``add`` result."""
        response = await self._request(
            encode_request_frame(OP_INSERT, [item], client=client), client
        )
        return self._answers(response, 1)[0]

    async def query(self, item: str | bytes, client: str = "anon") -> bool:
        """Membership query for one item."""
        response = await self._request(
            encode_request_frame(OP_QUERY, [item], client=client), client
        )
        return self._answers(response, 1)[0]

    async def insert_batch(
        self, items: list[str | bytes], client: str = "anon"
    ) -> list[bool]:
        """Insert a batch; one preallocated frame out, one packed-bit
        frame back."""
        if not items:
            return []
        response = await self._request(
            encode_request_frame(OP_INSERT_BATCH, list(items), client=client), client
        )
        return self._answers(response, len(items))

    async def query_batch(
        self, items: list[str | bytes], client: str = "anon"
    ) -> list[bool]:
        """Query a batch; same framing as :meth:`insert_batch`."""
        if not items:
            return []
        response = await self._request(
            encode_request_frame(OP_QUERY_BATCH, list(items), client=client), client
        )
        return self._answers(response, len(items))

    async def stats(self, client: str = "anon") -> list[dict]:
        """Per-shard stats snapshots (JSON dicts mirroring
        :class:`~repro.service.telemetry.ShardSnapshot`)."""
        response = await self._request(
            encode_request_frame(OP_STATS, client=client), client
        )
        if response.stats is None:
            raise ProtocolError("stats response carried no stats")
        return response.stats

    @staticmethod
    def _answers(response: Response, expected: int) -> list[bool]:
        if response.answers is None or len(response.answers) != expected:
            got = None if response.answers is None else len(response.answers)
            raise ProtocolError(
                f"expected {expected} answers, got {got}"
            )
        return response.answers

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    async def aclose(self) -> None:
        """Close every pooled connection."""
        self._closed = True
        while self._free:
            await self._free.pop().close()

    async def __aenter__(self) -> "MembershipClient":
        return self

    async def __aexit__(self, *exc_info: object) -> None:
        await self.aclose()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<MembershipClient {self.host}:{self.port}>"
