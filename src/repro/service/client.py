"""TCP client for the membership service.

Mirrors the gateway's serving API (``insert``/``query``/``insert_batch``/
``query_batch``/``stats``) over the length-prefixed codec, raising the
same exceptions the in-process gateway raises -- so the adversarial
traffic driver can treat a client and a gateway interchangeably (its
``transport`` knob).

Two wire disciplines, same API:

* ``pipeline=0`` (default): pooled v1 connections.  Each in-flight
  request checks out one TCP connection (opening a new one up to
  ``max_connections``) and speaks strict request/reply on it -- the
  original arrangement, byte-identical on the wire.
* ``pipeline=N``: one multiplexed v2 connection.  Every request gets a
  correlation id, rides a shared socket with up to ``N`` requests in
  flight, and is matched to its (possibly out-of-order) reply by id.
  Outgoing frames are write-coalesced -- concurrent callers' requests
  leave in one syscall burst -- which is what lets the server's
  micro-batch coalescer see them as one backend batch.

A failed pipelined connection fails every in-flight request with
:class:`ProtocolError` and is dropped; the next request transparently
opens a fresh one.
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass

from repro.exceptions import BackendError, NotOwner, ParameterError, ProtocolError
from repro.service.admission import RateLimited
from repro.service.codec import (
    OP_INSERT,
    OP_INSERT_BATCH,
    OP_QUERY,
    OP_QUERY_BATCH,
    OP_STATS,
    ST_INVALID,
    ST_NOT_OWNER,
    ST_OK,
    ST_PROTOCOL,
    ST_RATE_LIMITED,
    BufferedFrameWriter,
    Response,
    decode_response,
    decode_response_envelope,
    encode_handoff_frame,
    encode_request_frame,
    read_frame,
)

__all__ = ["MembershipClient"]


@dataclass
class _Connection:
    reader: asyncio.StreamReader
    writer: asyncio.StreamWriter

    async def close(self) -> None:
        self.writer.close()
        try:
            await self.writer.wait_closed()
        except (ConnectionError, OSError):  # pragma: no cover - platform noise
            pass


class _Channel:
    """One multiplexed v2 connection: futures keyed by correlation id."""

    __slots__ = (
        "reader", "writer", "out", "futures", "next_id", "depth",
        "dead", "closing", "reader_task",
    )

    def __init__(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter, depth: int
    ) -> None:
        self.reader = reader
        self.writer = writer
        self.out = BufferedFrameWriter(writer)
        self.futures: dict[int, asyncio.Future] = {}
        self.next_id = 0
        self.depth = asyncio.Semaphore(depth)
        self.dead = False
        self.closing = False
        self.reader_task = asyncio.get_running_loop().create_task(self._read_loop())

    def allocate_id(self) -> int:
        """Next correlation id (u32 wraparound; collisions would need
        2^32 requests in flight, depth caps them far earlier)."""
        rid = self.next_id
        self.next_id = (rid + 1) & 0xFFFFFFFF
        return rid

    async def _read_loop(self) -> None:
        """Resolve replies to their futures until the stream ends.

        Any irregularity -- v1 reply on a pipelined stream, unknown
        correlation id, torn frame, EOF with requests in flight -- is a
        protocol failure: everything pending fails and the channel dies.
        The *pairing* is load-bearing here; a misattributed reply would
        silently answer the wrong question.
        """
        try:
            while True:
                raw = await read_frame(self.reader)
                if raw is None:
                    if self.closing and not self.futures:
                        return  # clean shutdown, nothing owed
                    raise ProtocolError(
                        "server closed a pipelined connection"
                        + (" with requests in flight" if self.futures else "")
                    )
                rid, response = decode_response_envelope(raw)
                if rid is None:
                    raise ProtocolError("v1 reply on a pipelined connection")
                future = self.futures.get(rid)
                if future is None:
                    raise ProtocolError(f"reply for unknown correlation id {rid}")
                if not future.done():
                    future.set_result(response)
        except (Exception, asyncio.CancelledError) as exc:
            failure = (
                exc
                if isinstance(exc, Exception)
                else ProtocolError("pipelined connection closed")
            )
            self.fail(failure)
            if not isinstance(exc, Exception):
                raise

    def fail(self, exc: Exception) -> None:
        """Mark the channel dead and fail everything in flight."""
        self.dead = True
        for future in self.futures.values():
            if not future.done():
                future.set_exception(exc)
        self.writer.close()

    async def close(self) -> None:
        self.closing = True
        try:
            await self.out.flush()
        except (ConnectionError, OSError):  # pragma: no cover - racing peer
            pass
        self.reader_task.cancel()
        await asyncio.gather(self.reader_task, return_exceptions=True)
        self.writer.close()
        try:
            await self.writer.wait_closed()
        except (ConnectionError, OSError):  # pragma: no cover - platform noise
            pass


class MembershipClient:
    """Membership-service client over pooled or pipelined TCP.

    Parameters
    ----------
    host, port:
        The server address (see :meth:`~repro.service.server.
        MembershipServer.start`).
    max_connections:
        Ceiling on concurrently open pooled (v1) connections; requests
        beyond it wait for a free one.  Ignored in pipelined mode, which
        multiplexes one connection.
    pipeline:
        Maximum requests in flight on the multiplexed v2 connection;
        0 (default) keeps the pooled v1 discipline.
    """

    def __init__(
        self,
        host: str,
        port: int,
        max_connections: int = 8,
        pipeline: int = 0,
    ) -> None:
        if max_connections <= 0:
            raise ParameterError("max_connections must be positive")
        if pipeline < 0:
            raise ParameterError("pipeline must be non-negative")
        self.host = host
        self.port = port
        self.pipeline = pipeline
        self._free: list[_Connection] = []
        self._slots = asyncio.Semaphore(max_connections)
        self._channel: _Channel | None = None
        self._channel_opening: asyncio.Lock | None = None
        self._closed = False

    # ------------------------------------------------------------------
    # Connection pool (v1 mode)
    # ------------------------------------------------------------------

    async def _acquire(self) -> _Connection:
        if self._closed:
            raise ProtocolError("client is closed")
        await self._slots.acquire()
        if self._free:
            return self._free.pop()
        try:
            reader, writer = await asyncio.open_connection(self.host, self.port)
        except BaseException:
            self._slots.release()
            raise
        return _Connection(reader, writer)

    def _release(self, conn: _Connection) -> None:
        if self._closed:
            # aclose() ran while this request was in flight: close the
            # connection now instead of re-pooling it forever.
            conn.writer.close()
        else:
            self._free.append(conn)
        self._slots.release()

    async def _discard(self, conn: _Connection) -> None:
        await conn.close()
        self._slots.release()

    async def _request_pooled(self, frame: bytes, client: str) -> Response:
        conn = await self._acquire()
        try:
            conn.writer.write(frame)
            await conn.writer.drain()
            raw = await read_frame(conn.reader)
        except BaseException:
            await self._discard(conn)
            raise
        if raw is None:
            await self._discard(conn)
            raise ProtocolError("server closed the connection mid-request")
        try:
            response = decode_response(raw)
        except ProtocolError:
            await self._discard(conn)
            raise
        if response.status in (ST_PROTOCOL,):
            # The server drops the stream after a protocol error reply.
            await self._discard(conn)
        else:
            self._release(conn)
        return self._check(response, client)

    # ------------------------------------------------------------------
    # Multiplexed channel (pipelined mode)
    # ------------------------------------------------------------------

    async def _get_channel(self) -> _Channel:
        if self._closed:
            raise ProtocolError("client is closed")
        # Lazy lock: the client may be constructed outside a loop.
        if self._channel_opening is None:
            self._channel_opening = asyncio.Lock()
        async with self._channel_opening:
            if self._channel is None or self._channel.dead:
                reader, writer = await asyncio.open_connection(self.host, self.port)
                self._channel = _Channel(reader, writer, self.pipeline)
            return self._channel

    async def _send_pipelined(self, encode, client: str) -> Response:
        """Send one frame built by ``encode(request_id)`` on the channel."""
        while True:
            channel = await self._get_channel()
            await channel.depth.acquire()
            if not channel.dead:
                break
            # Died while we waited for a slot; reopen and retry.
            channel.depth.release()
        rid = channel.allocate_id()
        future: asyncio.Future = asyncio.get_running_loop().create_future()
        channel.futures[rid] = future
        try:
            channel.out.send(encode(rid))
            response = await future
        finally:
            channel.futures.pop(rid, None)
            channel.depth.release()
        return self._check(response, client)

    async def _send(self, encode, client: str) -> Response:
        """Route one request through the active wire discipline.

        ``encode`` maps a correlation id (``None`` for v1) to a complete
        frame -- the op-specific encoders plug in here.
        """
        if self.pipeline > 0:
            return await self._send_pipelined(encode, client)
        return await self._request_pooled(encode(None), client)

    async def _request(self, op: int, items: list, client: str) -> Response:
        return await self._send(
            lambda rid: encode_request_frame(
                op, items, client=client, request_id=rid
            ),
            client,
        )

    @staticmethod
    def _check(response: Response, client: str) -> Response:
        """Map non-OK statuses onto the gateway's exception types."""
        if response.status == ST_OK:
            return response
        if response.status == ST_RATE_LIMITED:
            raise RateLimited(client)
        if response.status == ST_INVALID:
            raise ParameterError(response.message or "invalid request")
        if response.status == ST_PROTOCOL:
            raise ProtocolError(response.message or "protocol violation")
        if response.status == ST_NOT_OWNER:
            redirect = response.redirect
            if redirect is None:  # pragma: no cover - decoder guarantees it
                raise ProtocolError("not-owner response carried no redirect")
            raise NotOwner(
                redirect.shard_id, epoch=redirect.epoch, owner=redirect.owner
            )
        raise BackendError(response.message or "server error")

    # ------------------------------------------------------------------
    # Serving API (gateway-shaped)
    # ------------------------------------------------------------------

    async def insert(self, item: str | bytes, client: str = "anon") -> bool:
        """Insert one item; returns the filter's ``add`` result."""
        response = await self._request(OP_INSERT, [item], client)
        return self._answers(response, 1)[0]

    async def query(self, item: str | bytes, client: str = "anon") -> bool:
        """Membership query for one item."""
        response = await self._request(OP_QUERY, [item], client)
        return self._answers(response, 1)[0]

    async def insert_batch(
        self, items: list[str | bytes], client: str = "anon"
    ) -> list[bool]:
        """Insert a batch; one preallocated frame out, one packed-bit
        frame back."""
        if not items:
            return []
        response = await self._request(OP_INSERT_BATCH, list(items), client)
        return self._answers(response, len(items))

    async def query_batch(
        self, items: list[str | bytes], client: str = "anon"
    ) -> list[bool]:
        """Query a batch; same framing as :meth:`insert_batch`."""
        if not items:
            return []
        response = await self._request(OP_QUERY_BATCH, list(items), client)
        return self._answers(response, len(items))

    async def handoff(
        self, shard_id: int, epoch: int, block: bytes, client: str = "anon"
    ) -> None:
        """Deliver one shard's handoff block to this server's gateway.

        ``block`` comes from the losing gateway's ``release_shard``;
        ``epoch`` is the ownership epoch of the move.  A stale epoch or
        a malformed block raises (:class:`ParameterError` /
        :class:`BackendError`) without the gaining gateway adopting
        anything.
        """
        response = await self._send(
            lambda rid: encode_handoff_frame(
                shard_id, epoch, block, client=client, request_id=rid
            ),
            client,
        )
        self._answers(response, 0)

    async def stats(self, client: str = "anon") -> list[dict]:
        """Per-shard stats snapshots (JSON dicts mirroring
        :class:`~repro.service.telemetry.ShardSnapshot`)."""
        response = await self._request(OP_STATS, [], client)
        if response.stats is None:
            raise ProtocolError("stats response carried no stats")
        return [entry for entry in response.stats if "shard_id" in entry]

    async def server_stats(self, client: str = "anon") -> dict:
        """Server-side counters (connections, protocol errors, pipeline
        depth, coalescer state) from the stats frame's extra entry."""
        response = await self._request(OP_STATS, [], client)
        for entry in response.stats or []:
            if "shard_id" not in entry:
                return entry.get("server", entry)
        return {}

    @staticmethod
    def _answers(response: Response, expected: int) -> list[bool]:
        if response.answers is None or len(response.answers) != expected:
            got = None if response.answers is None else len(response.answers)
            raise ProtocolError(
                f"expected {expected} answers, got {got}"
            )
        return response.answers

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    async def aclose(self) -> None:
        """Close every pooled connection and the pipelined channel."""
        self._closed = True
        while self._free:
            await self._free.pop().close()
        channel, self._channel = self._channel, None
        if channel is not None:
            await channel.close()

    async def __aenter__(self) -> "MembershipClient":
        return self

    async def __aexit__(self, *exc_info: object) -> None:
        await self.aclose()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        mode = f"pipeline={self.pipeline}" if self.pipeline else "pooled"
        return f"<MembershipClient {self.host}:{self.port} {mode}>"
