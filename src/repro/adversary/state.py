"""Adapters exposing a filter's internal state to the adversary.

The paper's query-only and deletion adversaries "know the current state
of the filter or a part of it"; the chosen-insertion adversary tracks it
by replaying her own insertions.  :func:`bit_oracle` normalises every
filter type in :mod:`repro.core` to a single ``is bit i set?`` callable
so attack code is structure-agnostic.
"""

from __future__ import annotations

from typing import Callable, Protocol, runtime_checkable

from repro import accel
from repro.core.bloom import BloomFilter
from repro.core.cache_digest import CacheDigest
from repro.core.counting import CountingBloomFilter
from repro.core.partitioned import PartitionedBloomFilter

__all__ = ["TargetFilter", "bit_oracle", "bit_state_array"]


@runtime_checkable
class TargetFilter(Protocol):
    """Structural type every attackable filter satisfies."""

    m: int
    k: int

    def indexes(self, item: str | bytes) -> tuple[int, ...]: ...

    def add(self, item: str | bytes) -> bool: ...


def bit_oracle(target: object) -> Callable[[int], bool]:
    """Return a predicate telling whether position ``i`` is set/non-zero.

    Supports every filter family in :mod:`repro.core`; raises
    :class:`TypeError` for anything else so a mis-wired attack fails
    loudly instead of silently probing nothing.
    """
    if isinstance(target, (BloomFilter, PartitionedBloomFilter, CacheDigest)):
        bits = target.bits
        return bits.get
    if isinstance(target, CountingBloomFilter):
        counters = target.counters
        return lambda i: counters.get(i) > 0
    # Duck-typed fallback for adapters (e.g. the Squid digest shim).
    bits = getattr(target, "bits", None)
    if bits is not None and hasattr(bits, "get"):
        return bits.get
    counters = getattr(target, "counters", None)
    if counters is not None and hasattr(counters, "get"):
        return lambda i: counters.get(i) > 0
    raise TypeError(
        f"don't know how to read the state of {type(target).__name__}; "
        "pass a BloomFilter, CountingBloomFilter, PartitionedBloomFilter or "
        "CacheDigest (for Dablooms, attack one slice at a time)"
    )


def bit_state_array(target: object):
    """The whole ``is bit i set?`` state as a numpy bool array of length
    ``m`` -- the bulk form of :func:`bit_oracle`, read once per crafting
    block by the vectorised attack predicates.

    Returns ``None`` when numpy is unavailable, the pure backend is
    forced, or the target exposes no bulk-readable state (callers then
    fall back to the scalar oracle).
    The array is a snapshot: it reflects the state at call time and does
    not track later mutations, which is exactly the crafting contract --
    filter state never changes inside one brute-force search.
    """
    np = accel.numpy_or_none()
    if np is None or accel.current_mode() == "pure":
        return None
    bits = getattr(target, "bits", None)
    if bits is not None and hasattr(bits, "to_bytes"):
        unpacked = np.unpackbits(
            np.frombuffer(bits.to_bytes(), dtype=np.uint8), bitorder="little"
        )
        return unpacked[: len(bits)].astype(bool)
    counters = getattr(target, "counters", None)
    if counters is not None and hasattr(counters, "to_bytes"):
        return np.frombuffer(counters.to_bytes(), dtype=np.uint8) > 0
    return None
