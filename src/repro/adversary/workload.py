"""Insertion workload builders for the experiments.

Fig. 3 compares three insertion regimes on the same filter: honest
(uniform random URLs), fully adversarial (every item crafted), and the
*partial* attack (400 honest insertions, then adversarial).  These
builders produce exactly those streams plus the per-insertion telemetry
the figure plots.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator

from repro.adversary.pollution import PollutionAttack
from repro.adversary.state import TargetFilter
from repro.exceptions import ParameterError
from repro.urlgen.faker import UrlFactory

__all__ = ["InsertionTrace", "honest_insertions", "adversarial_insertions", "mixed_insertions"]


@dataclass
class InsertionTrace:
    """Per-insertion filter telemetry.

    ``fpp[i]`` and ``weight[i]`` describe the filter *after* the
    (i+1)-th insertion; ``crafted[i]`` marks adversarial items.
    """

    items: list[str] = field(default_factory=list)
    fpp: list[float] = field(default_factory=list)
    weight: list[int] = field(default_factory=list)
    crafted: list[bool] = field(default_factory=list)

    def record(self, target: TargetFilter, item: str, was_crafted: bool) -> None:
        """Append one observation."""
        self.items.append(item)
        self.fpp.append(target.current_fpp())
        self.weight.append(target.hamming_weight)
        self.crafted.append(was_crafted)

    def threshold_crossing(self, threshold: float) -> int | None:
        """1-based insertion count at which the FP first exceeds
        ``threshold`` (None if never) -- the Fig. 3 crossing points."""
        for i, value in enumerate(self.fpp):
            if value > threshold:
                return i + 1
        return None


def honest_insertions(target: TargetFilter, count: int, seed: int = 0xB10B) -> InsertionTrace:
    """Insert ``count`` uniform random URLs, recording telemetry."""
    if count < 0:
        raise ParameterError("count must be non-negative")
    factory = UrlFactory(seed=seed)
    trace = InsertionTrace()
    for _ in range(count):
        url = factory.url()
        target.add(url)
        trace.record(target, url, was_crafted=False)
    return trace


def adversarial_insertions(
    target: TargetFilter, count: int, seed: int = 0x5EED, max_trials: int = 5_000_000
) -> InsertionTrace:
    """Insert ``count`` crafted polluting items, recording telemetry."""
    if count < 0:
        raise ParameterError("count must be non-negative")
    attack = PollutionAttack(target, max_trials=max_trials, seed=seed)
    trace = InsertionTrace()
    for _ in range(count):
        result = attack.craft_one()
        target.add(result.item)
        trace.record(target, result.item, was_crafted=True)
    return trace


def mixed_insertions(
    target: TargetFilter,
    honest_count: int,
    adversarial_count: int,
    seed: int = 0x31C5,
    max_trials: int = 5_000_000,
) -> InsertionTrace:
    """The paper's partial attack: honest insertions, then crafted ones.

    Fig. 3 uses 400 honest + 200 crafted on the m = 3200, k = 4 filter;
    the FP threshold 0.077 is then crossed at insertion 510.
    """
    trace = honest_insertions(target, honest_count, seed=seed)
    tail = adversarial_insertions(
        target, adversarial_count, seed=seed ^ 0xFFFF, max_trials=max_trials
    )
    trace.items += tail.items
    trace.fpp += tail.fpp
    trace.weight += tail.weight
    trace.crafted += tail.crafted
    return trace


def honest_stream(seed: int = 0xB10B) -> Iterator[str]:
    """Infinite honest URL stream (convenience for app simulations)."""
    return UrlFactory(seed=seed).candidate_stream()
