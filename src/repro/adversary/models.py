"""The paper's three adversary models (Section 4), as first-class objects.

The standing assumptions are encoded too: the filter is *maintained by a
trusted party* (otherwise the LOAF-style trivial attack applies), but its
*implementation is public and deterministic* -- the adversary can compute
anyone's indexes offline.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

__all__ = [
    "AdversaryGoal",
    "AdversaryModel",
    "CHOSEN_INSERTION",
    "QUERY_ONLY",
    "DELETION",
    "ALL_MODELS",
]


class AdversaryGoal(enum.Enum):
    """What the adversary is trying to force the filter to do."""

    POLLUTION = "raise the false-positive probability above the design value"
    SATURATION = "set every bit, making every query answer 'present'"
    FALSE_POSITIVE = "forge items the filter wrongly reports as present"
    LATENCY = "force worst-case work (memory accesses) per query"
    FALSE_NEGATIVE = "make a present item disappear from the filter"


@dataclass(frozen=True)
class AdversaryModel:
    """A capability profile for attacks on a Bloom-filter deployment.

    Attributes
    ----------
    name:
        Paper name of the model.
    can_insert / can_query / can_delete:
        Which filter operations the adversary can trigger (directly or by
        making the trusted party perform them).
    knows_state:
        Whether the adversary can observe the filter's bits.  The paper's
        query-only and deletion adversaries need (at least partial) state
        knowledge; the chosen-insertion adversary can track state by
        construction, replaying her own insertions offline.
    goals:
        The goals this model can pursue.
    """

    name: str
    can_insert: bool
    can_query: bool
    can_delete: bool
    knows_state: bool
    goals: tuple[AdversaryGoal, ...]
    description: str = field(default="", compare=False)

    def permits(self, goal: AdversaryGoal) -> bool:
        """Whether ``goal`` is achievable under this model."""
        return goal in self.goals


CHOSEN_INSERTION = AdversaryModel(
    name="chosen-insertion",
    can_insert=True,
    can_query=True,
    can_delete=False,
    knows_state=True,
    goals=(AdversaryGoal.POLLUTION, AdversaryGoal.SATURATION),
    description=(
        "Chooses (or makes the trusted party insert) the items added to the "
        "filter; each crafted item sets k previously-unset bits, driving the "
        "false-positive rate to (nk/m)^k (paper Section 4.1)."
    ),
)

QUERY_ONLY = AdversaryModel(
    name="query-only",
    can_insert=False,
    can_query=True,
    can_delete=False,
    knows_state=True,
    goals=(AdversaryGoal.FALSE_POSITIVE, AdversaryGoal.LATENCY),
    description=(
        "Cannot insert, but knows (part of) the filter state; forges items "
        "whose indexes all land on set bits (false positives, probability "
        "(W/m)^k per random trial) or items maximising per-query work "
        "(paper Section 4.2)."
    ),
)

DELETION = AdversaryModel(
    name="deletion",
    can_insert=False,
    can_query=True,
    can_delete=True,
    knows_state=True,
    goals=(AdversaryGoal.FALSE_NEGATIVE,),
    description=(
        "Targets counting-filter variants that support deletion; removes "
        "forged items overlapping a victim's indexes, creating false "
        "negatives (paper Section 4.3)."
    ),
)

#: All three models in paper order.
ALL_MODELS = (CHOSEN_INSERTION, QUERY_ONLY, DELETION)
