"""The deletion adversary (paper Section 4.3).

Counting-filter variants support ``remove``; an adversary who cannot
control insertions can still erase a victim item by deleting forged
items whose index sets overlap the victim's.  Each such deletion
decrements some of the victim's counters; once any reaches zero the
victim is a false negative.  The collateral damage the paper warns about
("deletions may remove several other items as a side effect") is
measured explicitly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Sequence

from repro.adversary.crafting import CraftingEngine, CraftResult
from repro.core.counting import CountingBloomFilter
from repro.exceptions import ParameterError
from repro.urlgen.faker import UrlFactory

__all__ = ["DeletionReport", "DeletionAttack"]


@dataclass
class DeletionReport:
    """Outcome of a deletion campaign against one victim item."""

    victim: str
    forged_deletions: list[CraftResult] = field(default_factory=list)
    victim_erased: bool = False
    collateral_false_negatives: list[str] = field(default_factory=list)

    @property
    def total_trials(self) -> int:
        """Brute-force candidates examined across all forged items."""
        return sum(r.trials for r in self.forged_deletions)


class DeletionAttack:
    """Erase a victim item from a counting filter via forged deletions.

    Parameters
    ----------
    target:
        The counting filter under attack (deletion requires counters).
    candidates:
        Candidate stream for forging; defaults to seeded fake URLs.

    The forged items are chosen to *appear present* (all their counters
    non-zero -- otherwise a sane service refuses the deletion) and to
    overlap the victim's remaining live indexes.
    """

    def __init__(
        self,
        target: CountingBloomFilter,
        candidates: Iterable[str] | None = None,
        max_trials: int = 5_000_000,
        seed: int = 0xDE1E,
    ) -> None:
        if not isinstance(target, CountingBloomFilter):
            raise ParameterError("deletion attacks require a CountingBloomFilter")
        self.target = target
        if candidates is None:
            candidates = UrlFactory(seed=seed).candidate_stream()
        self.engine = CraftingEngine(
            target.strategy, target.k, target.m, candidates, max_trials
        )

    def _live_victim_indexes(self, victim: str | bytes) -> set[int]:
        return {
            i for i in self.target.indexes(victim) if self.target.counters.get(i) > 0
        }

    def run(
        self,
        victim: str | bytes,
        witnesses: Sequence[str] = (),
        max_deletions: int = 64,
    ) -> DeletionReport:
        """Delete forged items until ``victim`` reads as absent.

        ``witnesses`` are legitimately-inserted items to check for
        collateral false negatives afterwards.
        """
        victim_str = victim if isinstance(victim, str) else victim.decode("utf-8")
        report = DeletionReport(victim=victim_str)
        if victim not in self.target:
            report.victim_erased = True
            return report

        for _ in range(max_deletions):
            live = self._live_victim_indexes(victim)
            if not live:
                break

            def predicate(indexes: tuple[int, ...]) -> bool:
                appears_present = all(
                    self.target.counters.get(i) > 0 for i in indexes
                )
                return appears_present and any(i in live for i in indexes)

            crafted = self.engine.craft(predicate)
            report.forged_deletions.append(crafted)
            self.target.remove(crafted.item)
            if victim not in self.target:
                break

        report.victim_erased = victim not in self.target
        report.collateral_false_negatives = [
            w for w in witnesses if w not in self.target
        ]
        return report
