"""Vectorisable attack predicates for the batched crafting engine.

The scalar :class:`~repro.adversary.crafting.CraftingEngine` evaluates
an arbitrary ``tuple -> bool`` callable one candidate at a time; the
batched search path wants the same decision over a whole *block* of
candidates at once.  A :class:`BatchPredicate` supplies both forms:

* ``__call__(indexes)`` -- the scalar truth, byte-for-byte the same
  rule the attacks have always used (and the ground truth the parity
  suite checks the mask against);
* ``mask(matrix)`` -- the vectorised form over an ``(n, k)`` index
  matrix, returning one boolean per row.

Predicates that read filter state (all four attack predicates do)
snapshot it once per ``mask`` call via
:func:`~repro.adversary.state.bit_state_array` -- filter state never
changes inside one brute-force search, so a per-block snapshot is
exact.  When numpy is unavailable the snapshot returns ``None`` and
``mask`` degrades to a scalar loop, keeping the protocol total.

The four concrete predicates are exactly the paper's attack rules:

* :class:`FreshBitsPredicate` -- pollution, eq. (6): pairwise-distinct
  indexes, all on unset bits;
* :class:`AllSetPredicate` -- ghost forgery, eq. (8): every index on a
  set bit;
* :class:`LatencyPredicate` -- worst-case latency queries: the first
  k-1 indexes set, the last unset;
* :class:`TwoChoiceFreshPredicate` -- the two-choice variant: both
  candidate groups entirely fresh and each internally distinct.
"""

from __future__ import annotations

from typing import Protocol, runtime_checkable

from repro import accel
from repro.adversary.state import bit_oracle, bit_state_array

__all__ = [
    "BatchPredicate",
    "StatePredicate",
    "FreshBitsPredicate",
    "AllSetPredicate",
    "LatencyPredicate",
    "TwoChoiceFreshPredicate",
]


@runtime_checkable
class BatchPredicate(Protocol):
    """A crafting predicate with a vectorised block form.

    The engine treats any plain callable as scalar-only; objects
    matching this protocol additionally answer for a whole candidate
    block in one call.
    """

    def __call__(self, indexes: tuple[int, ...]) -> bool: ...

    def mask(self, matrix, state=None): ...


class StatePredicate:
    """Shared plumbing of the state-reading attack predicates.

    Holds the target filter, the scalar bit oracle, and the per-block
    state snapshot logic.  Sub-classes implement ``__call__`` (scalar)
    and ``_mask`` (vectorised over a snapshot); :meth:`mask` falls back
    to a scalar loop when no bulk state is readable, so the predicate
    works under the pure-Python fallback too.
    """

    def __init__(self, target) -> None:
        self.target = target
        self._is_set = bit_oracle(target)

    def _mask(self, matrix, state):  # pragma: no cover - abstract
        raise NotImplementedError

    def snapshot(self):
        """Bulk bit state for :meth:`mask`'s ``state`` argument.

        The engine calls this once per search (filter state cannot
        change mid-search) and threads the snapshot through every
        block's mask, instead of re-reading ``m`` bits per block.
        ``None`` means no bulk state is available (pure backend).
        """
        return bit_state_array(self.target)

    def mask(self, matrix, state=None):
        """One boolean per row of ``matrix`` (an ``(n, k)`` index block).

        ``state`` is an optional pre-taken :meth:`snapshot`; without it
        the snapshot is taken here.
        """
        if state is None:
            state = self.snapshot()
        if state is None:
            return [self(tuple(int(i) for i in row)) for row in matrix]
        np = accel.numpy_or_none()
        if not isinstance(matrix, np.ndarray):
            # Strategies without a vector kernel hand over a list of
            # tuples; the mask still vectorises over it.
            matrix = np.asarray(matrix, dtype=np.int64)
        return self._mask(matrix, state)


class FreshBitsPredicate(StatePredicate):
    """Pollution, eq. (6): pairwise-distinct indexes, all unset."""

    def __call__(self, indexes: tuple[int, ...]) -> bool:
        return len(set(indexes)) == len(indexes) and not any(
            self._is_set(i) for i in indexes
        )

    def _mask(self, matrix, state):
        import numpy as np

        fresh = ~state[matrix].any(axis=1)
        if matrix.shape[1] < 2:
            return fresh
        ordered = np.sort(matrix, axis=1)
        return fresh & (np.diff(ordered, axis=1) != 0).all(axis=1)


class AllSetPredicate(StatePredicate):
    """Ghost forgery, eq. (8): every index lands on a set bit."""

    def __call__(self, indexes: tuple[int, ...]) -> bool:
        return all(self._is_set(i) for i in indexes)

    def _mask(self, matrix, state):
        return state[matrix].all(axis=1)


class LatencyPredicate(StatePredicate):
    """Worst-case latency: k-1 set bits, then one unset (Section 4.2)."""

    def __call__(self, indexes: tuple[int, ...]) -> bool:
        return all(self._is_set(i) for i in indexes[:-1]) and not self._is_set(
            indexes[-1]
        )

    def _mask(self, matrix, state):
        hits = state[matrix]
        return hits[:, :-1].all(axis=1) & ~hits[:, -1]


class TwoChoiceFreshPredicate(StatePredicate):
    """Two-choice pollution: both groups fresh, each internally distinct.

    The engine presents the item's two candidate groups as one ``2k``
    index tuple (group a then group b); ``k`` is read from the target.
    """

    def __call__(self, indexes: tuple[int, ...]) -> bool:
        k = self.target.k
        group_a, group_b = indexes[:k], indexes[k:]
        if any(self._is_set(i) for i in indexes):
            return False
        return len(set(group_a)) == k and len(set(group_b)) == k

    def _mask(self, matrix, state):
        import numpy as np

        k = self.target.k
        fresh = ~state[matrix].any(axis=1)
        distinct_a = (
            np.diff(np.sort(matrix[:, :k], axis=1), axis=1) != 0
        ).all(axis=1)
        distinct_b = (
            np.diff(np.sort(matrix[:, k:], axis=1), axis=1) != 0
        ).all(axis=1)
        return fresh & distinct_a & distinct_b
