"""Adversary models and attacks on Bloom filters (paper Section 4).

* :mod:`~repro.adversary.models` -- the three capability profiles;
* :mod:`~repro.adversary.crafting` -- the brute-force item forge;
* :mod:`~repro.adversary.budget` -- the end-to-end resource model: a
  shared :class:`AttackBudget` (total trials, request rate, deadline)
  plus the Naor-Yogev-style :class:`AdaptiveQueryStrategy` feeding
  query answers back into crafting;
* :mod:`~repro.adversary.pollution` / :mod:`~repro.adversary.saturation`
  -- chosen-insertion attacks (Section 4.1);
* :mod:`~repro.adversary.query` -- false-positive ghosts and worst-case
  latency queries (Section 4.2);
* :mod:`~repro.adversary.deletion` -- counting-filter false negatives
  (Section 4.3);
* :mod:`~repro.adversary.overflow` -- the Dablooms 4-bit counter wipe
  (Section 6.2), powered by constant-time MurmurHash inversion;
* :mod:`~repro.adversary.probabilities` -- Table 1 in executable form;
* :mod:`~repro.adversary.workload` -- honest/adversarial/mixed insertion
  streams for the experiments.
"""

from repro.adversary.budget import AdaptiveQueryStrategy, AttackBudget, BudgetSpend
from repro.adversary.crafting import CraftingEngine, CraftResult, expected_trials
from repro.adversary.deletion import DeletionAttack, DeletionReport
from repro.adversary.models import (
    ALL_MODELS,
    CHOSEN_INSERTION,
    DELETION,
    QUERY_ONLY,
    AdversaryGoal,
    AdversaryModel,
)
from repro.adversary.overflow import (
    CounterOverflowAttack,
    OverflowPlan,
    OverflowReport,
    plan_overflow,
)
from repro.adversary.pollution import (
    PollutionAttack,
    PollutionReport,
    expected_pollution_trials,
    pollution_success_probability,
)
from repro.adversary.probabilities import (
    attack_ordering,
    deletion_overlap_probability,
    deletion_probability_paper,
    fp_forgery_bounds,
    second_preimage_bloom,
    second_preimage_hash,
)
from repro.adversary.query import (
    DecoyTree,
    GhostForgery,
    LatencyQueryForgery,
    false_positive_success_probability,
)
from repro.adversary.saturation import (
    SaturationAttack,
    SaturationReport,
    random_saturation_count,
)
from repro.adversary.state import bit_oracle
from repro.adversary.two_choice_attack import (
    TwoChoicePollutionAttack,
    TwoChoicePollutionReport,
)
from repro.adversary.workload import (
    InsertionTrace,
    adversarial_insertions,
    honest_insertions,
    mixed_insertions,
)

__all__ = [
    "ALL_MODELS",
    "AdaptiveQueryStrategy",
    "AdversaryGoal",
    "AdversaryModel",
    "AttackBudget",
    "BudgetSpend",
    "CHOSEN_INSERTION",
    "CounterOverflowAttack",
    "CraftingEngine",
    "CraftResult",
    "DELETION",
    "DecoyTree",
    "DeletionAttack",
    "DeletionReport",
    "GhostForgery",
    "InsertionTrace",
    "LatencyQueryForgery",
    "OverflowPlan",
    "OverflowReport",
    "PollutionAttack",
    "PollutionReport",
    "QUERY_ONLY",
    "SaturationAttack",
    "SaturationReport",
    "TwoChoicePollutionAttack",
    "TwoChoicePollutionReport",
    "adversarial_insertions",
    "attack_ordering",
    "bit_oracle",
    "deletion_overlap_probability",
    "deletion_probability_paper",
    "expected_pollution_trials",
    "expected_trials",
    "false_positive_success_probability",
    "fp_forgery_bounds",
    "honest_insertions",
    "mixed_insertions",
    "plan_overflow",
    "pollution_success_probability",
    "random_saturation_count",
    "second_preimage_bloom",
    "second_preimage_hash",
]
