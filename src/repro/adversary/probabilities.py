"""Closed-form attack success probabilities (paper Table 1).

Each function returns the per-random-trial success probability of one
attack; :func:`attack_ordering` reproduces the paper's feasibility
ranking (pollution easiest, deletion hardest, forgery in between).

One formula is reproduced *as printed* even though it is not a
probability for most parameters: the paper's deletion expression
``sum_i C(k,i) (m-i)^k / m^k`` exceeds 1 whenever k > 1.  We expose it
verbatim for fidelity (:func:`deletion_probability_paper`) alongside the
standard overlap probability (:func:`deletion_overlap_probability`);
EXPERIMENTS.md discusses the discrepancy.
"""

from __future__ import annotations

import math

from repro.adversary.pollution import pollution_success_probability
from repro.adversary.query import false_positive_success_probability
from repro.exceptions import ParameterError

__all__ = [
    "second_preimage_hash",
    "second_preimage_bloom",
    "pollution_success_probability",
    "false_positive_success_probability",
    "fp_forgery_bounds",
    "deletion_probability_paper",
    "deletion_overlap_probability",
    "attack_ordering",
]


def second_preimage_hash(digest_bits: int) -> float:
    """Second pre-image on the raw hash: ``2^-l`` (Table 1, row 1)."""
    if digest_bits <= 0:
        raise ParameterError("digest_bits must be positive")
    return 2.0 ** (-digest_bits)


def second_preimage_bloom(m: int, k: int) -> float:
    """Second pre-image on the *filter*: hit one exact index tuple out of
    ``m^k`` -- ``1/m^k`` (Table 1, row 2).  Vastly easier than the hash
    second pre-image because only ``k log2 m`` digest bits matter."""
    if m <= 0 or k <= 0:
        raise ParameterError("m and k must be positive")
    return float(m) ** (-k)


def fp_forgery_bounds(m: int, k: int) -> tuple[float, float]:
    """Bracket for false-positive forgery: ``(k/m)^k <= (W/m)^k <= (1/2)^k``
    (Table 1, row 4; lower bound after one insertion, upper at optimal
    occupancy)."""
    if m <= 0 or k <= 0:
        raise ParameterError("m and k must be positive")
    return ((k / m) ** k, 0.5**k)


def deletion_probability_paper(m: int, k: int) -> float:
    """The deletion expression exactly as printed in Table 1:
    ``sum_{i=1..k} C(k,i) (m-i)^k / m^k``.

    .. warning::
       For k > 1 this exceeds 1 (each term is close to ``C(k,i)``); it
       reads as an inclusion-exclusion sketch rather than a final
       probability.  Use :func:`deletion_overlap_probability` for a
       well-formed value; both are reported side by side in the Table 1
       experiment.
    """
    if m <= 0 or k <= 0:
        raise ParameterError("m and k must be positive")
    if k >= m:
        raise ParameterError("k must be smaller than m")
    total = sum(math.comb(k, i) * (m - i) ** k for i in range(1, k + 1))
    return total / (m**k)


def deletion_overlap_probability(m: int, k: int) -> float:
    """Probability a uniform random item shares at least one index with a
    victim whose k indexes are distinct: ``1 - ((m-k)/m)^k``."""
    if m <= 0 or k <= 0:
        raise ParameterError("m and k must be positive")
    if k >= m:
        raise ParameterError("k must be smaller than m")
    return 1.0 - ((m - k) / m) ** k


def attack_ordering(m: int, k: int, weight: int) -> list[tuple[str, float]]:
    """Attacks sorted by per-trial success probability, highest first.

    Reproduces the paper's observation: "The pollution attack has the
    highest success probability.  The most difficult attack is the
    deletion one." (for the deletion entry the well-formed overlap
    probability is used, restricted to items that also appear present,
    approximated by ``(W/m)^k`` times the overlap term).
    """
    pollution = pollution_success_probability(m, weight, k, paper_formula=False)
    forgery = false_positive_success_probability(m, weight, k)
    deletion = forgery * deletion_overlap_probability(m, k)
    ranked = [
        ("pollution", pollution),
        ("false-positive forgery", forgery),
        ("deletion", deletion),
    ]
    ranked.sort(key=lambda pair: pair[1], reverse=True)
    return ranked
