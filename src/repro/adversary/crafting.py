"""The brute-force crafting engine shared by every attack.

Paper Section 4: "In each case, we consider brute force search: an item
is selected at random and its k indexes are computed.  If the bit in the
filter at any of these indexes is already set to 1 or 0 depending on the
adversary, the item is discarded and a new one is tried."

The engine pulls candidates from any iterator (usually a
:class:`~repro.urlgen.faker.UrlFactory` stream), computes their indexes
through the *public* strategy of the target filter, and keeps the first
candidate whose index tuple satisfies the attack predicate.  Trial counts
are recorded so the cost figures (paper Figs. 5 and 6) can be rebuilt.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Iterable, Iterator

from repro.exceptions import CraftingBudgetExceeded, ParameterError
from repro.hashing.base import IndexStrategy

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.adversary.budget import AttackBudget

__all__ = ["CraftResult", "CraftingEngine", "expected_trials"]


@dataclass(frozen=True)
class CraftResult:
    """One successfully crafted item.

    Attributes
    ----------
    item:
        The crafted item (a URL in the application attacks).
    indexes:
        Its filter index tuple.
    trials:
        Candidates examined to find it (including itself).
    """

    item: str
    indexes: tuple[int, ...]
    trials: int


def expected_trials(success_probability: float) -> float:
    """Expected brute-force candidates for a per-trial success probability
    (geometric distribution mean, ``1/p``)."""
    if not 0 < success_probability <= 1:
        raise ParameterError(
            f"success probability must be in (0, 1], got {success_probability}"
        )
    return 1.0 / success_probability


class CraftingEngine:
    """Brute-force item forge against a known index strategy.

    Parameters
    ----------
    strategy:
        The target filter's (public) index derivation.
    k, m:
        The target filter's parameters.
    candidates:
        Iterable of candidate items; must be effectively infinite and
        duplicate-free (see :meth:`UrlFactory.candidate_stream`).
    max_trials:
        Hard budget per crafted item; exceeding it raises
        :class:`~repro.exceptions.CraftingBudgetExceeded` rather than
        looping forever.
    budget:
        Optional campaign-wide :class:`~repro.adversary.budget.
        AttackBudget`: every search asks it for an allowance first (so
        the engine can never overspend the shared purse) and reports the
        trials actually examined, under ``label``.  A drained purse
        raises :class:`~repro.exceptions.AttackBudgetExhausted` before
        the search starts.
    """

    def __init__(
        self,
        strategy: IndexStrategy,
        k: int,
        m: int,
        candidates: Iterable[str],
        max_trials: int = 5_000_000,
        budget: "AttackBudget | None" = None,
        label: str = "craft",
    ) -> None:
        if k <= 0 or m <= 0:
            raise ParameterError("k and m must be positive")
        if max_trials <= 0:
            raise ParameterError("max_trials must be positive")
        self.strategy = strategy
        self.k = k
        self.m = m
        self.max_trials = max_trials
        self.budget = budget
        self.label = label
        self._candidates: Iterator[str] = iter(candidates)
        #: Total candidates examined over the engine's lifetime.
        self.total_trials = 0

    def _spend(self, trials: int) -> None:
        self.total_trials += trials
        if self.budget is not None:
            self.budget.charge_trials(trials, self.label)

    def craft(self, predicate: Callable[[tuple[int, ...]], bool]) -> CraftResult:
        """Return the first candidate whose indexes satisfy ``predicate``."""
        cap = self.max_trials
        if self.budget is not None:
            cap = self.budget.clamp_trials(cap, self.label)
        for trial in range(1, cap + 1):
            try:
                item = next(self._candidates)
            except StopIteration as exc:  # pragma: no cover - defensive
                self._spend(trial - 1)
                raise CraftingBudgetExceeded(
                    "candidate stream exhausted", trials=trial - 1
                ) from exc
            indexes = self.strategy.indexes(item, self.k, self.m)
            if predicate(indexes):
                self._spend(trial)
                return CraftResult(item=item, indexes=indexes, trials=trial)
        self._spend(cap)
        if cap < self.max_trials and self.budget is not None:
            # The search was cut short by the shared purse, and the purse
            # is now empty: this is campaign exhaustion, not a per-item
            # failure the caller should shrug off and retry.
            from repro.exceptions import AttackBudgetExhausted

            raise AttackBudgetExhausted(
                f"trial budget drained mid-search ({self.label!r}, "
                f"last {cap} trials spent without success)",
                trials=cap,
            )
        raise CraftingBudgetExceeded(
            f"no satisfying item within {cap} trials", trials=cap
        )

    def craft_many(
        self,
        predicate_factory: Callable[[], Callable[[tuple[int, ...]], bool]],
        count: int,
    ) -> list[CraftResult]:
        """Craft ``count`` items, re-evaluating the predicate each time.

        ``predicate_factory`` is called before each search so predicates
        can close over mutating filter state (pollution needs this: every
        accepted item changes which bits are "fresh").
        """
        if count < 0:
            raise ParameterError("count must be non-negative")
        return [self.craft(predicate_factory()) for _ in range(count)]
