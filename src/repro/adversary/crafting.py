"""The brute-force crafting engine shared by every attack.

Paper Section 4: "In each case, we consider brute force search: an item
is selected at random and its k indexes are computed.  If the bit in the
filter at any of these indexes is already set to 1 or 0 depending on the
adversary, the item is discarded and a new one is tried."

The engine pulls candidates from any iterator (usually a
:class:`~repro.urlgen.faker.UrlFactory` stream), computes their indexes
through the *public* strategy of the target filter, and keeps the first
candidate whose index tuple satisfies the attack predicate.  Trial counts
are recorded so the cost figures (paper Figs. 5 and 6) can be rebuilt.

Two search paths share byte-for-byte identical semantics:

* the **scalar** path examines one candidate at a time, exactly as the
  paper describes;
* the **batched** path pulls blocks of candidates, derives the whole
  block's index matrix through the strategy's ``flat_batch_indexes``
  (vectorised for the Kirsch-Mitzenmacher/murmur128 hot path) and
  evaluates a :class:`~repro.adversary.predicates.BatchPredicate` mask
  over the block.

Exactness is non-negotiable: the batched path returns the *first*
satisfying candidate of the stream, charges the shared
:class:`~repro.adversary.budget.AttackBudget` the same trial counts at
the same points, and raises the same exceptions with the same ``trials``
attributes.  Candidates pulled past a winner keep their (state-
independent) index tuples and are *carried* into the engine's next
search, so the candidate stream position matches the scalar engine
item-for-item across a whole campaign.  ``craft()`` auto-dispatches:
mask-capable predicates take the batched path when the strategy brings
a batch kernel and the accel backend is on (``REPRO_PURE_PYTHON=1``
falls back to the scalar loop, and strategies without a kernel -- e.g.
the two-choice pair derivation -- stay scalar because a block's k
scalar hashes per over-pulled candidate would cost more than the mask
saves).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from itertools import islice
from typing import TYPE_CHECKING, Callable, Iterable, Iterator

from repro import accel
from repro.exceptions import CraftingBudgetExceeded, ParameterError
from repro.hashing.base import IndexStrategy

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.adversary.budget import AttackBudget

__all__ = ["CraftResult", "CraftingEngine", "expected_trials", "CRAFT_BLOCK_SIZE"]

#: First-block size of a batched search -- big enough to amortise the
#: vectorised hashing setup, small enough that cheap searches don't
#: over-pull the candidate stream.  The asymmetry drives the choice:
#: a hard search recoups a small start within a few doublings of the
#: ramp, but a search that wins in single-digit trials never gets its
#: over-pull back once the engine is dropped (the traffic driver
#: re-binds a fresh attack to the live filter every chunk), and pulling
#: through a shard-routed stream costs ~``shards`` generated candidates
#: per accepted one.
CRAFT_BLOCK_SIZE = 64

#: Ceiling of the per-search block ramp: each further block of one
#: search doubles in size up to this, so expensive searches spend their
#: time in large, well-amortised kernel calls while staying exact (the
#: post-winner tail is carried either way).
CRAFT_BLOCK_MAX = 8192


@dataclass(frozen=True)
class CraftResult:
    """One successfully crafted item.

    Attributes
    ----------
    item:
        The crafted item (a URL in the application attacks).
    indexes:
        Its filter index tuple.
    trials:
        Candidates examined to find it (including itself).
    """

    item: str
    indexes: tuple[int, ...]
    trials: int


def expected_trials(success_probability: float) -> float:
    """Expected brute-force candidates for a per-trial success probability
    (geometric distribution mean, ``1/p``)."""
    if not 0 < success_probability <= 1:
        raise ParameterError(
            f"success probability must be in (0, 1], got {success_probability}"
        )
    return 1.0 / success_probability


def _row_tuple(matrix, j: int) -> tuple[int, ...]:
    """Row ``j`` of a block index matrix as a plain int tuple."""
    row = matrix[j]
    if isinstance(row, tuple):
        return row
    return tuple(int(v) for v in row)


def _first_true(mask) -> int | None:
    """Index of the first truthy entry of a mask (ndarray or sequence)."""
    np = accel.numpy_or_none()
    if np is not None and isinstance(mask, np.ndarray):
        return int(mask.argmax()) if mask.any() else None
    for j, value in enumerate(mask):
        if value:
            return j
    return None


class CraftingEngine:
    """Brute-force item forge against a known index strategy.

    Parameters
    ----------
    strategy:
        The target filter's (public) index derivation.
    k, m:
        The target filter's parameters.
    candidates:
        Iterable of candidate items; must be effectively infinite and
        duplicate-free (see :meth:`UrlFactory.candidate_stream`).
    max_trials:
        Hard budget per crafted item; exceeding it raises
        :class:`~repro.exceptions.CraftingBudgetExceeded` rather than
        looping forever.
    budget:
        Optional campaign-wide :class:`~repro.adversary.budget.
        AttackBudget`: every search asks it for an allowance first (so
        the engine can never overspend the shared purse) and reports the
        trials actually examined, under ``label``.  A drained purse
        raises :class:`~repro.exceptions.AttackBudgetExhausted` before
        the search starts.
    candidate_batch:
        Optional bulk puller ``n -> list[str]`` for the batched path
        (usually :meth:`UrlFactory.candidate_batch`); it must draw from
        the *same* underlying source as ``candidates`` so scalar and
        batched pulls interleave into one sequential stream.  Without
        it, blocks are sliced off the ``candidates`` iterator.
    block_size:
        Candidates per batched block.
    """

    def __init__(
        self,
        strategy: IndexStrategy,
        k: int,
        m: int,
        candidates: Iterable[str],
        max_trials: int = 5_000_000,
        budget: "AttackBudget | None" = None,
        label: str = "craft",
        candidate_batch: Callable[[int], list[str]] | None = None,
        block_size: int = CRAFT_BLOCK_SIZE,
    ) -> None:
        if k <= 0 or m <= 0:
            raise ParameterError("k and m must be positive")
        if max_trials <= 0:
            raise ParameterError("max_trials must be positive")
        if block_size <= 0:
            raise ParameterError("block_size must be positive")
        self.strategy = strategy
        self.k = k
        self.m = m
        self.max_trials = max_trials
        self.budget = budget
        self.label = label
        self.block_size = block_size
        self._candidates: Iterator[str] = iter(candidates)
        self._candidate_batch = candidate_batch
        #: Whether the strategy brings its own batch kernel (overrides
        #: the base scalar flatten).  Without one, block hashing costs
        #: exactly k scalar derivations per pulled candidate, and a
        #: block's over-pull past a cheap win makes the batched path a
        #: net loss -- so ``craft()`` keeps such strategies scalar.
        #: Duck-typed strategies outside the IndexStrategy hierarchy
        #: have no flattened batch form at all, so they stay scalar too.
        self._batch_kernel = (
            getattr(type(strategy), "flat_batch_indexes", None)
            not in (None, IndexStrategy.flat_batch_indexes)
        )
        #: Candidates a previous batched search pulled but never
        #: examined (the post-winner tail of its last block), kept as
        #: block segments ``[items, matrix, start]`` so the index rows
        #: stay in their (state-independent) block matrix with no
        #: per-row conversion.  Predicates are re-evaluated against
        #: current filter state when the next search consumes them.
        self._carry: deque[list] = deque()
        #: Total candidates examined over the engine's lifetime.
        self.total_trials = 0

    @property
    def carried(self) -> int:
        """Candidates pulled but not yet examined (batched-path tail)."""
        return sum(len(items) - start for items, _, start in self._carry)

    def _spend(self, trials: int) -> None:
        self.total_trials += trials
        if self.budget is not None:
            self.budget.charge_trials(trials, self.label)

    # -- search paths ---------------------------------------------------

    def craft(self, predicate: Callable[[tuple[int, ...]], bool]) -> CraftResult:
        """Return the first candidate whose indexes satisfy ``predicate``.

        Dispatches to the batched path when the predicate is
        mask-capable, the strategy has a batch kernel, and the accel
        backend is on; the scalar loop otherwise.  Both paths produce
        identical results, trial counts and budget charges.
        """
        if (
            self._batch_kernel
            and callable(getattr(predicate, "mask", None))
            and accel.accelerated(self.block_size)
        ):
            return self.craft_batched(predicate)
        return self.craft_scalar(predicate)

    def craft_scalar(
        self, predicate: Callable[[tuple[int, ...]], bool]
    ) -> CraftResult:
        """The paper's one-candidate-at-a-time search."""
        cap = self.max_trials
        if self.budget is not None:
            cap = self.budget.clamp_trials(cap, self.label)
        for trial in range(1, cap + 1):
            if self._carry:
                seg = self._carry[0]
                items, matrix, start = seg
                item = items[start]
                indexes = _row_tuple(matrix, start)
                seg[2] = start + 1
                if seg[2] >= len(items):
                    self._carry.popleft()
            else:
                try:
                    item = next(self._candidates)
                except StopIteration as exc:  # pragma: no cover - defensive
                    self._spend(trial - 1)
                    raise CraftingBudgetExceeded(
                        "candidate stream exhausted", trials=trial - 1
                    ) from exc
                indexes = self.strategy.indexes(item, self.k, self.m)
            if predicate(indexes):
                self._spend(trial)
                return CraftResult(item=item, indexes=indexes, trials=trial)
        return self._raise_exhausted(cap)

    def craft_batched(
        self, predicate: Callable[[tuple[int, ...]], bool]
    ) -> CraftResult:
        """Block-at-a-time search with scalar-identical accounting.

        Works under the pure backend too (block hashing and the mask
        both degrade to loops), so parity can be proven in both modes.
        """
        cap = self.max_trials
        if self.budget is not None:
            cap = self.budget.clamp_trials(cap, self.label)
        mask_fn = getattr(predicate, "mask", None)
        # Filter state cannot change mid-search, so predicates exposing
        # snapshot() have their bulk state read once here and threaded
        # through every block's mask.
        snapshot_fn = getattr(predicate, "snapshot", None)
        state = snapshot_fn() if callable(snapshot_fn) else None
        examined = 0
        # Carried candidates first: the stream already moved past them,
        # and their index rows are cached in their block matrix -- only
        # the (state-dependent) predicate is re-evaluated, as one
        # mask call per pending segment.
        while self._carry and examined < cap:
            seg = self._carry[0]
            items, matrix, start = seg
            take = min(len(items) - start, cap - examined)
            sub = matrix[start : start + take]
            mask = self._eval_mask(mask_fn, predicate, sub, state)
            hit = _first_true(mask)
            if hit is not None:
                row = start + hit
                trials = examined + hit + 1
                seg[2] = row + 1
                if seg[2] >= len(items):
                    self._carry.popleft()
                self._spend(trials)
                return CraftResult(
                    item=items[row],
                    indexes=_row_tuple(matrix, row),
                    trials=trials,
                )
            examined += take
            seg[2] = start + take
            if seg[2] >= len(items):
                self._carry.popleft()
        block = self.block_size
        while examined < cap:
            # Never pull past the allowance: every pulled candidate in a
            # non-winning block is examined and charged, exactly like
            # the scalar loop.
            items = self._pull_block(min(block, cap - examined))
            block = min(block * 2, CRAFT_BLOCK_MAX)
            if not items:
                self._spend(examined)
                raise CraftingBudgetExceeded(
                    "candidate stream exhausted", trials=examined
                )
            matrix = self._block_matrix(items)
            mask = self._eval_mask(mask_fn, predicate, matrix, state)
            hit = _first_true(mask)
            if hit is not None:
                trials = examined + hit + 1
                if hit + 1 < len(items):
                    self._carry.append([items, matrix, hit + 1])
                self._spend(trials)
                return CraftResult(
                    item=items[hit],
                    indexes=_row_tuple(matrix, hit),
                    trials=trials,
                )
            examined += len(items)
        return self._raise_exhausted(cap)

    # -- shared plumbing ------------------------------------------------

    @staticmethod
    def _eval_mask(mask_fn, predicate, matrix, state):
        """The block's boolean mask, via the vector form when available.

        ``state`` is only passed to mask-capable predicates that also
        expose ``snapshot()`` (the :class:`~repro.adversary.predicates.
        StatePredicate` family contract); bare-mask predicates keep the
        single-argument call.
        """
        if callable(mask_fn):
            if state is not None:
                return mask_fn(matrix, state)
            return mask_fn(matrix)
        return [predicate(_row_tuple(matrix, j)) for j in range(len(matrix))]

    def _pull_block(self, n: int) -> list[str]:
        if self._candidate_batch is not None:
            return self._candidate_batch(n)
        return list(islice(self._candidates, n))

    def _block_matrix(self, items: list[str]):
        """The block's index matrix: an ``(n, k)`` ndarray on the accel
        path, a list of int tuples on the pure path."""
        flat = self.strategy.flat_batch_indexes(items, self.k, self.m)
        np = accel.numpy_or_none()
        if np is not None and isinstance(flat, np.ndarray):
            return flat.reshape(len(items), self.k)
        k = self.k
        return [tuple(flat[i * k : (i + 1) * k]) for i in range(len(items))]

    def _raise_exhausted(self, cap: int) -> CraftResult:
        self._spend(cap)
        if cap < self.max_trials and self.budget is not None:
            # The search was cut short by the shared purse, and the purse
            # is now empty: this is campaign exhaustion, not a per-item
            # failure the caller should shrug off and retry.
            from repro.exceptions import AttackBudgetExhausted

            raise AttackBudgetExhausted(
                f"trial budget drained mid-search ({self.label!r}, "
                f"last {cap} trials spent without success)",
                trials=cap,
            )
        raise CraftingBudgetExceeded(
            f"no satisfying item within {cap} trials", trials=cap
        )

    def craft_many(
        self,
        predicate_factory: Callable[[], Callable[[tuple[int, ...]], bool]],
        count: int,
    ) -> list[CraftResult]:
        """Craft ``count`` items, re-evaluating the predicate each time.

        ``predicate_factory`` is called before each search so predicates
        can close over mutating filter state (pollution needs this: every
        accepted item changes which bits are "fresh").
        """
        if count < 0:
            raise ParameterError("count must be non-negative")
        return [self.craft(predicate_factory()) for _ in range(count)]
