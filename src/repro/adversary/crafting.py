"""The brute-force crafting engine shared by every attack.

Paper Section 4: "In each case, we consider brute force search: an item
is selected at random and its k indexes are computed.  If the bit in the
filter at any of these indexes is already set to 1 or 0 depending on the
adversary, the item is discarded and a new one is tried."

The engine pulls candidates from any iterator (usually a
:class:`~repro.urlgen.faker.UrlFactory` stream), computes their indexes
through the *public* strategy of the target filter, and keeps the first
candidate whose index tuple satisfies the attack predicate.  Trial counts
are recorded so the cost figures (paper Figs. 5 and 6) can be rebuilt.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterable, Iterator

from repro.exceptions import CraftingBudgetExceeded, ParameterError
from repro.hashing.base import IndexStrategy

__all__ = ["CraftResult", "CraftingEngine", "expected_trials"]


@dataclass(frozen=True)
class CraftResult:
    """One successfully crafted item.

    Attributes
    ----------
    item:
        The crafted item (a URL in the application attacks).
    indexes:
        Its filter index tuple.
    trials:
        Candidates examined to find it (including itself).
    """

    item: str
    indexes: tuple[int, ...]
    trials: int


def expected_trials(success_probability: float) -> float:
    """Expected brute-force candidates for a per-trial success probability
    (geometric distribution mean, ``1/p``)."""
    if not 0 < success_probability <= 1:
        raise ParameterError(
            f"success probability must be in (0, 1], got {success_probability}"
        )
    return 1.0 / success_probability


class CraftingEngine:
    """Brute-force item forge against a known index strategy.

    Parameters
    ----------
    strategy:
        The target filter's (public) index derivation.
    k, m:
        The target filter's parameters.
    candidates:
        Iterable of candidate items; must be effectively infinite and
        duplicate-free (see :meth:`UrlFactory.candidate_stream`).
    max_trials:
        Hard budget per crafted item; exceeding it raises
        :class:`~repro.exceptions.CraftingBudgetExceeded` rather than
        looping forever.
    """

    def __init__(
        self,
        strategy: IndexStrategy,
        k: int,
        m: int,
        candidates: Iterable[str],
        max_trials: int = 5_000_000,
    ) -> None:
        if k <= 0 or m <= 0:
            raise ParameterError("k and m must be positive")
        if max_trials <= 0:
            raise ParameterError("max_trials must be positive")
        self.strategy = strategy
        self.k = k
        self.m = m
        self.max_trials = max_trials
        self._candidates: Iterator[str] = iter(candidates)
        #: Total candidates examined over the engine's lifetime.
        self.total_trials = 0

    def craft(self, predicate: Callable[[tuple[int, ...]], bool]) -> CraftResult:
        """Return the first candidate whose indexes satisfy ``predicate``."""
        for trial in range(1, self.max_trials + 1):
            try:
                item = next(self._candidates)
            except StopIteration as exc:  # pragma: no cover - defensive
                raise CraftingBudgetExceeded(
                    "candidate stream exhausted", trials=trial - 1
                ) from exc
            indexes = self.strategy.indexes(item, self.k, self.m)
            if predicate(indexes):
                self.total_trials += trial
                return CraftResult(item=item, indexes=indexes, trials=trial)
        self.total_trials += self.max_trials
        raise CraftingBudgetExceeded(
            f"no satisfying item within {self.max_trials} trials", trials=self.max_trials
        )

    def craft_many(
        self,
        predicate_factory: Callable[[], Callable[[tuple[int, ...]], bool]],
        count: int,
    ) -> list[CraftResult]:
        """Craft ``count`` items, re-evaluating the predicate each time.

        ``predicate_factory`` is called before each search so predicates
        can close over mutating filter state (pollution needs this: every
        accepted item changes which bits are "fresh").
        """
        if count < 0:
            raise ParameterError("count must be non-negative")
        return [self.craft(predicate_factory()) for _ in range(count)]
