"""The chosen-insertion pollution attack (paper Section 4.1).

Each crafted item satisfies eq. (6): all k of its indexes fall on
*currently unset* bits (and are pairwise distinct), so every insertion
adds exactly k ones.  After n insertions the filter holds ``nk`` set bits
instead of the expected ``m(1 - e^{-kn/m})`` -- a 38 % inflation at the
classical optimum -- and the false-positive probability climbs to
``(nk/m)^k`` (eq. 7), the curve of Fig. 3.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Iterable

from repro.adversary.crafting import CraftingEngine, CraftResult
from repro.adversary.predicates import FreshBitsPredicate
from repro.adversary.state import TargetFilter, bit_oracle
from repro.core.analysis import birthday_threshold
from repro.exceptions import ParameterError
from repro.urlgen.faker import UrlFactory

__all__ = [
    "PollutionReport",
    "PollutionAttack",
    "pollution_success_probability",
    "expected_pollution_trials",
]


def pollution_success_probability(
    m: int, weight: int, k: int, paper_formula: bool = True
) -> float:
    """Probability a uniform random item is a valid polluting item.

    The paper (Table 1) gives ``C(m - W, k) / m^k``.  The exact count of
    favourable *ordered* index tuples is the falling factorial
    ``(m-W)(m-W-1)...(m-W-k+1)``, i.e. ``C(m-W, k) * k!``; pass
    ``paper_formula=False`` for that version.  Both vanish once fewer
    than k bits remain unset.
    """
    if m <= 0 or k <= 0:
        raise ParameterError("m and k must be positive")
    if not 0 <= weight <= m:
        raise ParameterError(f"weight must be in [0, {m}]")
    free = m - weight
    if free < k:
        return 0.0
    ways = math.comb(free, k)
    if not paper_formula:
        ways *= math.factorial(k)
    return ways / (m**k)


def expected_pollution_trials(m: int, weight: int, k: int) -> float:
    """Expected brute-force candidates per polluting item (exact model)."""
    p = pollution_success_probability(m, weight, k, paper_formula=False)
    if p == 0.0:
        return math.inf
    return 1.0 / p


@dataclass
class PollutionReport:
    """Outcome of a pollution run.

    ``fpp_curve[i]`` is the filter's weight-implied FP probability after
    the i-th crafted insertion -- the raw series behind Fig. 3.
    """

    crafted: list[CraftResult] = field(default_factory=list)
    weight_before: int = 0
    weight_after: int = 0
    fpp_curve: list[float] = field(default_factory=list)

    @property
    def total_trials(self) -> int:
        """Brute-force candidates examined across all crafted items."""
        return sum(r.trials for r in self.crafted)

    @property
    def items(self) -> list[str]:
        """The crafted items in insertion order."""
        return [r.item for r in self.crafted]


class PollutionAttack:
    """Drive a chosen-insertion pollution campaign against a filter.

    Parameters
    ----------
    target:
        Any filter understood by :func:`~repro.adversary.state.bit_oracle`.
    candidates:
        Candidate item stream; defaults to seeded fake URLs.
    max_trials:
        Per-item brute-force budget.
    budget:
        Optional campaign-wide :class:`~repro.adversary.budget.
        AttackBudget` every trial is charged against (under ``label``).
    candidate_batch:
        Optional bulk puller for the batched engine path; wired to the
        internal factory's when ``candidates`` is omitted.
    """

    def __init__(
        self,
        target: TargetFilter,
        candidates: Iterable[str] | None = None,
        max_trials: int = 5_000_000,
        seed: int = 0x5EED,
        budget=None,
        label: str = "pollution",
        candidate_batch=None,
    ) -> None:
        self.target = target
        self._is_set = bit_oracle(target)
        if candidates is None:
            factory = UrlFactory(seed=seed)
            candidates = factory.candidate_stream()
            candidate_batch = factory.candidate_batch
        #: Mask-capable predicate; the engine auto-dispatches to the
        #: batched search path whenever the accel backend is on.
        self.predicate = FreshBitsPredicate(target)
        self.engine = CraftingEngine(
            target.strategy,
            target.k,
            target.m,
            candidates,
            max_trials,
            budget=budget,
            label=label,
            candidate_batch=candidate_batch,
        )

    def _predicate(self, indexes: tuple[int, ...]) -> bool:
        """Eq. (6): pairwise-distinct indexes, all on unset bits."""
        return self.predicate(indexes)

    def craft_one(self) -> CraftResult:
        """Craft (but do not insert) one polluting item for the current state."""
        return self.engine.craft(self.predicate)

    def run(self, count: int, insert: bool = True) -> PollutionReport:
        """Craft ``count`` polluting items, inserting each by default.

        With ``insert=False`` the items are only returned (an attacker
        preparing a page of links crafts first, plants later) -- note the
        predicate then keeps judging against the unchanged filter state,
        so consecutive items may collide with each other.
        """
        report = PollutionReport(weight_before=self.target.hamming_weight)
        for _ in range(count):
            result = self.craft_one()
            report.crafted.append(result)
            if insert:
                self.target.add(result.item)
            report.fpp_curve.append(self.target.current_fpp())
        report.weight_after = self.target.hamming_weight
        return report

    def free_insertions(self) -> int:
        """Insertions below the birthday threshold need no crafting at
        all: ``ceil(sqrt(m)/k)`` (paper Section 4.1)."""
        return birthday_threshold(self.target.m, self.target.k)
