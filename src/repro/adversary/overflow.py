"""The counter-overflow attack on Dablooms (paper Section 6.2).

Dablooms derives all k indexes of an item from *one* MurmurHash3 x64_128
call via Kirsch-Mitzenmacher (``index_i = h1 + i*h2 mod m``).  Because
MurmurHash is invertible in constant time, the adversary picks the pair
``(h1, h2) = (c + j*m, 0)`` and forges a key whose k indexes all equal
counter ``c`` -- one insertion adds k to a single 4-bit counter.

Following the paper: write ``nk = a + 16 b``.  The adversary schedules
her n insertions so that every targeted counter receives a multiple of
16 increments (wrapping back to zero) except one, which ends at ``a``.
The slice's insertion counter says "full"; its content says "empty":
none of the n inserted keys is found again, and the memory is wasted.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from math import gcd

from repro.core.counters import OverflowPolicy
from repro.core.counting import CountingBloomFilter
from repro.exceptions import ParameterError
from repro.hashing.inversion import invert_murmur3_x64_128
from repro.hashing.kirsch_mitzenmacher import KirschMitzenmacherStrategy

__all__ = ["OverflowPlan", "OverflowReport", "CounterOverflowAttack", "plan_overflow"]


@dataclass(frozen=True)
class OverflowPlan:
    """Assignment of insertions to target counters.

    ``assignments`` maps a counter position to the number of forged items
    aimed at it; ``residue_counter`` is the one counter left at
    ``residue_value = n*k mod 2**counter_bits`` (0 means a perfectly
    clean wipe).
    """

    assignments: dict[int, int]
    residue_counter: int
    residue_value: int

    @property
    def total_items(self) -> int:
        """Total forged insertions scheduled."""
        return sum(self.assignments.values())


def plan_overflow(n: int, k: int, counter_bits: int = 4, m: int | None = None) -> OverflowPlan:
    """Schedule ``n`` single-counter items so all counters wrap to zero.

    Each forged item adds k to one counter mod ``2**counter_bits``.  A
    counter returns to zero after ``t0 = M/gcd(k, M)`` items (M = 16 for
    4-bit counters).  The plan spends full groups of ``t0`` on distinct
    counters and parks the remainder on one residue counter, which ends
    at ``a = n*k mod M`` exactly as in the paper.
    """
    if n <= 0 or k <= 0:
        raise ParameterError("n and k must be positive")
    if counter_bits < 1:
        raise ParameterError("counter_bits must be >= 1")
    modulus = 1 << counter_bits
    t0 = modulus // gcd(k, modulus)
    full_groups, remainder = divmod(n, t0)
    if m is not None and full_groups + 1 > m:
        raise ParameterError(
            f"plan needs {full_groups + 1} distinct counters but filter has {m}"
        )
    assignments: dict[int, int] = {c: t0 for c in range(full_groups)}
    residue_counter = full_groups
    if remainder:
        assignments[residue_counter] = remainder
    return OverflowPlan(
        assignments=assignments,
        residue_counter=residue_counter,
        residue_value=(n * k) % modulus,
    )


@dataclass
class OverflowReport:
    """Outcome of an overflow campaign against one counting slice."""

    items_inserted: int = 0
    forged_keys: list[bytes] = field(default_factory=list)
    nonzero_counters_after: int = 0
    overflow_events: int = 0
    lost_keys: int = 0

    @property
    def wiped(self) -> bool:
        """True when at most the residue counter survived."""
        return self.nonzero_counters_after <= 1


class CounterOverflowAttack:
    """Forge single-counter keys and wipe a counting slice in place.

    Parameters
    ----------
    target:
        A counting filter whose strategy is Kirsch-Mitzenmacher over
        MurmurHash3 x64_128 (as in Dablooms) and whose counters WRAP.
    prefix:
        Plausible key stem; must be a multiple of 16 bytes so the
        steering block lands on a MurmurHash block boundary.
    seed:
        The (public) MurmurHash seed of the deployment.
    """

    def __init__(
        self,
        target: CountingBloomFilter,
        prefix: bytes = b"http://evil.tld/",
        seed: int = 0,
    ) -> None:
        if not isinstance(target, CountingBloomFilter):
            raise ParameterError("overflow attacks require a CountingBloomFilter")
        if not isinstance(target.strategy, KirschMitzenmacherStrategy):
            raise ParameterError(
                "overflow forgery needs the Kirsch-Mitzenmacher/Murmur strategy "
                "(the one Dablooms uses)"
            )
        if target.overflow is not OverflowPolicy.WRAP:
            raise ParameterError(
                "the attack exploits wrapping counters; this filter uses "
                f"{target.overflow.value}"
            )
        if len(prefix) % 16:
            raise ParameterError("prefix length must be a multiple of 16 bytes")
        self.target = target
        self.prefix = prefix
        self.seed = seed

    def forge_key(self, counter: int, variant: int) -> bytes:
        """A key whose k indexes all equal ``counter``.

        ``variant`` selects among the infinitely many pre-images
        (``h1 = counter + variant*m``), keeping forged keys distinct.
        """
        if not 0 <= counter < self.target.m:
            raise ParameterError(f"counter {counter} out of range [0, {self.target.m})")
        h1 = counter + variant * self.target.m
        if h1 >= 1 << 64:
            raise ParameterError("variant too large for a 64-bit h1")
        return invert_murmur3_x64_128(h1, 0, seed=self.seed, prefix=self.prefix)

    def run(self, n: int) -> OverflowReport:
        """Insert ``n`` forged keys per :func:`plan_overflow` and report.

        After the run the slice has accepted ``n`` insertions (so a
        scaling wrapper believes it is filling up) while containing at
        most one non-zero counter.
        """
        plan = plan_overflow(
            n, self.target.k, self.target.counters.counter_bits, self.target.m
        )
        report = OverflowReport()
        overflow_before = self.target.counters.overflow_events
        for counter, item_count in plan.assignments.items():
            for variant in range(item_count):
                key = self.forge_key(counter, variant)
                self.target.add(key)
                report.forged_keys.append(key)
                report.items_inserted += 1
        report.nonzero_counters_after = self.target.counters.nonzero_count()
        report.overflow_events = (
            self.target.counters.overflow_events - overflow_before
        )
        report.lost_keys = sum(
            1 for key in report.forged_keys if key not in self.target
        )
        return report
