"""Chosen-insertion attack on the two-choice Bloom filter.

Answers the paper's closing question (do variants have a better
worst-case FP?) for the construction its title riffs on: the adversary
crafts items whose *two* candidate groups are both entirely fresh, so
the defender's choose-the-lighter-group heuristic is moot -- every
insertion still adds k ones, and the query-side OR then makes the
forced false-positive probability ``1-(1-(nk/m)^k)^2``, strictly worse
than the classic filter's ``(nk/m)^k`` at the same weight.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

from repro.adversary.crafting import CraftingEngine, CraftResult
from repro.adversary.predicates import TwoChoiceFreshPredicate
from repro.core.two_choice import TwoChoiceBloomFilter
from repro.hashing.base import IndexStrategy
from repro.urlgen.faker import UrlFactory

__all__ = ["TwoChoicePollutionReport", "TwoChoicePollutionAttack"]


@dataclass
class TwoChoicePollutionReport:
    """Outcome of a two-choice pollution campaign."""

    crafted: list[CraftResult] = field(default_factory=list)
    weight_after: int = 0
    fpp_curve: list[float] = field(default_factory=list)

    @property
    def total_trials(self) -> int:
        """Brute-force candidates examined."""
        return sum(r.trials for r in self.crafted)

    @property
    def items(self) -> list[str]:
        """Crafted items in insertion order."""
        return [r.item for r in self.crafted]


class _PairStrategy(IndexStrategy):
    """Adapter presenting both groups as one 2k-index tuple to the engine.

    Subclassing :class:`IndexStrategy` buys the flattened batch form an
    explicit batched search pulls blocks through.  There is no vector
    kernel (the pair derivation hashes scalar), so ``craft()``'s
    auto-dispatch keeps this attack on the scalar path; the predicate
    mask still vectorises when ``craft_batched`` is called directly.
    """

    name = "two-choice-pair"

    def __init__(self, target: TwoChoiceBloomFilter) -> None:
        self._target = target

    def indexes(self, item: str | bytes, k: int, m: int) -> tuple[int, ...]:
        group_a, group_b = self._target.groups(item)
        return group_a + group_b


class TwoChoicePollutionAttack:
    """Craft items with both groups fresh and pairwise distinct."""

    def __init__(
        self,
        target: TwoChoiceBloomFilter,
        candidates: Iterable[str] | None = None,
        max_trials: int = 5_000_000,
        seed: int = 0x2C01,
        candidate_batch=None,
    ) -> None:
        self.target = target
        if candidates is None:
            factory = UrlFactory(seed=seed)
            candidates = factory.candidate_stream()
            candidate_batch = factory.candidate_batch
        # Both halves fresh; the chosen group (either) must also be
        # internally distinct so it adds exactly k ones.
        self.predicate = TwoChoiceFreshPredicate(target)
        self.engine = CraftingEngine(
            _PairStrategy(target),
            2 * target.k,
            target.m,
            candidates,
            max_trials,
            candidate_batch=candidate_batch,
        )

    def _predicate(self, indexes: tuple[int, ...]) -> bool:
        return self.predicate(indexes)

    def craft_one(self) -> CraftResult:
        """One item that defeats the two-choice heuristic."""
        return self.engine.craft(self.predicate)

    def run(self, count: int) -> TwoChoicePollutionReport:
        """Craft and insert ``count`` items; every insertion adds k ones."""
        report = TwoChoicePollutionReport()
        for _ in range(count):
            result = self.craft_one()
            report.crafted.append(result)
            self.target.add(result.item)
            report.fpp_curve.append(self.target.current_fpp())
        report.weight_after = self.target.hamming_weight
        return report
