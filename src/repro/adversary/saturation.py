"""The saturation attack (paper Section 4.1, final paragraph).

Randomly-inserted items need ``~ m log m / k`` insertions to set every
bit (coupon collector with k draws per item); a chosen-insertion
adversary needs only ``floor(m/k)`` items that tile the remaining zeros,
a ``log m`` speed-up.  Once saturated, *every* query answers "present".
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.adversary.state import TargetFilter, bit_oracle
from repro.core.analysis import adversarial_saturation_items, coupon_collector_items
from repro.exceptions import ParameterError

__all__ = ["SaturationReport", "SaturationAttack", "random_saturation_count"]


@dataclass(frozen=True)
class SaturationReport:
    """Outcome of a saturation campaign."""

    insertions: int
    final_weight: int
    m: int
    saturated: bool

    @property
    def fill_ratio(self) -> float:
        """Fraction of bits set at the end."""
        return self.final_weight / self.m


def random_saturation_count(m: int, k: int, rng: random.Random | None = None) -> int:
    """Simulate how many *uniform random* insertions saturate an m-bit
    filter with k indexes each (empirical coupon-collector draw)."""
    if m <= 0 or k <= 0:
        raise ParameterError("m and k must be positive")
    rng = rng or random.Random(0)
    unset = m
    seen = bytearray(m)
    insertions = 0
    while unset:
        insertions += 1
        for _ in range(k):
            i = rng.randrange(m)
            if not seen[i]:
                seen[i] = 1
                unset -= 1
    return insertions


class SaturationAttack:
    """Tile the remaining zeros of a filter with crafted index sets.

    Unlike :class:`~repro.adversary.pollution.PollutionAttack`, which
    brute-forces *items*, saturation is demonstrated at the index level:
    the adversary enumerates the zero positions and, for each batch of k
    of them, crafts an item hitting exactly that batch (feasible by brute
    force, or in constant time when the filter hashes with invertible
    MurmurHash -- see :mod:`repro.hashing.inversion`).  ``run`` uses the
    filter's index-level insertion hook to keep the demonstration fast;
    the per-item forgery cost is exactly the pollution cost already
    measured in Fig. 5.
    """

    def __init__(self, target: TargetFilter) -> None:
        self.target = target
        self._is_set = bit_oracle(target)

    def theoretical_items(self) -> int:
        """``floor(m/k)`` chosen items to saturate (paper)."""
        return adversarial_saturation_items(self.target.m, self.target.k)

    def random_baseline_items(self) -> int:
        """``floor(m log m / k)`` expected random items (paper)."""
        return coupon_collector_items(self.target.m, self.target.k)

    def run(self) -> SaturationReport:
        """Saturate the target by batching its zero positions k at a time."""
        zeros = [i for i in range(self.target.m) if not self._is_set(i)]
        insertions = 0
        for start in range(0, len(zeros), self.target.k):
            batch = zeros[start : start + self.target.k]
            if len(batch) < self.target.k:
                # Pad the last batch with already-set positions: a real
                # item always has exactly k indexes.
                batch = batch + zeros[:1] * (self.target.k - len(batch))
            self.target.add_indexes(batch)
            insertions += 1
        weight = self.target.hamming_weight
        return SaturationReport(
            insertions=insertions,
            final_weight=weight,
            m=self.target.m,
            saturated=weight == self.target.m,
        )
