"""Query-only attacks: false-positive forgery and worst-case-latency
queries (paper Section 4.2).

The query-only adversary cannot insert but knows (part of) the filter
state.  Two goals:

* **Ghosts** -- items satisfying eq. (8): every index lands on a set
  bit, so the filter wrongly answers "present".  Per random trial this
  succeeds with probability ``(W/m)^k``; the cost as the filter empties
  is the curve of Fig. 6.  Used to hide pages from a crawler (the
  decoy/ghost tree of Fig. 7) or to flood a backing database with
  confirm-lookups.
* **Latency queries** -- items whose first k-1 indexes are set and whose
  k-th is not: a short-circuiting query implementation must touch all k
  positions before rejecting, the worst case per lookup.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

from repro.adversary.crafting import CraftingEngine, CraftResult
from repro.adversary.predicates import AllSetPredicate, LatencyPredicate
from repro.adversary.state import TargetFilter, bit_oracle
from repro.exceptions import ParameterError
from repro.urlgen.faker import UrlFactory

__all__ = [
    "GhostForgery",
    "LatencyQueryForgery",
    "DecoyTree",
    "false_positive_success_probability",
]


def false_positive_success_probability(m: int, weight: int, k: int) -> float:
    """``(W/m)^k``: chance a uniform random item is a false positive.

    The paper brackets it by ``(k/m)^k`` (right after n = 1 insertion,
    W = k) and ``(1/2)^k`` (optimally-full filter, W = m/2)."""
    if m <= 0 or k <= 0:
        raise ParameterError("m and k must be positive")
    if not 0 <= weight <= m:
        raise ParameterError(f"weight must be in [0, {m}]")
    return (weight / m) ** k


class GhostForgery:
    """Craft items the filter wrongly believes present (eq. 8).

    ``budget``/``label`` optionally charge every brute-force trial
    against a campaign-wide :class:`~repro.adversary.budget.AttackBudget`.
    """

    def __init__(
        self,
        target: TargetFilter,
        candidates: Iterable[str] | None = None,
        max_trials: int = 5_000_000,
        seed: int = 0x6057,
        budget=None,
        label: str = "ghost",
        candidate_batch=None,
    ) -> None:
        self.target = target
        self._is_set = bit_oracle(target)
        if candidates is None:
            factory = UrlFactory(seed=seed)
            candidates = factory.candidate_stream()
            candidate_batch = factory.candidate_batch
        #: Mask-capable predicate driving the batched search path.
        self.predicate = AllSetPredicate(target)
        self.engine = CraftingEngine(
            target.strategy,
            target.k,
            target.m,
            candidates,
            max_trials,
            budget=budget,
            label=label,
            candidate_batch=candidate_batch,
        )

    def _predicate(self, indexes: tuple[int, ...]) -> bool:
        return self.predicate(indexes)

    def craft_one(self) -> CraftResult:
        """One ghost item; ``result.trials`` is the brute-force cost."""
        return self.engine.craft(self.predicate)

    def craft(self, count: int) -> list[CraftResult]:
        """``count`` ghost items (the filter state does not change, so
        each search is independent and identically costed)."""
        return [self.craft_one() for _ in range(count)]

    def success_probability(self) -> float:
        """Current per-trial success probability ``(W/m)^k``."""
        return false_positive_success_probability(
            self.target.m, self.target.hamming_weight, self.target.k
        )


class LatencyQueryForgery:
    """Craft dummy queries hitting k-1 set bits then one unset bit.

    Forces a short-circuit query loop through its longest path on an
    item that is *not* a member -- per-query worst case, aimed at very
    large filters where each position probe is a memory access.
    """

    def __init__(
        self,
        target: TargetFilter,
        candidates: Iterable[str] | None = None,
        max_trials: int = 5_000_000,
        seed: int = 0x7A7E,
        budget=None,
        label: str = "latency",
        candidate_batch=None,
    ) -> None:
        self.target = target
        self._is_set = bit_oracle(target)
        if candidates is None:
            factory = UrlFactory(seed=seed)
            candidates = factory.candidate_stream()
            candidate_batch = factory.candidate_batch
        #: Mask-capable predicate driving the batched search path.
        self.predicate = LatencyPredicate(target)
        self.engine = CraftingEngine(
            target.strategy,
            target.k,
            target.m,
            candidates,
            max_trials,
            budget=budget,
            label=label,
            candidate_batch=candidate_batch,
        )

    def _predicate(self, indexes: tuple[int, ...]) -> bool:
        return self.predicate(indexes)

    def craft_one(self) -> CraftResult:
        """One maximal-work negative query."""
        return self.engine.craft(self.predicate)

    def probes_touched(self, indexes: tuple[int, ...]) -> int:
        """Positions a short-circuiting query visits for these indexes."""
        touched = 0
        for i in indexes:
            touched += 1
            if not self._is_set(i):
                break
        return touched


@dataclass(frozen=True)
class DecoyTree:
    """A root-to-ghost page chain as in paper Fig. 7.

    ``decoys`` are ordinary pages the spider will crawl; ``ghost`` is the
    crafted false positive hiding behind them -- the spider believes it
    has already been visited and never fetches it.
    """

    root: str
    decoys: tuple[str, ...]
    ghost: str

    @property
    def pages(self) -> tuple[str, ...]:
        """All URLs, root first, ghost last."""
        return (self.root, *self.decoys, self.ghost)

    @staticmethod
    def build(
        target: TargetFilter,
        root: str = "http://root.example",
        depth: int = 3,
        max_trials: int = 5_000_000,
        seed: int = 0xDEC0,
    ) -> "DecoyTree":
        """Craft a ghost under ``root`` and lay ``depth`` decoys above it.

        The decoys mirror the paper's example tree (``~/main``,
        ``~/main/tags``, ...); only the leaf needs forging.
        """
        if depth < 1:
            raise ParameterError("depth must be at least 1")
        segments = ["main", "tags", "app", "deep", "more", "extra"]
        decoys = []
        path = root.rstrip("/")
        for level in range(depth):
            path = f"{path}/{segments[level % len(segments)]}"
            decoys.append(path)
        factory = UrlFactory(seed=seed)
        forgery = GhostForgery(
            target,
            candidates=factory.candidate_stream(prefix=path),
            max_trials=max_trials,
            candidate_batch=lambda n: factory.candidate_batch(n, prefix=path),
        )
        ghost = forgery.craft_one().item
        return DecoyTree(root=root, decoys=tuple(decoys), ghost=ghost)
