"""Budget-modeled adaptive adversary: end-to-end attack resources.

The crafting engines cap the brute-force search *per item*; nothing so
far models the attacker's campaign as a whole.  That is the gap between
this repo and the resource-bounded adaptive-adversary game of
*Bloom Filters in Adversarial Environments* (Naor-Yogev): a real
attacker pays for every hash trial out of one purse, is throttled on
how fast it can talk to the service, and has a deadline before the
defender rotates or the engagement window closes.

This module supplies both halves of that game:

* :class:`AttackBudget` -- one shared resource meter (total hash
  trials, request-rate ceiling, wall-clock deadline) charged by the
  crafting layer (:mod:`repro.adversary.crafting` reports every trial
  against it) and by the traffic driver's transport send path.  Spend is
  tracked per label, so a replay can state exactly which attack client
  burned what.
* :class:`AdaptiveQueryStrategy` -- the feedback loop that makes the
  adversary *adaptive*: answers from ``query_batch`` flow back into
  crafting.  A positive answer confirms a ghost (it joins a replay pool
  that can be re-queried for zero further trials) and promotes its URL
  prefix (fresh crafting concentrates its candidate stream where the
  filter has already leaked state).  A pooled ghost answering negative
  reveals a rotation -- every item in the pool was forged against the
  retired bits, so the whole pool and its promotions are flushed.

Budgets are deliberately *passive* about requests-vs-trials: running out
of trials stops crafting but not re-sending already-crafted items (the
adaptive attacker's whole point), while the deadline and the rate
ceiling bound the campaign however the spend is split.
"""

from __future__ import annotations

import asyncio
import random
import time
from dataclasses import dataclass
from typing import Awaitable, Callable, Iterator

from repro.exceptions import AttackBudgetExhausted, ParameterError
from repro.urlgen.faker import UrlFactory

__all__ = ["BudgetSpend", "AttackBudget", "AdaptiveQueryStrategy"]


@dataclass(frozen=True)
class BudgetSpend:
    """What one labelled client charged against a shared budget."""

    label: str
    trials: int = 0
    requests: int = 0


class AttackBudget:
    """Shared resource meter of one attack campaign.

    Parameters
    ----------
    max_trials:
        Total brute-force hash trials across *all* clients and crafting
        engines sharing this budget; ``None`` means unmetered.
    requests_per_s:
        Ceiling on transport operations per second (items, matching the
        service's own token-bucket accounting); the send path paces
        itself under it via :meth:`pace`.  ``None`` means unpaced.
    deadline_s:
        Wall-clock seconds the campaign may run, measured from the first
        charge.  Once passed, every *allowance* (:meth:`clamp_trials`)
        and every :meth:`pace` call raises
        :class:`~repro.exceptions.AttackBudgetExhausted`; a search
        already in flight completes and its spend is still recorded --
        the campaign can overshoot the deadline by at most one clamped
        search, never start new work past it.
    clock, sleep:
        Injectable monotonic clock and async sleep (tests pin both).

    The trial meter is enforced *before* work happens: crafting engines
    ask :meth:`clamp_trials` for an allowance and can therefore never
    overspend, and a drained purse raises rather than silently returning
    zero.
    """

    def __init__(
        self,
        max_trials: int | None = None,
        requests_per_s: float | None = None,
        deadline_s: float | None = None,
        clock: Callable[[], float] = time.monotonic,
        sleep: Callable[[float], Awaitable[None]] = asyncio.sleep,
    ) -> None:
        if max_trials is not None and max_trials <= 0:
            raise ParameterError("max_trials must be positive (or None)")
        if requests_per_s is not None and requests_per_s <= 0:
            raise ParameterError("requests_per_s must be positive (or None)")
        if deadline_s is not None and deadline_s <= 0:
            raise ParameterError("deadline_s must be positive (or None)")
        self.max_trials = max_trials
        self.requests_per_s = requests_per_s
        self.deadline_s = deadline_s
        self._clock = clock
        self._sleep = sleep
        self._started: float | None = None
        self.trials_spent = 0
        self.requests_sent = 0
        self._by_label: dict[str, list[int]] = {}  # label -> [trials, requests]

    # -- lifecycle ------------------------------------------------------

    def _ensure_started(self, now: float) -> float:
        if self._started is None:
            self._started = now
        return self._started

    def _check_deadline(self, now: float) -> None:
        if self.deadline_s is None or self._started is None:
            return
        if now - self._started >= self.deadline_s:
            raise AttackBudgetExhausted(
                f"attack deadline of {self.deadline_s:g}s passed"
            )

    @property
    def expired(self) -> bool:
        """True once the wall-clock deadline has passed (never, before
        the first charge starts the clock)."""
        if self.deadline_s is None or self._started is None:
            return False
        return self._clock() - self._started >= self.deadline_s

    @property
    def trials_remaining(self) -> int | None:
        """Trials still in the purse (``None`` when unmetered)."""
        if self.max_trials is None:
            return None
        return max(0, self.max_trials - self.trials_spent)

    @property
    def exhausted(self) -> bool:
        """True when the trial purse is empty or the deadline passed."""
        return self.trials_remaining == 0 or self.expired

    def time_remaining(self) -> float | None:
        """Seconds left before the deadline (``None`` without one)."""
        if self.deadline_s is None:
            return None
        if self._started is None:
            return self.deadline_s
        return max(0.0, self.deadline_s - (self._clock() - self._started))

    # -- trial metering (crafting layer) --------------------------------

    def clamp_trials(self, cap: int, label: str = "craft") -> int:
        """Allowance for one brute-force search: ``cap`` clamped to the
        trials left in the purse.

        Raises :class:`~repro.exceptions.AttackBudgetExhausted` when the
        purse is empty or the deadline has passed -- the search must not
        start at all.  Starts the campaign clock (crafting is the
        attack's first work).
        """
        if cap <= 0:
            raise ParameterError("cap must be positive")
        now = self._clock()
        self._ensure_started(now)
        self._check_deadline(now)
        remaining = self.trials_remaining
        if remaining is None:
            return cap
        if remaining == 0:
            raise AttackBudgetExhausted(
                f"trial budget of {self.max_trials} exhausted ({label!r})"
            )
        return min(cap, remaining)

    def charge_trials(self, trials: int, label: str = "craft") -> None:
        """Record ``trials`` brute-force candidates spent by ``label``."""
        if trials < 0:
            raise ParameterError("trials must be non-negative")
        self._ensure_started(self._clock())
        self.trials_spent += trials
        self._by_label.setdefault(label, [0, 0])[0] += trials

    # -- request pacing (transport send path) ---------------------------

    async def pace(self, requests: int, label: str = "attack") -> None:
        """Wait until ``requests`` more operations fit under the rate
        ceiling, then record them against ``label``.

        Raises :class:`~repro.exceptions.AttackBudgetExhausted` once the
        deadline passes (before or during the wait).  Re-sending
        already-crafted items goes through here too: trials and requests
        are separate meters by design.
        """
        if requests <= 0:
            raise ParameterError("requests must be positive")
        while True:
            now = self._clock()
            self._ensure_started(now)
            self._check_deadline(now)
            if self.requests_per_s is None:
                break
            earliest = self._started + self.requests_sent / self.requests_per_s
            if now >= earliest:
                break
            await self._sleep(earliest - now)
        self.requests_sent += requests
        self._by_label.setdefault(label, [0, 0])[1] += requests

    # -- reporting ------------------------------------------------------

    def spend_by_label(self) -> dict[str, BudgetSpend]:
        """Per-label spend, for the replay report."""
        return {
            label: BudgetSpend(label=label, trials=t, requests=r)
            for label, (t, r) in sorted(self._by_label.items())
        }

    def describe(self) -> str:
        """One-line human-readable budget state."""
        parts = []
        if self.max_trials is not None:
            parts.append(f"trials {self.trials_spent}/{self.max_trials}")
        else:
            parts.append(f"trials {self.trials_spent}")
        if self.requests_per_s is not None:
            parts.append(
                f"requests {self.requests_sent} @<={self.requests_per_s:g}/s"
            )
        else:
            parts.append(f"requests {self.requests_sent}")
        if self.deadline_s is not None:
            left = self.time_remaining()
            parts.append(f"deadline {self.deadline_s:g}s ({left:.2f}s left)")
        return ", ".join(parts)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<AttackBudget {self.describe()}>"


class AdaptiveQueryStrategy:
    """Feed ``query_batch`` answers back into crafting (Naor-Yogev).

    The strategy owns everything the adaptive attacker has *learned*
    from the service's answers:

    * ``pool`` -- confirmed ghosts (crafted items the service answered
      positive).  Re-querying them costs requests but zero trials, so a
      trial-bounded attacker concentrates its purse on discovery and
      milks each discovery many times.
    * promoted prefixes -- each confirmed ghost promotes its URL prefix;
      :meth:`candidates` biases fresh crafting streams toward promoted
      prefixes, concentrating the brute-force search where the filter
      has already leaked state.
    * rotation detection -- a pooled ghost answering *negative* proves
      the target's bits changed under the attacker (a rotation); every
      pooled item and promotion was learned against the retired filter,
      so :meth:`observe` flushes them all and the campaign restarts its
      discovery phase.

    Parameters
    ----------
    seed:
        Seeds the internal PRNG that interleaves promoted-prefix and
        base candidate streams (deterministic campaigns).
    max_pool, max_prefixes:
        Memory bounds on confirmed ghosts and promoted prefixes.
    promoted_share:
        Fraction of fresh candidates drawn from promoted prefixes once
        any exist.
    """

    def __init__(
        self,
        seed: int = 0,
        max_pool: int = 64,
        max_prefixes: int = 8,
        promoted_share: float = 0.5,
    ) -> None:
        if max_pool <= 0 or max_prefixes <= 0:
            raise ParameterError("max_pool and max_prefixes must be positive")
        if not 0 <= promoted_share <= 1:
            raise ParameterError("promoted_share must be in [0, 1]")
        self.max_pool = max_pool
        self.max_prefixes = max_prefixes
        self.promoted_share = promoted_share
        self._rng = random.Random(seed)
        self._pool: list[str] = []
        self._pooled: set[str] = set()
        self._prefixes: dict[str, int] = {}  # prefix -> promotion count
        self._cursor = 0
        #: Ghosts confirmed positive over the campaign (monotonic).
        self.confirmed = 0
        #: Pool flushes = rotations the answers revealed.
        self.flushes = 0

    @property
    def pool_size(self) -> int:
        """Confirmed ghosts currently replayable."""
        return len(self._pool)

    @property
    def promoted_prefixes(self) -> tuple[str, ...]:
        """Currently promoted URL prefixes (discovery-order)."""
        return tuple(self._prefixes)

    @staticmethod
    def _prefix_of(item: str) -> str:
        """A crafted URL's promotable prefix (path minus the uniqueness
        token the factory appends)."""
        return item.rsplit("/", 1)[0]

    def observe(self, items: list[str], answers: list[bool]) -> bool:
        """Digest one sent chunk's answers; True when a rotation was
        detected (and the learned state flushed)."""
        flush = False
        for item, positive in zip(items, answers):
            if positive:
                if item not in self._pooled and len(self._pool) < self.max_pool:
                    self._pool.append(item)
                    self._pooled.add(item)
                    self.confirmed += 1
                    prefix = self._prefix_of(item)
                    if (
                        prefix in self._prefixes
                        or len(self._prefixes) < self.max_prefixes
                    ):
                        self._prefixes[prefix] = self._prefixes.get(prefix, 0) + 1
            elif item in self._pooled:
                # A confirmed ghost went negative: the bits it was forged
                # against are gone.  Everything learned is stale.
                flush = True
        if flush:
            self._pool.clear()
            self._pooled.clear()
            self._prefixes.clear()
            self._cursor = 0
            self.flushes += 1
        return flush

    def replay_items(self, count: int) -> list[str]:
        """Up to ``count`` confirmed ghosts to re-send (round-robin over
        the pool; zero trials per hit)."""
        if count <= 0 or not self._pool:
            return []
        take = min(count, len(self._pool))
        size = len(self._pool)
        items = [self._pool[(self._cursor + i) % size] for i in range(take)]
        self._cursor = (self._cursor + take) % size
        return items

    def candidates(self, factory: UrlFactory) -> Iterator[str]:
        """Infinite candidate stream for fresh crafting, concentrated on
        promoted prefixes.

        With no promotions yet (or after a flush) this is the factory's
        plain stream; once positives have promoted prefixes, roughly
        ``promoted_share`` of candidates extend them.  The stream reads
        the live promotion table every item, so a mid-campaign flush
        immediately de-concentrates it.
        """
        base = factory.candidate_stream()
        streams: dict[str, Iterator[str]] = {}
        while True:
            prefixes = list(self._prefixes)
            if prefixes and self._rng.random() < self.promoted_share:
                weights = [self._prefixes[p] for p in prefixes]
                prefix = self._rng.choices(prefixes, weights=weights, k=1)[0]
                stream = streams.get(prefix)
                if stream is None:
                    stream = streams[prefix] = factory.candidate_stream(
                        prefix=prefix
                    )
                yield next(stream)
            else:
                yield next(base)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"<AdaptiveQueryStrategy pool={self.pool_size} "
            f"prefixes={len(self._prefixes)} confirmed={self.confirmed} "
            f"flushes={self.flushes}>"
        )
