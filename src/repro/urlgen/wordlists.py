"""Embedded word material for the fake URL generator.

The paper uses the ``fake-factory`` Python package to generate "fake but
human readable URLs" for its forgery experiments.  That package is not
installable offline, so we embed a compact word corpus of our own; the
attacks only care that candidates are plentiful, distinct and plausibly
URL-shaped.
"""

from __future__ import annotations

__all__ = ["ADJECTIVES", "NOUNS", "VERBS", "TLDS", "SCHEMES", "SUBDOMAINS", "FILE_EXTENSIONS"]

ADJECTIVES = (
    "able", "actual", "agile", "amber", "ancient", "aqua", "atomic", "azure",
    "bold", "brave", "bright", "broad", "bronze", "busy", "calm", "candid",
    "casual", "chief", "civic", "clean", "clear", "clever", "cold", "cosmic",
    "crimson", "curious", "daily", "dapper", "dark", "deep", "direct", "double",
    "dynamic", "eager", "early", "east", "easy", "electric", "elegant", "epic",
    "equal", "exact", "fair", "fast", "fierce", "fine", "firm", "first",
    "fluent", "fresh", "frozen", "gentle", "giant", "glad", "global", "gold",
    "grand", "green", "happy", "hardy", "hidden", "high", "honest", "humble",
    "icy", "ideal", "indigo", "inner", "ivory", "jade", "jolly", "keen",
    "kind", "large", "late", "lively", "local", "loyal", "lucid", "lunar",
    "magic", "main", "major", "mellow", "merry", "mighty", "minor", "misty",
    "modern", "narrow", "neat", "noble", "north", "novel", "olive", "open",
    "orange", "pale", "patient", "plain", "polar", "prime", "proud", "pure",
    "quick", "quiet", "rapid", "rare", "ready", "regal", "rich", "robust",
    "rough", "round", "royal", "ruby", "rustic", "safe", "sage", "sandy",
    "scarlet", "sharp", "shiny", "silent", "silver", "simple", "sleek", "slow",
    "smart", "smooth", "snowy", "solar", "solid", "south", "spare", "stable",
    "steady", "still", "stout", "strong", "subtle", "sunny", "super", "swift",
    "tall", "tame", "teal", "tidy", "tiny", "topaz", "tough", "true",
    "urban", "valid", "vast", "velvet", "vivid", "warm", "west", "wide",
    "wild", "wise", "witty", "young", "zesty",
)

NOUNS = (
    "anchor", "apple", "arch", "arrow", "atlas", "badge", "banner", "basin",
    "beacon", "bell", "birch", "blade", "bloom", "board", "bolt", "book",
    "booth", "branch", "brick", "bridge", "brook", "brush", "bucket", "cabin",
    "cable", "candle", "canyon", "castle", "cedar", "chair", "chart", "cliff",
    "cloud", "clover", "coast", "comet", "coral", "corner", "cotton", "course",
    "crane", "crest", "crown", "crystal", "current", "dawn", "delta", "desk",
    "dome", "door", "dune", "eagle", "ember", "engine", "falcon", "feather",
    "fern", "field", "flame", "fleet", "flint", "forge", "fort", "fountain",
    "fox", "frame", "garden", "gate", "glacier", "glen", "grove", "harbor",
    "hawk", "hazel", "heron", "hill", "hollow", "horizon", "island", "ivy",
    "jungle", "kernel", "kite", "lagoon", "lake", "lantern", "larch", "ledge",
    "lens", "light", "lily", "lion", "lotus", "lynx", "maple", "marble",
    "meadow", "mesa", "mill", "mirror", "moss", "mountain", "needle", "nest",
    "oak", "ocean", "orbit", "orchard", "otter", "panel", "path", "peak",
    "pearl", "pebble", "pine", "pillar", "plain", "planet", "plaza", "pond",
    "portal", "prairie", "prism", "quarry", "quartz", "raven", "reef", "ridge",
    "river", "rock", "root", "rose", "sail", "sand", "shell", "shore",
    "signal", "sky", "slope", "sparrow", "spring", "spruce", "star", "stone",
    "storm", "stream", "summit", "swan", "temple", "thorn", "tide", "timber",
    "tower", "trail", "tree", "tulip", "valley", "vault", "vine", "walnut",
    "wave", "well", "willow", "wind", "wolf", "yard",
)

VERBS = (
    "archive", "blend", "boost", "browse", "build", "carve", "chase", "climb",
    "craft", "create", "design", "discover", "draw", "drift", "explore", "find",
    "fix", "float", "flow", "fly", "gather", "glide", "grow", "hunt",
    "jump", "launch", "learn", "link", "list", "make", "map", "merge",
    "paint", "plan", "play", "read", "ride", "run", "sail", "scan",
    "search", "seek", "share", "shape", "show", "sketch", "spin", "start",
    "store", "swim", "trace", "track", "trade", "travel", "view", "walk",
    "watch", "weave", "write",
)

TLDS = ("com", "net", "org", "info", "biz", "io", "co", "dev", "app", "site")

SCHEMES = ("http", "https")

SUBDOMAINS = ("www", "blog", "shop", "news", "app", "api", "m", "cdn", "docs", "mail")

FILE_EXTENSIONS = ("html", "php", "asp", "htm", "jsp")
