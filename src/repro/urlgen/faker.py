"""Deterministic generator of human-readable fake URLs.

Stands in for the ``fake-factory`` package the paper used (offline
substitute; see DESIGN.md).  All randomness flows from one seeded
``random.Random``, so experiments and tests are reproducible, and the
candidate streams are guaranteed collision-free via an embedded counter
token -- brute-force crafting must never stall on duplicate candidates.
"""

from __future__ import annotations

import random
from typing import Iterator

from repro.urlgen.wordlists import (
    ADJECTIVES,
    FILE_EXTENSIONS,
    NOUNS,
    SCHEMES,
    SUBDOMAINS,
    TLDS,
    VERBS,
)

__all__ = ["UrlFactory"]


class UrlFactory:
    """Seeded factory for fake but plausible URLs.

    Parameters
    ----------
    seed:
        Seed for the internal PRNG; equal seeds give equal streams.

    Examples
    --------
    >>> factory = UrlFactory(seed=1)
    >>> url = factory.url()
    >>> url.startswith(("http://", "https://"))
    True
    """

    def __init__(self, seed: int = 0) -> None:
        self._rng = random.Random(seed)
        self._counter = 0

    def word(self) -> str:
        """One random lowercase word."""
        pool = self._rng.choice((ADJECTIVES, NOUNS, VERBS))
        return self._rng.choice(pool)

    def slug(self, words: int = 2) -> str:
        """A hyphenated slug such as ``bright-harbor``."""
        if words <= 0:
            raise ValueError("words must be positive")
        return "-".join(self.word() for _ in range(words))

    def domain(self) -> str:
        """A registrable domain such as ``silent-ridge.net``."""
        return f"{self.slug(2)}.{self._rng.choice(TLDS)}"

    def hostname(self) -> str:
        """A full hostname, sometimes with a subdomain."""
        domain = self.domain()
        if self._rng.random() < 0.4:
            return f"{self._rng.choice(SUBDOMAINS)}.{domain}"
        return domain

    def path(self, depth: int | None = None) -> str:
        """An absolute path of 1-4 slug segments, maybe with an extension."""
        if depth is None:
            depth = self._rng.randint(1, 4)
        if depth <= 0:
            raise ValueError("depth must be positive")
        segments = [self.slug(self._rng.randint(1, 2)) for _ in range(depth)]
        if self._rng.random() < 0.3:
            segments[-1] += "." + self._rng.choice(FILE_EXTENSIONS)
        return "/" + "/".join(segments)

    def url(self, unique: bool = True) -> str:
        """One fake URL.

        With ``unique=True`` (the default) a monotonic token is embedded
        in the path, so no two URLs from the same factory collide --
        mirroring the paper's forgery loops, which never retry an item.
        """
        scheme = self._rng.choice(SCHEMES)
        base = f"{scheme}://{self.hostname()}{self.path()}"
        if unique:
            self._counter += 1
            base = f"{base}/p{self._counter}"
        return base

    def urls(self, count: int) -> list[str]:
        """A list of ``count`` distinct URLs."""
        if count < 0:
            raise ValueError("count must be non-negative")
        return [self.url() for _ in range(count)]

    def candidate_stream(self, prefix: str | None = None) -> Iterator[str]:
        """Infinite stream of distinct candidate URLs for brute forcing.

        ``prefix`` pins scheme+host (an attacker forging links on her own
        page keeps her domain fixed and varies only the path).
        """
        while True:
            if prefix is None:
                yield self.url()
            else:
                self._counter += 1
                yield f"{prefix.rstrip('/')}{self.path()}/p{self._counter}"

    def candidate_batch(self, count: int, prefix: str | None = None) -> list[str]:
        """The next ``count`` candidates of :meth:`candidate_stream` as a
        list -- the bulk form the batched crafting engine pulls blocks
        through.

        Draws from the same PRNG and counter in the same order as the
        stream, so mixing ``next()`` on a live ``candidate_stream()``
        generator with ``candidate_batch()`` calls on the same factory
        still yields one sequential, collision-free candidate sequence.
        """
        if count < 0:
            raise ValueError("count must be non-negative")
        if prefix is None:
            return [self.url() for _ in range(count)]
        stem = prefix.rstrip("/")
        out = []
        for _ in range(count):
            self._counter += 1
            out.append(f"{stem}{self.path()}/p{self._counter}")
        return out

    def reset(self, seed: int) -> None:
        """Re-seed the factory (restarts both the PRNG and the counter)."""
        self._rng = random.Random(seed)
        self._counter = 0
