"""Deterministic fake-URL generation (offline stand-in for fake-factory)."""

from repro.urlgen.faker import UrlFactory
from repro.urlgen import wordlists

__all__ = ["UrlFactory", "wordlists"]
