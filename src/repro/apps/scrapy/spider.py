"""A Scrapy-like breadth-first spider (paper Section 5.1).

Implements the paper's five crawl steps: select a scheduled URL, fetch
it, archive the result, schedule the interesting out-links, and mark
URLs as visited.  Deduplication uses Scrapy's semantics -- the dupe
filter gates URLs *as they are scheduled*, so a false positive means the
page is never even enqueued.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field

from repro.apps.scrapy.dupefilter import DupeFilter
from repro.apps.scrapy.webgraph import WebGraph
from repro.exceptions import ParameterError

__all__ = ["CrawlStats", "Spider"]


@dataclass
class CrawlStats:
    """Outcome of one crawl."""

    crawled: list[str] = field(default_factory=list)
    scheduled: int = 0
    skipped_as_duplicate: int = 0
    frontier_peak: int = 0

    @property
    def pages_crawled(self) -> int:
        """Number of pages actually fetched."""
        return len(self.crawled)

    def coverage_of(self, urls: list[str]) -> float:
        """Fraction of ``urls`` that were fetched (1.0 = full coverage)."""
        if not urls:
            raise ParameterError("urls must be non-empty")
        fetched = set(self.crawled)
        return sum(1 for u in urls if u in fetched) / len(urls)


class Spider:
    """Breadth-first crawler over a :class:`WebGraph`.

    Parameters
    ----------
    graph:
        The simulated web.
    dupefilter:
        Seen-URL filter (exact or Bloom); the attack surface.
    max_pages:
        Safety stop; None means crawl to frontier exhaustion.
    """

    def __init__(
        self, graph: WebGraph, dupefilter: DupeFilter, max_pages: int | None = None
    ) -> None:
        if max_pages is not None and max_pages <= 0:
            raise ParameterError("max_pages must be positive when given")
        self.graph = graph
        self.dupefilter = dupefilter
        self.max_pages = max_pages

    def crawl(self, start_urls: list[str]) -> CrawlStats:
        """Run the crawl from ``start_urls`` until the frontier empties.

        Start URLs pass through the dupe filter too -- if the filter
        already (falsely) claims a start URL was visited, the crawl of
        that branch never begins, which is how the blinding attack kills
        whole sites.
        """
        stats = CrawlStats()
        frontier: deque[str] = deque()

        for url in start_urls:
            if self.dupefilter.seen(url):
                stats.skipped_as_duplicate += 1
            else:
                frontier.append(url)
                stats.scheduled += 1

        while frontier:
            if self.max_pages is not None and stats.pages_crawled >= self.max_pages:
                break
            stats.frontier_peak = max(stats.frontier_peak, len(frontier))
            url = frontier.popleft()  # step 1: select
            # step 2-3: fetch + archive (our fetch is the graph lookup)
            stats.crawled.append(url)
            # step 4-5: schedule out-links, marking through the filter
            for link in self.graph.links_of(url):
                if self.dupefilter.seen(link):
                    stats.skipped_as_duplicate += 1
                else:
                    frontier.append(link)
                    stats.scheduled += 1
        return stats
