"""Duplicate-URL filters for the spider (paper Section 5.1).

Scrapy's stock filter stores per-URL fingerprints (the paper: 77 bytes
each under Python 2.7, i.e. 154 MB for a 2M-page site); the community
swaps in a Bloom filter (pyBloom) for the memory win -- which is exactly
the attack surface of Section 5.2.  Both are implemented behind one
interface with the Scrapy ``request_seen`` semantics: *check and mark in
a single call at scheduling time*.
"""

from __future__ import annotations

import hashlib
from abc import ABC, abstractmethod

from repro.core.bloom import BloomFilter
from repro.hashing.base import IndexStrategy
from repro.hashing.crypto import SHA1
from repro.hashing.salted import SaltedHashStrategy

__all__ = ["DupeFilter", "FingerprintSetDupeFilter", "BloomDupeFilter", "pybloom_like_strategy"]

#: The paper's figure for one stored fingerprint in Scrapy/CPython 2.7.
SCRAPY_FINGERPRINT_BYTES = 77


def pybloom_like_strategy() -> IndexStrategy:
    """Index derivation mimicking pyBloom: salted calls to a crypto hash.

    pyBloom picks MD5/SHA-x by filter size and derives indexes from
    digests under deterministic salts; public salts + public hash mean a
    brute-force adversary can replay the whole pipeline, which is all the
    Section 5 attacks need.
    """
    return SaltedHashStrategy(SHA1())


class DupeFilter(ABC):
    """Scrapy-style duplicate filter: check-and-mark in one call."""

    @abstractmethod
    def seen(self, url: str) -> bool:
        """True if ``url`` was seen before; marks it as seen either way."""

    @abstractmethod
    def memory_bytes(self) -> int:
        """Approximate memory footprint of the seen-set."""

    #: Number of URLs marked so far.
    marked: int = 0


class FingerprintSetDupeFilter(DupeFilter):
    """Exact dedup via a set of SHA-1 fingerprints (Scrapy's default).

    No false positives, but memory grows linearly: the paper estimates
    154 MB for one 2M-page site.
    """

    def __init__(self) -> None:
        self._fingerprints: set[bytes] = set()
        self.marked = 0

    def _fingerprint(self, url: str) -> bytes:
        return hashlib.sha1(url.encode("utf-8")).digest()

    def seen(self, url: str) -> bool:
        fp = self._fingerprint(url)
        if fp in self._fingerprints:
            return True
        self._fingerprints.add(fp)
        self.marked += 1
        return False

    def memory_bytes(self) -> int:
        """Paper-style estimate: 77 bytes per stored fingerprint."""
        return SCRAPY_FINGERPRINT_BYTES * len(self._fingerprints)


class BloomDupeFilter(DupeFilter):
    """Probabilistic dedup via a Bloom filter (the pyBloom plug-in).

    A false positive here is fatal for coverage: the spider believes the
    page was already crawled and silently skips it -- the paper's
    "blinding".
    """

    def __init__(
        self,
        capacity: int,
        error_rate: float,
        strategy: IndexStrategy | None = None,
    ) -> None:
        self.filter = BloomFilter.for_capacity(
            capacity, error_rate, strategy or pybloom_like_strategy()
        )
        self.capacity = capacity
        self.error_rate = error_rate
        self.marked = 0

    def seen(self, url: str) -> bool:
        already = self.filter.add(url)
        if not already:
            self.marked += 1
        return already

    def memory_bytes(self) -> int:
        """The filter's bit array, in bytes."""
        return (self.filter.m + 7) // 8
