"""Synthetic web graphs for the spider simulation.

A tiny deterministic "web": pages keyed by URL, each with outgoing
links.  Victim sites are generated pseudo-randomly (tree + cross links,
like a real site's navigation); adversary sites are built explicitly by
the attacks.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.exceptions import ParameterError
from repro.urlgen.faker import UrlFactory

__all__ = ["Page", "WebGraph"]


@dataclass
class Page:
    """One fetchable page: its URL and outgoing links (in page order)."""

    url: str
    links: list[str] = field(default_factory=list)


class WebGraph:
    """A set of pages with deterministic link structure."""

    def __init__(self) -> None:
        self._pages: dict[str, Page] = {}

    def add_page(self, url: str, links: list[str] | None = None) -> Page:
        """Insert (or replace) a page."""
        page = Page(url=url, links=list(links or []))
        self._pages[url] = page
        return page

    def __contains__(self, url: str) -> bool:
        return url in self._pages

    def __len__(self) -> int:
        return len(self._pages)

    def urls(self) -> list[str]:
        """All page URLs in insertion order."""
        return list(self._pages)

    def links_of(self, url: str) -> list[str]:
        """Outgoing links of ``url`` (empty for unknown/external URLs)."""
        page = self._pages.get(url)
        return list(page.links) if page else []

    def merge(self, other: "WebGraph") -> "WebGraph":
        """Add all of ``other``'s pages to this graph (in place)."""
        for url, page in other._pages.items():
            self._pages[url] = Page(url=page.url, links=list(page.links))
        return self

    @classmethod
    def random_site(
        cls,
        host: str,
        n_pages: int,
        seed: int = 0,
        branching: int = 4,
        cross_links: int = 2,
    ) -> "WebGraph":
        """Generate a site of ``n_pages`` under one host.

        Structure: a breadth-first tree with ``branching`` children per
        page plus ``cross_links`` random intra-site links per page --
        every page is reachable from the root (``http://host/``).
        """
        if n_pages <= 0:
            raise ParameterError("n_pages must be positive")
        rng = random.Random(seed)
        factory = UrlFactory(seed=seed ^ 0x51E)
        root = f"http://{host}/"
        urls = [root] + [
            f"http://{host}{factory.path(depth=rng.randint(1, 3))}/p{i}"
            for i in range(1, n_pages)
        ]
        graph = cls()
        for url in urls:
            graph.add_page(url)
        # Tree links guarantee reachability.
        for i, url in enumerate(urls):
            first_child = i * branching + 1
            children = urls[first_child : first_child + branching]
            graph._pages[url].links.extend(children)
        # Cross links add realism (and duplicate scheduling pressure).
        for url in urls:
            for _ in range(cross_links):
                graph._pages[url].links.append(rng.choice(urls))
        return graph

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<WebGraph pages={len(self._pages)}>"
