"""Scrapy-like web spider and the Section 5 attacks against its
Bloom-filter duplicate detector."""

from repro.apps.scrapy.attack import (
    BlindingAttack,
    BlindingReport,
    GhostHidingAttack,
    GhostHidingReport,
)
from repro.apps.scrapy.dupefilter import (
    BloomDupeFilter,
    DupeFilter,
    FingerprintSetDupeFilter,
    pybloom_like_strategy,
)
from repro.apps.scrapy.spider import CrawlStats, Spider
from repro.apps.scrapy.webgraph import Page, WebGraph

__all__ = [
    "BlindingAttack",
    "BlindingReport",
    "BloomDupeFilter",
    "CrawlStats",
    "DupeFilter",
    "FingerprintSetDupeFilter",
    "GhostHidingAttack",
    "GhostHidingReport",
    "Page",
    "Spider",
    "WebGraph",
    "pybloom_like_strategy",
]
