"""The two spider attacks of paper Section 5.2.

**Blinding (chosen-insertion).**  The adversary owns the crawl's entry
page and fills it with links whose URLs are crafted to pollute the
spider's Bloom dupe filter.  She replays the spider's public pipeline on
a *shadow filter* offline, so each crafted link sets k fresh bits when
the real spider schedules it.  Once her site is crawled, the victim site
is then visited with an inflated false-positive rate: whole pages (and
their subtrees) are skipped as "already seen".

**Ghost hiding (query-only).**  The adversary wants her own pages *not*
crawled.  She publishes a chain of decoys ending in a ghost page whose
URL is forged as a false positive of the current filter (Fig. 7); the
spider crawls the decoys but always believes the ghost was already
visited.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.adversary.pollution import PollutionAttack
from repro.adversary.query import DecoyTree, GhostForgery
from repro.apps.scrapy.dupefilter import BloomDupeFilter
from repro.apps.scrapy.spider import CrawlStats, Spider
from repro.apps.scrapy.webgraph import WebGraph
from repro.core.bloom import BloomFilter
from repro.urlgen.faker import UrlFactory

__all__ = ["BlindingReport", "BlindingAttack", "GhostHidingReport", "GhostHidingAttack"]


@dataclass(frozen=True)
class BlindingReport:
    """Outcome of a blinding campaign."""

    malicious_links: int
    crafting_trials: int
    victim_pages: int
    victim_coverage_attacked: float
    victim_coverage_baseline: float
    filter_fpp_after_attack: float

    @property
    def blinded_fraction(self) -> float:
        """Share of the victim site the attack hid from the spider."""
        return self.victim_coverage_baseline - self.victim_coverage_attacked


class BlindingAttack:
    """Blind a Bloom-dedup spider by hosting a page of crafted links.

    Parameters
    ----------
    dupefilter_capacity / dupefilter_error_rate:
        The spider's public Bloom configuration (the adversary knows it).
    adversary_host:
        Host serving the malicious entry page and its link targets.
    """

    def __init__(
        self,
        dupefilter_capacity: int,
        dupefilter_error_rate: float,
        adversary_host: str = "evil.example",
        seed: int = 0xBAD,
    ) -> None:
        self.capacity = dupefilter_capacity
        self.error_rate = dupefilter_error_rate
        self.adversary_host = adversary_host
        self.seed = seed
        self.root_url = f"http://{adversary_host}/"

    def _fresh_dupefilter(self) -> BloomDupeFilter:
        return BloomDupeFilter(self.capacity, self.error_rate)

    def build_adversary_site(self, n_links: int) -> tuple[WebGraph, int]:
        """Craft the malicious page; returns (site, crafting trials).

        The shadow filter replays exactly what the real dupe filter will
        see: the root URL first, then each link in page order.
        """
        reference = self._fresh_dupefilter()
        shadow: BloomFilter = BloomFilter(
            reference.filter.m, reference.filter.k, reference.filter.strategy
        )
        shadow.add(self.root_url)

        factory = UrlFactory(seed=self.seed)
        attack = PollutionAttack(
            shadow,
            candidates=factory.candidate_stream(prefix=f"http://{self.adversary_host}"),
        )
        report = attack.run(n_links, insert=True)

        site = WebGraph()
        site.add_page(self.root_url, links=report.items)
        for link in report.items:
            site.add_page(link)  # leaf pages, no out-links
        return site, report.total_trials

    def run(self, victim: WebGraph, n_links: int) -> BlindingReport:
        """Crawl adversary-site-then-victim and measure lost coverage.

        The baseline crawl uses an identical but unpolluted dupe filter
        and no adversary site, isolating the attack's effect.
        """
        victim_root = victim.urls()[0]
        victim_urls = victim.urls()

        baseline_spider = Spider(victim, self._fresh_dupefilter())
        baseline = baseline_spider.crawl([victim_root])

        site, trials = self.build_adversary_site(n_links)
        world = WebGraph().merge(site).merge(victim)
        dupefilter = self._fresh_dupefilter()
        spider = Spider(world, dupefilter)
        # The adversary's page is the crawl entry point (paper: "her web
        # page is the starting point of the crawling process").
        spider.crawl([self.root_url])
        attacked = spider.crawl([victim_root])

        return BlindingReport(
            malicious_links=n_links,
            crafting_trials=trials,
            victim_pages=len(victim_urls),
            victim_coverage_attacked=attacked.coverage_of(victim_urls),
            victim_coverage_baseline=baseline.coverage_of(victim_urls),
            filter_fpp_after_attack=dupefilter.filter.current_fpp(),
        )


@dataclass(frozen=True)
class GhostHidingReport:
    """Outcome of a ghost-hiding campaign."""

    ghost_url: str
    decoys: tuple[str, ...]
    ghost_crawled: bool
    decoys_crawled: int
    crafting_trials: int


class GhostHidingAttack:
    """Hide a page from the spider by forging its URL as a false positive."""

    def __init__(self, dupefilter: BloomDupeFilter, seed: int = 0x6057) -> None:
        self.dupefilter = dupefilter
        self.seed = seed

    def run(
        self,
        world: WebGraph,
        crawl_first: list[str],
        depth: int = 3,
        root: str = "http://ghost-root.example",
    ) -> GhostHidingReport:
        """Crawl ``crawl_first``, then publish decoys+ghost and re-crawl.

        The ghost is crafted against the filter state *after* the first
        crawl; since Bloom bits only ever get set, it stays a false
        positive for the rest of the filter's life.
        """
        spider = Spider(world, self.dupefilter)
        spider.crawl(crawl_first)

        # Lay the decoy chain, then forge the ghost under its deepest path.
        segments = ["main", "tags", "app", "deep", "more", "extra"]
        decoys: list[str] = []
        path = root.rstrip("/")
        for level in range(depth):
            path = f"{path}/{segments[level % len(segments)]}"
            decoys.append(path)
        factory = UrlFactory(seed=self.seed)
        forgery = GhostForgery(
            self.dupefilter.filter, candidates=factory.candidate_stream(prefix=path)
        )
        ghost_result = forgery.craft_one()
        tree = DecoyTree(root=root, decoys=tuple(decoys), ghost=ghost_result.item)

        # Publish the chain: root -> decoy1 -> ... -> ghost.
        chain = list(tree.pages)
        for parent, child in zip(chain, chain[1:]):
            world.add_page(parent, links=[child])
        world.add_page(tree.ghost)

        stats: CrawlStats = spider.crawl([tree.root])
        decoys_crawled = sum(1 for d in (tree.root, *tree.decoys) if d in stats.crawled)
        return GhostHidingReport(
            ghost_url=tree.ghost,
            decoys=tree.decoys,
            ghost_crawled=tree.ghost in stats.crawled,
            decoys_crawled=decoys_crawled,
            crafting_trials=ghost_result.trials,
        )
