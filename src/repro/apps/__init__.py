"""The three attacked applications, rebuilt as deterministic simulations:
:mod:`repro.apps.scrapy` (web spider, paper Section 5),
:mod:`repro.apps.dablooms` (URL-shortener spam filter, Section 6) and
:mod:`repro.apps.squid` (sibling web proxies, Section 7)."""
