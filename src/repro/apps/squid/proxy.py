"""A caching proxy with Squid-style cache digests (paper Section 7).

Each proxy keeps a URL -> content cache and, on demand, summarises it
into a :class:`~repro.core.cache_digest.CacheDigest` (m = 5n+7 bits,
k = 4 indexes split from one MD5).  Siblings exchange digests; before
going to the origin, a proxy consults its peers' digests and pays one
round-trip for every hit -- *including the false ones*, which is the
attack's lever.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.apps.squid.httpsim import FetchOutcome, OriginServer, SimClock
from repro.core.cache_digest import CacheDigest
from repro.exceptions import ParameterError

__all__ = ["ProxyStats", "SquidProxy"]


@dataclass
class ProxyStats:
    """Operational counters for one proxy."""

    local_hits: int = 0
    sibling_hits: int = 0
    sibling_false_hits: int = 0
    origin_fetches: int = 0
    total_latency_ms: float = 0.0

    @property
    def requests(self) -> int:
        """Client requests served."""
        return self.local_hits + self.sibling_hits + self.origin_fetches

    def false_hit_rate(self) -> float:
        """Digest false hits per request (the paper's headline metric)."""
        if self.requests == 0:
            return 0.0
        return self.sibling_false_hits / self.requests


class SquidProxy:
    """One caching proxy.

    Parameters
    ----------
    name:
        Display name ("proxy1", "proxy2" in the paper's setup).
    origin:
        Upstream server used on cache misses.
    clock:
        Shared simulated clock.
    sibling_rtt_ms:
        Round-trip to a sibling (the paper measures 10 ms).
    origin_latency_ms:
        Cost of a full origin fetch (dominates sibling traffic, which is
        the whole point of cache digests).
    """

    def __init__(
        self,
        name: str,
        origin: OriginServer,
        clock: SimClock,
        sibling_rtt_ms: float = 10.0,
        origin_latency_ms: float | None = None,
    ) -> None:
        if sibling_rtt_ms < 0:
            raise ParameterError("sibling_rtt_ms must be non-negative")
        self.name = name
        self.origin = origin
        self.clock = clock
        self.sibling_rtt_ms = sibling_rtt_ms
        self.origin_latency_ms = (
            origin.latency_ms if origin_latency_ms is None else origin_latency_ms
        )
        self.cache: dict[str, str] = {}
        self.digest: CacheDigest | None = None
        self.siblings: list["SquidProxy"] = []
        self.stats = ProxyStats()

    # ------------------------------------------------------------------

    def add_sibling(self, other: "SquidProxy") -> None:
        """Register a sibling (one direction; see ``peer`` helper)."""
        if other is self:
            raise ParameterError("a proxy cannot be its own sibling")
        if other not in self.siblings:
            self.siblings.append(other)

    def rebuild_digest(self) -> CacheDigest:
        """Summarise the current cache into a fresh digest.

        Real Squid does this on a timer (hourly); tests and attacks call
        it explicitly at the protocol points that matter.
        """
        self.digest = CacheDigest.build(self.cache.keys())
        return self.digest

    def has_cached(self, url: str) -> bool:
        """Ground truth: is ``url`` actually in the local cache?"""
        return url in self.cache

    # ------------------------------------------------------------------

    def client_fetch(self, url: str) -> FetchOutcome:
        """Serve a client request, consulting sibling digests on a miss.

        Every sibling whose digest claims the URL costs one RTT; a false
        claim wastes it (the paper: "each false positive adds at least
        one round-trip time ... to the response delay").
        """
        latency = 0.0
        false_hits = 0

        if url in self.cache:
            self.stats.local_hits += 1
            self.stats.total_latency_ms += latency
            return FetchOutcome(url=url, source="local", latency_ms=latency)

        for sibling in self.siblings:
            if sibling.digest is None or url not in sibling.digest:
                continue
            latency += self.sibling_rtt_ms  # ask the sibling
            if sibling.has_cached(url):
                content = sibling.cache[url]
                self.cache[url] = content
                self.stats.sibling_hits += 1
                self.stats.sibling_false_hits += false_hits
                self.stats.total_latency_ms += latency
                self.clock.advance(latency)
                return FetchOutcome(
                    url=url,
                    source="sibling",
                    latency_ms=latency,
                    sibling_false_hits=false_hits,
                )
            false_hits += 1  # digest lied: wasted round trip

        latency += self.origin_latency_ms
        content = self.origin.fetch(url)
        self.cache[url] = content
        self.stats.origin_fetches += 1
        self.stats.sibling_false_hits += false_hits
        self.stats.total_latency_ms += latency
        self.clock.advance(latency)
        return FetchOutcome(
            url=url, source="origin", latency_ms=latency, sibling_false_hits=false_hits
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<SquidProxy {self.name} cached={len(self.cache)}>"
