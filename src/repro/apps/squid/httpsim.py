"""Minimal HTTP world for the Squid experiment: a clock and an origin.

The paper's testbed is a LAN with one HTTP server answering every GET
and a 10 ms round-trip between sibling proxies.  Latency is what the
attack inflates, so it is modelled explicitly with a simulated
millisecond clock -- deterministic and independent of wall time.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.exceptions import ParameterError

__all__ = ["SimClock", "OriginServer", "FetchOutcome"]


class SimClock:
    """A monotonically advancing millisecond counter."""

    def __init__(self) -> None:
        self._now_ms = 0.0

    @property
    def now_ms(self) -> float:
        """Current simulated time in milliseconds."""
        return self._now_ms

    def advance(self, delta_ms: float) -> None:
        """Advance the clock; negative deltas are rejected."""
        if delta_ms < 0:
            raise ParameterError("time cannot run backwards")
        self._now_ms += delta_ms


class OriginServer:
    """An origin answering every GET with deterministic content.

    Mirrors the paper's setup: "an HTTP server responding to every GET
    request of the client received via one of these proxies".
    """

    def __init__(self, latency_ms: float = 50.0) -> None:
        if latency_ms < 0:
            raise ParameterError("latency must be non-negative")
        self.latency_ms = latency_ms
        self.requests = 0

    def fetch(self, url: str) -> str:
        """Serve ``url`` (content is a deterministic function of it)."""
        self.requests += 1
        return f"<html><body>content-of:{url}</body></html>"


@dataclass(frozen=True)
class FetchOutcome:
    """How one client request was satisfied and what it cost."""

    url: str
    source: str  # "local", "sibling", "origin"
    latency_ms: float
    sibling_false_hits: int = 0

    @property
    def wasted_round_trips(self) -> int:
        """Sibling probes that found nothing (digest false positives)."""
        return self.sibling_false_hits
