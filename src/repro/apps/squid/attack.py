"""The cache-digest pollution attack (paper Section 7).

Setup mirrors the paper: two sibling proxies, a clean cache of 51 URLs
on proxy1, and a malicious client of proxy1 who fetches 100 crafted
URLs through it.  The crafted URLs pollute proxy1's cache digest (each
sets 4 fresh bits).  After the digest exchange, a client of proxy2
issues 100 probe requests for URLs cached nowhere; every probe that
proxy1's digest wrongly claims costs proxy2 a wasted 10 ms round trip.

The attack is compared against an *unpolluted* control where the same
100 insertions are ordinary URLs.  (The paper reports 79 % vs 40 % false
hits; see EXPERIMENTS.md for our measured rates and a discussion of the
baseline discrepancy.)
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.adversary.pollution import PollutionAttack
from repro.apps.squid.siblings import SiblingPair, make_sibling_pair
from repro.core.cache_digest import CacheDigest
from repro.exceptions import ParameterError
from repro.urlgen.faker import UrlFactory

__all__ = ["CacheDigestAttackReport", "CacheDigestAttack"]


@dataclass(frozen=True)
class CacheDigestAttackReport:
    """Measured outcome of one scenario (attacked or control)."""

    polluted: bool
    clean_urls: int
    added_urls: int
    digest_bits: int
    digest_weight: int
    probes: int
    false_hits: int
    added_latency_ms: float

    @property
    def false_hit_rate(self) -> float:
        """Fraction of probes that wasted a sibling round trip."""
        return self.false_hits / self.probes if self.probes else 0.0


class _DigestShim:
    """Adapts a CacheDigest to the attack engine's TargetFilter protocol."""

    def __init__(self, digest: CacheDigest) -> None:
        self._digest = digest
        self.m = digest.m
        self.k = digest.k
        self.strategy = self  # the digest *is* its own index rule

    # IndexStrategy interface -------------------------------------------------
    name = "squid-md5-split"

    def indexes(self, item: str | bytes, k: int, m: int) -> tuple[int, ...]:
        return self._digest.indexes(item)

    # TargetFilter interface --------------------------------------------------
    def add(self, item: str | bytes) -> bool:
        return self._digest.add(item)

    @property
    def hamming_weight(self) -> int:
        return self._digest.hamming_weight

    def current_fpp(self) -> float:
        return self._digest.current_fpp()

    @property
    def bits(self):  # bit_oracle support
        return self._digest.bits


class CacheDigestAttack:
    """Run the polluted and control scenarios on fresh sibling pairs."""

    def __init__(
        self,
        clean_urls: int = 51,
        added_urls: int = 100,
        probes: int = 100,
        sibling_rtt_ms: float = 10.0,
        seed: int = 0x5C1D,
    ) -> None:
        if min(clean_urls, added_urls, probes) < 0:
            raise ParameterError("counts must be non-negative")
        self.clean_urls = clean_urls
        self.added_urls = added_urls
        self.probes = probes
        self.sibling_rtt_ms = sibling_rtt_ms
        self.seed = seed

    # ------------------------------------------------------------------

    def _seed_clean_cache(self, pair: SiblingPair) -> list[str]:
        factory = UrlFactory(seed=self.seed)
        urls = factory.urls(self.clean_urls)
        for url in urls:
            pair.proxy1.client_fetch(url)
        return urls

    def _craft_pollution_urls(self, pair: SiblingPair) -> list[str]:
        """Craft URLs against a shadow of proxy1's *future* digest.

        The digest is deterministic in the cached URL set, so the
        adversary simulates it: clean URLs first, then her crafted ones,
        each chosen to set 4 fresh bits of the final 5n+7-bit digest.
        The shadow is sized for the final entry count -- the adversary
        knows how many URLs she will add.
        """
        final_count = self.clean_urls + self.added_urls
        shadow = CacheDigest(final_count)
        for url in pair.proxy1.cache:
            shadow.add(url)
        shim = _DigestShim(shadow)
        factory = UrlFactory(seed=self.seed ^ 0xA77)
        attack = PollutionAttack(
            shim, candidates=factory.candidate_stream(prefix="http://attacker.example")
        )
        report = attack.run(self.added_urls, insert=True)
        return report.items

    def _honest_urls(self) -> list[str]:
        return UrlFactory(seed=self.seed ^ 0xBEEF).urls(self.added_urls)

    # ------------------------------------------------------------------

    def run_scenario(self, polluted: bool) -> CacheDigestAttackReport:
        """One full scenario on a fresh pair; ``polluted`` picks crafted
        versus ordinary added URLs."""
        pair = make_sibling_pair(sibling_rtt_ms=self.sibling_rtt_ms)
        self._seed_clean_cache(pair)

        added = (
            self._craft_pollution_urls(pair) if polluted else self._honest_urls()
        )
        for url in added:
            pair.proxy1.client_fetch(url)

        # But the digest is built at capacity = current entries: the
        # adversary anticipated that in her shadow.
        pair.exchange_digests()
        digest = pair.proxy1.digest
        assert digest is not None

        probe_factory = UrlFactory(seed=self.seed ^ 0xF00D)
        false_hits = 0
        added_latency = 0.0
        for _ in range(self.probes):
            url = probe_factory.url()
            outcome = pair.proxy2.client_fetch(url)
            false_hits += outcome.sibling_false_hits
            added_latency += outcome.sibling_false_hits * self.sibling_rtt_ms

        return CacheDigestAttackReport(
            polluted=polluted,
            clean_urls=self.clean_urls,
            added_urls=self.added_urls,
            digest_bits=digest.m,
            digest_weight=digest.hamming_weight,
            probes=self.probes,
            false_hits=false_hits,
            added_latency_ms=added_latency,
        )

    def run(self) -> tuple[CacheDigestAttackReport, CacheDigestAttackReport]:
        """Both scenarios: (polluted, control)."""
        return self.run_scenario(polluted=True), self.run_scenario(polluted=False)
