"""Squid-style sibling proxies with cache digests and the Section 7
pollution attack."""

from repro.apps.squid.attack import CacheDigestAttack, CacheDigestAttackReport
from repro.apps.squid.httpsim import FetchOutcome, OriginServer, SimClock
from repro.apps.squid.proxy import ProxyStats, SquidProxy
from repro.apps.squid.siblings import SiblingPair, make_sibling_pair

__all__ = [
    "CacheDigestAttack",
    "CacheDigestAttackReport",
    "FetchOutcome",
    "OriginServer",
    "ProxyStats",
    "SiblingPair",
    "SimClock",
    "SquidProxy",
    "make_sibling_pair",
]
