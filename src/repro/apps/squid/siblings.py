"""Wiring helpers for sibling proxy pairs (the paper's LAN testbed)."""

from __future__ import annotations

from dataclasses import dataclass

from repro.apps.squid.httpsim import OriginServer, SimClock
from repro.apps.squid.proxy import SquidProxy

__all__ = ["SiblingPair", "make_sibling_pair"]


@dataclass
class SiblingPair:
    """Two proxies configured as siblings plus their shared substrate."""

    proxy1: SquidProxy
    proxy2: SquidProxy
    origin: OriginServer
    clock: SimClock

    def exchange_digests(self) -> None:
        """Both proxies rebuild and (implicitly) swap digests.

        In Squid the digest is fetched over HTTP from the peer; here the
        sibling reads the peer's ``digest`` attribute, which is the same
        trust model -- the paper assumes honest proxies, ruling out the
        trivial fake-digest attack.
        """
        self.proxy1.rebuild_digest()
        self.proxy2.rebuild_digest()


def make_sibling_pair(
    sibling_rtt_ms: float = 10.0, origin_latency_ms: float = 50.0
) -> SiblingPair:
    """Build the paper's topology: client -> proxy2 <-> proxy1 -> origin."""
    clock = SimClock()
    origin = OriginServer(latency_ms=origin_latency_ms)
    proxy1 = SquidProxy("proxy1", origin, clock, sibling_rtt_ms=sibling_rtt_ms)
    proxy2 = SquidProxy("proxy2", origin, clock, sibling_rtt_ms=sibling_rtt_ms)
    proxy1.add_sibling(proxy2)
    proxy2.add_sibling(proxy1)
    return SiblingPair(proxy1=proxy1, proxy2=proxy2, origin=origin, clock=clock)
