"""The three attacks on the Dablooms spam filter (paper Section 6.2).

* **Pollution** -- the adversary's reported URLs are crafted so each
  sets k fresh counters in the active slice; Fig. 8 plots the compound
  false-positive probability F against how many of the lambda slices she
  polluted (she may arrive late and only poison the last i).
* **Deletion** -- MurmurHash inversion forges a second pre-image of any
  victim URL (identical 128-bit hash, hence identical counters);
  retracting the forgery erases the victim.
* **Counter overflow** -- single-counter keys wrap the 4-bit counters so
  a "full" slice holds nothing (delegated to
  :class:`~repro.adversary.overflow.CounterOverflowAttack`).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.adversary.overflow import CounterOverflowAttack, OverflowReport, plan_overflow
from repro.adversary.pollution import PollutionAttack
from repro.apps.dablooms.service import ShorteningService
from repro.exceptions import ParameterError
from repro.hashing.inversion import invert_murmur3_x64_128
from repro.hashing.kirsch_mitzenmacher import KirschMitzenmacherStrategy
from repro.urlgen.faker import UrlFactory

__all__ = [
    "SlicePollutionReport",
    "DabloomsPollutionAttack",
    "SecondPreimageDeletion",
    "DabloomsOverflowAttack",
]


@dataclass
class SlicePollutionReport:
    """Fig. 8 raw data: compound F after each slice is filled."""

    polluted_slices: list[int] = field(default_factory=list)
    compound_fpp_after: list[float] = field(default_factory=list)
    crafting_trials: int = 0

    @property
    def final_fpp(self) -> float:
        """Compound F once all slices are filled."""
        return self.compound_fpp_after[-1] if self.compound_fpp_after else 0.0


class DabloomsPollutionAttack:
    """Fill a service's Dablooms slices, polluting a chosen subset.

    Parameters
    ----------
    service:
        The shortening service under attack.
    seed:
        Seed for both honest filler URLs and crafted candidates.
    """

    def __init__(self, service: ShorteningService, seed: int = 0xDAB) -> None:
        self.service = service
        self.seed = seed

    def run(self, total_slices: int, polluted_last: int) -> SlicePollutionReport:
        """Fill ``total_slices`` slices; pollute only the last
        ``polluted_last`` of them (``polluted_last = total_slices`` is
        the paper's "full attack").

        Honest slices receive realistic malicious-looking URLs; polluted
        slices receive crafted ones.  The compound F is sampled after
        each slice fills -- the x axis of Fig. 8.
        """
        if polluted_last < 0 or polluted_last > total_slices:
            raise ParameterError("polluted_last must be in [0, total_slices]")
        blocklist = self.service.blocklist
        capacity = blocklist.slice_capacity
        honest = UrlFactory(seed=self.seed)
        report = SlicePollutionReport()

        for slice_index in range(total_slices):
            # Dablooms scales lazily on the next insertion; force the new
            # slice now so crafting targets the slice the reports will
            # actually land in.
            if blocklist.slice_fill(blocklist.slice_count - 1) >= capacity:
                blocklist.force_scale()
            pollute = slice_index >= total_slices - polluted_last
            if pollute:
                attack = PollutionAttack(
                    blocklist.active_slice,
                    candidates=UrlFactory(
                        seed=self.seed ^ (slice_index + 1)
                    ).candidate_stream(prefix="http://phish.example"),
                )
                for _ in range(capacity):
                    crafted = attack.craft_one()
                    self.service.report_malicious(crafted.item)
                report.crafting_trials += attack.engine.total_trials
                report.polluted_slices.append(slice_index)
            else:
                for _ in range(capacity):
                    self.service.report_malicious(honest.url())
            report.compound_fpp_after.append(blocklist.compound_fpp(current=True))
        return report


class SecondPreimageDeletion:
    """Erase a victim URL via a constant-time MurmurHash second pre-image.

    Because Dablooms derives *all* counters from one murmur128 value,
    any input with the same 128-bit hash shares the victim's entire
    index set; retracting the forgery decrements exactly the victim's
    counters.
    """

    def __init__(self, service: ShorteningService, seed: int = 0) -> None:
        strategy = service.blocklist.strategy
        if not isinstance(strategy, KirschMitzenmacherStrategy):
            raise ParameterError(
                "second pre-image forgery needs the Kirsch-Mitzenmacher/Murmur "
                "strategy Dablooms uses"
            )
        self.service = service
        self.strategy = strategy
        self.murmur_seed = seed

    def forge_doppelganger(self, victim: str | bytes) -> bytes:
        """A distinct key with the same murmur128 pair as ``victim``."""
        h1, h2 = self.strategy.pair(victim)
        forged = invert_murmur3_x64_128(h1, h2, seed=self.murmur_seed)
        victim_bytes = victim.encode("utf-8") if isinstance(victim, str) else victim
        if forged == victim_bytes:  # pragma: no cover - needs a 16-byte victim
            raise ParameterError("forgery collided with the victim itself")
        return forged

    def erase(self, victim: str | bytes) -> bool:
        """Remove ``victim`` from the blocklist without ever knowing how
        it was inserted; True if the victim now passes the filter."""
        forged = self.forge_doppelganger(victim)
        self.service.retract_malicious(forged)
        return not self.service.is_blocked(victim)


class DabloomsOverflowAttack:
    """Drive the counter-overflow wipe against a service's active slice."""

    def __init__(self, service: ShorteningService, seed: int = 0) -> None:
        self.service = service
        self.seed = seed

    def run(self, n: int | None = None) -> OverflowReport:
        """Insert ``n`` forged reports (default: one slice capacity).

        Afterwards the slice's insertion counter says "full" while its
        counters are (almost) all zero: Dablooms scales to a new slice
        and the memory is wasted -- the paper's "empty filters make
        Dablooms bigger and useless".
        """
        blocklist = self.service.blocklist
        count = blocklist.slice_capacity if n is None else n
        target_slice = blocklist.active_slice
        forger = CounterOverflowAttack(target_slice, seed=self.seed)
        plan = plan_overflow(
            count, target_slice.k, target_slice.counters.counter_bits, target_slice.m
        )
        overflow_before = target_slice.counters.overflow_events
        report = OverflowReport()
        # Route insertions through the service so slice bookkeeping
        # (insert counters, scaling) sees them, exactly like real reports.
        for counter, item_count in plan.assignments.items():
            for variant in range(item_count):
                key = forger.forge_key(counter, variant)
                self.service.report_malicious(key)
                report.forged_keys.append(key)
                report.items_inserted += 1
        report.nonzero_counters_after = target_slice.counters.nonzero_count()
        report.overflow_events = (
            target_slice.counters.overflow_events - overflow_before
        )
        report.lost_keys = sum(
            1 for key in report.forged_keys if not self.service.is_blocked(key)
        )
        return report
