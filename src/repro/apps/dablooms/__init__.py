"""Bitly-like shortening service guarded by Dablooms, plus the
Section 6 attacks (pollution, second-pre-image deletion, counter
overflow)."""

from repro.apps.dablooms.attack import (
    DabloomsOverflowAttack,
    DabloomsPollutionAttack,
    SecondPreimageDeletion,
    SlicePollutionReport,
)
from repro.apps.dablooms.service import ShortenResult, ShorteningService

__all__ = [
    "DabloomsOverflowAttack",
    "DabloomsPollutionAttack",
    "SecondPreimageDeletion",
    "ShortenResult",
    "ShorteningService",
    "SlicePollutionReport",
]
