"""A Bitly-like URL shortening service guarded by Dablooms (Section 6).

The service keeps a Dablooms filter of known-malicious URLs.  Shortening
a URL first checks the filter; a hit refuses the request (or, in a
deployment with a confirmation backend, triggers an expensive lookup).
Malicious URLs enter the filter through *reports* -- which is the
insertion channel the chosen-insertion adversary abuses: she floods the
web with, or directly reports, URLs of her choosing (paper: "register
her URLs directly to anti-phishing websites such as PhishTank").
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.dablooms import Dablooms
from repro.core.counters import OverflowPolicy
from repro.exceptions import ParameterError

__all__ = ["ShortenResult", "ShorteningService"]


@dataclass(frozen=True)
class ShortenResult:
    """Outcome of one shorten request."""

    url: str
    allowed: bool
    short_code: str | None
    flagged_malicious: bool


class ShorteningService:
    """URL shortener with a Dablooms spam filter in front.

    Parameters
    ----------
    slice_capacity, f0, r, max_slices:
        Dablooms parameters (paper Fig. 8 uses capacity 10000, f0 0.01,
        r 0.9, lambda 10).
    """

    def __init__(
        self,
        slice_capacity: int = 10_000,
        f0: float = 0.01,
        r: float = 0.9,
        max_slices: int | None = None,
        overflow: OverflowPolicy = OverflowPolicy.WRAP,
    ) -> None:
        self.blocklist = Dablooms(
            slice_capacity=slice_capacity,
            f0=f0,
            r=r,
            overflow=overflow,
            max_slices=max_slices,
        )
        self._next_code = 0
        self.refused = 0
        self.shortened = 0

    def report_malicious(self, url: str | bytes) -> None:
        """Record a (purportedly) malicious URL -- the insertion channel."""
        self.blocklist.add(url)

    def retract_malicious(self, url: str | bytes) -> bool:
        """Remove a URL from the blocklist (the deletion channel the
        Section 6.2 deletion attack abuses)."""
        return self.blocklist.remove(url)

    def is_blocked(self, url: str | bytes) -> bool:
        """Whether the filter currently flags ``url``."""
        return url in self.blocklist

    def shorten(self, url: str) -> ShortenResult:
        """Shorten ``url`` unless the spam filter flags it."""
        if not url:
            raise ParameterError("url must be non-empty")
        if self.is_blocked(url):
            self.refused += 1
            return ShortenResult(
                url=url, allowed=False, short_code=None, flagged_malicious=True
            )
        self._next_code += 1
        self.shortened += 1
        return ShortenResult(
            url=url,
            allowed=True,
            short_code=f"bit.ly/{self._next_code:06x}",
            flagged_malicious=False,
        )
