"""LOAF: what happens when the *filter itself* is untrusted (Section 4).

Before defining its adversary models, the paper fixes a standing
assumption -- "Bloom filters are always deployed and maintained by
trusted parties" -- and illustrates why with LOAF, the discontinued
email extension that shipped each user's address book as a Bloom filter
so recipients could whitelist friends-of-friends.  The trivial attack:
send an all-ones filter and every address in the world becomes a
trusted friend.

This module reproduces that failure as a miniature protocol, because it
is the boundary case that motivates everything else in the package: the
chosen-insertion/query-only/deletion models all assume the filter's
*maintainer* is honest, and LOAF shows the assumption is load-bearing.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.bloom import BloomFilter
from repro.exceptions import ParameterError

__all__ = ["LoafMessage", "LoafReceiver", "forge_all_ones_filter"]


@dataclass(frozen=True)
class LoafMessage:
    """An email carrying the sender's address-book filter."""

    sender: str
    address_book_filter: bytes
    filter_m: int
    filter_k: int


class LoafReceiver:
    """A mail client using senders' filters as a whitelist.

    ``is_whitelisted(addr, msg)`` answers "is ``addr`` a friend of the
    sender of ``msg``?" by querying the attached filter -- trusting a
    structure the *sender* built, which is the design flaw.
    """

    def __init__(self) -> None:
        self.whitelist_hits = 0

    def is_whitelisted(self, address: str, message: LoafMessage) -> bool:
        """Query the sender-supplied filter (the vulnerable step)."""
        received = BloomFilter.from_bytes(
            message.filter_m, message.filter_k, message.address_book_filter
        )
        hit = address in received
        if hit:
            self.whitelist_hits += 1
        return hit


def forge_all_ones_filter(m: int = 1024, k: int = 4) -> LoafMessage:
    """The trivial attack: a saturated filter whitelists everything."""
    if m <= 0 or k <= 0:
        raise ParameterError("m and k must be positive")
    forged = BloomFilter(m, k)
    forged.bits.set_all()
    return LoafMessage(
        sender="attacker@spam.example",
        address_book_filter=forged.to_bytes(),
        filter_m=m,
        filter_k=k,
    )
