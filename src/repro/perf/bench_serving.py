"""Serving benchmark: end-to-end requests/sec with and without coalescing.

``bench_hotpath`` measures the filter core in isolation; this grid
measures what clients actually see -- many concurrent connections
sending small requests through the full serving stack -- across

* transports: ``inproc`` (gateway called directly), ``inproc-procpool``
  (gateway called directly over one worker process per shard),
  ``tcp-local`` (TCP server over an in-process backend),
  ``tcp-procpool`` (TCP over the worker processes), and
* modes: coalescing **off** (the legacy serial-connection, one backend
  call per request path, byte-identical to the pre-coalescer stack) vs
  **on** (v2 pipelined connections + the gateway's micro-batch
  coalescer merging concurrent requests into kernel-sized batches).

The interesting cells are the small request sizes: at ``request_size=1``
every uncoalesced request pays a full gateway round (and, on the
procpool transports, a pipe hop) for one item, which is exactly the
per-request overhead the coalescer amortises across clients.  The
``inproc-procpool`` cell isolates that amortisation from wire-protocol
CPU: with no codec work sharing the event loop, merged pipe calls are
the whole story and the single-item speedup is largest there.  The
``inproc`` (local backend) cell is the deliberate counter-example --
when the backend call is nearly free, coalescing only adds scheduling
overhead, so its ratio hovers at or below 1x.  The TCP cells are
bounded by codec CPU: this harness runs client, server and gateway on
one event loop, so once that loop saturates on wire work, merging
backend calls cannot add throughput (it still cuts pipe hops on
``tcp-procpool``).

The output file carries a schema tag (:data:`BENCH_SCHEMA`); CI runs a
smoke pass and :func:`check_bench_file` against the committed
``BENCH_serving.json``, which also enforces the headline claim -- a
full run must show >=3x requests/sec for single-item requests on at
least one transport.

Run with ``python -m repro.perf serving`` (or
``python -m repro.perf.bench_serving``).
"""

from __future__ import annotations

import argparse
import asyncio
import json
import platform
import time

from repro import accel
from repro.service.client import MembershipClient
from repro.service.config import ServiceConfig
from repro.service.gateway import MembershipGateway
from repro.service.server import MembershipServer

__all__ = ["BENCH_SCHEMA", "run_bench", "check_bench_file", "main"]

#: Schema tag written into (and demanded of) every bench file.
BENCH_SCHEMA = "repro.bench_serving/1"

#: Concurrent client coroutines per cell (the acceptance scenario is
#: "many clients, small requests"; more clients mean deeper coalesce
#: queues, and 96 keeps every transport saturated).
CLIENTS = 96

#: Coalescer window for the "on" cells.  Window 0 (next-tick flush, no
#: added deadline latency) merges best at this client count: clients
#: resume together after each flush, so their next submissions already
#: cluster in one event-loop turn, and a deadline window only delays
#: the flush without deepening the merge once the loop is saturated.
COALESCE_WINDOW_US = 0
COALESCE_MAX_BATCH = 64

#: Server-side concurrent dispatches / client-side in-flight ceiling for
#: the pipelined ("on") cells.
PIPELINE_DEPTH = 64

DEFAULT_TRANSPORTS = ("inproc", "inproc-procpool", "tcp-local", "tcp-procpool")
DEFAULT_REQUEST_SIZES = (1, 8, 64)
SMOKE_TRANSPORTS = ("inproc",)
SMOKE_REQUEST_SIZES = (1,)

#: Requests each client sends, per request size (smaller requests need
#: more rounds for a stable clock; bigger ones carry more items each).
ROUNDS_BY_SIZE = {1: 32, 8: 12, 64: 6}

_REQUIRED_RESULT_KEYS = frozenset(
    {"transport", "coalesce", "request_size", "clients",
     "requests_per_sec", "seconds"}
)


def _service_config(transport: str) -> ServiceConfig:
    """One geometry for every cell; rotation off so no cell pays a
    mid-run filter swap the others did not."""
    return ServiceConfig(
        shards=4,
        shard_m=1 << 16,
        shard_k=4,
        rotation_threshold=None,
        backend="process" if transport.endswith("procpool") else "local",
    )


def _items(client_idx: int, round_idx: int, size: int) -> list[bytes]:
    return [
        b"serve:%d:%d:%d" % (client_idx, round_idx, i) for i in range(size)
    ]


async def _populate(gateway: MembershipGateway, clients: int, rounds: int, size: int) -> None:
    """Pre-insert every even round's items so queries mix hits and
    misses instead of short-circuiting all-negative."""
    pending: list[bytes] = []
    for client_idx in range(clients):
        for round_idx in range(0, rounds, 2):
            pending.extend(_items(client_idx, round_idx, size))
            if len(pending) >= 1024:
                await gateway.insert_batch(pending, client="populate")
                pending = []
    if pending:
        await gateway.insert_batch(pending, client="populate")


async def _drive(transport_obj, clients: int, rounds: int, size: int) -> float:
    """Run the concurrent client swarm; returns elapsed seconds."""

    async def one_client(client_idx: int) -> None:
        label = f"bench-{client_idx}"
        for round_idx in range(rounds):
            await transport_obj.query_batch(
                _items(client_idx, round_idx, size), client=label
            )

    start = time.perf_counter()
    await asyncio.gather(*(one_client(i) for i in range(clients)))
    return time.perf_counter() - start


async def _run_once(
    transport: str, coalesce: bool, size: int, clients: int, rounds: int
) -> tuple[float, dict]:
    """One timed pass of a grid cell; returns (seconds, coalesce stats)."""
    gateway = MembershipGateway.from_config(_service_config(transport))
    try:
        if coalesce:
            gateway.configure_coalescing(
                window_us=COALESCE_WINDOW_US, max_batch=COALESCE_MAX_BATCH
            )
        await _populate(gateway, clients, rounds, size)
        if transport.startswith("inproc"):
            elapsed = await _drive(gateway, clients, rounds, size)
        else:
            async with MembershipServer(
                gateway, pipeline_depth=PIPELINE_DEPTH if coalesce else 0
            ) as server:
                host, port = server.address
                # Off = today's baseline wire discipline (pooled v1
                # connections, serial server); on = one multiplexed v2
                # connection with PIPELINE_DEPTH requests in flight.
                client = MembershipClient(
                    host, port, pipeline=PIPELINE_DEPTH if coalesce else 0
                )
                try:
                    elapsed = await _drive(client, clients, rounds, size)
                finally:
                    await client.aclose()
        return elapsed, gateway.coalesce_stats()
    finally:
        gateway.close()


def _bench_cell(
    transport: str, coalesce: bool, size: int, clients: int, repeats: int
) -> dict:
    """Best-of-``repeats`` requests/sec for one grid cell."""
    rounds = ROUNDS_BY_SIZE.get(size, max(2, 64 // size))
    best = float("inf")
    stats: dict = {}
    for _ in range(repeats):
        seconds, cell_stats = asyncio.run(
            _run_once(transport, coalesce, size, clients, rounds)
        )
        if seconds < best:
            best = seconds
            stats = cell_stats
    requests = clients * rounds
    return {
        "transport": transport,
        "coalesce": coalesce,
        "request_size": size,
        "clients": clients,
        "rounds": rounds,
        "seconds": round(best, 6),
        "requests_per_sec": round(requests / best, 1),
        "items_per_sec": round(requests * size / best, 1),
        "coalesce_ratio": stats.get("coalesce_ratio", 0.0),
    }


def run_bench(
    transports=DEFAULT_TRANSPORTS,
    request_sizes=DEFAULT_REQUEST_SIZES,
    repeats: int = 3,
    clients: int = CLIENTS,
    smoke: bool = False,
) -> dict:
    """Run the serving grid and return the bench document."""
    results = []
    for transport in transports:
        for size in request_sizes:
            for coalesce in (False, True):
                results.append(
                    _bench_cell(transport, coalesce, size, clients, repeats)
                )
    by_cell = {
        (r["transport"], r["coalesce"], r["request_size"]): r["requests_per_sec"]
        for r in results
    }
    speedups = []
    for transport in transports:
        for size in request_sizes:
            off = by_cell[(transport, False, size)]
            on = by_cell[(transport, True, size)]
            speedups.append(
                {
                    "transport": transport,
                    "request_size": size,
                    "speedup": round(on / off, 2),
                }
            )
    return {
        "schema": BENCH_SCHEMA,
        "generated_by": "python -m repro.perf serving",
        "smoke": smoke,
        "config": {
            "clients": clients,
            "transports": list(transports),
            "request_sizes": list(request_sizes),
            "rounds_by_size": {str(k): v for k, v in ROUNDS_BY_SIZE.items()},
            "coalesce_window_us": COALESCE_WINDOW_US,
            "coalesce_max_batch": COALESCE_MAX_BATCH,
            "pipeline_depth": PIPELINE_DEPTH,
            "repeats": repeats,
            "python": platform.python_version(),
            "numpy": getattr(accel.numpy_or_none(), "__version__", None),
        },
        "results": results,
        "speedups": speedups,
    }


def check_bench_file(path: str) -> dict:
    """Validate a committed serving bench file.

    Raises ``ValueError`` if the file is missing, unparsable,
    schema-stale, structurally empty -- or, for a full (non-smoke) run,
    if no transport shows the headline >=3x single-item coalescing win.
    """
    try:
        with open(path, "rb") as handle:
            doc = json.load(handle)
    except FileNotFoundError:
        raise ValueError(f"bench file {path} is missing") from None
    except json.JSONDecodeError as exc:
        raise ValueError(f"bench file {path} is not valid JSON: {exc}") from exc
    if doc.get("schema") != BENCH_SCHEMA:
        raise ValueError(
            f"bench file {path} has schema {doc.get('schema')!r}, current is "
            f"{BENCH_SCHEMA!r} -- regenerate with python -m repro.perf serving"
        )
    results = doc.get("results")
    if not isinstance(results, list) or not results:
        raise ValueError(f"bench file {path} carries no results")
    for row in results:
        missing = _REQUIRED_RESULT_KEYS - set(row)
        if missing:
            raise ValueError(
                f"bench file {path} result row missing keys {sorted(missing)}"
            )
    if not doc.get("smoke"):
        single = [
            cell["speedup"]
            for cell in doc.get("speedups", [])
            if cell.get("request_size") == 1
        ]
        if not single:
            raise ValueError(
                f"bench file {path} has no single-item speedup cells"
            )
        if max(single) < 3.0:
            raise ValueError(
                f"bench file {path} best single-item coalescing speedup is "
                f"x{max(single)}, below the claimed x3.0 -- regenerate or "
                "investigate the serving-path regression"
            )
    return doc


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.perf serving", description=__doc__.splitlines()[0]
    )
    parser.add_argument(
        "--out", default=None, help="write the bench document to this path"
    )
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="tiny grid (CI: proves the harness runs, not the numbers)",
    )
    parser.add_argument("--repeats", type=int, default=3)
    parser.add_argument(
        "--check",
        metavar="PATH",
        help="validate an existing bench file instead of running",
    )
    args = parser.parse_args(argv)
    if args.check:
        doc = check_bench_file(args.check)
        print(
            f"{args.check}: schema {doc['schema']}, "
            f"{len(doc['results'])} results, "
            f"{len(doc.get('speedups', []))} speedup cells"
        )
        return 0
    if args.smoke:
        doc = run_bench(
            SMOKE_TRANSPORTS,
            SMOKE_REQUEST_SIZES,
            repeats=1,
            clients=8,
            smoke=True,
        )
    else:
        doc = run_bench(repeats=args.repeats)
    text = json.dumps(doc, indent=2) + "\n"
    if args.out:
        with open(args.out, "w") as handle:
            handle.write(text)
        print(f"wrote {args.out}")
    else:
        print(text, end="")
    for cell in doc["speedups"]:
        print(
            f"  {cell['transport']:>12} request_size={cell['request_size']:>3} "
            f"-> x{cell['speedup']}"
        )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
