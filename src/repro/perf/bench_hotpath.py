"""Hot-path benchmark: batch insert/query throughput, pure vs accelerated.

One run covers the grid ``ops x modes x batch_sizes x shard_counts`` on
Bloom shards using the Kirsch-Mitzenmacher/murmur128 strategy -- the
configuration where the whole pipeline (batched hashing, grouped bit
work) is vectorisable, and also exactly what Dablooms deploys.  Shards
split each batch round-robin, so higher shard counts measure how
per-shard batch fragmentation erodes vectorisation gains.

The output file carries a schema tag (:data:`BENCH_SCHEMA`); CI runs a
smoke pass and :func:`check_bench_file` against the committed
``BENCH_hotpath.json`` so the file can neither go missing nor silently
rot when the schema moves.

Run with ``python -m repro.perf`` (or ``python -m repro.perf.bench_hotpath``).
"""

from __future__ import annotations

import argparse
import json
import platform
import time

from repro import accel
from repro.core.bloom import BloomFilter
from repro.hashing.kirsch_mitzenmacher import KirschMitzenmacherStrategy
from repro.perf.timers import StageTimer
from repro.service.codec import pack_bools

__all__ = ["BENCH_SCHEMA", "run_bench", "check_bench_file", "main"]

#: Schema tag written into (and demanded of) every bench file.
BENCH_SCHEMA = "repro.bench_hotpath/1"

#: Filter geometry: large enough that the biggest benchmarked batch
#: leaves the filter far from saturation.
M_PER_SHARD = 1 << 20
K = 4

DEFAULT_BATCH_SIZES = (256, 4096, 32768)
DEFAULT_SHARD_COUNTS = (1, 4)
SMOKE_BATCH_SIZES = (256,)
SMOKE_SHARD_COUNTS = (1,)

_REQUIRED_RESULT_KEYS = frozenset(
    {"op", "mode", "batch_size", "shards", "items_per_sec", "seconds"}
)


def _make_items(count: int) -> list[bytes]:
    return [b"bench:key:%d" % i for i in range(count)]


def _route(items: list[bytes], shards: int) -> list[list[bytes]]:
    return [items[i::shards] for i in range(shards)]


def _fresh_shards(shards: int, strategy) -> list[BloomFilter]:
    return [BloomFilter(M_PER_SHARD, K, strategy) for _ in range(shards)]


def _bench_case(
    op: str, mode: str, batch_size: int, shards: int, repeats: int, strategy
) -> dict:
    """Best-of-``repeats`` throughput for one grid cell."""
    items = _make_items(batch_size)
    chunks = _route(items, shards)
    best = float("inf")
    with accel.use_mode(mode):
        for _ in range(repeats):
            filters = _fresh_shards(shards, strategy)
            if op == "query":
                # Query throughput over half-populated shards: answers
                # mix hits and misses instead of being all-False.
                for filt, chunk in zip(filters, chunks):
                    filt.add_batch(chunk[: max(1, len(chunk) // 2)])
            start = time.perf_counter()
            if op == "insert":
                for filt, chunk in zip(filters, chunks):
                    filt.add_batch(chunk)
            else:
                for filt, chunk in zip(filters, chunks):
                    filt.contains_batch(chunk)
            best = min(best, time.perf_counter() - start)
    return {
        "op": op,
        "mode": mode,
        "batch_size": batch_size,
        "shards": shards,
        "seconds": round(best, 6),
        "items_per_sec": round(batch_size / best, 1),
    }


def _stage_breakdown(batch_size: int, strategy) -> dict:
    """Where an accelerated insert+query batch spends its time."""
    timer = StageTimer()
    items = _make_items(batch_size)
    filt = BloomFilter(M_PER_SHARD, K, strategy)
    with accel.use_mode("auto"):
        with timer.stage("hashing.flat_batch_indexes"):
            flat = strategy.flat_batch_indexes(items, filt.k, filt.m)
        with timer.stage("core.set_groups"):
            answers = filt.bits.set_groups(flat, filt.k)
        with timer.stage("hashing.flat_batch_indexes"):
            flat = strategy.flat_batch_indexes(items, filt.k, filt.m)
        with timer.stage("core.all_set_groups"):
            answers = filt.bits.all_set_groups(flat, filt.k)
        with timer.stage("codec.pack_bools"):
            pack_bools(answers)
    return timer.report()


def run_bench(
    batch_sizes=DEFAULT_BATCH_SIZES,
    shard_counts=DEFAULT_SHARD_COUNTS,
    repeats: int = 3,
) -> dict:
    """Run the full grid and return the bench document (schema-tagged)."""
    strategy = KirschMitzenmacherStrategy()
    modes = ["pure"]
    if accel.numpy_or_none() is not None:
        modes.append("numpy")
        # Warm-up outside any timed cell: the first accelerated batch
        # pays the one-time kernel-module imports.
        with accel.use_mode("numpy"):
            warm = BloomFilter(M_PER_SHARD, K, strategy)
            warm.add_batch(_make_items(64))
            warm.contains_batch(_make_items(64))
            pack_bools([True] * 64)
    results = []
    for op in ("insert", "query"):
        for batch_size in batch_sizes:
            for shards in shard_counts:
                for mode in modes:
                    results.append(
                        _bench_case(op, mode, batch_size, shards, repeats, strategy)
                    )
    by_cell = {
        (r["op"], r["mode"], r["batch_size"], r["shards"]): r["items_per_sec"]
        for r in results
    }
    speedups = []
    if "numpy" in modes:
        for op in ("insert", "query"):
            for batch_size in batch_sizes:
                for shards in shard_counts:
                    pure = by_cell[(op, "pure", batch_size, shards)]
                    fast = by_cell[(op, "numpy", batch_size, shards)]
                    speedups.append(
                        {
                            "op": op,
                            "batch_size": batch_size,
                            "shards": shards,
                            "speedup": round(fast / pure, 2),
                        }
                    )
    return {
        "schema": BENCH_SCHEMA,
        "generated_by": "python -m repro.perf",
        "config": {
            "m_per_shard": M_PER_SHARD,
            "k": K,
            "strategy": strategy.name,
            "batch_sizes": list(batch_sizes),
            "shard_counts": list(shard_counts),
            "repeats": repeats,
            "python": platform.python_version(),
            "numpy": getattr(accel.numpy_or_none(), "__version__", None),
        },
        "results": results,
        "speedups": speedups,
        "stage_breakdown": _stage_breakdown(max(batch_sizes), strategy),
    }


def check_bench_file(path: str) -> dict:
    """Validate a committed bench file; raises ``ValueError`` if it is
    missing, unparsable, schema-stale, or structurally empty."""
    try:
        with open(path, "rb") as handle:
            doc = json.load(handle)
    except FileNotFoundError:
        raise ValueError(f"bench file {path} is missing") from None
    except json.JSONDecodeError as exc:
        raise ValueError(f"bench file {path} is not valid JSON: {exc}") from exc
    if doc.get("schema") != BENCH_SCHEMA:
        raise ValueError(
            f"bench file {path} has schema {doc.get('schema')!r}, "
            f"current is {BENCH_SCHEMA!r} -- regenerate with python -m repro.perf"
        )
    results = doc.get("results")
    if not isinstance(results, list) or not results:
        raise ValueError(f"bench file {path} carries no results")
    for row in results:
        missing = _REQUIRED_RESULT_KEYS - set(row)
        if missing:
            raise ValueError(
                f"bench file {path} result row missing keys {sorted(missing)}"
            )
    return doc


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.perf", description=__doc__.splitlines()[0]
    )
    parser.add_argument(
        "--out", default=None, help="write the bench document to this path"
    )
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="tiny grid (CI: proves the harness runs, not the numbers)",
    )
    parser.add_argument("--repeats", type=int, default=3)
    parser.add_argument(
        "--check",
        metavar="PATH",
        help="validate an existing bench file instead of running",
    )
    args = parser.parse_args(argv)
    if args.check:
        doc = check_bench_file(args.check)
        print(
            f"{args.check}: schema {doc['schema']}, "
            f"{len(doc['results'])} results, "
            f"{len(doc.get('speedups', []))} speedup cells"
        )
        return 0
    if args.smoke:
        doc = run_bench(SMOKE_BATCH_SIZES, SMOKE_SHARD_COUNTS, repeats=1)
    else:
        doc = run_bench(repeats=args.repeats)
    text = json.dumps(doc, indent=2) + "\n"
    if args.out:
        with open(args.out, "w") as handle:
            handle.write(text)
        print(f"wrote {args.out}")
    else:
        print(text, end="")
    for cell in doc["speedups"]:
        print(
            f"  {cell['op']:>6} batch={cell['batch_size']:>6} "
            f"shards={cell['shards']} -> x{cell['speedup']}"
        )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
