"""Wall-clock stage attribution for the hot-path benchmarks.

A :class:`StageTimer` accumulates elapsed time per named stage so a
benchmark can answer "where did the batch go" -- hashing vs filter core
vs codec -- without a profiler in the loop.  Overhead is two
``perf_counter`` calls per stage entry.
"""

from __future__ import annotations

import contextlib
import time
from typing import Iterator

__all__ = ["StageTimer"]


class StageTimer:
    """Accumulates wall time and entry counts per named stage."""

    __slots__ = ("_totals", "_counts")

    def __init__(self) -> None:
        self._totals: dict[str, float] = {}
        self._counts: dict[str, int] = {}

    @contextlib.contextmanager
    def stage(self, name: str) -> Iterator[None]:
        """Time one entry of ``name`` (re-entrant across distinct names)."""
        start = time.perf_counter()
        try:
            yield
        finally:
            elapsed = time.perf_counter() - start
            self._totals[name] = self._totals.get(name, 0.0) + elapsed
            self._counts[name] = self._counts.get(name, 0) + 1

    def seconds(self, name: str) -> float:
        """Total accumulated wall time of one stage."""
        return self._totals.get(name, 0.0)

    def report(self) -> dict[str, dict[str, float]]:
        """Per-stage totals with each stage's share of the summed time."""
        grand = sum(self._totals.values()) or 1.0
        return {
            name: {
                "seconds": round(self._totals[name], 6),
                "calls": self._counts[name],
                "share": round(self._totals[name] / grand, 4),
            }
            for name in sorted(self._totals, key=self._totals.get, reverse=True)
        }

    def reset(self) -> None:
        """Drop all accumulated stages."""
        self._totals.clear()
        self._counts.clear()
