"""``python -m repro.perf`` runs the hot-path benchmark CLI."""

from repro.perf.bench_hotpath import main

raise SystemExit(main())
