"""``python -m repro.perf`` runs the perf benchmark CLIs.

Bare invocation (and the explicit ``hotpath`` subcommand) runs the
filter-core benchmark; ``serving`` runs the end-to-end serving grid;
``crafting`` runs the batched brute-force search grid.
"""

import sys

_args = sys.argv[1:]
if _args and _args[0] == "serving":
    from repro.perf.bench_serving import main

    raise SystemExit(main(_args[1:]))
if _args and _args[0] == "crafting":
    from repro.perf.bench_crafting import main

    raise SystemExit(main(_args[1:]))
if _args and _args[0] == "hotpath":
    _args = _args[1:]
from repro.perf.bench_hotpath import main

raise SystemExit(main(_args))
