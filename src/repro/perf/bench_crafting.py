"""Crafting benchmark: batched brute-force search, pure vs accelerated.

One run covers the grid ``predicates x (k, m) scales x modes`` through
the real attack classes (pollution, ghost, latency on a classic filter
with the Kirsch-Mitzenmacher/murmur128 strategy -- the fully
vectorisable Dablooms-style hot path -- and the two-choice pollution
attack, whose pair derivation has no batch kernel, so the engine's
auto-dispatch keeps it on the scalar path in both modes: its ~1x rows
are the control documenting that decision).  Each cell crafts a fixed item count against a
half-full filter and reports *trials per second*: the brute-force
candidates the engine can examine and judge per wall-clock second,
which is the unit the paper prices attacks in (Figs. 5-6).

Candidate URLs are generated **once per cell, outside the timed
region**, and served to both modes from the same pre-built pool: URL
generation costs the same either way, and timing it would dilute the
engine comparison roughly 2x.  Fill levels are chosen per predicate so
the expected cost is ~``2^k`` trials per crafted item at every scale
(ghost/pollution/latency at fill 0.5; two-choice at ``1 - 2**-0.5`` so
both groups fresh is also a ``2^-k`` event).

The output file carries a schema tag (:data:`BENCH_SCHEMA`); CI runs a
smoke pass and :func:`check_bench_file` against the committed
``BENCH_crafting.json``, which for a full run also enforces the
headline claim -- the best largest-scale speedup must be at least
:data:`CLAIMED_SPEEDUP`.

Run with ``python -m repro.perf crafting``.
"""

from __future__ import annotations

import argparse
import json
import platform
import random
import time

from repro import accel
from repro.adversary.pollution import PollutionAttack
from repro.adversary.query import GhostForgery, LatencyQueryForgery
from repro.adversary.two_choice_attack import TwoChoicePollutionAttack
from repro.core.bloom import BloomFilter
from repro.core.two_choice import TwoChoiceBloomFilter
from repro.hashing.kirsch_mitzenmacher import KirschMitzenmacherStrategy
from repro.urlgen.faker import UrlFactory

__all__ = [
    "BENCH_SCHEMA",
    "CLAIMED_SPEEDUP",
    "run_bench",
    "check_bench_file",
    "main",
]

#: Schema tag written into (and demanded of) every bench file.
BENCH_SCHEMA = "repro.bench_crafting/1"

#: The headline: accelerated crafting at the largest scale must beat the
#: pure loop by at least this factor (enforced on full bench files).
CLAIMED_SPEEDUP = 5.0

#: (k, m) scales; crafting cost per item is ~2^k trials at every one.
DEFAULT_SCALES = ((4, 1 << 14), (8, 1 << 17), (12, 1 << 20))
SMOKE_SCALES = ((4, 1 << 14),)

DEFAULT_PREDICATES = ("pollution", "ghost", "latency", "two_choice")
SMOKE_PREDICATES = ("pollution", "ghost")

#: Items crafted per cell, sized so every cell runs ~2^k * items trials.
ITEMS_BY_K = {4: 512, 8: 48, 12: 6}
SMOKE_ITEMS_BY_K = {4: 24}

#: Classic-filter fill: predicate success is a ~2^-k event at 0.5.
FILL = 0.5
#: Two-choice fill: both 2k-index groups fresh is 2^-k at 1 - 2^-0.5.
TWO_CHOICE_FILL = 1 - 2**-0.5

#: Candidate-pool safety margin over the expected trial total.
_POOL_MARGIN = 8

_REQUIRED_RESULT_KEYS = frozenset(
    {"predicate", "mode", "k", "m", "items", "trials", "seconds", "trials_per_sec"}
)


class _PoolCursor:
    """Serve a pre-generated candidate pool to the engine, both forms.

    The scalar path pulls one at a time from :meth:`stream`, the batched
    path pulls blocks from :meth:`batch`; both advance one shared
    position, mirroring the factory's own interleaving guarantee.
    """

    def __init__(self, pool: list[str]) -> None:
        self.pool = pool
        self.pos = 0

    def batch(self, count: int) -> list[str]:
        chunk = self.pool[self.pos : self.pos + count]
        self.pos += len(chunk)
        return chunk

    def stream(self):
        while True:
            chunk = self.batch(1)
            if not chunk:
                return
            yield chunk[0]


def _filled_bloom(k: int, m: int, fill: float, seed: int) -> BloomFilter:
    target = BloomFilter(m, k, KirschMitzenmacherStrategy())
    rng = random.Random(seed)
    target.bits.set_indexes(rng.sample(range(m), round(m * fill)))
    return target


def _filled_two_choice(k: int, m: int, fill: float, seed: int) -> TwoChoiceBloomFilter:
    target = TwoChoiceBloomFilter(m, k)
    rng = random.Random(seed)
    target.bits.set_indexes(rng.sample(range(m), round(m * fill)))
    return target


def _make_attack(predicate: str, k: int, m: int, cursor: _PoolCursor, seed: int):
    """Fresh target + attack client reading candidates from ``cursor``."""
    kwargs = dict(
        candidates=cursor.stream(),
        max_trials=1_000_000,
        candidate_batch=cursor.batch,
    )
    if predicate == "pollution":
        return PollutionAttack(_filled_bloom(k, m, FILL, seed), **kwargs)
    if predicate == "ghost":
        return GhostForgery(_filled_bloom(k, m, FILL, seed), **kwargs)
    if predicate == "latency":
        return LatencyQueryForgery(_filled_bloom(k, m, FILL, seed), **kwargs)
    if predicate == "two_choice":
        return TwoChoicePollutionAttack(
            _filled_two_choice(k, m, TWO_CHOICE_FILL, seed), **kwargs
        )
    raise ValueError(f"unknown predicate {predicate!r}")


def _make_pool(items: int, k: int, seed: int) -> list[str]:
    factory = UrlFactory(seed=seed)
    return factory.candidate_batch(items * (1 << k) * _POOL_MARGIN + 16_384)


def _bench_case(
    predicate: str,
    mode: str,
    k: int,
    m: int,
    items: int,
    pool: list[str],
    repeats: int,
    seed: int,
) -> dict:
    """Best-of-``repeats`` crafting throughput for one grid cell.

    Every repeat rebuilds the attack on the same seeded filter state and
    replays the same candidate pool, so the trial count is identical
    across repeats and modes -- only the clock varies.
    """
    best = float("inf")
    trials = 0
    with accel.use_mode(mode):
        for _ in range(repeats):
            attack = _make_attack(predicate, k, m, _PoolCursor(pool), seed)
            start = time.perf_counter()
            results = [attack.craft_one() for _ in range(items)]
            best = min(best, time.perf_counter() - start)
            trials = sum(r.trials for r in results)
    return {
        "predicate": predicate,
        "mode": mode,
        "k": k,
        "m": m,
        "items": items,
        "trials": trials,
        "seconds": round(best, 6),
        "trials_per_sec": round(trials / best, 1),
    }


def run_bench(
    scales=DEFAULT_SCALES,
    predicates=DEFAULT_PREDICATES,
    items_by_k=None,
    repeats: int = 3,
    seed: int = 0xC4AF7,
    smoke: bool = False,
) -> dict:
    """Run the full grid and return the bench document (schema-tagged)."""
    items_by_k = items_by_k or (SMOKE_ITEMS_BY_K if smoke else ITEMS_BY_K)
    modes = ["pure"]
    if accel.numpy_or_none() is not None:
        modes.append("numpy")
        # Warm-up outside any timed cell: the first accelerated craft
        # pays the one-time kernel-module imports.
        with accel.use_mode("numpy"):
            cursor = _PoolCursor(_make_pool(4, 4, seed))
            warm = _make_attack("ghost", 4, 1 << 14, cursor, seed)
            for _ in range(4):
                warm.craft_one()
    results = []
    for predicate in predicates:
        for k, m in scales:
            items = items_by_k[k]
            pool = _make_pool(items, k, seed ^ (k * m))
            for mode in modes:
                results.append(
                    _bench_case(predicate, mode, k, m, items, pool, repeats, seed)
                )
    by_cell = {
        (r["predicate"], r["mode"], r["k"]): r["trials_per_sec"] for r in results
    }
    speedups = []
    if "numpy" in modes:
        for predicate in predicates:
            for k, m in scales:
                pure = by_cell[(predicate, "pure", k)]
                fast = by_cell[(predicate, "numpy", k)]
                speedups.append(
                    {
                        "predicate": predicate,
                        "k": k,
                        "m": m,
                        "speedup": round(fast / pure, 2),
                    }
                )
    return {
        "schema": BENCH_SCHEMA,
        "generated_by": "python -m repro.perf crafting",
        "smoke": smoke,
        "config": {
            "scales": [list(s) for s in scales],
            "predicates": list(predicates),
            "items_by_k": {str(k): v for k, v in items_by_k.items()},
            "fill": FILL,
            "two_choice_fill": round(TWO_CHOICE_FILL, 6),
            "strategy": KirschMitzenmacherStrategy().name,
            "repeats": repeats,
            "seed": seed,
            "python": platform.python_version(),
            "numpy": getattr(accel.numpy_or_none(), "__version__", None),
        },
        "results": results,
        "speedups": speedups,
    }


def check_bench_file(path: str) -> dict:
    """Validate a committed crafting bench file.

    Raises ``ValueError`` if the file is missing, unparsable,
    schema-stale, structurally empty -- or, for a full (non-smoke) run,
    if the best largest-scale speedup falls below
    :data:`CLAIMED_SPEEDUP`.
    """
    try:
        with open(path, "rb") as handle:
            doc = json.load(handle)
    except FileNotFoundError:
        raise ValueError(f"bench file {path} is missing") from None
    except json.JSONDecodeError as exc:
        raise ValueError(f"bench file {path} is not valid JSON: {exc}") from exc
    if doc.get("schema") != BENCH_SCHEMA:
        raise ValueError(
            f"bench file {path} has schema {doc.get('schema')!r}, current is "
            f"{BENCH_SCHEMA!r} -- regenerate with python -m repro.perf crafting"
        )
    results = doc.get("results")
    if not isinstance(results, list) or not results:
        raise ValueError(f"bench file {path} carries no results")
    for row in results:
        missing = _REQUIRED_RESULT_KEYS - set(row)
        if missing:
            raise ValueError(
                f"bench file {path} result row missing keys {sorted(missing)}"
            )
    if not doc.get("smoke"):
        largest_k = max(row["k"] for row in results)
        at_scale = [
            cell["speedup"]
            for cell in doc.get("speedups", [])
            if cell.get("k") == largest_k
        ]
        if not at_scale:
            raise ValueError(
                f"bench file {path} has no speedup cells at the largest "
                f"scale (k={largest_k})"
            )
        if max(at_scale) < CLAIMED_SPEEDUP:
            raise ValueError(
                f"bench file {path} best largest-scale crafting speedup is "
                f"x{max(at_scale)}, below the claimed x{CLAIMED_SPEEDUP} -- "
                "regenerate or investigate the batched-engine regression"
            )
    return doc


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.perf crafting", description=__doc__.splitlines()[0]
    )
    parser.add_argument(
        "--out", default=None, help="write the bench document to this path"
    )
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="tiny grid (CI: proves the harness runs, not the numbers)",
    )
    parser.add_argument("--repeats", type=int, default=3)
    parser.add_argument(
        "--check",
        metavar="PATH",
        help="validate an existing bench file instead of running",
    )
    args = parser.parse_args(argv)
    if args.check:
        doc = check_bench_file(args.check)
        print(
            f"{args.check}: schema {doc['schema']}, "
            f"{len(doc['results'])} results, "
            f"{len(doc.get('speedups', []))} speedup cells"
        )
        return 0
    if args.smoke:
        doc = run_bench(
            SMOKE_SCALES, SMOKE_PREDICATES, repeats=1, smoke=True
        )
    else:
        doc = run_bench(repeats=args.repeats)
    text = json.dumps(doc, indent=2) + "\n"
    if args.out:
        with open(args.out, "w") as handle:
            handle.write(text)
        print(f"wrote {args.out}")
    else:
        print(text, end="")
    for cell in doc["speedups"]:
        print(
            f"  {cell['predicate']:>10} k={cell['k']:>2} m=2^"
            f"{cell['m'].bit_length() - 1} -> x{cell['speedup']}"
        )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
