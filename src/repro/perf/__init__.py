"""Hot-path performance harness.

Measures the batch pipeline end to end -- batched hashing, grouped
filter-core operations, wire-codec packing -- under both execution
backends (pure-Python loops vs numpy kernels, see :mod:`repro.accel`),
and records the trajectory in a committed ``BENCH_hotpath.json`` so a
regression shows up as a diff, not a feeling.

* :mod:`repro.perf.timers` -- :class:`StageTimer`, a nestable
  wall-clock accumulator for attributing a run to pipeline stages;
* :mod:`repro.perf.bench_hotpath` -- the benchmark runner and the
  schema checker the CI gate uses (``python -m repro.perf``).
"""

from repro.perf.bench_hotpath import BENCH_SCHEMA, check_bench_file, run_bench
from repro.perf.timers import StageTimer

__all__ = ["BENCH_SCHEMA", "StageTimer", "check_bench_file", "run_bench"]
