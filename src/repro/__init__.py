"""Reproduction of *The Power of Evil Choices in Bloom Filters* (DSN 2015).

This package implements, from scratch and in pure Python:

* the hash substrate the paper attacks (MurmurHash3, Jenkins, SipHash,
  truncated cryptographic digests, Kirsch-Mitzenmacher double hashing,
  digest-bit recycling) -- :mod:`repro.hashing`;
* the Bloom filter family (classic, counting, scalable, Dablooms, Squid
  cache digests) -- :mod:`repro.core`;
* the paper's adversary models (chosen-insertion pollution/saturation,
  query-only false-positive forgery, deletion, counter overflow) --
  :mod:`repro.adversary`;
* the three attacked applications, rebuilt as deterministic simulations
  (Scrapy-like spider, Bitly Dablooms spam filter, Squid sibling
  proxies) -- :mod:`repro.apps`;
* the countermeasures (worst-case parameters, keyed hashing, recycling) --
  :mod:`repro.countermeasures`;
* the serving layer the attacks are aimed at in deployment: a sharded
  asyncio membership gateway with batched APIs, keyed routing, rate
  limiting, pluggable shard-rotation policies and an adversarial
  traffic driver -- :mod:`repro.service`;
* one experiment per paper table/figure -- :mod:`repro.experiments`
  (run them with ``python -m repro.experiments``).
"""

from repro.core.bloom import BloomFilter
from repro.core.cache_digest import CacheDigest
from repro.core.counting import CountingBloomFilter
from repro.core.dablooms import Dablooms
from repro.core.params import (
    BloomParameters,
    adversarial_fpp,
    adversarial_optimal_fpp,
    adversarial_optimal_k,
    false_positive_probability,
    optimal_fpp,
    optimal_k,
    optimal_m,
)
from repro.core.scalable import ScalableBloomFilter
from repro.countermeasures.keyed import KeyedBloomFilter
from repro.service.config import ServiceConfig
from repro.service.gateway import MembershipGateway

__version__ = "1.0.0"

__all__ = [
    "BloomFilter",
    "BloomParameters",
    "CacheDigest",
    "CountingBloomFilter",
    "Dablooms",
    "KeyedBloomFilter",
    "MembershipGateway",
    "ScalableBloomFilter",
    "ServiceConfig",
    "adversarial_fpp",
    "adversarial_optimal_fpp",
    "adversarial_optimal_k",
    "false_positive_probability",
    "optimal_fpp",
    "optimal_k",
    "optimal_m",
    "__version__",
]
