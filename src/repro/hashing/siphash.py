"""SipHash-2-4 from scratch.

SipHash [7] (Aumasson & Bernstein) is the paper's recommended keyed
alternative: a PRF fast enough for hash tables and Bloom filters but
unpredictable without the 128-bit key.  Table 2 benchmarks it against
MurmurHash and the HMAC constructions; we do the same in
``benchmarks/test_table2_query_time.py``.

Bit-exact port of the ``siphash24`` reference implementation.
"""

from __future__ import annotations

import struct

from repro.hashing.base import CallableHash
from repro.hashing.noncrypto import MASK64, rotl64

__all__ = ["siphash24", "SipHash24"]


def _sipround(v0: int, v1: int, v2: int, v3: int) -> tuple[int, int, int, int]:
    v0 = (v0 + v1) & MASK64
    v1 = rotl64(v1, 13)
    v1 ^= v0
    v0 = rotl64(v0, 32)
    v2 = (v2 + v3) & MASK64
    v3 = rotl64(v3, 16)
    v3 ^= v2
    v0 = (v0 + v3) & MASK64
    v3 = rotl64(v3, 21)
    v3 ^= v0
    v2 = (v2 + v1) & MASK64
    v1 = rotl64(v1, 17)
    v1 ^= v2
    v2 = rotl64(v2, 32)
    return v0, v1, v2, v3


def siphash24(key: bytes, data: bytes) -> int:
    """SipHash-2-4 of ``data`` under a 16-byte ``key``; 64-bit result."""
    if len(key) != 16:
        raise ValueError("SipHash key must be exactly 16 bytes")

    k0, k1 = struct.unpack("<QQ", key)
    v0 = k0 ^ 0x736F6D6570736575
    v1 = k1 ^ 0x646F72616E646F6D
    v2 = k0 ^ 0x6C7967656E657261
    v3 = k1 ^ 0x7465646279746573

    length = len(data)
    rounded_end = length & ~0x7

    for offset in range(0, rounded_end, 8):
        (m,) = struct.unpack_from("<Q", data, offset)
        v3 ^= m
        v0, v1, v2, v3 = _sipround(v0, v1, v2, v3)
        v0, v1, v2, v3 = _sipround(v0, v1, v2, v3)
        v0 ^= m

    # Final block: remaining bytes plus the length in the top byte.
    b = (length & 0xFF) << 56
    for i in range(length & 7):
        b |= data[rounded_end + i] << (8 * i)

    v3 ^= b
    v0, v1, v2, v3 = _sipround(v0, v1, v2, v3)
    v0, v1, v2, v3 = _sipround(v0, v1, v2, v3)
    v0 ^= b

    v2 ^= 0xFF
    for _ in range(4):
        v0, v1, v2, v3 = _sipround(v0, v1, v2, v3)

    return v0 ^ v1 ^ v2 ^ v3


class SipHash24(CallableHash):
    """SipHash-2-4 as a keyed 64-bit :class:`HashFunction`.

    The key plays the role of the MAC key in the paper's countermeasure:
    without it, the crafting engine of :mod:`repro.adversary.crafting`
    degrades to blind guessing.
    """

    def __init__(self, key: bytes) -> None:
        if len(key) != 16:
            raise ValueError("SipHash key must be exactly 16 bytes")
        self.key = key
        super().__init__(lambda data: siphash24(self.key, data), 64, "siphash24")
