"""Batched MurmurHash3 x64_128 over numpy uint64 lanes.

The scalar :func:`repro.hashing.murmur.murmur3_x64_128` processes one key
at a time in Python ints; this module runs a whole batch of keys through
the same rounds at once, one numpy operation per mixing step.  Keys are
packed into a single zero-padded ``(n, width)`` byte matrix (one slice
copy per key) and every 16-byte block column is mixed for all keys
simultaneously, with an activity mask keeping short keys' states frozen
once their blocks run out.  Zero padding makes the tail assembly free:
the little-endian read of the padded trailing block *is* the reference
tail value, because the reference shifts in exactly the bytes below the
tail length and zero-extends the rest.

Results are bit-identical with the scalar function for every key length
and seed -- ``tests/hashing/test_batched.py`` holds a hypothesis parity
test over both.

This module imports numpy unconditionally; callers gate on
:func:`repro.accel.accelerated` / :func:`repro.accel.numpy_or_none`
before importing it.
"""

from __future__ import annotations

import numpy as np

__all__ = ["murmur3_x64_128_batch", "km_flat_indexes"]

_C1 = np.uint64(0x87C37B91114253D5)
_C2 = np.uint64(0x4CF5AD432745937F)

_F1 = np.uint64(0xFF51AFD7ED558CCD)
_F2 = np.uint64(0xC4CEB9FE1A85EC53)

_FIVE = np.uint64(5)
_N1 = np.uint64(0x52DCE729)
_N2 = np.uint64(0x38495AB5)


def _rotl64(x: np.ndarray, r: int) -> np.ndarray:
    return (x << np.uint64(r)) | (x >> np.uint64(64 - r))


def _fmix64(h: np.ndarray) -> np.ndarray:
    h = h ^ (h >> np.uint64(33))
    h = h * _F1
    h = h ^ (h >> np.uint64(33))
    h = h * _F2
    return h ^ (h >> np.uint64(33))


def murmur3_x64_128_batch(
    datas: list[bytes], seed: int = 0
) -> tuple[np.ndarray, np.ndarray]:
    """MurmurHash3 x64_128 of every key in ``datas`` with ``seed``.

    Returns the two 64-bit halves as uint64 arrays ``(h1, h2)`` of
    length ``len(datas)``, bit-identical with the scalar function.
    """
    n = len(datas)
    if n == 0:
        empty = np.empty(0, dtype=np.uint64)
        return empty, empty
    lengths = np.fromiter((len(d) for d in datas), dtype=np.int64, count=n)
    max_len = int(lengths.max())
    # Always at least one zero block past the longest key, so the tail
    # columns (2*nblocks, 2*nblocks+1) exist for every key.
    width = (max_len // 16 + 1) * 16
    # One zero-padded row per key via bytes.ljust + a single join: the
    # C-level pad-and-concatenate beats a fancy-index scatter of the
    # same bytes by ~4x at crafting block sizes.
    mat = np.frombuffer(
        b"".join(d.ljust(width, b"\x00") for d in datas), dtype=np.uint8
    )
    words = mat.view("<u8").reshape(n, width // 8)

    nblocks = lengths // 16
    h1 = np.full(n, seed & 0xFFFFFFFFFFFFFFFF, dtype=np.uint64)
    h2 = h1.copy()

    with np.errstate(over="ignore"):
        for block in range(int(nblocks.max())):
            active = nblocks > block
            k1 = words[:, 2 * block] * _C1
            k1 = _rotl64(k1, 31) * _C2
            nh1 = h1 ^ k1
            nh1 = _rotl64(nh1, 27) + h2
            nh1 = nh1 * _FIVE + _N1

            k2 = words[:, 2 * block + 1] * _C2
            k2 = _rotl64(k2, 33) * _C1
            nh2 = h2 ^ k2
            nh2 = _rotl64(nh2, 31) + nh1
            nh2 = nh2 * _FIVE + _N2

            h1 = np.where(active, nh1, h1)
            h2 = np.where(active, nh2, h2)

        rows = np.arange(n)
        tail = lengths & 15
        # Zero padding means the little-endian trailing words equal the
        # reference's byte-by-byte tail assembly exactly.
        tk1 = words[rows, 2 * nblocks]
        tk2 = words[rows, 2 * nblocks + 1]

        k2 = tk2 * _C2
        k2 = _rotl64(k2, 33) * _C1
        h2 = np.where(tail >= 9, h2 ^ k2, h2)

        k1 = tk1 * _C1
        k1 = _rotl64(k1, 31) * _C2
        h1 = np.where(tail >= 1, h1 ^ k1, h1)

        ulen = lengths.astype(np.uint64)
        h1 = h1 ^ ulen
        h2 = h2 ^ ulen
        h1 = h1 + h2
        h2 = h2 + h1
        h1 = _fmix64(h1)
        h2 = _fmix64(h2)
        h1 = h1 + h2
        h2 = h2 + h1
    return h1, h2


def km_flat_indexes(h1: np.ndarray, h2: np.ndarray, k: int, m: int) -> np.ndarray:
    """Kirsch-Mitzenmacher expansion ``(h1 + i*h2) % m`` for all keys at
    once, flat ``k``-per-key.

    Works entirely in uint64 by reducing both halves modulo ``m`` first:
    ``(h1%m + i*(h2%m)) % m`` equals the full-precision form, and the
    intermediate is at most ``k*(m-1)``, so the caller must guarantee
    ``k * (m - 1) < 2**64`` (checked here).
    """
    if k <= 0:
        raise ValueError("k must be positive")
    if m <= 0:
        raise ValueError("m must be positive")
    if k * (m - 1) >= 1 << 64:
        raise ValueError(f"k*m too large for uint64 KM expansion (k={k}, m={m})")
    um = np.uint64(m)
    i = np.arange(k, dtype=np.uint64)[None, :]
    out = i * (h2 % um)[:, None]
    out += (h1 % um)[:, None]
    out %= um
    return out.reshape(-1)
