"""Common abstractions for the hash substrate.

The paper's attacks all hinge on *how* applications derive Bloom filter
indexes from items.  This module defines the two abstractions the rest of
the package builds on:

* :class:`HashFunction` -- a named function from bytes to a fixed-width
  digest, with an explicit ``digest_bits`` so truncation can be accounted
  for (NIST SP 800-107 style security levels, see
  :mod:`repro.hashing.truncation`);
* :class:`IndexStrategy` -- a rule turning an item into the ``k`` filter
  indexes.  Every Bloom filter in :mod:`repro.core` is parameterised by a
  strategy, which is exactly the attack surface the paper studies.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Callable, Iterable

__all__ = [
    "HashFunction",
    "CallableHash",
    "IndexStrategy",
    "ensure_bytes",
    "digest_to_int",
    "int_to_digest",
]


def ensure_bytes(item: str | bytes) -> bytes:
    """Canonicalise an item to bytes (UTF-8 for text).

    Every hash in the package funnels through this helper so that a URL
    inserted as ``str`` and queried as ``bytes`` hits the same bits.
    """
    if isinstance(item, bytes):
        return item
    if isinstance(item, str):
        return item.encode("utf-8")
    raise TypeError(f"items must be str or bytes, got {type(item).__name__}")


def digest_to_int(digest: bytes) -> int:
    """Interpret a digest as a big-endian unsigned integer."""
    return int.from_bytes(digest, "big")


def int_to_digest(value: int, length: int) -> bytes:
    """Encode ``value`` as a big-endian digest of ``length`` bytes."""
    return value.to_bytes(length, "big")


class HashFunction(ABC):
    """A named hash function with a fixed digest width.

    Sub-classes implement :meth:`digest`; the convenience methods
    (:meth:`hash_int`, :meth:`index`) are derived from it.
    """

    #: Human-readable name, e.g. ``"murmur3_32"`` or ``"sha256"``.
    name: str = "hash"
    #: Width of the digest in bits.
    digest_bits: int = 0

    @property
    def digest_size(self) -> int:
        """Digest width in bytes."""
        return (self.digest_bits + 7) // 8

    @abstractmethod
    def digest(self, data: bytes) -> bytes:
        """Return the raw digest of ``data``."""

    def hash_int(self, item: str | bytes) -> int:
        """Digest ``item`` and return it as an unsigned integer."""
        return digest_to_int(self.digest(ensure_bytes(item)))

    def digest_batch(self, datas: Iterable[bytes]) -> bytes:
        """Concatenated digests of ``datas`` in order, as one contiguous
        buffer (the shape the vectorised window-slicing kernels want).

        The default is a single tight loop over :meth:`digest`;
        sub-classes with a native batch form may override it.
        """
        digest = self.digest
        return b"".join(digest(data) for data in datas)

    def index(self, item: str | bytes, m: int) -> int:
        """Digest ``item`` reduced modulo ``m`` (a single filter index)."""
        if m <= 0:
            raise ValueError("m must be positive")
        return self.hash_int(item) % m

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<{type(self).__name__} {self.name}/{self.digest_bits}b>"


class CallableHash(HashFunction):
    """Adapt a plain ``bytes -> int`` callable into a :class:`HashFunction`.

    Useful for wrapping the module-level primitives (``murmur3_32`` etc.)
    without writing a class per function.

    Parameters
    ----------
    fn:
        Callable mapping bytes to an unsigned integer smaller than
        ``2**digest_bits``.
    digest_bits:
        Output width of ``fn``.
    name:
        Display name used in benchmarks and tables.
    """

    def __init__(self, fn: Callable[[bytes], int], digest_bits: int, name: str):
        if digest_bits <= 0:
            raise ValueError("digest_bits must be positive")
        self._fn = fn
        self.digest_bits = digest_bits
        self.name = name

    def digest(self, data: bytes) -> bytes:
        return int_to_digest(self._fn(data) % (1 << self.digest_bits), self.digest_size)

    def hash_int(self, item: str | bytes) -> int:
        # Skip the bytes round-trip for speed; benchmarks use this path.
        return self._fn(ensure_bytes(item)) % (1 << self.digest_bits)


class IndexStrategy(ABC):
    """A rule deriving the ``k`` filter indexes of an item.

    Strategies are stateless with respect to the filter: they depend only
    on the item, ``k`` and ``m``.  This is what makes the paper's attacks
    possible -- an adversary who knows the strategy can predict, and hence
    choose, where any item lands.
    """

    #: Display name for tables and benchmarks.
    name: str = "strategy"

    @abstractmethod
    def indexes(self, item: str | bytes, k: int, m: int) -> tuple[int, ...]:
        """Return the ``k`` indexes (each in ``[0, m)``) for ``item``."""

    def hash_calls(self, k: int, m: int) -> int:
        """Number of underlying hash invocations per item.

        The paper's Table 2 compares strategies precisely on this count;
        the default assumes one call per index (the naive scheme).
        """
        return k

    def batch_indexes(
        self, items: Iterable[str | bytes], k: int, m: int
    ) -> list[tuple[int, ...]]:
        """Vector form of :meth:`indexes` (convenience for experiments)."""
        return [self.indexes(item, k, m) for item in items]

    def flat_batch_indexes(self, items: Iterable[str | bytes], k: int, m: int):
        """All indexes of a batch as one flat ``k``-per-item sequence.

        This is the hot-path entry: the filters feed the returned buffer
        straight into the grouped ``BitVector`` / ``CounterArray``
        operations without re-materialising per-item tuples.  The base
        implementation flattens :meth:`batch_indexes`; strategies with a
        vectorised derivation (Kirsch-Mitzenmacher, digest recycling)
        override it to return a numpy array built in a single pass.
        """
        flat: list[int] = []
        for indexes in self.batch_indexes(items, k, m):
            flat.extend(indexes)
        return flat

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<{type(self).__name__} {self.name}>"
