"""Cryptographic hash functions and MACs (wrapping :mod:`hashlib`).

The paper's point is not that MD5/SHA are weak but that developers
*truncate* their digests (see :mod:`repro.hashing.truncation`) or burn a
full call per Bloom index (the "naive" column of Table 2).  This module
exposes the NIST family with explicit digest widths plus the HMAC
construction used by the keyed countermeasure.
"""

from __future__ import annotations

import hashlib
import hmac as _hmac

from repro.hashing.base import HashFunction

__all__ = [
    "HashlibHash",
    "MD5",
    "SHA1",
    "SHA256",
    "SHA384",
    "SHA512",
    "HmacHash",
    "by_name",
    "CRYPTO_HASH_NAMES",
]

#: Names accepted by :func:`by_name`, in increasing digest width.
CRYPTO_HASH_NAMES = ("md5", "sha1", "sha256", "sha384", "sha512")


class HashlibHash(HashFunction):
    """A hashlib-backed cryptographic hash with an optional prefix salt.

    Parameters
    ----------
    algorithm:
        Any name accepted by :func:`hashlib.new` (``"md5"``, ``"sha256"`` ...).
    salt:
        Bytes prepended to every message.  pyBloom-style index derivation
        uses deterministic salts, which is exactly why the paper's
        adversary can still brute-force pre-images: the salt is public.
    """

    def __init__(self, algorithm: str, salt: bytes = b"") -> None:
        probe = hashlib.new(algorithm)
        self.algorithm = algorithm
        self.salt = salt
        self.digest_bits = probe.digest_size * 8
        self.name = algorithm if not salt else f"{algorithm}[salt={salt.hex()}]"

    def digest(self, data: bytes) -> bytes:
        h = hashlib.new(self.algorithm)
        if self.salt:
            h.update(self.salt)
        h.update(data)
        return h.digest()


class MD5(HashlibHash):
    """MD5 (128-bit).  Squid builds its cache digests from one MD5 call."""

    def __init__(self, salt: bytes = b"") -> None:
        super().__init__("md5", salt)


class SHA1(HashlibHash):
    """SHA-1 (160-bit)."""

    def __init__(self, salt: bytes = b"") -> None:
        super().__init__("sha1", salt)


class SHA256(HashlibHash):
    """SHA-256 (256-bit)."""

    def __init__(self, salt: bytes = b"") -> None:
        super().__init__("sha256", salt)


class SHA384(HashlibHash):
    """SHA-384 (384-bit)."""

    def __init__(self, salt: bytes = b"") -> None:
        super().__init__("sha384", salt)


class SHA512(HashlibHash):
    """SHA-512 (512-bit).  One call covers any filter with f >= 2^-15
    and m <= 1 GByte (paper Fig. 9)."""

    def __init__(self, salt: bytes = b"") -> None:
        super().__init__("sha512", salt)


class HmacHash(HashFunction):
    """HMAC over a hashlib algorithm, keyed with a secret.

    This is the paper's Section 8.2 countermeasure: with the key unknown,
    index positions are unpredictable, so chosen-insertion and query-only
    adversaries degrade to blind guessing.
    """

    def __init__(self, key: bytes, algorithm: str = "sha1") -> None:
        if not key:
            raise ValueError("HMAC key must be non-empty")
        probe = hashlib.new(algorithm)
        self.key = key
        self.algorithm = algorithm
        self.digest_bits = probe.digest_size * 8
        self.name = f"hmac-{algorithm}"

    def digest(self, data: bytes) -> bytes:
        return _hmac.new(self.key, data, self.algorithm).digest()


def by_name(name: str, salt: bytes = b"") -> HashlibHash:
    """Instantiate a crypto hash from its lowercase name."""
    if name not in CRYPTO_HASH_NAMES:
        raise ValueError(f"unknown crypto hash {name!r}; expected one of {CRYPTO_HASH_NAMES}")
    return HashlibHash(name, salt)
