"""Kirsch-Mitzenmacher double hashing: k indexes from two hash values.

Kirsch & Mitzenmacher ("Less hashing, same performance", 2008) showed
that ``g_i(x) = h1(x) + i * h2(x) mod m`` preserves the asymptotic false
positive probability while costing only two hash evaluations.  Dablooms
uses this trick over the two 64-bit halves of one MurmurHash3 x64_128
call -- a single hash invocation for the whole index set, which is also
why inverting that one call (see :mod:`repro.hashing.inversion`) hands
the adversary *all* k indexes at once.
"""

from __future__ import annotations

from typing import Callable

from repro import accel
from repro.hashing.base import HashFunction, IndexStrategy, ensure_bytes
from repro.hashing.murmur import Murmur3_x64_128

__all__ = ["KirschMitzenmacherStrategy", "km_indexes"]


def km_indexes(h1: int, h2: int, k: int, m: int) -> tuple[int, ...]:
    """Expand the pair ``(h1, h2)`` into k indexes modulo m."""
    if k <= 0:
        raise ValueError("k must be positive")
    if m <= 0:
        raise ValueError("m must be positive")
    return tuple((h1 + i * h2) % m for i in range(k))


class KirschMitzenmacherStrategy(IndexStrategy):
    """Derive all k indexes from one ``(h1, h2)`` pair.

    Parameters
    ----------
    pair_fn:
        Callable mapping item bytes to the ``(h1, h2)`` pair.  Defaults to
        the two halves of MurmurHash3 x64_128 with seed 0, exactly as
        Dablooms does.
    name:
        Display name override.
    """

    def __init__(
        self,
        pair_fn: Callable[[bytes], tuple[int, int]] | None = None,
        name: str = "kirsch-mitzenmacher(murmur128)",
    ) -> None:
        if pair_fn is None:
            pair_fn = Murmur3_x64_128(seed=0).halves
        self._pair_fn = pair_fn
        self.name = name

    @classmethod
    def from_two_hashes(
        cls, h1: HashFunction, h2: HashFunction
    ) -> "KirschMitzenmacherStrategy":
        """Build the strategy from two independent hash objects."""

        def pair(data: bytes) -> tuple[int, int]:
            return h1.hash_int(data), h2.hash_int(data)

        return cls(pair, name=f"kirsch-mitzenmacher({h1.name},{h2.name})")

    def pair(self, item: str | bytes) -> tuple[int, int]:
        """The raw ``(h1, h2)`` pair for ``item`` (used by attacks)."""
        return self._pair_fn(ensure_bytes(item))

    def indexes(self, item: str | bytes, k: int, m: int) -> tuple[int, ...]:
        h1, h2 = self._pair_fn(ensure_bytes(item))
        return km_indexes(h1, h2, k, m)

    def flat_batch_indexes(self, items, k: int, m: int):
        """Whole-batch index derivation in one hashing pass.

        With the default murmur128 pair function and an accel-eligible
        batch, the keys go through the vectorised murmur lanes and the
        KM expansion runs in uint64 (valid while ``k*(m-1) < 2**64``);
        otherwise the scalar pair function is flattened directly.
        """
        if k <= 0:
            raise ValueError("k must be positive")
        if m <= 0:
            raise ValueError("m must be positive")
        items = items if isinstance(items, (list, tuple)) else list(items)
        datas = [ensure_bytes(item) for item in items]
        if (
            k * (m - 1) < 1 << 64
            and accel.accelerated(len(datas) * k)
            and accel.numpy_or_none() is not None
            and getattr(self._pair_fn, "__func__", None) is Murmur3_x64_128.halves
        ):
            from repro.hashing.batched import km_flat_indexes, murmur3_x64_128_batch

            h1, h2 = murmur3_x64_128_batch(datas, self._pair_fn.__self__.seed)
            return km_flat_indexes(h1, h2, k, m)
        pair_fn = self._pair_fn
        flat: list[int] = []
        for data in datas:
            flat.extend(km_indexes(*pair_fn(data), k, m))
        return flat

    def hash_calls(self, k: int, m: int) -> int:
        # One murmur128 call (or two plain calls) regardless of k.
        return 1
