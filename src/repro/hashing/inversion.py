"""Constant-time inversion of MurmurHash3 (the paper's forgery primitive).

MurmurHash3's finalisers and block mixers are bijections built from
xorshifts, odd-constant multiplications, rotations and additions -- all
invertible on fixed-width words.  Given any target hash value and the
public seed, one can therefore compute an input that produces it in
constant time (paper Section 6.2: "the forgery of the required URLs is
straightforward since MurmurHash can be inverted in constant time").

This module inverts both variants:

* :func:`invert_murmur3_32` -- a 4-byte pre-image for any 32-bit target;
* :func:`invert_murmur3_x64_128` -- a 16-byte pre-image for any 128-bit
  target pair ``(h1, h2)``.

Both accept an optional plaintext *prefix* (length a multiple of the
block size) so the forged item can start with a plausible URL stem; the
steering block is appended after it.  Because Dablooms derives all k
Bloom indexes from one MurmurHash3 x64_128 call via Kirsch-Mitzenmacher,
inverting that call chooses all k counters at once -- the engine behind
the counter-overflow attack of :mod:`repro.adversary.overflow`.
"""

from __future__ import annotations

import struct

from repro.exceptions import InversionError
from repro.hashing.murmur import (
    _C1_32,
    _C1_64,
    _C2_32,
    _C2_64,
    murmur3_32,
    murmur3_x64_128,
)
from repro.hashing.noncrypto import MASK32, MASK64, rotl32, rotl64

__all__ = [
    "unxorshift_right",
    "fmix32_inverse",
    "fmix64_inverse",
    "invert_murmur3_32",
    "invert_murmur3_x64_128",
]

_INV5_32 = pow(5, -1, 1 << 32)
_INV5_64 = pow(5, -1, 1 << 64)
_INV_C1_32 = pow(_C1_32, -1, 1 << 32)
_INV_C2_32 = pow(_C2_32, -1, 1 << 32)
_INV_C1_64 = pow(_C1_64, -1, 1 << 64)
_INV_C2_64 = pow(_C2_64, -1, 1 << 64)
_INV_FMIX32_A = pow(0x85EBCA6B, -1, 1 << 32)
_INV_FMIX32_B = pow(0xC2B2AE35, -1, 1 << 32)
_INV_FMIX64_A = pow(0xFF51AFD7ED558CCD, -1, 1 << 64)
_INV_FMIX64_B = pow(0xC4CEB9FE1A85EC53, -1, 1 << 64)


def unxorshift_right(value: int, shift: int, bits: int) -> int:
    """Invert ``x ^= x >> shift`` on a ``bits``-wide word."""
    if not 0 < shift < bits:
        raise ValueError("shift must be in (0, bits)")
    mask = (1 << bits) - 1
    result = value
    for _ in range(bits // shift):
        result = value ^ (result >> shift)
    return result & mask


def fmix32_inverse(h: int) -> int:
    """Invert :func:`repro.hashing.murmur.fmix32`."""
    h = unxorshift_right(h, 16, 32)
    h = (h * _INV_FMIX32_B) & MASK32
    h = unxorshift_right(h, 13, 32)
    h = (h * _INV_FMIX32_A) & MASK32
    h = unxorshift_right(h, 16, 32)
    return h


def fmix64_inverse(h: int) -> int:
    """Invert :func:`repro.hashing.murmur.fmix64`."""
    h = unxorshift_right(h, 33, 64)
    h = (h * _INV_FMIX64_B) & MASK64
    h = unxorshift_right(h, 33, 64)
    h = (h * _INV_FMIX64_A) & MASK64
    h = unxorshift_right(h, 33, 64)
    return h


def _state32_after(prefix: bytes, seed: int) -> int:
    """Internal murmur3_32 state after hashing ``prefix`` (whole blocks)."""
    h = seed & MASK32
    for i in range(0, len(prefix), 4):
        k = struct.unpack_from("<I", prefix, i)[0]
        k = (k * _C1_32) & MASK32
        k = rotl32(k, 15)
        k = (k * _C2_32) & MASK32
        h ^= k
        h = rotl32(h, 13)
        h = (h * 5 + 0xE6546B64) & MASK32
    return h


def invert_murmur3_32(target: int, seed: int = 0, prefix: bytes = b"") -> bytes:
    """Return ``prefix + block`` (4 extra bytes) hashing to ``target``.

    Raises
    ------
    InversionError
        If ``prefix`` is not a multiple of 4 bytes (the steering block
        must land on a block boundary).
    """
    if len(prefix) % 4:
        raise InversionError("prefix length must be a multiple of 4 bytes")
    target &= MASK32
    length = len(prefix) + 4

    h = fmix32_inverse(target)
    h ^= length
    # Undo the post-block update h = rotl(h ^ k', 13) * 5 + C.
    h = ((h - 0xE6546B64) * _INV5_32) & MASK32
    h = rotl32(h, 32 - 13)
    k_mixed = h ^ _state32_after(prefix, seed)
    # Undo the block pre-mix k' = rotl(k * c1, 15) * c2.
    k = (k_mixed * _INV_C2_32) & MASK32
    k = rotl32(k, 32 - 15)
    k = (k * _INV_C1_32) & MASK32

    candidate = prefix + struct.pack("<I", k)
    assert murmur3_32(candidate, seed) == target, "inversion self-check failed"
    return candidate


def _state128_after(prefix: bytes, seed: int) -> tuple[int, int]:
    """Internal murmur3_x64_128 state after hashing ``prefix`` blocks."""
    h1 = seed & MASK64
    h2 = seed & MASK64
    for i in range(0, len(prefix), 16):
        k1, k2 = struct.unpack_from("<QQ", prefix, i)
        k1 = (k1 * _C1_64) & MASK64
        k1 = rotl64(k1, 31)
        k1 = (k1 * _C2_64) & MASK64
        h1 ^= k1
        h1 = rotl64(h1, 27)
        h1 = (h1 + h2) & MASK64
        h1 = (h1 * 5 + 0x52DCE729) & MASK64
        k2 = (k2 * _C2_64) & MASK64
        k2 = rotl64(k2, 33)
        k2 = (k2 * _C1_64) & MASK64
        h2 ^= k2
        h2 = rotl64(h2, 31)
        h2 = (h2 + h1) & MASK64
        h2 = (h2 * 5 + 0x38495AB5) & MASK64
    return h1, h2


def invert_murmur3_x64_128(
    target_h1: int, target_h2: int, seed: int = 0, prefix: bytes = b""
) -> bytes:
    """Return ``prefix + block`` (16 extra bytes) hashing to the target pair.

    With Kirsch-Mitzenmacher index derivation, choosing
    ``target_h1 = index`` and ``target_h2 = 0`` makes *all* k Bloom
    indexes equal to ``index mod m`` -- the single-counter steering used
    by the Dablooms overflow attack.

    Raises
    ------
    InversionError
        If ``prefix`` is not a multiple of 16 bytes.
    """
    if len(prefix) % 16:
        raise InversionError("prefix length must be a multiple of 16 bytes")
    t1 = target_h1 & MASK64
    t2 = target_h2 & MASK64
    length = len(prefix) + 16

    # Undo the two final cross-additions.
    f2 = (t2 - t1) & MASK64
    f1 = (t1 - f2) & MASK64
    a1 = fmix64_inverse(f1)
    a2 = fmix64_inverse(f2)
    # Undo the pre-finaliser cross-additions and the length XOR.
    b2 = (a2 - a1) & MASK64
    b1 = (a1 - b2) & MASK64
    h1b = b1 ^ length
    h2b = b2 ^ length

    s1, s2 = _state128_after(prefix, seed)

    # Undo the h1 lane of the block round.
    v1 = ((h1b - 0x52DCE729) * _INV5_64) & MASK64
    u1 = (v1 - s2) & MASK64
    u1 = rotl64(u1, 64 - 27)
    k1_mixed = u1 ^ s1
    k1 = (k1_mixed * _INV_C2_64) & MASK64
    k1 = rotl64(k1, 64 - 31)
    k1 = (k1 * _INV_C1_64) & MASK64

    # Undo the h2 lane (it saw the already-updated h1, i.e. h1b).
    v2 = ((h2b - 0x38495AB5) * _INV5_64) & MASK64
    u2 = (v2 - h1b) & MASK64
    u2 = rotl64(u2, 64 - 31)
    k2_mixed = u2 ^ s2
    k2 = (k2_mixed * _INV_C1_64) & MASK64
    k2 = rotl64(k2, 64 - 33)
    k2 = (k2 * _INV_C2_64) & MASK64

    candidate = prefix + struct.pack("<QQ", k1, k2)
    assert murmur3_x64_128(candidate, seed) == (t1, t2), "inversion self-check failed"
    return candidate
