"""Salted multi-call index derivation (the naive scheme, pyBloom style).

The straightforward way to get k "independent" hash functions from one
primitive is to prepend k public deterministic salts and make k calls.
pyBloom (the filter the Scrapy community plugs into its dedup stage)
does exactly this over MD5/SHA digests; most non-cryptographic filters
do it with k seeds.  The scheme is the "Naive" column of Table 2 --
correct, but k times slower than recycling, and no harder to attack
because the salts are public.
"""

from __future__ import annotations

from typing import Callable, Sequence

from repro.hashing.base import HashFunction, IndexStrategy, ensure_bytes

__all__ = ["SaltedHashStrategy", "SeededHashStrategy"]


def _default_salts(k: int) -> list[bytes]:
    return [b"repro-salt-%d:" % i for i in range(k)]


class SaltedHashStrategy(IndexStrategy):
    """k indexes via k salted calls to one hash function.

    Parameters
    ----------
    hash_fn:
        Underlying hash (crypto or not).
    salts:
        Public salts; defaults to a deterministic family.  Supplying fewer
        salts than k raises at use time.
    """

    def __init__(self, hash_fn: HashFunction, salts: Sequence[bytes] | None = None) -> None:
        self.hash_fn = hash_fn
        self._salts = list(salts) if salts is not None else None
        self.name = f"salted({hash_fn.name})"

    def _salts_for(self, k: int) -> Sequence[bytes]:
        if self._salts is None:
            return _default_salts(k)
        if len(self._salts) < k:
            raise ValueError(f"{len(self._salts)} salts provided but k={k} required")
        return self._salts

    def indexes(self, item: str | bytes, k: int, m: int) -> tuple[int, ...]:
        if k <= 0:
            raise ValueError("k must be positive")
        if m <= 0:
            raise ValueError("m must be positive")
        data = ensure_bytes(item)
        salts = self._salts_for(k)
        return tuple(self.hash_fn.hash_int(salts[i] + data) % m for i in range(k))

    def hash_calls(self, k: int, m: int) -> int:
        return k


class SeededHashStrategy(IndexStrategy):
    """k indexes via k differently-seeded instances of one hash family.

    The non-cryptographic twin of :class:`SaltedHashStrategy`: MurmurHash
    and friends take an integer seed, so implementations instantiate k
    seeds ``0..k-1``.  Seeds are public, hence equally attackable.

    Parameters
    ----------
    family:
        Callable mapping a seed to a ``bytes -> int`` function.
    digest_bits:
        Width of the family's output.
    """

    def __init__(
        self,
        family: Callable[[int], Callable[[bytes], int]],
        digest_bits: int,
        name: str = "seeded",
    ) -> None:
        self._family = family
        self.digest_bits = digest_bits
        self.name = name
        self._cache: dict[int, Callable[[bytes], int]] = {}

    def _fn(self, seed: int) -> Callable[[bytes], int]:
        if seed not in self._cache:
            self._cache[seed] = self._family(seed)
        return self._cache[seed]

    def indexes(self, item: str | bytes, k: int, m: int) -> tuple[int, ...]:
        if k <= 0:
            raise ValueError("k must be positive")
        if m <= 0:
            raise ValueError("m must be positive")
        data = ensure_bytes(item)
        return tuple(self._fn(seed)(data) % m for seed in range(k))

    def hash_calls(self, k: int, m: int) -> int:
        return k
