"""Hash substrate: every function and index-derivation rule the paper touches.

Forward hashes
    :mod:`~repro.hashing.noncrypto` (FNV, djb2, sdbm, one-at-a-time),
    :mod:`~repro.hashing.murmur` (MurmurHash3 32/128),
    :mod:`~repro.hashing.jenkins` (lookup3),
    :mod:`~repro.hashing.siphash` (SipHash-2-4),
    :mod:`~repro.hashing.crypto` (MD5/SHA family + HMAC via hashlib).

Index derivation (the Bloom filter attack surface)
    :mod:`~repro.hashing.salted` (k salted calls, pyBloom style),
    :mod:`~repro.hashing.kirsch_mitzenmacher` (h1 + i*h2),
    :mod:`~repro.hashing.recycling` (slice one long digest, paper Section 8.2).

Adversarial tooling
    :mod:`~repro.hashing.inversion` (constant-time MurmurHash3 pre-images),
    :mod:`~repro.hashing.truncation` (security accounting for truncated digests).
"""

from repro.hashing.base import CallableHash, HashFunction, IndexStrategy, ensure_bytes
from repro.hashing.crypto import HashlibHash, HmacHash, MD5, SHA1, SHA256, SHA384, SHA512
from repro.hashing.jenkins import Lookup3, hashlittle, hashlittle2
from repro.hashing.kirsch_mitzenmacher import KirschMitzenmacherStrategy
from repro.hashing.murmur import Murmur3_32, Murmur3_x64_128, murmur3_32, murmur3_x64_128
from repro.hashing.noncrypto import FNV1a32, FNV1a64, OneAtATime
from repro.hashing.recycling import RecyclingStrategy, bits_required, calls_required
from repro.hashing.salted import SaltedHashStrategy
from repro.hashing.siphash import SipHash24, siphash24
from repro.hashing.truncation import TruncatedHash, security_levels

__all__ = [
    "CallableHash",
    "HashFunction",
    "IndexStrategy",
    "ensure_bytes",
    "HashlibHash",
    "HmacHash",
    "MD5",
    "SHA1",
    "SHA256",
    "SHA384",
    "SHA512",
    "Lookup3",
    "hashlittle",
    "hashlittle2",
    "KirschMitzenmacherStrategy",
    "Murmur3_32",
    "Murmur3_x64_128",
    "murmur3_32",
    "murmur3_x64_128",
    "FNV1a32",
    "FNV1a64",
    "OneAtATime",
    "RecyclingStrategy",
    "bits_required",
    "calls_required",
    "SaltedHashStrategy",
    "SipHash24",
    "siphash24",
    "TruncatedHash",
    "security_levels",
]
