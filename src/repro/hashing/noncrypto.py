"""Classic non-cryptographic hash functions (from scratch).

These are the "fast but forgeable" functions the paper warns about
(Section 2): they pass statistical suites such as SMHasher yet offer no
pre-image resistance whatsoever.  We implement the textbook family --
FNV-1/1a, djb2, sdbm and Jenkins one-at-a-time -- plus the modulus mask
helpers shared by :mod:`repro.hashing.murmur` and
:mod:`repro.hashing.jenkins`.

All functions take ``bytes`` and return an unsigned integer of the stated
width.  They are deterministic and seedable where the original design
allows a seed.
"""

from __future__ import annotations

from repro.hashing.base import CallableHash

__all__ = [
    "MASK32",
    "MASK64",
    "rotl32",
    "rotl64",
    "fnv1_32",
    "fnv1a_32",
    "fnv1_64",
    "fnv1a_64",
    "djb2",
    "sdbm",
    "one_at_a_time",
    "FNV1a32",
    "FNV1a64",
    "OneAtATime",
]

MASK32 = 0xFFFFFFFF
MASK64 = 0xFFFFFFFFFFFFFFFF

_FNV32_PRIME = 0x01000193
_FNV32_OFFSET = 0x811C9DC5
_FNV64_PRIME = 0x00000100000001B3
_FNV64_OFFSET = 0xCBF29CE484222325


def rotl32(x: int, r: int) -> int:
    """Rotate a 32-bit word left by ``r`` bits."""
    r &= 31
    return ((x << r) | (x >> (32 - r))) & MASK32


def rotl64(x: int, r: int) -> int:
    """Rotate a 64-bit word left by ``r`` bits."""
    r &= 63
    return ((x << r) | (x >> (64 - r))) & MASK64


def fnv1_32(data: bytes) -> int:
    """FNV-1 32-bit: multiply then XOR each byte."""
    h = _FNV32_OFFSET
    for byte in data:
        h = (h * _FNV32_PRIME) & MASK32
        h ^= byte
    return h


def fnv1a_32(data: bytes) -> int:
    """FNV-1a 32-bit: XOR each byte then multiply (better avalanche)."""
    h = _FNV32_OFFSET
    for byte in data:
        h ^= byte
        h = (h * _FNV32_PRIME) & MASK32
    return h


def fnv1_64(data: bytes) -> int:
    """FNV-1 64-bit variant."""
    h = _FNV64_OFFSET
    for byte in data:
        h = (h * _FNV64_PRIME) & MASK64
        h ^= byte
    return h


def fnv1a_64(data: bytes) -> int:
    """FNV-1a 64-bit variant."""
    h = _FNV64_OFFSET
    for byte in data:
        h ^= byte
        h = (h * _FNV64_PRIME) & MASK64
    return h


def djb2(data: bytes) -> int:
    """Bernstein's djb2 (``h = h*33 + c``), 32-bit truncation."""
    h = 5381
    for byte in data:
        h = (h * 33 + byte) & MASK32
    return h


def sdbm(data: bytes) -> int:
    """The sdbm hash (``h = c + (h<<6) + (h<<16) - h``), 32-bit."""
    h = 0
    for byte in data:
        h = (byte + (h << 6) + (h << 16) - h) & MASK32
    return h


def one_at_a_time(data: bytes, seed: int = 0) -> int:
    """Jenkins one-at-a-time hash (the original "Jenkins hash").

    Referenced by the paper as [6]; widely copied into hash tables and,
    regrettably, Bloom filters.
    """
    h = seed & MASK32
    for byte in data:
        h = (h + byte) & MASK32
        h = (h + ((h << 10) & MASK32)) & MASK32
        h ^= h >> 6
    h = (h + ((h << 3) & MASK32)) & MASK32
    h ^= h >> 11
    h = (h + ((h << 15) & MASK32)) & MASK32
    return h


class FNV1a32(CallableHash):
    """FNV-1a/32 wrapped as a :class:`~repro.hashing.base.HashFunction`."""

    def __init__(self) -> None:
        super().__init__(fnv1a_32, 32, "fnv1a_32")


class FNV1a64(CallableHash):
    """FNV-1a/64 wrapped as a :class:`~repro.hashing.base.HashFunction`."""

    def __init__(self) -> None:
        super().__init__(fnv1a_64, 64, "fnv1a_64")


class OneAtATime(CallableHash):
    """Jenkins one-at-a-time wrapped as a hash object (seedable)."""

    def __init__(self, seed: int = 0) -> None:
        self.seed = seed & MASK32
        super().__init__(lambda data: one_at_a_time(data, self.seed), 32, "jenkins_oaat")
