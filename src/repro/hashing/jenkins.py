"""Bob Jenkins' lookup3 hash (``hashlittle``), from scratch.

The paper cites the Jenkins hash family [6] alongside MurmurHash as
typical non-cryptographic choices.  ``hashlittle`` is the 2006 lookup3
function used by Squid (among many others) for its internal hash tables.
Bit-exact port of ``lookup3.c``.
"""

from __future__ import annotations

from repro.hashing.base import CallableHash
from repro.hashing.noncrypto import MASK32, rotl32

__all__ = ["hashlittle", "hashlittle2", "Lookup3"]


def _mix(a: int, b: int, c: int) -> tuple[int, int, int]:
    a = (a - c) & MASK32
    a ^= rotl32(c, 4)
    c = (c + b) & MASK32
    b = (b - a) & MASK32
    b ^= rotl32(a, 6)
    a = (a + c) & MASK32
    c = (c - b) & MASK32
    c ^= rotl32(b, 8)
    b = (b + a) & MASK32
    a = (a - c) & MASK32
    a ^= rotl32(c, 16)
    c = (c + b) & MASK32
    b = (b - a) & MASK32
    b ^= rotl32(a, 19)
    a = (a + c) & MASK32
    c = (c - b) & MASK32
    c ^= rotl32(b, 4)
    b = (b + a) & MASK32
    return a, b, c


def _final(a: int, b: int, c: int) -> tuple[int, int, int]:
    c ^= b
    c = (c - rotl32(b, 14)) & MASK32
    a ^= c
    a = (a - rotl32(c, 11)) & MASK32
    b ^= a
    b = (b - rotl32(a, 25)) & MASK32
    c ^= b
    c = (c - rotl32(b, 16)) & MASK32
    a ^= c
    a = (a - rotl32(c, 4)) & MASK32
    b ^= a
    b = (b - rotl32(a, 14)) & MASK32
    c ^= b
    c = (c - rotl32(b, 24)) & MASK32
    return a, b, c


def _word(data: bytes, offset: int, nbytes: int) -> int:
    """Read up to 4 little-endian bytes starting at ``offset``."""
    value = 0
    for i in range(nbytes):
        value |= data[offset + i] << (8 * i)
    return value


def hashlittle2(data: bytes, initval: int = 0, initval2: int = 0) -> tuple[int, int]:
    """lookup3 ``hashlittle2``: two 32-bit results for the price of one.

    Returns ``(c, b)`` per the reference implementation; ``c`` is the
    primary hash, ``b`` a secondary one usable as a second seedless hash
    (handy for Kirsch-Mitzenmacher double hashing).
    """
    length = len(data)
    a = b = c = (0xDEADBEEF + length + initval) & MASK32
    c = (c + initval2) & MASK32

    offset = 0
    remaining = length
    while remaining > 12:
        a = (a + _word(data, offset, 4)) & MASK32
        b = (b + _word(data, offset + 4, 4)) & MASK32
        c = (c + _word(data, offset + 8, 4)) & MASK32
        a, b, c = _mix(a, b, c)
        offset += 12
        remaining -= 12

    if remaining == 0:
        return c, b

    if remaining > 8:
        a = (a + _word(data, offset, 4)) & MASK32
        b = (b + _word(data, offset + 4, 4)) & MASK32
        c = (c + _word(data, offset + 8, remaining - 8)) & MASK32
    elif remaining > 4:
        a = (a + _word(data, offset, 4)) & MASK32
        b = (b + _word(data, offset + 4, remaining - 4)) & MASK32
    else:
        a = (a + _word(data, offset, remaining)) & MASK32

    a, b, c = _final(a, b, c)
    return c, b


def hashlittle(data: bytes, initval: int = 0) -> int:
    """lookup3 ``hashlittle``: the usual single 32-bit result."""
    c, _ = hashlittle2(data, initval, 0)
    return c


class Lookup3(CallableHash):
    """lookup3/hashlittle as a seedable :class:`HashFunction`."""

    def __init__(self, seed: int = 0) -> None:
        self.seed = seed & MASK32
        super().__init__(
            lambda data: hashlittle(data, self.seed), 32, f"lookup3[{seed}]"
        )
