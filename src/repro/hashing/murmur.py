"""MurmurHash3 from scratch (x86 32-bit and x64 128-bit variants).

MurmurHash is the non-cryptographic workhorse the paper singles out:
Dablooms derives all its Bloom indexes from it, and -- crucially for the
attacks -- it is *invertible in constant time* (the paper cites SipHash's
authors [7] for this).  The inversion itself lives in
:mod:`repro.hashing.inversion`; this module is the forward direction,
bit-exact with Austin Appleby's reference ``MurmurHash3.cpp``.
"""

from __future__ import annotations

import struct

from repro.hashing.base import CallableHash
from repro.hashing.noncrypto import MASK32, MASK64, rotl32, rotl64

__all__ = [
    "murmur3_32",
    "murmur3_x64_128",
    "fmix32",
    "fmix64",
    "Murmur3_32",
    "Murmur3_x64_128",
]

_C1_32 = 0xCC9E2D51
_C2_32 = 0x1B873593

_C1_64 = 0x87C37B91114253D5
_C2_64 = 0x4CF5AD432745937F


def fmix32(h: int) -> int:
    """MurmurHash3 32-bit finaliser (a bijection on 32-bit words)."""
    h ^= h >> 16
    h = (h * 0x85EBCA6B) & MASK32
    h ^= h >> 13
    h = (h * 0xC2B2AE35) & MASK32
    h ^= h >> 16
    return h


def fmix64(h: int) -> int:
    """MurmurHash3 64-bit finaliser (a bijection on 64-bit words)."""
    h ^= h >> 33
    h = (h * 0xFF51AFD7ED558CCD) & MASK64
    h ^= h >> 33
    h = (h * 0xC4CEB9FE1A85EC53) & MASK64
    h ^= h >> 33
    return h


def murmur3_32(data: bytes, seed: int = 0) -> int:
    """MurmurHash3 x86_32 of ``data`` with ``seed``; returns a 32-bit int."""
    length = len(data)
    h = seed & MASK32
    rounded_end = length & ~0x3

    for i in range(0, rounded_end, 4):
        k = data[i] | (data[i + 1] << 8) | (data[i + 2] << 16) | (data[i + 3] << 24)
        k = (k * _C1_32) & MASK32
        k = rotl32(k, 15)
        k = (k * _C2_32) & MASK32
        h ^= k
        h = rotl32(h, 13)
        h = (h * 5 + 0xE6546B64) & MASK32

    k = 0
    tail = length & 3
    if tail == 3:
        k ^= data[rounded_end + 2] << 16
    if tail >= 2:
        k ^= data[rounded_end + 1] << 8
    if tail >= 1:
        k ^= data[rounded_end]
        k = (k * _C1_32) & MASK32
        k = rotl32(k, 15)
        k = (k * _C2_32) & MASK32
        h ^= k

    h ^= length
    return fmix32(h)


def murmur3_x64_128(data: bytes, seed: int = 0) -> tuple[int, int]:
    """MurmurHash3 x64_128 of ``data``; returns the two 64-bit halves.

    Dablooms feeds the two halves to Kirsch-Mitzenmacher double hashing
    (:mod:`repro.hashing.kirsch_mitzenmacher`).
    """
    length = len(data)
    h1 = seed & MASK64
    h2 = seed & MASK64
    nblocks = length // 16

    for i in range(nblocks):
        k1, k2 = struct.unpack_from("<QQ", data, i * 16)

        k1 = (k1 * _C1_64) & MASK64
        k1 = rotl64(k1, 31)
        k1 = (k1 * _C2_64) & MASK64
        h1 ^= k1
        h1 = rotl64(h1, 27)
        h1 = (h1 + h2) & MASK64
        h1 = (h1 * 5 + 0x52DCE729) & MASK64

        k2 = (k2 * _C2_64) & MASK64
        k2 = rotl64(k2, 33)
        k2 = (k2 * _C1_64) & MASK64
        h2 ^= k2
        h2 = rotl64(h2, 31)
        h2 = (h2 + h1) & MASK64
        h2 = (h2 * 5 + 0x38495AB5) & MASK64

    tail_index = nblocks * 16
    k1 = 0
    k2 = 0
    tail = length & 15

    if tail >= 15:
        k2 ^= data[tail_index + 14] << 48
    if tail >= 14:
        k2 ^= data[tail_index + 13] << 40
    if tail >= 13:
        k2 ^= data[tail_index + 12] << 32
    if tail >= 12:
        k2 ^= data[tail_index + 11] << 24
    if tail >= 11:
        k2 ^= data[tail_index + 10] << 16
    if tail >= 10:
        k2 ^= data[tail_index + 9] << 8
    if tail >= 9:
        k2 ^= data[tail_index + 8]
        k2 = (k2 * _C2_64) & MASK64
        k2 = rotl64(k2, 33)
        k2 = (k2 * _C1_64) & MASK64
        h2 ^= k2

    if tail >= 8:
        k1 ^= data[tail_index + 7] << 56
    if tail >= 7:
        k1 ^= data[tail_index + 6] << 48
    if tail >= 6:
        k1 ^= data[tail_index + 5] << 40
    if tail >= 5:
        k1 ^= data[tail_index + 4] << 32
    if tail >= 4:
        k1 ^= data[tail_index + 3] << 24
    if tail >= 3:
        k1 ^= data[tail_index + 2] << 16
    if tail >= 2:
        k1 ^= data[tail_index + 1] << 8
    if tail >= 1:
        k1 ^= data[tail_index]
        k1 = (k1 * _C1_64) & MASK64
        k1 = rotl64(k1, 31)
        k1 = (k1 * _C2_64) & MASK64
        h1 ^= k1

    h1 ^= length
    h2 ^= length
    h1 = (h1 + h2) & MASK64
    h2 = (h2 + h1) & MASK64
    h1 = fmix64(h1)
    h2 = fmix64(h2)
    h1 = (h1 + h2) & MASK64
    h2 = (h2 + h1) & MASK64
    return h1, h2


class Murmur3_32(CallableHash):
    """MurmurHash3 x86_32 as a seedable :class:`HashFunction`."""

    def __init__(self, seed: int = 0) -> None:
        self.seed = seed & MASK32
        super().__init__(
            lambda data: murmur3_32(data, self.seed), 32, f"murmur3_32[{seed}]"
        )


class Murmur3_x64_128(CallableHash):
    """MurmurHash3 x64_128 as a seedable 128-bit :class:`HashFunction`."""

    def __init__(self, seed: int = 0) -> None:
        self.seed = seed & MASK64

        def _combined(data: bytes) -> int:
            h1, h2 = murmur3_x64_128(data, self.seed)
            return (h1 << 64) | h2

        super().__init__(_combined, 128, f"murmur3_x64_128[{seed}]")

    def halves(self, data: bytes) -> tuple[int, int]:
        """Return the raw ``(h1, h2)`` pair (used by double hashing)."""
        return murmur3_x64_128(data, self.seed)

    def halves_batch(self, datas: list[bytes]) -> list[tuple[int, int]]:
        """The ``(h1, h2)`` pairs of a whole batch of keys.

        Takes the vectorised uint64-lane implementation
        (:mod:`repro.hashing.batched`) when the accel mode allows, the
        scalar function otherwise; both are bit-identical.
        """
        from repro import accel

        if accel.accelerated(len(datas)) and accel.numpy_or_none() is not None:
            from repro.hashing.batched import murmur3_x64_128_batch

            h1, h2 = murmur3_x64_128_batch(datas, self.seed)
            return list(zip(h1.tolist(), h2.tolist()))
        return [murmur3_x64_128(data, self.seed) for data in datas]
