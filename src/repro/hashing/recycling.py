"""Digest-bit recycling: the paper's Section 8.2 efficiency countermeasure.

A Bloom filter needs ``k * ceil(log2 m)`` digest bits per item.  Rather
than calling a (slow, secure) hash k times with k salts and discarding
most of each digest, the paper recycles: call the hash once, slice the
digest into consecutive ``ceil(log2 m)``-bit windows, and only make an
additional salted call when the previous digest is exhausted.  Fig. 9
maps which hash covers which (m, f) region in a single call; Table 2
benchmarks the speedup (x20-x104 over naive crypto hashing).
"""

from __future__ import annotations

import math

from repro import accel
from repro.hashing.base import HashFunction, IndexStrategy, digest_to_int, ensure_bytes

__all__ = ["bits_required", "calls_required", "RecyclingStrategy"]


def bits_required(k: int, m: int) -> int:
    """Digest bits needed for one item: ``k * ceil(log2 m)`` (paper Fig. 9)."""
    if k <= 0:
        raise ValueError("k must be positive")
    if m <= 1:
        raise ValueError("m must be at least 2")
    return k * math.ceil(math.log2(m))


def calls_required(k: int, m: int, digest_bits: int) -> int:
    """Hash invocations needed to gather :func:`bits_required` bits.

    Windows never straddle two digests (each call yields
    ``floor(digest_bits / ceil(log2 m))`` whole windows), matching how an
    implementation would actually slice.
    """
    if digest_bits <= 0:
        raise ValueError("digest_bits must be positive")
    window = math.ceil(math.log2(m))
    if window > digest_bits:
        raise ValueError(
            f"digest too narrow: one index needs {window} bits, digest has {digest_bits}"
        )
    per_call = digest_bits // window
    return math.ceil(k / per_call)


class RecyclingStrategy(IndexStrategy):
    """Derive k indexes by slicing one (or few) long digests.

    Parameters
    ----------
    hash_fn:
        The underlying hash (typically :class:`~repro.hashing.crypto.SHA512`
        or an :class:`~repro.hashing.crypto.HmacHash` for the keyed
        variant).
    salt:
        Optional public prefix mixed into every call; successive calls for
        the same item are domain-separated with a one-byte counter, the
        "salt and recycle" of the paper.

    Index extraction takes the top ``ceil(log2 m)`` bits per window and
    reduces modulo m.  Windows are non-overlapping; a fresh salted call is
    made only when the digest runs out of whole windows.
    """

    def __init__(self, hash_fn: HashFunction, salt: bytes = b"") -> None:
        self.hash_fn = hash_fn
        self.salt = salt
        self.name = f"recycling({hash_fn.name})"

    def _digest_int(self, data: bytes, call_index: int) -> int:
        prefix = self.salt + bytes([call_index]) if call_index or self.salt else b""
        return digest_to_int(self.hash_fn.digest(prefix + data))

    def indexes(self, item: str | bytes, k: int, m: int) -> tuple[int, ...]:
        if k <= 0:
            raise ValueError("k must be positive")
        if m <= 1:
            raise ValueError("m must be at least 2")
        data = ensure_bytes(item)
        window = math.ceil(math.log2(m))
        digest_bits = self.hash_fn.digest_bits
        per_call = digest_bits // window
        if per_call == 0:
            raise ValueError(
                f"digest too narrow: one index needs {window} bits, "
                f"{self.hash_fn.name} has {digest_bits}"
            )

        out: list[int] = []
        call_index = 0
        value = self._digest_int(data, call_index)
        remaining = per_call
        shift = digest_bits - window
        while len(out) < k:
            if remaining == 0:
                call_index += 1
                value = self._digest_int(data, call_index)
                remaining = per_call
                shift = digest_bits - window
            out.append(((value >> shift) & ((1 << window) - 1)) % m)
            shift -= window
            remaining -= 1
        return tuple(out)

    def batch_indexes(
        self, items, k: int, m: int
    ) -> list[tuple[int, ...]]:
        """Single-pass batch hashing: the window geometry (widths, shifts,
        masks) is derived once for the whole batch instead of per item, and
        the common one-call-per-item case runs with no inner loop state.

        Falls back to the scalar :meth:`indexes` when the digest is too
        narrow for k windows or a salt forces multi-call recycling.
        """
        if k <= 0:
            raise ValueError("k must be positive")
        if m <= 1:
            raise ValueError("m must be at least 2")
        window = math.ceil(math.log2(m))
        digest_bits = self.hash_fn.digest_bits
        per_call = digest_bits // window
        if per_call == 0:
            raise ValueError(
                f"digest too narrow: one index needs {window} bits, "
                f"{self.hash_fn.name} has {digest_bits}"
            )
        if self.salt or per_call < k:
            return [self.indexes(item, k, m) for item in items]
        digest = self.hash_fn.digest
        mask = (1 << window) - 1
        shifts = tuple(digest_bits - window * (j + 1) for j in range(k))
        values = (
            int.from_bytes(digest(ensure_bytes(item)), "big") for item in items
        )
        if mask == m - 1:
            # Power-of-two m: the window mask already reduces modulo m.
            return [
                tuple((value >> shift) & mask for shift in shifts) for value in values
            ]
        return [
            tuple(((value >> shift) & mask) % m for shift in shifts)
            for value in values
        ]

    def flat_batch_indexes(self, items, k: int, m: int):
        """Whole-batch derivation: one contiguous digest buffer via
        :meth:`~repro.hashing.base.HashFunction.digest_batch`, then all
        windows of all items sliced in uint64 lanes at once
        (:func:`repro.core._kernels.recycling_indexes_flat`).

        Falls back to flattening :meth:`batch_indexes` whenever the
        vector path cannot apply bit-identically: salted or multi-call
        recycling, digests that are not whole uint64 words, or a batch
        below the accel threshold.
        """
        if k <= 0:
            raise ValueError("k must be positive")
        if m <= 1:
            raise ValueError("m must be at least 2")
        items = items if isinstance(items, (list, tuple)) else list(items)
        window = math.ceil(math.log2(m))
        digest_bits = self.hash_fn.digest_bits
        digest_size = self.hash_fn.digest_size
        per_call = digest_bits // window
        if (
            not self.salt
            and per_call >= k > 0
            and digest_bits == digest_size * 8
            and digest_size % 8 == 0
            and accel.accelerated(len(items) * k)
            and accel.numpy_or_none() is not None
        ):
            from repro.core import _kernels

            datas = [ensure_bytes(item) for item in items]
            digests = self.hash_fn.digest_batch(datas)
            return _kernels.recycling_indexes_flat(
                digests, len(datas), digest_size, k, window, m
            )
        flat: list[int] = []
        for indexes in self.batch_indexes(items, k, m):
            flat.extend(indexes)
        return flat

    def hash_calls(self, k: int, m: int) -> int:
        return calls_required(k, m, self.hash_fn.digest_bits)
