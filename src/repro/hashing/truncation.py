"""Digest truncation and its security accounting.

Truncating an l-bit digest to l' bits reduces pre-image and second
pre-image resistance to 2^l' and collision resistance to 2^(l'/2)
(NIST SP 800-107, paper Section 2).  Bloom filters truncate *implicitly*
by reducing digests modulo m, which is why a "SHA-256-backed" filter can
still be brute-forced: only ``log2(m)`` bits of the digest matter per
index.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.hashing.base import HashFunction

__all__ = ["TruncatedHash", "SecurityLevels", "security_levels", "effective_bits_per_index"]


@dataclass(frozen=True)
class SecurityLevels:
    """Work factors (log2 of expected trials) for the three classic goals."""

    preimage_bits: float
    second_preimage_bits: float
    collision_bits: float

    def feasible(self, budget_log2: float = 40.0) -> dict[str, bool]:
        """Which attacks fit in a compute budget of ``2**budget_log2`` trials.

        The default of 2^40 is a generous laptop-scale budget; the paper's
        attacks run within minutes-to-hours, i.e. well under 2^40.
        """
        return {
            "preimage": self.preimage_bits <= budget_log2,
            "second_preimage": self.second_preimage_bits <= budget_log2,
            "collision": self.collision_bits <= budget_log2,
        }


def security_levels(digest_bits: int) -> SecurityLevels:
    """Security of an (effectively) ``digest_bits``-wide hash output."""
    if digest_bits <= 0:
        raise ValueError("digest_bits must be positive")
    return SecurityLevels(
        preimage_bits=float(digest_bits),
        second_preimage_bits=float(digest_bits),
        collision_bits=digest_bits / 2.0,
    )


def effective_bits_per_index(m: int) -> float:
    """Bits of digest a Bloom filter actually consumes per index.

    Reducing modulo m keeps only ``log2(m)`` bits -- the implicit
    truncation at the heart of the paper's feasibility argument.
    """
    if m <= 1:
        raise ValueError("m must be at least 2")
    return math.log2(m)


class TruncatedHash(HashFunction):
    """Truncate another hash to its first ``bits`` bits.

    Mirrors what developers do when an algorithm needs fewer bits than the
    digest provides.  The resulting function inherits the speed of the
    inner hash but only ``bits`` of security.
    """

    def __init__(self, inner: HashFunction, bits: int) -> None:
        if bits <= 0 or bits > inner.digest_bits:
            raise ValueError(
                f"truncation width must be in (0, {inner.digest_bits}], got {bits}"
            )
        self.inner = inner
        self.digest_bits = bits
        self.name = f"{inner.name}/{bits}"

    def digest(self, data: bytes) -> bytes:
        full = self.inner.digest(data)
        nbytes = (self.digest_bits + 7) // 8
        truncated = bytearray(full[:nbytes])
        extra = 8 * nbytes - self.digest_bits
        if extra:
            # Mask the trailing bits of the last byte so exactly
            # ``digest_bits`` bits survive.
            truncated[-1] &= 0xFF << extra
        return bytes(truncated)

    def hash_int(self, item) -> int:
        """The truncated value itself (always below ``2**digest_bits``)."""
        value = super().hash_int(item)
        extra = 8 * self.digest_size - self.digest_bits
        return value >> extra

    @property
    def security(self) -> SecurityLevels:
        """Security levels after truncation."""
        return security_levels(self.digest_bits)
