"""Budget-frontier calibration: the defence-side inverse of the budget model.

The attack-budget subsystem prices a campaign from the attacker's side:
given trials, a request-rate ceiling and a deadline, how many ghost hits
does the adversary extract?  A defender plans the other way around --
"for my rotation policy and geometry, what is the *cheapest* budget that
still buys the attacker a damaging ghost volume?"  The higher that
cheapest winning budget, the better the defence: it is the price tag a
rational adversary reads before deciding whether the campaign is worth
mounting (Tirmazi's robustness survey frames exactly this cost game, and
Naor-Yogev's adversary is the budgeted player on the other side).

This module computes that frontier point by *replay*: a candidate
:class:`~repro.service.config.AttackBudgetConfig` is handed to the
seeded :class:`~repro.service.driver.AdversarialTrafficDriver` workload
against a gateway built from the :class:`~repro.service.config.
ServiceConfig` under study, the adaptive ghost campaign runs under that
purse, and the probe *wins* when it reaches the target ghost volume.
:func:`cheapest_winning_budget` then binary-searches the trial axis
(request rate and deadline are shape parameters of the campaign) for the
cheapest winning purse -- the mirror image of how ``worst_case_params``
sweeps geometry.

Replays are seeded and deterministic in workload structure, but the
win predicate is only *statistically* monotone in the purse (asyncio
interleaving moves rotation instants slightly between runs), so the
result is the cheapest winning budget the search observed, bracketed to
``resolution`` trials -- calibration, not a closed form.  A defence
strong enough that even ``ceiling`` trials lose reports ``cheapest =
None``: the frontier lies beyond the sweep, which for comparison
purposes is *above* every finite point.

Each probe is an independent seeded replay, so the search parallelises:
hand :func:`cheapest_winning_budget` a :class:`ProbePool` and the
doubling phase fans its whole rung ladder across worker processes while
the search still consumes results in rung order and records exactly the
rungs the serial walk would have probed -- the pool changes wall clock,
never which probes decide the price.

:func:`thrash_events` is the companion diagnostic: rotation pairs on the
same shard closer than a minimum op gap -- the filter-emptying churn a
:class:`~repro.service.lifecycle.Cooldown` wrapper exists to forbid.
"""

from __future__ import annotations

import asyncio
import os
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from typing import Callable, Iterable

from repro.exceptions import ParameterError
from repro.service.config import AttackBudgetConfig, ServiceConfig
from repro.service.driver import AdversarialTrafficDriver
from repro.service.gateway import MembershipGateway, RotationEvent
from repro.service.sharding import HashShardPicker

__all__ = [
    "FrontierWorkload",
    "FrontierProbe",
    "FrontierResult",
    "ProbePool",
    "thrash_events",
    "replay_probe",
    "minimise_winning_trials",
    "cheapest_winning_budget",
]


def thrash_events(
    rotation_log: Iterable[RotationEvent], min_gap_ops: int
) -> int:
    """Count rotation pairs on one shard closer than ``min_gap_ops``.

    The gap is measured in gateway op-epochs (the logical clock stamped
    on every :class:`~repro.service.gateway.RotationEvent`), which upper-
    bounds the shard's own operation count over the same interval -- so
    a gateway running ``cooldown:N(...)`` can never produce a thrash
    event with ``min_gap_ops <= N``.  Each event pairs with its
    predecessor on the same shard: three back-to-back rotations are two
    thrash events.
    """
    if min_gap_ops <= 0:
        raise ParameterError("min_gap_ops must be positive")
    last_epoch: dict[int, int] = {}
    thrash = 0
    for event in rotation_log:
        previous = last_epoch.get(event.shard_id)
        if previous is not None and event.op_epoch - previous < min_gap_ops:
            thrash += 1
        last_epoch[event.shard_id] = event.op_epoch
    return thrash


@dataclass(frozen=True)
class FrontierWorkload:
    """The seeded probe replay a frontier search repeats per budget.

    One honest population plus the adaptive ghost campaign aimed at
    ``target_shard``; no pollution client by default, so the purse under
    test is spent by the ghost campaign alone and the frontier prices
    exactly the attack whose volume is being targeted.  Honest traffic
    both camouflages the storm (it keeps the positive-rate mix honest)
    and refills the shard after a rotation -- without it, recrafting
    against a freshly-rotated, empty filter would be impossible and
    every tripwire policy would trivially win.
    """

    honest_clients: int = 3
    honest_inserts: int = 840
    honest_queries: int = 240
    batch: int = 16
    pollution_inserts: int = 0
    ghost_queries: int = 96
    min_fill: float = 0.25
    target_shard: int = 0
    #: Per-item crafting cap (the campaign purse is the searched bound).
    max_trials: int = 30_000
    craft_chunk: int = 8
    #: Consecutive dry craft chunks the campaign survives -- the
    #: frontier models a *patient* attacker who waits out a rotation
    #: until honest traffic refills the shard (a purse big enough to
    #: recraft should win; only the purse, not impatience, should lose).
    craft_patience: int = 12

    def run_kwargs(self) -> dict:
        """Keyword arguments for ``AdversarialTrafficDriver.run``."""
        return dict(
            honest_clients=self.honest_clients,
            honest_inserts=self.honest_inserts,
            honest_queries=self.honest_queries,
            batch=self.batch,
            pollution_inserts=self.pollution_inserts,
            ghost_queries=0,
            adaptive_ghost_queries=self.ghost_queries,
            adaptive_min_fill=self.min_fill,
            latency_queries=0,
            target_shard=self.target_shard,
            probe_queries=0,
        )


@dataclass(frozen=True)
class FrontierProbe:
    """Outcome of replaying one candidate budget against one defence."""

    budget: AttackBudgetConfig
    ghost_queries: int
    ghost_hits: int
    trials_spent: int
    rotations: int
    rotations_suppressed: int
    thrash_events: int
    won: bool


@dataclass(frozen=True)
class FrontierResult:
    """Cheapest winning budget found for one service configuration."""

    policy: str
    target_hits: int
    #: The cheapest budget that reached the target, or ``None`` when
    #: even the ceiling lost -- the frontier lies beyond the sweep,
    #: i.e. above every finite competitor.
    cheapest: AttackBudgetConfig | None
    #: The probe behind ``cheapest`` (``None`` exactly when it is).
    winning: FrontierProbe | None
    probes: tuple[FrontierProbe, ...] = field(default_factory=tuple)

    @property
    def cheapest_trials(self) -> int | None:
        """The frontier price in trials (``None`` = beyond the sweep)."""
        return self.cheapest.max_trials if self.cheapest is not None else None

    def beats(self, other: "FrontierResult") -> bool:
        """True when this defence's frontier price is strictly higher
        than ``other``'s (``None`` counts as beyond every finite price;
        two ``None`` frontiers are not comparable and return False)."""
        if self.cheapest_trials is None:
            return other.cheapest_trials is not None
        if other.cheapest_trials is None:
            return False
        return self.cheapest_trials > other.cheapest_trials


def replay_probe(
    config: ServiceConfig,
    budget: AttackBudgetConfig,
    target_hits: int,
    workload: FrontierWorkload | None = None,
    seed: int = 0,
    thrash_gap: int = 200,
) -> FrontierProbe:
    """Replay the seeded workload under one candidate budget.

    Builds a fresh gateway from ``config``, runs the driver with the
    budget metering the adaptive ghost campaign, and reports whether the
    campaign reached ``target_hits`` confirmed ghost answers.
    """
    if target_hits <= 0:
        raise ParameterError("target_hits must be positive")
    workload = workload or FrontierWorkload()
    gateway = MembershipGateway.from_config(config)
    try:
        driver = AdversarialTrafficDriver(
            gateway,
            seed=seed,
            attacker_router=HashShardPicker(),
            max_trials=workload.max_trials,
            craft_chunk=workload.craft_chunk,
            craft_patience=workload.craft_patience,
            budget=budget.build(),
        )
        report = asyncio.run(driver.run(**workload.run_kwargs()))
    finally:
        gateway.close()
    trials = sum(spend.get("trials", 0) for spend in report.budget_spend.values())
    return FrontierProbe(
        budget=budget,
        ghost_queries=report.adaptive_queries,
        ghost_hits=report.adaptive_hits,
        trials_spent=trials,
        rotations=report.rotations,
        rotations_suppressed=report.rotations_suppressed,
        thrash_events=thrash_events(gateway.rotation_log, thrash_gap),
        won=report.adaptive_hits >= target_hits,
    )


class ProbePool:
    """A process pool fanning seeded frontier replays out concurrently.

    Every probe is a full gateway build plus an ``asyncio.run`` replay --
    seconds of mostly-sleeping wall clock -- and the doubling phase of
    :func:`cheapest_winning_budget` knows its whole rung ladder up
    front.  The pool submits the ladder at once and the search consumes
    results *in rung order*, recording probes only up to the first
    winner -- the same rungs, in the same order, deciding the same way
    as the serial walk.  Given the same probe outcomes the frontier is
    identical; a replay's outcome does not depend on which process runs
    it (only on the seed and the timing jitter every replay already
    carries -- see the module docstring).  Rungs past the first winner
    may still execute (their futures are cancelled best-effort) but are
    never recorded.

    The pool is also a plain ``submit`` surface for experiment-level
    fan-out -- per-policy frontier sweeps and storm replays ship their
    module-level callables through the same workers.
    """

    def __init__(self, workers: int | None = None) -> None:
        if workers is not None and workers <= 0:
            raise ParameterError("workers must be positive")
        self.workers = workers or os.cpu_count() or 1
        self._executor = ProcessPoolExecutor(max_workers=self.workers)

    def submit(self, fn, /, *args, **kwargs):
        """Ship any picklable module-level callable to a worker."""
        return self._executor.submit(fn, *args, **kwargs)

    def probe(
        self,
        config: ServiceConfig,
        budget: AttackBudgetConfig,
        target_hits: int,
        *,
        workload: FrontierWorkload | None = None,
        seed: int = 0,
        thrash_gap: int = 200,
    ):
        """Future for one :func:`replay_probe` in a worker process."""
        return self._executor.submit(
            replay_probe, config, budget, target_hits, workload, seed, thrash_gap
        )

    def close(self) -> None:
        self._executor.shutdown(wait=True)

    def __enter__(self) -> "ProbePool":
        return self

    def __exit__(self, *exc) -> bool:
        self.close()
        return False


def minimise_winning_trials(
    win: Callable[[int], bool],
    floor: int,
    ceiling: int,
    resolution: int,
) -> int | None:
    """Find the smallest winning trial purse in [floor, ceiling].

    ``win(trials)`` replays one probe and reports whether the campaign
    reached its target.  The search doubles up from ``floor`` until the
    first winning purse (or ``ceiling``), then bisects the bracket down
    to ``resolution`` trials.  Returns ``floor`` when even the floor
    wins, or ``None`` when no probed purse up to ``ceiling`` wins (the
    frontier lies beyond the sweep).

    Why doubling instead of probing the ceiling first: the win
    predicate is only *locally* monotone.  An oversized purse can lose
    where a modest one wins -- the budgeted crafting layer will happily
    burn a huge allowance on post-rotation searches against a
    near-empty filter and stall the campaign -- so the cheapest winning
    budget is found by walking up from below, never by assuming wins
    propagate down from the top.
    """
    if floor <= 0 or ceiling < floor:
        raise ParameterError("need 0 < floor <= ceiling")
    if resolution <= 0:
        raise ParameterError("resolution must be positive")
    if win(floor):
        return floor
    lo, hi = floor, None  # lo lost; hi is the first observed win
    candidate = floor
    while candidate < ceiling:
        candidate = min(candidate * 2, ceiling)
        if win(candidate):
            hi = candidate
            break
        lo = candidate
    if hi is None:
        return None
    while hi - lo > resolution:
        mid = (lo + hi) // 2
        if win(mid):
            hi = mid
        else:
            lo = mid
    return hi


def _minimise_pooled(
    pool: ProbePool,
    budget_for,
    record,
    config: ServiceConfig,
    target_hits: int,
    workload: FrontierWorkload,
    seed: int,
    thrash_gap: int,
    floor: int,
    ceiling: int,
    resolution: int,
) -> int | None:
    """Pooled twin of :func:`minimise_winning_trials`.

    The doubling ladder (floor, 2*floor, ..., ceiling) is known before
    any result is, so every rung's replay is submitted at once; results
    are then consumed *in rung order* and recording stops at the first
    winner -- exactly the rungs the serial search would have probed, in
    the order it would have probed them.  Bisection is inherently
    sequential (each midpoint depends on the last verdict) and runs one
    pooled probe at a time.
    """
    if floor <= 0 or ceiling < floor:
        raise ParameterError("need 0 < floor <= ceiling")
    if resolution <= 0:
        raise ParameterError("resolution must be positive")

    def submit(trials: int):
        return pool.probe(
            config,
            budget_for(trials),
            target_hits,
            workload=workload,
            seed=seed,
            thrash_gap=thrash_gap,
        )

    ladder = [floor]
    while ladder[-1] < ceiling:
        ladder.append(min(ladder[-1] * 2, ceiling))
    futures = {trials: submit(trials) for trials in ladder}
    lo = hi = None
    try:
        for trials in ladder:
            if record(trials, futures[trials].result()):
                hi = trials
                break
            lo = trials
    finally:
        for future in futures.values():
            future.cancel()
    if hi is None:
        return None
    if hi == floor:
        return floor
    while hi - lo > resolution:
        mid = (lo + hi) // 2
        if record(mid, submit(mid).result()):
            hi = mid
        else:
            lo = mid
    return hi


def cheapest_winning_budget(
    config: ServiceConfig,
    target_hits: int,
    *,
    workload: FrontierWorkload | None = None,
    seed: int = 0,
    floor: int = 16,
    ceiling: int = 24_000,
    resolution: int | None = None,
    requests_per_s: float | None = None,
    deadline_s: float | None = None,
    thrash_gap: int = 200,
    pool: ProbePool | None = None,
) -> FrontierResult:
    """The defence frontier: cheapest budget that still wins.

    Sweeps the trial axis of :class:`~repro.service.config.
    AttackBudgetConfig` (``requests_per_s`` and ``deadline_s`` fix the
    campaign's other two dimensions) by binary search over seeded
    replays, and returns the cheapest purse that bought the adaptive
    ghost campaign ``target_hits`` confirmed hits -- or ``cheapest =
    None`` when even ``ceiling`` trials lose against this defence.

    With a :class:`ProbePool` the doubling phase fans its whole rung
    ladder out at once and consumes results in rung order (probes past
    the first winner are discarded unrecorded), then bisects serially
    through the pool -- the same rung sequence and decision rule as the
    serial search, in less wall clock on multicore hosts.
    """
    workload = workload or FrontierWorkload()
    resolution = resolution or max(16, ceiling // 16)
    probes: list[FrontierProbe] = []
    by_trials: dict[int, FrontierProbe] = {}

    def budget_for(trials: int) -> AttackBudgetConfig:
        return AttackBudgetConfig(
            max_trials=trials,
            requests_per_s=requests_per_s,
            deadline_s=deadline_s,
            strategy="adaptive",
        )

    def record(trials: int, probe: FrontierProbe) -> bool:
        probes.append(probe)
        by_trials[trials] = probe
        return probe.won

    def win(trials: int) -> bool:
        probe = replay_probe(
            config,
            budget_for(trials),
            target_hits,
            workload=workload,
            seed=seed,
            thrash_gap=thrash_gap,
        )
        return record(trials, probe)

    if pool is None or getattr(pool, "workers", 2) <= 1:
        # A single-worker pool serializes the ladder anyway, so the
        # fan-out buys no wall clock while still paying per-probe
        # pickling and the speculative rung the worker starts before
        # the in-order consumer can cancel it.  The serial walk probes
        # the same rungs and decides identically.  (Duck-typed pools
        # that don't advertise a worker count are taken at their word
        # and fanned into.)
        cheapest_trials = minimise_winning_trials(win, floor, ceiling, resolution)
    else:
        cheapest_trials = _minimise_pooled(
            pool,
            budget_for,
            record,
            config,
            target_hits,
            workload,
            seed,
            thrash_gap,
            floor,
            ceiling,
            resolution,
        )
    winning = by_trials.get(cheapest_trials) if cheapest_trials is not None else None
    return FrontierResult(
        policy=config.rotation_policy
        or (f"fill:{config.rotation_threshold:g}" if config.rotation_threshold else "none"),
        target_hits=target_hits,
        cheapest=winning.budget if winning is not None else None,
        winning=winning,
        probes=tuple(probes),
    )
