"""Budget-frontier calibration: the defence-side inverse of the budget model.

The attack-budget subsystem prices a campaign from the attacker's side:
given trials, a request-rate ceiling and a deadline, how many ghost hits
does the adversary extract?  A defender plans the other way around --
"for my rotation policy and geometry, what is the *cheapest* budget that
still buys the attacker a damaging ghost volume?"  The higher that
cheapest winning budget, the better the defence: it is the price tag a
rational adversary reads before deciding whether the campaign is worth
mounting (Tirmazi's robustness survey frames exactly this cost game, and
Naor-Yogev's adversary is the budgeted player on the other side).

This module computes that frontier point by *replay*: a candidate
:class:`~repro.service.config.AttackBudgetConfig` is handed to the
seeded :class:`~repro.service.driver.AdversarialTrafficDriver` workload
against a gateway built from the :class:`~repro.service.config.
ServiceConfig` under study, the adaptive ghost campaign runs under that
purse, and the probe *wins* when it reaches the target ghost volume.
:func:`cheapest_winning_budget` then binary-searches the trial axis
(request rate and deadline are shape parameters of the campaign) for the
cheapest winning purse -- the mirror image of how ``worst_case_params``
sweeps geometry.

Replays are seeded and deterministic in workload structure, but the
win predicate is only *statistically* monotone in the purse (asyncio
interleaving moves rotation instants slightly between runs), so the
result is the cheapest winning budget the search observed, bracketed to
``resolution`` trials -- calibration, not a closed form.  A defence
strong enough that even ``ceiling`` trials lose reports ``cheapest =
None``: the frontier lies beyond the sweep, which for comparison
purposes is *above* every finite point.

:func:`thrash_events` is the companion diagnostic: rotation pairs on the
same shard closer than a minimum op gap -- the filter-emptying churn a
:class:`~repro.service.lifecycle.Cooldown` wrapper exists to forbid.
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass, field
from typing import Callable, Iterable

from repro.exceptions import ParameterError
from repro.service.config import AttackBudgetConfig, ServiceConfig
from repro.service.driver import AdversarialTrafficDriver
from repro.service.gateway import MembershipGateway, RotationEvent
from repro.service.sharding import HashShardPicker

__all__ = [
    "FrontierWorkload",
    "FrontierProbe",
    "FrontierResult",
    "thrash_events",
    "replay_probe",
    "minimise_winning_trials",
    "cheapest_winning_budget",
]


def thrash_events(
    rotation_log: Iterable[RotationEvent], min_gap_ops: int
) -> int:
    """Count rotation pairs on one shard closer than ``min_gap_ops``.

    The gap is measured in gateway op-epochs (the logical clock stamped
    on every :class:`~repro.service.gateway.RotationEvent`), which upper-
    bounds the shard's own operation count over the same interval -- so
    a gateway running ``cooldown:N(...)`` can never produce a thrash
    event with ``min_gap_ops <= N``.  Each event pairs with its
    predecessor on the same shard: three back-to-back rotations are two
    thrash events.
    """
    if min_gap_ops <= 0:
        raise ParameterError("min_gap_ops must be positive")
    last_epoch: dict[int, int] = {}
    thrash = 0
    for event in rotation_log:
        previous = last_epoch.get(event.shard_id)
        if previous is not None and event.op_epoch - previous < min_gap_ops:
            thrash += 1
        last_epoch[event.shard_id] = event.op_epoch
    return thrash


@dataclass(frozen=True)
class FrontierWorkload:
    """The seeded probe replay a frontier search repeats per budget.

    One honest population plus the adaptive ghost campaign aimed at
    ``target_shard``; no pollution client by default, so the purse under
    test is spent by the ghost campaign alone and the frontier prices
    exactly the attack whose volume is being targeted.  Honest traffic
    both camouflages the storm (it keeps the positive-rate mix honest)
    and refills the shard after a rotation -- without it, recrafting
    against a freshly-rotated, empty filter would be impossible and
    every tripwire policy would trivially win.
    """

    honest_clients: int = 3
    honest_inserts: int = 840
    honest_queries: int = 240
    batch: int = 16
    pollution_inserts: int = 0
    ghost_queries: int = 96
    min_fill: float = 0.25
    target_shard: int = 0
    #: Per-item crafting cap (the campaign purse is the searched bound).
    max_trials: int = 30_000
    craft_chunk: int = 8
    #: Consecutive dry craft chunks the campaign survives -- the
    #: frontier models a *patient* attacker who waits out a rotation
    #: until honest traffic refills the shard (a purse big enough to
    #: recraft should win; only the purse, not impatience, should lose).
    craft_patience: int = 12

    def run_kwargs(self) -> dict:
        """Keyword arguments for ``AdversarialTrafficDriver.run``."""
        return dict(
            honest_clients=self.honest_clients,
            honest_inserts=self.honest_inserts,
            honest_queries=self.honest_queries,
            batch=self.batch,
            pollution_inserts=self.pollution_inserts,
            ghost_queries=0,
            adaptive_ghost_queries=self.ghost_queries,
            adaptive_min_fill=self.min_fill,
            latency_queries=0,
            target_shard=self.target_shard,
            probe_queries=0,
        )


@dataclass(frozen=True)
class FrontierProbe:
    """Outcome of replaying one candidate budget against one defence."""

    budget: AttackBudgetConfig
    ghost_queries: int
    ghost_hits: int
    trials_spent: int
    rotations: int
    rotations_suppressed: int
    thrash_events: int
    won: bool


@dataclass(frozen=True)
class FrontierResult:
    """Cheapest winning budget found for one service configuration."""

    policy: str
    target_hits: int
    #: The cheapest budget that reached the target, or ``None`` when
    #: even the ceiling lost -- the frontier lies beyond the sweep,
    #: i.e. above every finite competitor.
    cheapest: AttackBudgetConfig | None
    #: The probe behind ``cheapest`` (``None`` exactly when it is).
    winning: FrontierProbe | None
    probes: tuple[FrontierProbe, ...] = field(default_factory=tuple)

    @property
    def cheapest_trials(self) -> int | None:
        """The frontier price in trials (``None`` = beyond the sweep)."""
        return self.cheapest.max_trials if self.cheapest is not None else None

    def beats(self, other: "FrontierResult") -> bool:
        """True when this defence's frontier price is strictly higher
        than ``other``'s (``None`` counts as beyond every finite price;
        two ``None`` frontiers are not comparable and return False)."""
        if self.cheapest_trials is None:
            return other.cheapest_trials is not None
        if other.cheapest_trials is None:
            return False
        return self.cheapest_trials > other.cheapest_trials


def replay_probe(
    config: ServiceConfig,
    budget: AttackBudgetConfig,
    target_hits: int,
    workload: FrontierWorkload | None = None,
    seed: int = 0,
    thrash_gap: int = 200,
) -> FrontierProbe:
    """Replay the seeded workload under one candidate budget.

    Builds a fresh gateway from ``config``, runs the driver with the
    budget metering the adaptive ghost campaign, and reports whether the
    campaign reached ``target_hits`` confirmed ghost answers.
    """
    if target_hits <= 0:
        raise ParameterError("target_hits must be positive")
    workload = workload or FrontierWorkload()
    gateway = MembershipGateway.from_config(config)
    try:
        driver = AdversarialTrafficDriver(
            gateway,
            seed=seed,
            attacker_router=HashShardPicker(),
            max_trials=workload.max_trials,
            craft_chunk=workload.craft_chunk,
            craft_patience=workload.craft_patience,
            budget=budget.build(),
        )
        report = asyncio.run(driver.run(**workload.run_kwargs()))
    finally:
        gateway.close()
    trials = sum(spend.get("trials", 0) for spend in report.budget_spend.values())
    return FrontierProbe(
        budget=budget,
        ghost_queries=report.adaptive_queries,
        ghost_hits=report.adaptive_hits,
        trials_spent=trials,
        rotations=report.rotations,
        rotations_suppressed=report.rotations_suppressed,
        thrash_events=thrash_events(gateway.rotation_log, thrash_gap),
        won=report.adaptive_hits >= target_hits,
    )


def minimise_winning_trials(
    win: Callable[[int], bool],
    floor: int,
    ceiling: int,
    resolution: int,
) -> int | None:
    """Find the smallest winning trial purse in [floor, ceiling].

    ``win(trials)`` replays one probe and reports whether the campaign
    reached its target.  The search doubles up from ``floor`` until the
    first winning purse (or ``ceiling``), then bisects the bracket down
    to ``resolution`` trials.  Returns ``floor`` when even the floor
    wins, or ``None`` when no probed purse up to ``ceiling`` wins (the
    frontier lies beyond the sweep).

    Why doubling instead of probing the ceiling first: the win
    predicate is only *locally* monotone.  An oversized purse can lose
    where a modest one wins -- the budgeted crafting layer will happily
    burn a huge allowance on post-rotation searches against a
    near-empty filter and stall the campaign -- so the cheapest winning
    budget is found by walking up from below, never by assuming wins
    propagate down from the top.
    """
    if floor <= 0 or ceiling < floor:
        raise ParameterError("need 0 < floor <= ceiling")
    if resolution <= 0:
        raise ParameterError("resolution must be positive")
    if win(floor):
        return floor
    lo, hi = floor, None  # lo lost; hi is the first observed win
    candidate = floor
    while candidate < ceiling:
        candidate = min(candidate * 2, ceiling)
        if win(candidate):
            hi = candidate
            break
        lo = candidate
    if hi is None:
        return None
    while hi - lo > resolution:
        mid = (lo + hi) // 2
        if win(mid):
            hi = mid
        else:
            lo = mid
    return hi


def cheapest_winning_budget(
    config: ServiceConfig,
    target_hits: int,
    *,
    workload: FrontierWorkload | None = None,
    seed: int = 0,
    floor: int = 16,
    ceiling: int = 24_000,
    resolution: int | None = None,
    requests_per_s: float | None = None,
    deadline_s: float | None = None,
    thrash_gap: int = 200,
) -> FrontierResult:
    """The defence frontier: cheapest budget that still wins.

    Sweeps the trial axis of :class:`~repro.service.config.
    AttackBudgetConfig` (``requests_per_s`` and ``deadline_s`` fix the
    campaign's other two dimensions) by binary search over seeded
    replays, and returns the cheapest purse that bought the adaptive
    ghost campaign ``target_hits`` confirmed hits -- or ``cheapest =
    None`` when even ``ceiling`` trials lose against this defence.
    """
    workload = workload or FrontierWorkload()
    resolution = resolution or max(16, ceiling // 16)
    probes: list[FrontierProbe] = []
    by_trials: dict[int, FrontierProbe] = {}

    def win(trials: int) -> bool:
        budget = AttackBudgetConfig(
            max_trials=trials,
            requests_per_s=requests_per_s,
            deadline_s=deadline_s,
            strategy="adaptive",
        )
        probe = replay_probe(
            config,
            budget,
            target_hits,
            workload=workload,
            seed=seed,
            thrash_gap=thrash_gap,
        )
        probes.append(probe)
        by_trials[trials] = probe
        return probe.won

    cheapest_trials = minimise_winning_trials(win, floor, ceiling, resolution)
    winning = by_trials.get(cheapest_trials) if cheapest_trials is not None else None
    return FrontierResult(
        policy=config.rotation_policy
        or (f"fill:{config.rotation_threshold:g}" if config.rotation_threshold else "none"),
        target_hits=target_hits,
        cheapest=winning.budget if winning is not None else None,
        winning=winning,
        probes=tuple(probes),
    )
