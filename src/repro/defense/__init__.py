"""Defence-side calibration tools.

Everything under :mod:`repro.adversary` prices the game from the
attacker's chair; this package sits in the defender's.  Its first
instrument is the budget frontier (:mod:`repro.defense.frontier`): for a
given :class:`~repro.service.config.ServiceConfig` -- rotation policy,
geometry, admission -- and a target ghost volume, find the cheapest
:class:`~repro.service.config.AttackBudgetConfig` that still achieves
it, by binary-searching seeded replays of the adversarial traffic
driver.  The frontier price is the number a defender compares policies
by: composed, hysteresis-wrapped tripwires should push it up without
thrashing the shards (the ``defense_frontier`` experiment asserts
exactly that).
"""

from repro.defense.frontier import (
    FrontierProbe,
    FrontierResult,
    FrontierWorkload,
    cheapest_winning_budget,
    minimise_winning_trials,
    replay_probe,
    thrash_events,
)

__all__ = [
    "FrontierProbe",
    "FrontierResult",
    "FrontierWorkload",
    "cheapest_winning_budget",
    "minimise_winning_trials",
    "replay_probe",
    "thrash_events",
]
