"""Linear counting (Whang et al. 1990): cardinality from a bitmap.

The simplest probabilistic counter: hash each item to one of m bits;
estimate the number of distinct items from the fraction of zeros,
``n_hat = -m ln(V_n)`` with ``V_n = zeros/m``.  The paper's conclusion
points at exactly this family ("hashing, and the truncation that comes
along, is the core mechanism") as the next target for its adversary
models; :mod:`repro.counting.attacks` carries them over.
"""

from __future__ import annotations

import math

from repro.core.bitvector import BitVector
from repro.exceptions import ParameterError
from repro.hashing.base import HashFunction, ensure_bytes
from repro.hashing.murmur import Murmur3_32

__all__ = ["LinearCounter"]


class LinearCounter:
    """Bitmap-based distinct counter.

    Parameters
    ----------
    m:
        Bitmap size in bits; accuracy degrades as the map fills (load
        factors beyond ~12 are unusable, and a *saturated* map returns
        infinity -- exactly what the saturation adversary aims for).
    hash_fn:
        The (public, unless keyed) hash mapping items to bits; defaults
        to MurmurHash3-32 as in common implementations.
    """

    def __init__(self, m: int, hash_fn: HashFunction | None = None) -> None:
        if m <= 0:
            raise ParameterError("m must be positive")
        self.m = m
        self.hash_fn = hash_fn or Murmur3_32(seed=0)
        self.bits = BitVector(m)
        self._insertions = 0

    def index(self, item: str | bytes) -> int:
        """The (predictable) bit an item maps to."""
        return self.hash_fn.hash_int(ensure_bytes(item)) % self.m

    def add(self, item: str | bytes) -> None:
        """Record one item occurrence."""
        self.bits.set(self.index(item))
        self._insertions += 1

    def add_index(self, index: int) -> None:
        """Index-level insertion hook (attack simulators)."""
        self.bits.set(index)
        self._insertions += 1

    def __len__(self) -> int:
        return self._insertions

    @property
    def zero_fraction(self) -> float:
        """``V_n``: fraction of bits still unset."""
        return (self.m - self.bits.hamming_weight()) / self.m

    def estimate(self) -> float:
        """Distinct-count estimate ``-m ln(V_n)``.

        A fully saturated map has no information left and returns
        ``inf`` -- callers must treat that as an attack indicator, not a
        number.
        """
        v = self.zero_fraction
        if v == 0.0:
            return math.inf
        return -self.m * math.log(v)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<LinearCounter m={self.m} estimate={self.estimate():.1f}>"
