"""HyperLogLog (Flajolet et al. 2007), from scratch.

The de-facto standard distinct counter: hash each item to 64 bits, use
the first ``p`` bits to pick one of ``m = 2^p`` registers and store the
longest run of leading zeros (+1) seen in the remaining bits.  The
harmonic-mean estimator with bias correction gives ~1.04/sqrt(m)
relative error -- *for uniform inputs*.  The adversary models of the
paper carry over directly (see :mod:`repro.counting.attacks`): register
placement and rho values are public functions of the item, and with
MurmurHash they are even invertible.
"""

from __future__ import annotations

import math
from typing import Callable

from repro.exceptions import ParameterError
from repro.hashing.base import ensure_bytes
from repro.hashing.murmur import murmur3_x64_128

__all__ = ["HyperLogLog", "alpha", "rho"]


def alpha(m: int) -> float:
    """Bias-correction constant for m registers (Flajolet et al.)."""
    if m == 16:
        return 0.673
    if m == 32:
        return 0.697
    if m == 64:
        return 0.709
    return 0.7213 / (1.0 + 1.079 / m)


def rho(w: int, width: int) -> int:
    """Position of the leftmost 1-bit of a ``width``-bit word (1-based).

    ``rho(0) = width + 1`` by convention (all zeros).
    """
    if w == 0:
        return width + 1
    return width - w.bit_length() + 1


class HyperLogLog:
    """HLL over a 64-bit hash (the h1 half of MurmurHash3 x64_128).

    Parameters
    ----------
    p:
        Precision: ``m = 2^p`` registers, p in [4, 18].
    hash64:
        64-bit item hash; defaults to murmur128's first half with seed
        0, matching widespread practice (and keeping the pipeline
        invertible, which the attacks exploit).  Pass a keyed hash for
        the countermeasure.
    """

    HASH_BITS = 64

    def __init__(self, p: int = 12, hash64: Callable[[bytes], int] | None = None) -> None:
        if not 4 <= p <= 18:
            raise ParameterError("p must be in [4, 18]")
        self.p = p
        self.m = 1 << p
        self._hash64 = hash64 or (lambda data: murmur3_x64_128(data, 0)[0])
        self.registers = bytearray(self.m)
        self._insertions = 0

    # ------------------------------------------------------------------

    def placement(self, item: str | bytes) -> tuple[int, int]:
        """The (register, rho) pair of an item -- public and predictable."""
        value = self._hash64(ensure_bytes(item))
        register = value >> (self.HASH_BITS - self.p)
        tail = value & ((1 << (self.HASH_BITS - self.p)) - 1)
        return register, rho(tail, self.HASH_BITS - self.p)

    def add(self, item: str | bytes) -> None:
        """Record one item occurrence."""
        register, r = self.placement(item)
        if r > self.registers[register]:
            self.registers[register] = r
        self._insertions += 1

    def __len__(self) -> int:
        return self._insertions

    # ------------------------------------------------------------------

    def _raw_estimate(self) -> float:
        total = sum(2.0 ** -reg for reg in self.registers)
        return alpha(self.m) * self.m * self.m / total

    def estimate(self) -> float:
        """Cardinality estimate with the standard small-range correction."""
        raw = self._raw_estimate()
        if raw <= 2.5 * self.m:
            zeros = self.registers.count(0)
            if zeros:
                # Linear-counting regime.
                return self.m * math.log(self.m / zeros)
        return raw

    def relative_error(self) -> float:
        """The design accuracy ~ 1.04/sqrt(m)."""
        return 1.04 / math.sqrt(self.m)

    def merge(self, other: "HyperLogLog") -> "HyperLogLog":
        """Register-wise max merge (the standard distributed-union op)."""
        if other.p != self.p:
            raise ParameterError("precision mismatch")
        merged = HyperLogLog(self.p, self._hash64)
        merged.registers = bytearray(
            max(a, b) for a, b in zip(self.registers, other.registers)
        )
        merged._insertions = self._insertions + other._insertions
        return merged

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<HyperLogLog p={self.p} estimate={self.estimate():.0f}>"
