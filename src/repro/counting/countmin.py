"""Count-Min sketch (Cormode & Muthukrishnan 2005) and its adversary.

The paper's related work cites Goldberg et al. on "path-quality
monitoring in the presence of adversaries" and Venkataraman et al. on
super-spreader detection -- both frequency/packet-statistics settings
where the underlying sketch is exactly this structure.  The Bloom
adversary models carry over verbatim:

* a Count-Min sketch never *under*-estimates, so the chosen-insertion
  adversary inflates a **victim's** count by inserting items that
  collide with the victim in every row (the sketch analogue of
  false-positive forgery: find x' with ``h_i(x') = h_i(victim)`` row by
  row -- or all rows at once via MurmurHash inversion);
* the countermeasure is, once more, keyed hashing.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.exceptions import ParameterError
from repro.hashing.base import ensure_bytes
from repro.hashing.inversion import invert_murmur3_x64_128
from repro.hashing.kirsch_mitzenmacher import km_indexes
from repro.hashing.murmur import murmur3_x64_128

__all__ = ["CountMinSketch", "CountInflationReport", "CountMinInflationAttack"]


class CountMinSketch:
    """d rows of w counters; estimate = min over rows.

    Parameters
    ----------
    width:
        Counters per row (w); error scales as 1/w.
    depth:
        Number of rows (d); failure probability scales as 2^-d.
    pair_fn:
        Hash producing the ``(h1, h2)`` pair expanded row-wise with
        Kirsch-Mitzenmacher (row i uses index ``h1 + i*h2 mod w``) --
        the common implementation shortcut, and the invertible pipeline
        the attack exploits.  Pass a keyed pair for the countermeasure.
    """

    def __init__(
        self,
        width: int,
        depth: int,
        pair_fn: Callable[[bytes], tuple[int, int]] | None = None,
    ) -> None:
        if width <= 0 or depth <= 0:
            raise ParameterError("width and depth must be positive")
        self.width = width
        self.depth = depth
        self._pair_fn = pair_fn or (lambda data: murmur3_x64_128(data, 0))
        self.rows = [[0] * width for _ in range(depth)]
        self.total = 0

    def indexes(self, item: str | bytes) -> tuple[int, ...]:
        """The per-row counter positions of ``item`` (public)."""
        h1, h2 = self._pair_fn(ensure_bytes(item))
        return km_indexes(h1, h2, self.depth, self.width)

    def add(self, item: str | bytes, count: int = 1) -> None:
        """Record ``count`` occurrences of ``item``."""
        if count <= 0:
            raise ParameterError("count must be positive")
        for row, index in zip(self.rows, self.indexes(item)):
            row[index] += count
        self.total += count

    def estimate(self, item: str | bytes) -> int:
        """Estimated count (never below the true count)."""
        return min(row[index] for row, index in zip(self.rows, self.indexes(item)))

    def __len__(self) -> int:
        return self.total


@dataclass(frozen=True)
class CountInflationReport:
    """Outcome of a victim-count inflation campaign."""

    victim: str
    true_count: int
    estimate_before: int
    estimate_after: int
    forged_items: int

    @property
    def inflation(self) -> int:
        """Counts added to the victim's estimate by the adversary."""
        return self.estimate_after - self.estimate_before


class CountMinInflationAttack:
    """Inflate a victim's estimated count via full-collision forgeries.

    Because the sketch derives all rows from one murmur128 pair, a
    single inverted key collides with the victim in *every* row -- the
    constant-time second pre-image again.  Each forged insertion then
    adds 1 to the victim's estimate, framing a quiet flow as a heavy
    hitter (the path-quality / super-spreader threat model).
    """

    def __init__(self, target: CountMinSketch, seed: int = 0) -> None:
        self.target = target
        self.seed = seed

    def forge_colliding_key(self, victim: str | bytes, variant: int) -> bytes:
        """A distinct key sharing the victim's (h1 mod w, h2) footprint.

        ``h1`` may differ by any multiple of the width (indexes are
        reduced mod w); varying that multiple yields unlimited distinct
        keys with identical row positions.
        """
        h1, h2 = self.target._pair_fn(ensure_bytes(victim))
        forged_h1 = (h1 % self.target.width) + variant * self.target.width
        if forged_h1 >= 1 << 64:
            raise ParameterError("variant too large for a 64-bit h1")
        # h2 must be preserved exactly: rows use h1 + i*h2.
        return invert_murmur3_x64_128(forged_h1, h2, seed=self.seed)

    def run(self, victim: str | bytes, forged_items: int) -> CountInflationReport:
        """Insert ``forged_items`` colliding keys and report the damage."""
        if forged_items <= 0:
            raise ParameterError("forged_items must be positive")
        victim_str = victim if isinstance(victim, str) else victim.decode("latin-1")
        before = self.target.estimate(victim)
        for variant in range(1, forged_items + 1):
            self.target.add(self.forge_colliding_key(victim, variant))
        return CountInflationReport(
            victim=victim_str,
            true_count=before,
            estimate_before=before,
            estimate_after=self.target.estimate(victim),
            forged_items=forged_items,
        )
