"""Probabilistic counting under adversarial settings.

The paper's Section 10 names this the natural extension of its adversary
models ("probabilistic counting algorithms ... analyze the existing
implementations in an adversarial setting"); this subpackage carries the
models over to linear counting and HyperLogLog, including constant-time
forgery of register placements via MurmurHash inversion.
"""

from repro.counting.attacks import (
    EvasionReport,
    HllEvasionAttack,
    HllInflationAttack,
    InflationReport,
    LinearCounterSaturation,
)
from repro.counting.countmin import (
    CountInflationReport,
    CountMinInflationAttack,
    CountMinSketch,
)
from repro.counting.hyperloglog import HyperLogLog, alpha, rho
from repro.counting.linear import LinearCounter

__all__ = [
    "CountInflationReport",
    "CountMinInflationAttack",
    "CountMinSketch",
    "EvasionReport",
    "HllEvasionAttack",
    "HllInflationAttack",
    "HyperLogLog",
    "InflationReport",
    "LinearCounter",
    "LinearCounterSaturation",
    "alpha",
    "rho",
]
