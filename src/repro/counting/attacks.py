"""Adversarial analysis of probabilistic counters (paper Section 10).

The paper's conclusion flags probabilistic counting as the next target
for its adversary models: "Hashing (and the truncation that comes
along) is the core mechanism.  It will be interesting to analyze the
existing implementations in an adversarial setting."  This module does
that analysis for the two classic counters:

* **Cardinality inflation** (HyperLogLog): craft items whose hash tails
  have maximal leading-zero runs, pinning registers at high rho values.
  With MurmurHash the crafting is *constant-time* via
  :func:`~repro.hashing.inversion.invert_murmur3_x64_128` -- one forged
  item per register makes an almost-empty stream look like billions of
  distinct items.
* **Cardinality evasion** (HyperLogLog): craft all items to land in one
  register with rho = 1; millions of distinct adversarial items then
  register as a cardinality of ~1 register's worth -- a spammer flying
  under a super-spreader detector's radar.
* **Saturation** (linear counting): the Bloom-style chosen-insertion
  attack carried over; ``floor(m)`` crafted items (one fresh bit each)
  destroy the estimator (estimate -> infinity).

The countermeasure is the same as for Bloom filters: keyed hashing.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.counting.hyperloglog import HyperLogLog
from repro.counting.linear import LinearCounter
from repro.exceptions import ParameterError
from repro.hashing.inversion import invert_murmur3_x64_128

__all__ = [
    "InflationReport",
    "EvasionReport",
    "HllInflationAttack",
    "HllEvasionAttack",
    "LinearCounterSaturation",
]


@dataclass(frozen=True)
class InflationReport:
    """Outcome of a cardinality-inflation campaign."""

    items_inserted: int
    estimate_before: float
    estimate_after: float

    @property
    def inflation_factor(self) -> float:
        """How many distinct items the forged stream impersonates,
        per item actually inserted."""
        if self.items_inserted == 0:
            return 1.0
        return self.estimate_after / self.items_inserted


@dataclass(frozen=True)
class EvasionReport:
    """Outcome of a cardinality-evasion campaign."""

    distinct_items_inserted: int
    estimate_after: float

    @property
    def evasion_factor(self) -> float:
        """Distinct items hidden per unit of reported cardinality."""
        return self.distinct_items_inserted / max(self.estimate_after, 1.0)


class HllInflationAttack:
    """Pin HyperLogLog registers at maximal rho with forged items.

    Requires the deployment's (public) hash pipeline to be the default
    murmur128-based one; each forged key is computed in constant time.
    """

    def __init__(self, target: HyperLogLog, seed: int = 0) -> None:
        self.target = target
        self.seed = seed

    def forge_key(self, register: int, rho_value: int) -> bytes:
        """A 16-byte key hitting ``register`` with the given rho.

        The 64-bit h1 must start with the register index (p bits) and
        continue with ``rho_value - 1`` zeros followed by a 1.
        """
        tail_bits = HyperLogLog.HASH_BITS - self.target.p
        if not 1 <= rho_value <= tail_bits:
            raise ParameterError(f"rho must be in [1, {tail_bits}]")
        if not 0 <= register < self.target.m:
            raise ParameterError(f"register {register} out of range")
        tail = 1 << (tail_bits - rho_value)
        h1 = (register << tail_bits) | tail
        return invert_murmur3_x64_128(h1, 0, seed=self.seed)

    def run(self, registers: int | None = None, rho_value: int | None = None) -> InflationReport:
        """Pin ``registers`` registers (default: all) at ``rho_value``
        (default: maximal) and report the estimate explosion."""
        count = self.target.m if registers is None else registers
        if not 0 < count <= self.target.m:
            raise ParameterError("registers out of range")
        tail_bits = HyperLogLog.HASH_BITS - self.target.p
        rho_value = tail_bits if rho_value is None else rho_value
        before = self.target.estimate()
        for register in range(count):
            self.target.add(self.forge_key(register, rho_value))
        return InflationReport(
            items_inserted=count,
            estimate_before=before,
            estimate_after=self.target.estimate(),
        )


class HllEvasionAttack:
    """Hide arbitrarily many distinct items in one HLL register.

    Every forged key lands in ``register`` with rho = 1 (the weakest
    possible evidence), so the estimator barely moves no matter how many
    distinct keys flow past -- the inverse of the inflation attack, and
    the one a super-spreader wants.
    """

    def __init__(self, target: HyperLogLog, register: int = 0, seed: int = 0) -> None:
        if not 0 <= register < target.m:
            raise ParameterError(f"register {register} out of range")
        self.target = target
        self.register = register
        self.seed = seed

    def forge_key(self, variant: int) -> bytes:
        """The ``variant``-th distinct key pinned to (register, rho=1)."""
        tail_bits = HyperLogLog.HASH_BITS - self.target.p
        top = 1 << (tail_bits - 1)  # leading tail bit set -> rho = 1
        if variant >= top:
            raise ParameterError("variant exhausts the register's key space")
        h1 = (self.register << tail_bits) | top | variant
        return invert_murmur3_x64_128(h1, 0, seed=self.seed)

    def run(self, distinct_items: int) -> EvasionReport:
        """Insert ``distinct_items`` distinct forged keys."""
        if distinct_items <= 0:
            raise ParameterError("distinct_items must be positive")
        for variant in range(distinct_items):
            self.target.add(self.forge_key(variant))
        return EvasionReport(
            distinct_items_inserted=distinct_items,
            estimate_after=self.target.estimate(),
        )


class LinearCounterSaturation:
    """Chosen-insertion saturation of a linear counter.

    Index-level tiling (each crafted item sets one fresh bit) saturates
    the bitmap with exactly m items; the estimator then returns
    infinity.  The brute-force per-item cost is the k = 1 special case
    of the Bloom pollution cost already measured in Fig. 5.
    """

    def __init__(self, target: LinearCounter) -> None:
        self.target = target

    def theoretical_items(self) -> int:
        """m crafted items suffice (vs ~ m log m random ones)."""
        return self.target.m

    def run(self) -> float:
        """Saturate and return the (infinite) estimate."""
        for index in range(self.target.m):
            if not self.target.bits.get(index):
                self.target.add_index(index)
        return self.target.estimate()
