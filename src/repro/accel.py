"""Acceleration-backend selection for the hot-path kernels.

The batch hot path (``BitVector``/``CounterArray`` group operations,
batched murmur hashing, codec bit packing) has two implementations: the
original pure-Python loops and numpy kernels over uint64/uint8 lanes.
Both produce bit-identical answers and serialisations -- the parity
suite in ``tests/core/test_parity_backends.py`` enforces it -- so the
choice is purely about speed.

Selection rules, in priority order:

* ``REPRO_PURE_PYTHON=1`` in the environment forces the pure loops
  (this is how CI proves the fallback cannot rot);
* :func:`set_mode` / :func:`use_mode` override at runtime (parity tests
  and the bench harness flip backends without subprocesses);
* the default ``auto`` mode uses numpy when it imports and the batch is
  large enough to amortise array setup, else the loops.

numpy is an ordinary project dependency, but every import stays lazy
and failure-tolerant: a numpy-less interpreter degrades to the loops
instead of breaking the package.
"""

from __future__ import annotations

import contextlib
import os
from typing import Iterator

__all__ = [
    "ACCEL_MIN_BATCH",
    "numpy_or_none",
    "current_mode",
    "set_mode",
    "use_mode",
    "accelerated",
]

#: In ``auto`` mode, batches smaller than this stay on the pure loops --
#: below it, array construction costs more than the loop it replaces.
ACCEL_MIN_BATCH = 64

_MODES = ("auto", "numpy", "pure")

_numpy = None
_numpy_probed = False


def numpy_or_none():
    """The numpy module, or ``None`` when it cannot be imported."""
    global _numpy, _numpy_probed
    if not _numpy_probed:
        _numpy_probed = True
        try:
            import numpy  # noqa: PLC0415 - deliberate lazy import

            _numpy = numpy
        except ImportError:  # pragma: no cover - numpy is a dependency
            _numpy = None
    return _numpy


def _env_mode() -> str:
    return "pure" if os.environ.get("REPRO_PURE_PYTHON", "") not in ("", "0") else "auto"


_mode = _env_mode()


def current_mode() -> str:
    """The active mode: ``auto``, ``numpy`` or ``pure``."""
    return _mode


def set_mode(mode: str) -> None:
    """Select the backend mode globally.

    ``numpy`` demands the numpy kernels (raises if numpy is missing);
    ``pure`` forces the loops; ``auto`` restores the default heuristic.
    """
    global _mode
    if mode not in _MODES:
        raise ValueError(f"mode must be one of {_MODES}, got {mode!r}")
    if mode == "numpy" and numpy_or_none() is None:
        raise RuntimeError("numpy backend requested but numpy is not importable")
    _mode = mode


@contextlib.contextmanager
def use_mode(mode: str) -> Iterator[None]:
    """Temporarily select a backend mode (parity tests, bench harness)."""
    previous = _mode
    set_mode(mode)
    try:
        yield
    finally:
        set_mode(previous)


def accelerated(batch_size: int = ACCEL_MIN_BATCH) -> bool:
    """Should a batch of ``batch_size`` elements take the numpy kernels?"""
    if _mode == "pure":
        return False
    if _mode == "numpy":
        return True
    return batch_size >= ACCEL_MIN_BATCH and numpy_or_none() is not None
