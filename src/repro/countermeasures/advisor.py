"""A small decision procedure mapping threat models to countermeasures.

Codifies the paper's Section 8 guidance: worst-case parameters stop
chosen-insertion amplification cheaply; keyed hashing stops everyone but
costs a MAC per operation (mitigated by recycling); exact structures
stop everything but forfeit the memory savings.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.adversary.models import AdversaryModel

__all__ = ["ThreatAssessment", "Recommendation", "recommend"]


@dataclass(frozen=True)
class ThreatAssessment:
    """What the deployment is exposed to.

    Attributes
    ----------
    untrusted_insertions:
        Can outsiders influence what gets inserted (crawler frontiers,
        abuse reports, cache fills)?
    untrusted_queries:
        Can outsiders trigger queries / observe answers?
    supports_deletion:
        Is the structure a counting variant exposed to delete requests?
    server_side_secret_possible:
        Can a key be kept where the adversary cannot read it?
    performance_critical:
        Is per-operation hashing cost a real constraint?
    """

    untrusted_insertions: bool = True
    untrusted_queries: bool = True
    supports_deletion: bool = False
    server_side_secret_possible: bool = True
    performance_critical: bool = False


@dataclass(frozen=True)
class Recommendation:
    """One countermeasure with its rationale and trade-off."""

    measure: str
    rationale: str
    cost: str
    stops: tuple[str, ...]


def recommend(assessment: ThreatAssessment) -> list[Recommendation]:
    """Ordered countermeasure list (strongest applicable first)."""
    recommendations: list[Recommendation] = []

    if assessment.server_side_secret_possible:
        mac = "SipHash-2-4" if assessment.performance_critical else "HMAC-SHA-1 (recycled)"
        recommendations.append(
            Recommendation(
                measure=f"keyed hashing with {mac}",
                rationale=(
                    "the adversary cannot predict index positions without the "
                    "key, so crafting degrades to blind guessing"
                ),
                cost="one MAC per operation (x4-x7 MurmurHash; recycling closes most of it)",
                stops=("chosen-insertion", "query-only", "deletion"),
            )
        )

    if assessment.untrusted_insertions:
        recommendations.append(
            Recommendation(
                measure="worst-case parameters (k = m/(e n))",
                rationale=(
                    "caps the false-positive probability a chosen-insertion "
                    "adversary can force at e^(-m/(en)) while keeping fast hashes"
                ),
                cost="honest FP grows by 1.05^(m/n); ~5x memory for equal worst-case FP",
                stops=("chosen-insertion",),
            )
        )

    if assessment.supports_deletion:
        recommendations.append(
            Recommendation(
                measure="saturating (non-wrapping) counters + deletion authentication",
                rationale=(
                    "wrapping 4-bit counters let forged single-counter items "
                    "erase a slice; saturation plus verified deletions removes "
                    "both the overflow and deletion attacks"
                ),
                cost="permanent false positives on saturated counters",
                stops=("deletion", "counter-overflow"),
            )
        )

    recommendations.append(
        Recommendation(
            measure="exact structure (hardened hash table)",
            rationale="no false positives to forge at all",
            cost="forfeits the Bloom filter's memory savings entirely",
            stops=("chosen-insertion", "query-only", "deletion"),
        )
    )
    return recommendations


def covers(recommendations: list[Recommendation], model: AdversaryModel) -> bool:
    """Whether a recommendation list neutralises a given adversary model."""
    stopped = {name for rec in recommendations for name in rec.stops}
    return model.name in stopped
