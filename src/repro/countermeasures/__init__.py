"""Countermeasures (paper Section 8): worst-case parameters, keyed
hashing, digest-bit recycling, and a threat-model advisor."""

from repro.countermeasures.advisor import Recommendation, ThreatAssessment, recommend
from repro.countermeasures.keyed import (
    KeyedBloomFilter,
    generate_key,
    hmac_strategy,
    siphash_strategy,
)
from repro.countermeasures.recycled import (
    HashDomain,
    fig9_grid,
    hash_domain,
    k_for_fpp,
    max_m_single_call,
    recycled_filter,
)
from repro.countermeasures.worst_case import (
    WorstCaseComparison,
    compare_designs,
    harden,
    paper_constants,
)

__all__ = [
    "HashDomain",
    "KeyedBloomFilter",
    "Recommendation",
    "ThreatAssessment",
    "WorstCaseComparison",
    "compare_designs",
    "fig9_grid",
    "generate_key",
    "harden",
    "hash_domain",
    "hmac_strategy",
    "k_for_fpp",
    "max_m_single_call",
    "paper_constants",
    "recommend",
    "recycled_filter",
    "siphash_strategy",
]
