"""Countermeasure 3 (efficiency): recycle cryptographic digest bits
(paper Section 8.2, Fig. 9 and Table 2).

The strategy itself lives in :mod:`repro.hashing.recycling`; this module
adds the deployment-facing pieces: a one-call filter constructor, the
Fig. 9 "domain of application" calculator (which hash covers which
(m, f) region in a single call), and the query-cost model behind
Table 2.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.core.bloom import BloomFilter
from repro.core.params import BloomParameters
from repro.exceptions import ParameterError
from repro.hashing.base import HashFunction
from repro.hashing.crypto import CRYPTO_HASH_NAMES, HashlibHash, by_name
from repro.hashing.recycling import RecyclingStrategy, bits_required, calls_required

__all__ = [
    "recycled_filter",
    "HashDomain",
    "hash_domain",
    "max_m_single_call",
    "k_for_fpp",
]


def k_for_fpp(f: float) -> int:
    """Hash count implied by a target FP at optimal sizing:
    ``k = ceil(log2(1/f))`` (so f = 2^-k exactly at the optimum)."""
    if not 0 < f < 1:
        raise ParameterError("f must be in (0, 1)")
    return max(1, math.ceil(math.log2(1.0 / f)))


def recycled_filter(n: int, f: float, hash_name: str = "sha512") -> BloomFilter:
    """An optimally-parameterised filter hashing once (or a few times)
    per item by recycling ``hash_name`` digest bits."""
    params = BloomParameters.design_optimal(n, f)
    return BloomFilter.from_parameters(params, RecyclingStrategy(by_name(hash_name)))


@dataclass(frozen=True)
class HashDomain:
    """Fig. 9 row: how far one hash stretches for a target FP."""

    hash_name: str
    digest_bits: int
    f: float
    k: int
    max_m_one_call: int
    calls_at_1gb: int

    @property
    def max_mbytes_one_call(self) -> float:
        """Largest filter (in MBytes) a single call can index."""
        return self.max_m_one_call / 8 / 2**20


def max_m_single_call(digest_bits: int, k: int) -> int:
    """Largest m such that ``k * ceil(log2 m)`` fits in one digest.

    One call yields ``floor(digest_bits / w)`` windows of w bits; we need
    k of them, so the window may be at most ``floor(digest_bits / k)``
    bits and m at most ``2**window``.
    """
    if digest_bits <= 0 or k <= 0:
        raise ParameterError("digest_bits and k must be positive")
    window = digest_bits // k
    if window == 0:
        return 0
    return 2**window


def hash_domain(
    f: float, hash_fn: HashFunction | str, one_gb_bits: int = 8 * 2**30
) -> HashDomain:
    """Evaluate one hash's Fig. 9 envelope at FP target ``f``."""
    fn: HashFunction = by_name(hash_fn) if isinstance(hash_fn, str) else hash_fn
    k = k_for_fpp(f)
    return HashDomain(
        hash_name=fn.name,
        digest_bits=fn.digest_bits,
        f=f,
        k=k,
        max_m_one_call=max_m_single_call(fn.digest_bits, k),
        calls_at_1gb=calls_required(k, one_gb_bits, fn.digest_bits),
    )


def fig9_grid(
    fpps: tuple[float, ...] = (2**-5, 2**-10, 2**-15, 2**-20),
    hash_names: tuple[str, ...] = ("sha1", "sha256", "sha384", "sha512"),
) -> list[HashDomain]:
    """The full Fig. 9 grid (hash x target FP)."""
    return [hash_domain(f, name) for name in hash_names for f in fpps]


# Convenience re-exports used by benchmarks.
__all__ += ["fig9_grid", "bits_required", "calls_required", "CRYPTO_HASH_NAMES", "HashlibHash"]
