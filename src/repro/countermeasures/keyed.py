"""Countermeasure 2: keyed hashing (paper Sections 8 and 8.2).

Replace the public hash pipeline with a MAC under a secret key (HMAC
over a NIST hash, or SipHash).  The adversary can no longer evaluate
indexes offline, so every crafting predicate degrades to blind guessing:
pollution, ghost forgery and deletion all collapse to their random-item
base rates.  Works whenever the filter lives server-side (Scrapy,
Dablooms and Squid all qualify).
"""

from __future__ import annotations

import os

from repro.core.bloom import BloomFilter
from repro.core.params import BloomParameters
from repro.exceptions import ParameterError
from repro.hashing.base import IndexStrategy
from repro.hashing.crypto import HmacHash
from repro.hashing.recycling import RecyclingStrategy
from repro.hashing.siphash import SipHash24

__all__ = ["generate_key", "hmac_strategy", "siphash_strategy", "KeyedBloomFilter"]


def generate_key(nbytes: int = 16) -> bytes:
    """A fresh random key (server-side secret)."""
    if nbytes < 16:
        raise ParameterError("keys shorter than 16 bytes are not acceptable")
    return os.urandom(nbytes)


def hmac_strategy(key: bytes, algorithm: str = "sha1") -> IndexStrategy:
    """Recycled HMAC bits: keyed *and* one MAC call per item.

    This is the paper's headline combination -- Table 2 shows recycled
    HMAC-SHA-1 at 1.2 us/query versus 11.8 us naive, closing most of the
    gap to plain MurmurHash.
    """
    return RecyclingStrategy(HmacHash(key, algorithm))


def siphash_strategy(key: bytes) -> IndexStrategy:
    """Recycled SipHash-2-4 bits: the fast keyed alternative of [7]."""
    return RecyclingStrategy(SipHash24(key))


class KeyedBloomFilter(BloomFilter):
    """A Bloom filter whose index derivation is keyed.

    Construction mirrors :class:`~repro.core.bloom.BloomFilter`; the key
    is generated when not supplied and kept on the instance (a real
    deployment would store it in server config, never beside the filter
    payload).

    Parameters
    ----------
    m, k:
        Filter geometry.
    key:
        Secret MAC key; auto-generated when None.
    mac:
        ``"hmac-sha1"``, ``"hmac-sha256"`` or ``"siphash"``.
    """

    def __init__(
        self,
        m: int,
        k: int,
        key: bytes | None = None,
        mac: str = "siphash",
    ) -> None:
        self.key = key if key is not None else generate_key()
        if mac == "siphash":
            if len(self.key) != 16:
                raise ParameterError("SipHash requires a 16-byte key")
            strategy = siphash_strategy(self.key)
        elif mac.startswith("hmac-"):
            strategy = hmac_strategy(self.key, mac.removeprefix("hmac-"))
        else:
            raise ParameterError(f"unknown mac {mac!r}")
        super().__init__(m, k, strategy)
        self.mac = mac

    @classmethod
    def for_capacity(
        cls, n: int, f: float, key: bytes | None = None, mac: str = "siphash"
    ) -> "KeyedBloomFilter":
        """Optimally-parameterised keyed filter.

        With keyed hashing the classical optimum is the right choice
        again: the adversary cannot craft, so the worst case *is* the
        average case (the paper: "MACs have the advantage to defeat all
        the adversaries and to keep the original parameters").
        """
        params = BloomParameters.design_optimal(n, f)
        return cls(params.m, params.k, key=key, mac=mac)
