"""Countermeasure 1: design for the worst case (paper Section 8.1).

Keep the fast non-cryptographic hashes but choose k to minimise what a
chosen-insertion adversary can force: ``k_adv = m/(e n)`` instead of
``k_opt = (m/n) ln 2``.  The cost is a slightly higher honest FP
(factor ``1.05^{m/n}``); the benefit is a capped ``f_adv = e^{-m/(en)}``
and 1.88x fewer hash calls per operation.  This defeats chosen-insertion
adversaries' *amplification* but not query-only forgery -- for that, use
:mod:`repro.countermeasures.keyed`.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.params import (
    BloomParameters,
    adversarial_fpp,
    adversarial_optimal_fpp,
    adversarial_optimal_k,
    false_positive_probability,
    honest_fpp_at_adversarial_k,
    k_ratio,
    optimal_fpp,
    optimal_k,
    paper_size_inflation_factor,
)

__all__ = ["WorstCaseComparison", "compare_designs", "harden"]


@dataclass(frozen=True)
class WorstCaseComparison:
    """Side-by-side of the classical and worst-case designs for (m, n).

    ``*_honest`` columns give the FP under uniform inputs, ``*_adv`` the
    FP a chosen-insertion adversary can force.  The punchline the paper
    draws: at the classical optimum the adversary gains a lot
    (``optimal_adv >> optimal_honest``); at the worst-case optimum her
    ceiling is minimal, for a modest honest penalty.
    """

    m: int
    n: int
    k_optimal: int
    k_worst_case: int
    optimal_honest: float
    optimal_adv: float
    worst_case_honest: float
    worst_case_adv: float

    @property
    def hash_call_savings(self) -> float:
        """How many times fewer hash evaluations the hardened design
        needs (theoretical ratio e*ln2 ~ 1.88)."""
        return self.k_optimal / max(1, self.k_worst_case)

    @property
    def honest_penalty(self) -> float:
        """Multiplicative honest-FP cost of hardening."""
        return self.worst_case_honest / self.optimal_honest

    @property
    def adversarial_gain(self) -> float:
        """How much lower the adversary's ceiling becomes."""
        return self.optimal_adv / self.worst_case_adv


def compare_designs(m: int, n: int) -> WorstCaseComparison:
    """Evaluate both designs at the same memory budget and capacity."""
    params_opt = BloomParameters.design_with_memory(m, n)
    params_adv = BloomParameters.design_worst_case(n, m)
    return WorstCaseComparison(
        m=m,
        n=n,
        k_optimal=params_opt.k,
        k_worst_case=params_adv.k,
        optimal_honest=false_positive_probability(m, n, params_opt.k),
        optimal_adv=adversarial_fpp(m, n, params_opt.k),
        worst_case_honest=false_positive_probability(m, n, params_adv.k),
        worst_case_adv=adversarial_fpp(m, n, params_adv.k),
    )


def harden(params: BloomParameters) -> BloomParameters:
    """Rederive a classical design with the worst-case k (same m, n)."""
    return BloomParameters.design_worst_case(params.n, params.m)


def paper_constants() -> dict[str, float]:
    """The Section 8.1 closed-form constants, for the experiment table."""
    return {
        "k_opt/k_adv (= e ln2)": k_ratio(),
        "f_adv/f_opt base (per m/n unit)": 1.05,
        "size inflation m'/m": paper_size_inflation_factor(),
    }


# Re-exported helpers the experiments use directly.
__all__ += [  # noqa: PLE0604 - static extension
    "paper_constants",
    "optimal_k",
    "optimal_fpp",
    "adversarial_optimal_k",
    "adversarial_optimal_fpp",
    "honest_fpp_at_adversarial_k",
]
