"""Exception hierarchy for the repro package.

Every error raised deliberately by this library derives from
:class:`ReproError`, so callers can catch library failures without
masking programming errors such as :class:`TypeError`.
"""


class ReproError(Exception):
    """Base class for all errors raised by the repro package."""


class ParameterError(ReproError, ValueError):
    """A Bloom filter or attack parameter is out of its valid domain."""


class ConfigError(ParameterError):
    """A configuration string failed to parse.

    Raised by the rotation-policy spec grammar for unknown kinds, wrong
    arity, non-numeric arguments, unbalanced parentheses and trailing
    garbage after a valid spec.  Subclasses :class:`ParameterError` so
    pre-grammar callers that caught the broader class keep working."""


class CapacityError(ReproError):
    """A bounded structure was asked to hold more than it was sized for."""


class CraftingBudgetExceeded(ReproError):
    """The brute-force crafting engine ran out of trials before success.

    Attributes
    ----------
    trials:
        Number of candidate items that were examined before giving up.
    """

    def __init__(self, message: str, trials: int):
        super().__init__(message)
        self.trials = trials


class AttackBudgetExhausted(ReproError):
    """The adversary's end-to-end :class:`~repro.adversary.budget.
    AttackBudget` ran dry (total trials spent or deadline passed).

    Distinct from :class:`CraftingBudgetExceeded`, which is the *per-item*
    search cap: that one means "this item was too expensive", this one
    means "the campaign is over".

    Attributes
    ----------
    trials:
        Trials spent by the search that hit the wall (0 when the purse
        was already empty before any work started).
    """

    def __init__(self, message: str, trials: int = 0):
        super().__init__(message)
        self.trials = trials


class CounterOverflowError(ReproError):
    """A counting-filter counter overflowed under the ``RAISE`` policy."""


class ProtocolError(ReproError):
    """A wire frame violated the membership-service protocol.

    Raised for truncated frames, oversized or zero frame lengths, unknown
    opcodes/status bytes, and payloads that end mid-field.  The server
    answers with a protocol-error status (when it can) and closes the
    connection; the client raises this directly.
    """


class NotOwner(ReproError):
    """A request touched a shard this gateway does not own.

    The cluster-tier redirect: raised by a
    :class:`~repro.service.gateway.MembershipGateway` serving an owned
    subset of the global shard space when a batch routes to a shard that
    lives elsewhere, and by the TCP client when the server answers with
    the ``ST_NOT_OWNER`` status.  Carries everything a routing client
    needs to repair its view: the shard, the ownership epoch the serving
    side knows, and (when the gateway shares an ownership map) the node
    believed to own the shard now.  A zero epoch / empty owner means the
    gateway had no ownership view to offer -- the caller must consult
    its own map.

    Attributes
    ----------
    shard_id:
        The global shard id the request routed to.
    epoch:
        Ownership-map epoch behind the hint (0 = no view).
    owner:
        Node name believed to own the shard ("" = unknown).
    """

    def __init__(self, shard_id: int, epoch: int = 0, owner: str = ""):
        hint = f", owned by {owner!r}" if owner else ""
        super().__init__(
            f"shard {shard_id} is not served here (ownership epoch {epoch}{hint})"
        )
        self.shard_id = shard_id
        self.epoch = epoch
        self.owner = owner


class BackendError(ReproError):
    """A shard backend failed to execute an operation.

    Wraps errors that crossed a process boundary (the original traceback
    lives in the worker); the message carries the worker-side exception
    type and text.
    """


class SnapshotError(ReproError):
    """A snapshot payload is malformed or does not match the target.

    Raised on bad magic/version, truncated payloads, and geometry
    mismatches (restoring an m=4096 shard snapshot into an m=1024
    gateway must fail loudly, never corrupt state)."""


class InversionError(ReproError):
    """A hash inversion was requested for an unsupported input shape."""
