"""Exception hierarchy for the repro package.

Every error raised deliberately by this library derives from
:class:`ReproError`, so callers can catch library failures without
masking programming errors such as :class:`TypeError`.
"""


class ReproError(Exception):
    """Base class for all errors raised by the repro package."""


class ParameterError(ReproError, ValueError):
    """A Bloom filter or attack parameter is out of its valid domain."""


class CapacityError(ReproError):
    """A bounded structure was asked to hold more than it was sized for."""


class CraftingBudgetExceeded(ReproError):
    """The brute-force crafting engine ran out of trials before success.

    Attributes
    ----------
    trials:
        Number of candidate items that were examined before giving up.
    """

    def __init__(self, message: str, trials: int):
        super().__init__(message)
        self.trials = trials


class CounterOverflowError(ReproError):
    """A counting-filter counter overflowed under the ``RAISE`` policy."""


class InversionError(ReproError):
    """A hash inversion was requested for an unsupported input shape."""
