"""Defence frontier: the cheapest attack budget each rotation policy
still loses to, and the anti-thrash value of hysteresis + cool-down.

``worst_case_params`` sweeps filter geometry from the defender's side;
this experiment sweeps the *budget* axis the same way, inverted: for
each rotation policy (leaf and composed), binary-search the cheapest
:class:`~repro.service.config.AttackBudgetConfig` whose adaptive ghost
campaign still reaches a target ghost volume against the seeded driver
workload (:mod:`repro.defense.frontier`).  The frontier price -- trials
the attacker must be willing to burn -- is the defender's comparison
number: Tirmazi's survey frames robustness as exactly this cost game,
and Naor-Yogev's adaptive adversary is the player being priced.

Expected directional results, asserted by the run (it raises, not
soft-notes):

- the bare fill-threshold baseline is nearly free to beat: it never
  reacts to the ghost storm, so a purse big enough to confirm a couple
  of ghosts wins (the confirmed pool replays them at zero further
  trials);
- the windowed-adaptive tripwire -- bare, and wrapped in
  ``cooldown:N(hysteresis:2(...))`` -- multiplies the frontier price:
  rotation flushes the attacker's confirmed pool and reprices every
  fresh ghost against emptier bits, so the *hysteresis-wrapped* policy's
  cheapest winning budget is strictly above the bare fill baseline;
- under a sustained ghost storm (refill rounds: pollution restores the
  shard, the storm re-spikes it), the bare tripwire *thrashes* --
  repeated same-shard rotations fewer than the cool-down gap apart --
  while the composed policy rotates on schedule with **zero** thrash
  events, suppressions tallied in the ``suppressed`` column instead.

The storm phases replay on one gateway across multiple driver runs, so
the lifecycle scratch (hysteresis streaks, the suppression tally)
carries across rounds exactly as it would across a deployment's days.
"""

from __future__ import annotations

import asyncio
from concurrent.futures import ThreadPoolExecutor

from repro.defense.frontier import (
    FrontierResult,
    FrontierWorkload,
    ProbePool,
    cheapest_winning_budget,
    thrash_events,
)
from repro.exceptions import ReproError
from repro.experiments.runner import ExperimentResult
from repro.service.config import ServiceConfig
from repro.service.driver import AdversarialTrafficDriver
from repro.service.gateway import MembershipGateway
from repro.service.sharding import HashShardPicker

__all__ = ["run"]

_SHARDS = 4
_K = 4
#: Cool-down ops of the composed policy; also the thrash gap -- two
#: same-shard rotations closer than this are one thrash event, which the
#: cool-down makes impossible by construction.
_COOLDOWN_OPS = 200

_BARE_TRIPWIRE = "adaptive:0.85:24:32"
_COMPOSED = f"cooldown:{_COOLDOWN_OPS}(hysteresis:2({_BARE_TRIPWIRE}))"


def _shard_m(scale: float) -> int:
    """Storm-phase geometry (the frontier probes use their own, below)."""
    return max(512, int(5120 * scale))


def _frontier_m(scale: float) -> int:
    return max(1024, int(10240 * scale))


def _policies() -> list[tuple[str, str]]:
    return [
        ("fill", "fill:0.8"),
        ("tripwire", _BARE_TRIPWIRE),
        ("guarded", f"({_BARE_TRIPWIRE}&fill:0.2)|age:4000"),
        ("hyst", _COMPOSED),
    ]


def _workload(scale: float) -> FrontierWorkload:
    # Insert volume scales with shard_m so the target shard reaches the
    # same ~0.5 fill at every scale -- the crafting economics the
    # frontier prices must not drift with the scale knob.
    return FrontierWorkload(
        honest_clients=3,
        honest_inserts=max(840, int(8400 * scale)),
        honest_queries=max(240, int(2400 * scale)),
        ghost_queries=max(96, int(960 * scale)),
        min_fill=0.25,
        max_trials=30_000,
    )


def _config(spec: str, shard_m: int) -> ServiceConfig:
    return ServiceConfig(
        shards=_SHARDS,
        shard_m=shard_m,
        shard_k=_K,
        rotation_threshold=None,
        rotation_policy=spec,
    )


def _frontier(
    spec: str, scale: float, seed: int, pool: ProbePool | None = None
) -> FrontierResult:
    workload = _workload(scale)
    # 5/6 of the campaign: reaching it *requires* surviving a rotation
    # flush, so pool-milking the pre-rotation window can never win and
    # the frontier prices the defence, not the race to it.
    target = (workload.ghost_queries * 5) // 6
    ceiling = max(4096, int(40_960 * scale))
    return cheapest_winning_budget(
        _config(spec, _frontier_m(scale)),
        target,
        workload=workload,
        seed=seed,
        floor=16,
        ceiling=ceiling,
        resolution=max(16, ceiling // 256),
        thrash_gap=_COOLDOWN_OPS,
        pool=pool,
    )


# ----------------------------------------------------------------------
# The sustained-storm thrash check
# ----------------------------------------------------------------------


def _storm(spec: str, scale: float, seed: int) -> tuple[int, int, int]:
    """One gateway through a long honest life and then a sustained ghost
    storm in refill rounds.  Returns (rotations, suppressed, thrash)."""
    gateway = MembershipGateway.from_config(_config(spec, _shard_m(scale)))
    try:
        crafting_cap = 2500  # post-rotation crafting fails cheap, not never
        fill_phase = AdversarialTrafficDriver(
            gateway, seed=seed, attacker_router=HashShardPicker(), max_trials=crafting_cap
        )
        asyncio.run(
            fill_phase.run(
                honest_clients=3,
                honest_inserts=max(420, int(4200 * scale)),
                honest_queries=max(240, int(2400 * scale)),
                batch=16,
                pollution_inserts=0,
                ghost_queries=0,
                probe_queries=0,
            )
        )
        rotations_before = gateway.rotations
        suppressed_before = sum(life.suppressed for life in gateway.lifecycle)
        # Refill rounds keep the storm *sustained*: pollution restores the
        # rotated shard's bits so the attacker's re-crafting stays viable
        # and the tripwire keeps getting re-triggered -- the scenario a
        # bare tripwire thrashes in.
        for round_index in range(3):
            storm_round = AdversarialTrafficDriver(
                gateway,
                seed=seed + 101 + round_index,
                attacker_router=HashShardPicker(),
                max_trials=crafting_cap,
            )
            asyncio.run(
                storm_round.run(
                    honest_clients=0,
                    honest_inserts=0,
                    honest_queries=0,
                    batch=16,
                    pollution_inserts=max(72, int(720 * scale)),
                    ghost_queries=0,
                    adaptive_ghost_queries=max(48, int(480 * scale)),
                    adaptive_min_fill=0.2,
                    target_shard=0,
                    probe_queries=0,
                )
            )
        rotations = gateway.rotations - rotations_before
        suppressed = (
            sum(life.suppressed for life in gateway.lifecycle) - suppressed_before
        )
        thrash = thrash_events(gateway.rotation_log, _COOLDOWN_OPS)
        return rotations, suppressed, thrash
    finally:
        gateway.close()


def run(scale: float = 1.0, seed: int = 0) -> ExperimentResult:
    """Run the defence-frontier calibration at the given ``scale``."""
    result = ExperimentResult(
        experiment_id="defense_frontier",
        title="Cheapest winning attack budget per rotation policy, and storm thrash",
        paper_claim=(
            "the paper prices crafted items in brute-force trials (Figs. 5-6) and "
            "recommends recycling (Section 8); inverting the budget model gives the "
            "defender's number -- the cheapest campaign budget that still wins -- "
            "and composed hysteresis+cool-down tripwires raise it several-fold over "
            "a bare fill threshold without rotation thrash under a sustained storm"
        ),
        headers=[
            "policy",
            "spec",
            "target_hits",
            "cheapest_budget",
            "probes",
            "hits@win",
            "ghosts@win",
            "rot@win",
            "sup@win",
        ],
    )

    # One process pool carries every replay: the storm phases are
    # submitted first (they share no state with the sweeps), then the
    # four per-policy frontier searches run concurrently on threads,
    # each fanning its own doubling ladder into the same pool.  Every
    # replay is seeded and independent, so the concurrency changes wall
    # clock, never which probes decide each policy's price.
    with ProbePool() as pool:
        storm_bare = pool.submit(_storm, _BARE_TRIPWIRE, scale, seed)
        storm_composed = pool.submit(_storm, _COMPOSED, scale, seed)
        policies = _policies()
        with ThreadPoolExecutor(max_workers=len(policies)) as sweeps:
            futures = {
                label: sweeps.submit(_frontier, spec, scale, seed, pool)
                for label, spec in policies
            }
            frontiers: dict[str, FrontierResult] = {
                label: futures[label].result() for label, _ in policies
            }
        bare_rot, bare_sup, bare_thrash = storm_bare.result()
        comp_rot, comp_sup, comp_thrash = storm_composed.result()

    for label, spec in policies:
        frontier = frontiers[label]
        win = frontier.winning
        result.add_row(
            label,
            spec,
            frontier.target_hits,
            frontier.cheapest.describe() if frontier.cheapest else "> sweep ceiling",
            len(frontier.probes),
            win.ghost_hits if win else "-",
            win.ghost_queries if win else "-",
            win.rotations if win else "-",
            win.rotations_suppressed if win else "-",
        )

    baseline = frontiers["fill"]
    if baseline.cheapest_trials is None:
        raise ReproError(
            "the bare fill-threshold baseline was never beaten inside the sweep "
            "ceiling; the frontier comparison has no finite baseline"
        )
    for label in ("tripwire", "hyst"):
        frontier = frontiers[label]
        price = frontier.cheapest_trials
        result.note(
            f"'{label}' frontier: cheapest winning budget "
            + (f"{price} trials" if price is not None else "beyond the sweep ceiling")
            + f" vs the fill baseline's {baseline.cheapest_trials} "
            + (
                f"({price / baseline.cheapest_trials:.0f}x the attacker's price)"
                if price is not None
                else "(unwinnable within the sweep)"
            )
        )
    if not frontiers["hyst"].beats(baseline):
        raise ReproError(
            "the hysteresis-wrapped adaptive policy's cheapest winning budget "
            f"({frontiers['hyst'].cheapest_trials} trials) is not strictly above "
            f"the bare fill-threshold baseline's ({baseline.cheapest_trials})"
        )

    # The sustained storm: same tripwire bare vs composed.  The bare
    # variant thrashes (same-shard rotations closer than the cool-down
    # gap); the composed one rotates on schedule, zero thrash, with the
    # refused rotations tallied as suppressions.
    result.note(
        f"sustained ghost storm (3 refill rounds): bare '{_BARE_TRIPWIRE}' rotated "
        f"{bare_rot}x with {bare_thrash} thrash event(s) (< {_COOLDOWN_OPS} ops "
        f"apart); composed '{_COMPOSED}' rotated {comp_rot}x with {comp_thrash} "
        f"thrash event(s) and {comp_sup} suppression(s)"
    )
    if bare_thrash == 0:
        raise ReproError(
            "the bare windowed tripwire did not thrash under the sustained storm; "
            "the hysteresis/cool-down comparison has no problem to solve"
        )
    if comp_thrash != 0:
        raise ReproError(
            f"the composed policy produced {comp_thrash} thrash event(s) under the "
            "storm; the cool-down guarantee is broken"
        )
    if comp_rot == 0:
        raise ReproError(
            "the composed policy never rotated under the storm -- the defence is "
            "inert, not merely thrash-free"
        )
    if comp_sup == 0:
        raise ReproError(
            "the composed policy's cool-down never suppressed a rotation during "
            "the storm; the suppression tally should be visible"
        )
    return result
