"""CLI: regenerate the paper's tables and figures.

Usage::

    python -m repro.experiments                 # everything, default scale
    python -m repro.experiments fig3 table2     # a subset
    python -m repro.experiments --scale 0.2     # quicker, smaller workloads
"""

from __future__ import annotations

import argparse
import sys
import time

from repro.experiments.registry import REGISTRY, run_one

__all__ = ["main"]


def main(argv: list[str] | None = None) -> int:
    """Entry point for ``python -m repro.experiments``."""
    parser = argparse.ArgumentParser(
        prog="repro-experiments",
        description="Regenerate the tables/figures of 'The Power of Evil "
        "Choices in Bloom Filters' (DSN 2015).",
    )
    parser.add_argument(
        "experiments",
        nargs="*",
        metavar="ID",
        help=f"experiment ids to run (default: all of {sorted(REGISTRY)})",
    )
    parser.add_argument(
        "--scale",
        type=float,
        default=1.0,
        help="workload scale factor (1.0 = laptop-seconds defaults)",
    )
    parser.add_argument("--seed", type=int, default=0, help="base RNG seed")
    args = parser.parse_args(argv)

    ids = args.experiments or list(REGISTRY)
    unknown = [i for i in ids if i not in REGISTRY]
    if unknown:
        parser.error(f"unknown experiment ids {unknown}; known: {sorted(REGISTRY)}")

    for experiment_id in ids:
        start = time.perf_counter()
        result = run_one(experiment_id, scale=args.scale, seed=args.seed)
        elapsed = time.perf_counter() - start
        print(result.render())
        print(f"[{experiment_id} finished in {elapsed:.1f}s]")
        print()
    return 0


if __name__ == "__main__":
    sys.exit(main())
