"""Table 2 -- time to query a filter: naive vs recycled hashing.

The paper benchmarks a filter with f = 2^-10 (k = 10) holding 1e6
32-byte items: k naive salted calls per query versus digest-bit
recycling, over MurmurHash-32, MD5, SHA-1/256/384/512, HMAC-SHA-1 and
SipHash.  C/OpenSSL absolute numbers (e.g. SHA-256: 51 us naive,
0.49 us recycled, x104) will not match CPython, but the *structure*
must: recycling beats naive by roughly the call-count ratio, HMAC pays
its two inner hash calls, and keyed hashing lands within a small factor
of raw MurmurHash.
"""

from __future__ import annotations

import time

from repro.core.bloom import BloomFilter
from repro.core.params import BloomParameters
from repro.experiments.runner import ExperimentResult
from repro.hashing.base import IndexStrategy
from repro.hashing.crypto import HashlibHash, HmacHash
from repro.hashing.murmur import Murmur3_32
from repro.hashing.recycling import RecyclingStrategy
from repro.hashing.salted import SaltedHashStrategy
from repro.hashing.siphash import SipHash24

__all__ = ["run", "measure_query_time", "build_strategies"]

KEY = bytes(range(16))


def build_strategies() -> list[tuple[str, IndexStrategy | None, IndexStrategy | None]]:
    """(name, naive strategy, recycled strategy) per Table 2 row.

    MurmurHash-32 has no recycled variant in the paper (its digest is too
    short to slice); mirrored here with None.
    """
    rows: list[tuple[str, IndexStrategy | None, IndexStrategy | None]] = [
        (
            "murmur3-32",
            SaltedHashStrategy(Murmur3_32(seed=0)),
            None,
        )
    ]
    for algorithm in ("md5", "sha1", "sha256", "sha384", "sha512"):
        fn = HashlibHash(algorithm)
        rows.append((algorithm, SaltedHashStrategy(fn), RecyclingStrategy(fn)))
    hmac = HmacHash(KEY, "sha1")
    rows.append(("hmac-sha1", SaltedHashStrategy(hmac), RecyclingStrategy(hmac)))
    sip = SipHash24(KEY)
    rows.append(("siphash24", SaltedHashStrategy(sip), RecyclingStrategy(sip)))
    return rows


def measure_query_time(
    strategy: IndexStrategy, m: int, k: int, items: list[bytes], repeats: int = 1
) -> float:
    """Mean microseconds per membership query under ``strategy``."""
    target = BloomFilter(m, k, strategy)
    for item in items[: len(items) // 2]:
        target.add(item)
    start = time.perf_counter()
    total = 0
    for _ in range(repeats):
        for item in items:
            if item in target:
                total += 1
    elapsed = time.perf_counter() - start
    del total
    return elapsed / (len(items) * repeats) * 1e6


def run(scale: float = 1.0, seed: int = 0) -> ExperimentResult:
    """Regenerate Table 2 at laptop scale."""
    n = max(500, int(20_000 * scale))
    params = BloomParameters.design_optimal(n, 2**-10)
    queries = max(200, int(2_000 * scale))
    # 32-byte items, "corresponding to SHA-256 prefixes" in the paper.
    items = [bytes([seed & 0xFF]) + i.to_bytes(31, "big") for i in range(queries)]

    result = ExperimentResult(
        experiment_id="table2",
        title=f"Time to query a filter (f=2^-10, k={params.k}, m={params.m})",
        paper_claim=(
            "recycling speeds crypto-hash queries by x20-x104; recycled "
            "HMAC-SHA-1 lands within ~x4 of SipHash and ~x2 of MurmurHash"
        ),
        headers=[
            "hash",
            "naive (us)",
            "naive calls",
            "recycled (us)",
            "recycled calls",
            "speedup",
        ],
    )

    for name, naive, recycled in build_strategies():
        naive_us = measure_query_time(naive, params.m, params.k, items)
        if recycled is None:
            result.add_row(
                name, round(naive_us, 2), naive.hash_calls(params.k, params.m), "-", "-", "-"
            )
            continue
        recycled_us = measure_query_time(recycled, params.m, params.k, items)
        result.add_row(
            name,
            round(naive_us, 2),
            naive.hash_calls(params.k, params.m),
            round(recycled_us, 2),
            recycled.hash_calls(params.k, params.m),
            f"x{naive_us / recycled_us:.1f}",
        )

    result.note(
        "absolute numbers are CPython, the paper's are C/OpenSSL; in "
        "particular MurmurHash and SipHash are pure Python here (slow) while "
        "MD5/SHA go through hashlib (C), inverting the paper's raw ordering -- "
        "read the table through the call-count columns, which are "
        "language-independent"
    )
    result.note(
        "the recycling win tracks calls saved (k naive calls vs 1-4 recycled); "
        "the paper's x20-x104 additionally benefits from C-level call costs"
    )
    result.note(f"scale={scale}: n={n}, {queries} queries per cell")
    return result
