"""Section 4.1 analytic claims, checked by simulation.

Three headline numbers from the chosen-insertion analysis:

* a full pollution campaign inflates the set-bit count by 38 %
  (``nk`` vs ``m/2`` at the classical optimum);
* saturation needs only ``floor(m/k)`` chosen items versus
  ``~ m log m / k`` random ones (a log m gap);
* the first ``ceil(sqrt(m)/k)`` insertions are "free" for the adversary
  (birthday paradox: uniform indexes rarely collide that early).
"""

from __future__ import annotations

import random

from repro.adversary.saturation import SaturationAttack, random_saturation_count
from repro.core.analysis import (
    adversarial_saturation_items,
    birthday_threshold,
    coupon_collector_items,
    pollution_gain,
)
from repro.core.bloom import BloomFilter
from repro.experiments.runner import ExperimentResult
from repro.urlgen.faker import UrlFactory

__all__ = ["run"]


def _first_collision_insertion(m: int, k: int, seed: int) -> int:
    """Insertions of random items before any index lands on a set bit."""
    rng = random.Random(seed)
    seen: set[int] = set()
    count = 0
    while True:
        count += 1
        indexes = [rng.randrange(m) for _ in range(k)]
        if any(i in seen for i in indexes) or len(set(indexes)) < k:
            return count
        seen.update(indexes)


def run(scale: float = 1.0, seed: int = 0) -> ExperimentResult:
    """Check the Section 4.1 analytics on simulated filters."""
    result = ExperimentResult(
        experiment_id="analytics",
        title="Chosen-insertion analytics (Section 4.1)",
        paper_claim=(
            "38% weight inflation at the optimum; saturation with m/k chosen "
            "items vs m*log(m)/k random; sqrt(m)/k free insertions"
        ),
        headers=["check", "analytic", "simulated"],
    )

    # Weight inflation: optimal filter at capacity vs crafted insertions.
    m, n = 3200, 600
    k = 4
    honest = BloomFilter(m, k)
    factory = UrlFactory(seed=seed ^ 1)
    for _ in range(n):
        honest.add(factory.url())
    crafted_weight = min(m, n * k)
    result.add_row(
        "weight inflation nk / honest-weight",
        f"{pollution_gain():.2f} (at exact optimum)",
        f"{crafted_weight / honest.hamming_weight:.2f}",
    )

    # Saturation gap (small filter so the random run terminates quickly).
    sat_m, sat_k = 600, 4
    target = BloomFilter(sat_m, sat_k)
    attack = SaturationAttack(target)
    sat_report = attack.run()
    random_items = random_saturation_count(sat_m, sat_k, random.Random(seed ^ 2))
    result.add_row(
        f"chosen items to saturate (m={sat_m}, k={sat_k})",
        adversarial_saturation_items(sat_m, sat_k),
        sat_report.insertions,
    )
    result.add_row(
        "random items to saturate (coupon collector)",
        coupon_collector_items(sat_m, sat_k),
        random_items,
    )

    # Birthday threshold: average first collision over a few runs.
    trials = max(5, int(20 * scale))
    mean_first = sum(
        _first_collision_insertion(m, k, seed ^ (100 + t)) for t in range(trials)
    ) / trials
    result.add_row(
        f"free insertions before first collision (m={m}, k={k})",
        birthday_threshold(m, k),
        round(mean_first, 1),
    )

    result.note(
        "the chosen-insertion adversary saturates with a log(m) factor fewer "
        f"items: {coupon_collector_items(sat_m, sat_k)} random vs "
        f"{adversarial_saturation_items(sat_m, sat_k)} chosen"
    )
    return result
