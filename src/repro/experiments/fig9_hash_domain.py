"""Fig. 9 -- domain of application of cryptographic hash functions.

An item needs ``k * ceil(log2 m)`` digest bits; Fig. 9 plots that demand
against filter size m (up to 1 GByte) for f in {2^-5, ..., 2^-20} and
overlays the budgets of SHA-1/256/384/512.  The paper's headline: "A
single call to SHA-512 ... is enough to compute any Bloom filter with
optimal parameters for f >= 2^-15 and m smaller than one GByte.  For
f <= 2^-20, we need to make several calls."
"""

from __future__ import annotations

from repro.countermeasures.recycled import hash_domain, k_for_fpp
from repro.hashing.recycling import bits_required, calls_required
from repro.experiments.runner import ExperimentResult

__all__ = ["run"]

FPPS = (2**-5, 2**-10, 2**-15, 2**-20)
HASHES = ("sha1", "sha256", "sha384", "sha512")
#: Filter sizes from 16 MBytes to 1 GByte (in bits).
M_POINTS = tuple(8 * (2**20) * mb for mb in (16, 64, 128, 256, 512, 1024))


def run(scale: float = 1.0, seed: int = 0) -> ExperimentResult:
    """Regenerate Fig. 9 (purely analytic; scale unused)."""
    result = ExperimentResult(
        experiment_id="fig9",
        title="Domain of application of hash functions (digest-bit demand)",
        paper_claim=(
            "one SHA-512 call covers every optimal filter with f >= 2^-15 and "
            "m <= 1 GByte; f = 2^-20 needs several calls"
        ),
        headers=["f", "k", "m (MB)", "bits needed"] + [f"calls {h}" for h in HASHES],
    )

    for f in FPPS:
        k = k_for_fpp(f)
        for m in M_POINTS:
            demand = bits_required(k, m)
            calls = [
                calls_required(k, m, hash_domain(f, name).digest_bits) for name in HASHES
            ]
            result.add_row(f"2^-{k}", k, m // 8 // 2**20, demand, *calls)

    sha512_one_call = [
        f"2^-{k_for_fpp(f)}"
        for f in FPPS
        if calls_required(k_for_fpp(f), M_POINTS[-1], 512) == 1
    ]
    result.note(
        f"single SHA-512 call suffices at 1 GByte for f in {sha512_one_call} "
        "(paper: f >= 2^-15)"
    )
    result.note(
        f"f = 2^-20 at 1 GByte needs {calls_required(20, M_POINTS[-1], 512)} "
        "SHA-512 calls (paper: 'several')"
    )
    return result
