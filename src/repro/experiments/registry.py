"""Registry mapping experiment ids to their ``run`` callables."""

from __future__ import annotations

from typing import Callable

from repro.experiments import (
    adaptive_budget_study,
    analytics_checks,
    cluster_study,
    defense_frontier,
    fig3_false_positive,
    fig5_pollution_cost,
    fig6_ghost_cost,
    fig8_dablooms,
    fig9_hash_domain,
    rotation_policy_study,
    service_throughput,
    squid_hits,
    table1_probabilities,
    table2_query_time,
    worst_case_params,
)
from repro.experiments.runner import ExperimentResult

__all__ = ["REGISTRY", "run_all", "run_one"]

#: Experiment id -> run(scale=..., seed=...) callable, in paper order.
REGISTRY: dict[str, Callable[..., ExperimentResult]] = {
    "fig3": fig3_false_positive.run,
    "fig5": fig5_pollution_cost.run,
    "fig6": fig6_ghost_cost.run,
    "fig8": fig8_dablooms.run,
    "fig9": fig9_hash_domain.run,
    "table1": table1_probabilities.run,
    "table2": table2_query_time.run,
    "squid": squid_hits.run,
    "analytics": analytics_checks.run,
    "worstcase": worst_case_params.run,
    "service": service_throughput.run,
    "rotation_policy_study": rotation_policy_study.run,
    "adaptive_budget_study": adaptive_budget_study.run,
    "defense_frontier": defense_frontier.run,
    "cluster_study": cluster_study.run,
}


def run_one(experiment_id: str, scale: float = 1.0, seed: int = 0) -> ExperimentResult:
    """Run a single experiment by id."""
    if experiment_id not in REGISTRY:
        raise KeyError(
            f"unknown experiment {experiment_id!r}; known: {sorted(REGISTRY)}"
        )
    return REGISTRY[experiment_id](scale=scale, seed=seed)


def run_all(scale: float = 1.0, seed: int = 0) -> list[ExperimentResult]:
    """Run every experiment in paper order."""
    return [run(scale=scale, seed=seed) for run in REGISTRY.values()]
