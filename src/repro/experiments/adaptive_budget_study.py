"""Adaptive-budget study: the resource-bounded adversary, end to end.

The ROADMAP's top open item: the traffic driver's attacker used to pay
only a *per-item* crafting cap -- no total trial purse, no request-rate
ceiling, no deadline.  This experiment plays the Naor-Yogev
resource-bounded game the budget subsystem now models:

* every attack client draws from one shared
  :class:`~repro.adversary.budget.AttackBudget` (crafting charges
  trials, the send path paces requests);
* the **static** ghost strategy crafts every query fresh, so each hit
  costs ~``(m/W)^k`` trials out of the purse;
* the **adaptive** strategy feeds ``query_batch`` answers back into
  crafting: confirmed ghosts are re-sent for zero further trials and
  their prefixes concentrate fresh crafting, so the same purse buys far
  more hits -- until a rotation (betrayed by a pooled ghost answering
  negative) flushes everything it learned.

The sweep crosses budget sizes (tight / roomy) x strategy (static /
adaptive) x two rotation policies (the fill-threshold default and the
*windowed* adaptive positive-rate tripwire) and reports **ghost
hit-rate per unit budget** -- hits per thousand charged trials.
Expected direction: under the same tight purse the adaptive strategy's
hits/ktrial dominates the static one's (the run fails loudly
otherwise), and the windowed tripwire is the policy that claws the
advantage back by rotating on the spike.

A separate two-phase check closes the ROADMAP's windowed-tracking item:
a long honest phase dilutes the since-rotation positive rate, then the
adaptive attacker strikes late.  The unwindowed ``adaptive`` policy --
reading the rate since the last rotation -- never fires; the windowed
variant (same threshold, measured over the last few dozen queries)
rotates on the spike.  Both claims are asserted, not just reported.
"""

from __future__ import annotations

import asyncio

from repro.exceptions import ReproError
from repro.experiments.runner import ExperimentResult
from repro.service.config import AttackBudgetConfig, ServiceConfig
from repro.service.driver import AdversarialTrafficDriver, TrafficReport
from repro.service.gateway import MembershipGateway
from repro.service.sharding import HashShardPicker

__all__ = ["run"]

_SHARDS = 4
_K = 4
_MAX_TRIALS = 20_000  # per-item cap; the campaign purse is the real bound


def _shard_m(scale: float) -> int:
    return max(512, int(4096 * scale))


def _ghost_count(scale: float) -> int:
    return max(64, int(320 * scale))


def _budgets(scale: float) -> list[tuple[str, AttackBudgetConfig]]:
    """(label, config) per swept budget size.

    The tight purse affords only a fraction of the requested ghosts when
    every one is crafted fresh (at the study's fill the per-ghost cost
    is tens of trials); the roomy purse never binds.  Both carry a
    request-rate ceiling well above the replay's pace -- it exercises
    the pacing accounting without throttling the comparison.
    """
    return [
        ("tight", AttackBudgetConfig(
            max_trials=max(1200, int(6000 * scale)), requests_per_s=5000.0
        )),
        ("roomy", AttackBudgetConfig(
            max_trials=max(60_000, int(300_000 * scale)), requests_per_s=5000.0
        )),
    ]


def _policies() -> list[tuple[str, str]]:
    return [
        ("fill", "fill:0.6"),
        ("windowed", "adaptive:0.8:24:32"),
    ]


def _workload(scale: float, strategy: str) -> dict:
    ghosts = _ghost_count(scale)
    workload = dict(
        honest_clients=3,
        honest_inserts=max(150, int(600 * scale)),
        honest_queries=max(150, int(600 * scale)),
        batch=16,
        pollution_inserts=max(24, int(120 * scale)),
        ghost_queries=0,
        ghost_min_fill=0.25,
        adaptive_ghost_queries=0,
        adaptive_min_fill=0.25,
        latency_queries=0,
        target_shard=0,
        probe_queries=max(120, int(600 * scale)),
    )
    key = "adaptive_ghost_queries" if strategy == "adaptive" else "ghost_queries"
    workload[key] = ghosts
    return workload


def _replay(
    spec: str, budget_config: AttackBudgetConfig, strategy: str, scale: float, seed: int
) -> TrafficReport:
    config = ServiceConfig(
        shards=_SHARDS,
        shard_m=_shard_m(scale),
        shard_k=_K,
        rotation_threshold=None,
        rotation_policy=spec,
    )
    gateway = MembershipGateway.from_config(config)
    driver = AdversarialTrafficDriver(
        gateway,
        seed=seed,
        attacker_router=HashShardPicker(),
        max_trials=_MAX_TRIALS,
        budget=budget_config.build(),
    )
    return asyncio.run(driver.run(**_workload(scale, strategy)))


def _ghost_stats(report: TrafficReport, strategy: str) -> tuple[int, int, float, int]:
    """(sent, hits, hits/ktrial, trials) for the swept ghost client."""
    label = "adaptive" if strategy == "adaptive" else "ghost"
    sent = report.adaptive_queries if strategy == "adaptive" else report.ghost_queries
    hits = report.adaptive_hits if strategy == "adaptive" else report.ghost_hits
    trials = report.budget_spend.get(label, {}).get("trials", 0)
    return sent, hits, report.hits_per_kilotrial(label), trials


def _reasons(report: TrafficReport) -> str:
    if not report.rotation_reasons:
        return "-"
    return ",".join(f"{r}x{n}" for r, n in sorted(report.rotation_reasons.items()))


# ----------------------------------------------------------------------
# The windowed-vs-unwindowed late-spike check
# ----------------------------------------------------------------------


def _late_spike_replay(spec: str, scale: float, seed: int) -> tuple[TrafficReport, TrafficReport]:
    """Two-phase replay on one gateway: long honest life, then the
    adaptive attacker's late burst.  Returns (phase1, phase2) reports."""
    config = ServiceConfig(
        shards=_SHARDS,
        shard_m=_shard_m(scale),
        shard_k=_K,
        rotation_threshold=None,
        rotation_policy=spec,
    )
    gateway = MembershipGateway.from_config(config)
    honest = dict(
        honest_clients=3,
        honest_inserts=max(240, int(800 * scale)),
        honest_queries=max(240, int(800 * scale)),
        batch=16,
        pollution_inserts=0,
        ghost_queries=0,
        probe_queries=max(120, int(400 * scale)),
    )
    driver = AdversarialTrafficDriver(
        gateway, seed=seed, attacker_router=HashShardPicker(), max_trials=_MAX_TRIALS
    )
    phase1 = asyncio.run(driver.run(**honest))
    burst = dict(
        honest_clients=0,
        honest_inserts=0,
        honest_queries=0,
        batch=16,
        pollution_inserts=0,
        ghost_queries=0,
        adaptive_ghost_queries=max(48, int(200 * scale)),
        adaptive_min_fill=0.1,  # the honest phase already filled it
        target_shard=0,
        probe_queries=0,
    )
    attacker = AdversarialTrafficDriver(
        gateway, seed=seed + 1, attacker_router=HashShardPicker(), max_trials=_MAX_TRIALS
    )
    phase2 = asyncio.run(attacker.run(**burst))
    return phase1, phase2


def _check_late_spike(result: ExperimentResult, scale: float, seed: int) -> None:
    """The acceptance claim: windowed rotates on the late spike, the
    since-rotation rate (diluted by the honest history) never trips."""
    unwindowed_spec = "adaptive:0.8:24"
    windowed_spec = "adaptive:0.8:24:32"
    _, plain_burst = _late_spike_replay(unwindowed_spec, scale, seed)
    _, windowed_burst = _late_spike_replay(windowed_spec, scale, seed)
    window_reason = "window_positive_rate>=0.8"
    windowed_fires = windowed_burst.rotation_reasons.get(window_reason, 0)
    result.note(
        f"late-run spike ({windowed_burst.adaptive_queries} adaptive ghosts after a "
        f"long honest life): unwindowed '{unwindowed_spec}' rotated "
        f"{plain_burst.rotations}x (since-rotation rate stays diluted), windowed "
        f"'{windowed_spec}' rotated {windowed_burst.rotations}x "
        f"({_reasons(windowed_burst)}) and flushed the attacker's pool "
        f"{windowed_burst.adaptive_flushes}x"
    )
    if plain_burst.rotations != 0:
        raise ReproError(
            "unwindowed adaptive policy unexpectedly rotated on the late spike "
            f"({_reasons(plain_burst)}); the dilution premise does not hold"
        )
    if windowed_fires == 0:
        raise ReproError(
            "windowed adaptive policy never rotated on the late-run ghost spike"
        )
    if windowed_burst.adaptive_flushes == 0:
        raise ReproError(
            "rotation never flushed the adaptive attacker's confirmed pool "
            "(no pooled ghost answered negative)"
        )


def run(scale: float = 1.0, seed: int = 0) -> ExperimentResult:
    """Run the adaptive-budget study at the given ``scale``."""
    result = ExperimentResult(
        experiment_id="adaptive_budget_study",
        title="Budgeted static vs adaptive adversary across rotation policies",
        paper_claim=(
            "the paper prices each crafted item in brute-force trials (Figs. 5 "
            "and 6); Naor-Yogev extend the game to a resource-bounded *adaptive* "
            "adversary -- with one end-to-end budget, feeding query answers back "
            "into crafting buys far more false positives per trial than crafting "
            "each query fresh, and only recycling the filter takes the advantage "
            "back"
        ),
        headers=[
            "budget",
            "strategy",
            "policy",
            "ghosts",
            "hits",
            "hit_rate",
            "trials",
            "hits/ktrial",
            "resends",
            "stops",
            "rotations",
            "reasons",
        ],
    )

    per_trial: dict[tuple[str, str, str], float] = {}
    for budget_label, budget_config in _budgets(scale):
        for strategy in ("static", "adaptive"):
            for policy_label, spec in _policies():
                report = _replay(spec, budget_config, strategy, scale, seed)
                sent, hits, hits_per_ktrial, trials = _ghost_stats(report, strategy)
                per_trial[(budget_label, strategy, policy_label)] = hits_per_ktrial
                result.add_row(
                    budget_config.describe(),
                    strategy,
                    policy_label,
                    sent,
                    hits,
                    round(hits / sent, 3) if sent else 0.0,
                    trials,
                    round(hits_per_ktrial, 1),
                    report.adaptive_resends,
                    report.budget_exhausted,
                    report.rotations,
                    _reasons(report),
                )

    # Claim 1 -- the adaptive advantage: under the same purse, answer
    # feedback buys strictly more hits per trial than crafting fresh.
    # Judged on the fill policy (rotation never interferes with either
    # strategy there); the windowed rows are claim 2's territory.
    for budget_label, _ in _budgets(scale):
        static = per_trial[(budget_label, "static", "fill")]
        adaptive = per_trial[(budget_label, "adaptive", "fill")]
        result.note(
            f"{budget_label} budget, policy 'fill': adaptive strategy earns "
            f"{adaptive:.1f} hits/ktrial vs static {static:.1f} "
            f"({adaptive / static:.1f}x the ghost value per trial)"
            if static
            else f"{budget_label} budget, policy 'fill': adaptive "
            f"{adaptive:.1f} hits/ktrial, static never landed a hit"
        )
        if adaptive <= static:
            raise ReproError(
                f"adaptive strategy did not beat static hits-per-trial under the "
                f"{budget_label} budget with policy 'fill' "
                f"({adaptive:.2f} <= {static:.2f})"
            )

    # Claim 2 -- the clawback: the windowed tripwire rotates on the
    # spike, flushing the confirmed pool and repricing every fresh ghost
    # against a near-empty filter, so the adaptive advantage collapses.
    clawed = per_trial[("tight", "adaptive", "windowed")]
    free_run = per_trial[("tight", "adaptive", "fill")]
    result.note(
        f"tight budget, adaptive strategy: the windowed tripwire cuts the "
        f"attacker's value from {free_run:.1f} to {clawed:.1f} hits/ktrial "
        f"(rotation flushes the pool and empties the bits it measured)"
    )
    if clawed >= free_run:
        raise ReproError(
            f"windowed rotation did not reduce the adaptive attacker's "
            f"hits-per-trial ({clawed:.2f} >= {free_run:.2f})"
        )

    _check_late_spike(result, scale, seed)
    return result
