"""Experiment framework: uniform results, rendering, and a registry.

Every paper table/figure has one module exposing
``run(scale: float = 1.0, seed: int = 0) -> ExperimentResult``.  The
``scale`` knob shrinks workload sizes (the paper's costliest runs forge
10^6 URLs over hours; scale 1.0 here is laptop-seconds) while keeping
every formula and code path identical; EXPERIMENTS.md records the
mapping.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Sequence

__all__ = ["ExperimentResult", "render_table", "format_value"]


def format_value(value: object) -> str:
    """Human-friendly cell formatting (floats get adaptive precision)."""
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        if value == 0.0:
            return "0"
        if abs(value) >= 1000 or abs(value) < 0.001:
            return f"{value:.3g}"
        return f"{value:.4f}".rstrip("0").rstrip(".")
    return str(value)


def render_table(headers: Sequence[str], rows: Sequence[Sequence[object]]) -> str:
    """Render an aligned ASCII table."""
    cells = [[format_value(v) for v in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in cells:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = [
        "  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)),
        "  ".join("-" * widths[i] for i in range(len(headers))),
    ]
    for row in cells:
        lines.append("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines)


@dataclass
class ExperimentResult:
    """One regenerated table/figure.

    ``rows`` hold the series the paper plots/tabulates; ``notes`` carry
    the headline comparisons (paper value vs measured value).
    """

    experiment_id: str
    title: str
    paper_claim: str
    headers: list[str] = field(default_factory=list)
    rows: list[list[object]] = field(default_factory=list)
    notes: list[str] = field(default_factory=list)

    def add_row(self, *values: object) -> None:
        """Append one table row."""
        self.rows.append(list(values))

    def note(self, text: str) -> None:
        """Append one note line."""
        self.notes.append(text)

    def render(self) -> str:
        """Full human-readable report for this experiment."""
        parts = [
            f"== {self.experiment_id}: {self.title} ==",
            f"paper claim: {self.paper_claim}",
            "",
            render_table(self.headers, self.rows),
        ]
        if self.notes:
            parts.append("")
            parts.extend(f"note: {line}" for line in self.notes)
        return "\n".join(parts)


#: Signature every experiment module's ``run`` satisfies.
ExperimentRunner = Callable[..., ExperimentResult]
