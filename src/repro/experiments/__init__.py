"""One experiment per paper table/figure; see :mod:`repro.experiments.registry`.

Run them all with ``python -m repro.experiments`` (or ``repro-experiments``
once installed)."""

from repro.experiments.runner import ExperimentResult, render_table

__all__ = ["ExperimentResult", "render_table"]
