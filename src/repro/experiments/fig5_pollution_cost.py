"""Fig. 5 -- cost of creating polluting URLs.

The paper forges 10^6 URLs against pyBloom-parameterised filters for
f in {2^-5, 2^-10, 2^-15, 2^-20}: 38 s at 2^-5 growing to ~2 h at
2^-20 -- "the time needed to find the polluting items grows
exponentially" (in -log2 f, since k = log2(1/f) raises both the hashing
cost per candidate and the rejection rate).

Scaled reproduction: we forge ``n = 1200 * scale`` URLs into filters
sized for ``capacity = 2 * n`` (a half-filled filter, keeping the
acceptance probability finite for k = 20 -- at *full* fill the k = 20
acceptance is (1 - ln2)^20 ~ 5e-11, unreachable for anyone, which is
worth knowing and is reported as a note).  Measured wall time per f is
accompanied by the analytic expected-trials integral so the paper-scale
cost can be extrapolated.
"""

from __future__ import annotations

import time

from repro import accel
from repro.adversary.pollution import PollutionAttack, expected_pollution_trials
from repro.core.bloom import BloomFilter
from repro.core.params import BloomParameters
from repro.experiments.runner import ExperimentResult
from repro.urlgen.faker import UrlFactory

__all__ = ["run", "expected_total_trials"]

FPPS = (2**-5, 2**-10, 2**-15, 2**-20)


def expected_total_trials(m: int, k: int, n_items: int) -> float:
    """Analytic expected brute-force candidates to craft ``n_items``
    polluting items in sequence (sum of per-item geometric means)."""
    return sum(expected_pollution_trials(m, i * k, k) for i in range(n_items))


def run(scale: float = 1.0, seed: int = 0) -> ExperimentResult:
    """Regenerate Fig. 5 at laptop scale."""
    n_items = max(50, int(1200 * scale))
    capacity = 2 * n_items
    result = ExperimentResult(
        experiment_id="fig5",
        title="Cost of creating polluting URLs",
        paper_claim=(
            "forging 1e6 polluting URLs takes 38 s at f=2^-5 and ~2 h at "
            "f=2^-20; cost grows exponentially with -log2 f"
        ),
        headers=[
            "f",
            "k",
            "m (bits)",
            "URLs forged",
            "trials",
            "expected trials",
            "time (s)",
            "us/URL",
        ],
    )

    def forge(f: float, mode: str | None = None) -> tuple[float, "PollutionReport"]:
        """One curve point: forge ``n_items`` URLs, timed.

        ``mode`` pins the accel backend (the batched-vs-scalar speedup
        note re-runs the cheapest point with the scalar engine); the
        crafted items and trial counts are identical either way.
        """
        params = BloomParameters.design_optimal(capacity, f)
        target = BloomFilter(params.m, params.k)
        factory = UrlFactory(seed=seed ^ params.k)
        attack = PollutionAttack(
            target,
            candidates=factory.candidate_stream(),
            candidate_batch=factory.candidate_batch,
        )
        with accel.use_mode(mode or accel.current_mode()):
            start = time.perf_counter()
            report = attack.run(n_items, insert=True)
            elapsed = time.perf_counter() - start
        return elapsed, report

    if accel.accelerated():
        accel.numpy_or_none().zeros(1)  # pay the lazy numpy import outside timing

    times: list[float] = []
    for f in FPPS:
        params = BloomParameters.design_optimal(capacity, f)
        elapsed, report = forge(f)
        times.append(elapsed)
        result.add_row(
            f"2^-{params.k}" if abs(f - 2**-params.k) < 1e-12 else f,
            params.k,
            params.m,
            n_items,
            report.total_trials,
            round(expected_total_trials(params.m, params.k, n_items)),
            round(elapsed, 3),
            round(elapsed / n_items * 1e6, 1),
        )

    if times[0] > 0:
        result.note(
            f"cost growth 2^-5 -> 2^-20: x{times[-1] / times[0]:.1f} "
            "(paper: ~x190, 38 s -> 2 h at n=1e6)"
        )
    if accel.accelerated() and times[-1] > 0:
        # The curve above ran on the batched crafting engine; re-forge
        # the dominant point (f=2^-20, where the search does almost all
        # its work) scalar so the speedup is measured, not assumed
        # (same seed, same items, same trial counts).
        scalar_elapsed, _ = forge(FPPS[-1], mode="pure")
        result.note(
            f"batched crafting engine: f=2^-20 point re-run scalar took "
            f"{scalar_elapsed:.3f}s vs {times[-1]:.3f}s batched "
            f"(x{scalar_elapsed / times[-1]:.1f} speedup, identical trials)"
        )
    result.note(
        "at full fill (n = capacity) the k=20 acceptance probability is "
        "(1 - ln 2)^20 ~ 5e-11; the paper's 1e6-URL forgeries are only "
        "feasible on partially-filled filters, which this reproduction makes "
        "explicit (fill = 50% of capacity here)"
    )
    result.note(f"scale={scale}: {n_items} URLs forged per curve vs 1e6 in the paper")
    return result
