"""Fig. 8 -- polluting Dablooms.

Setup (paper Section 6.2): lambda = 10 slices of capacity delta = 10^4,
f0 = 0.01, r = 0.9.  The compound false-positive probability
``F = 1 - prod(1 - f_i)`` is plotted against how many slices the
adversary polluted: the full attack (all 10) versus partial attacks
(only the last i), versus the no-attack baseline (~0.065).

Pollution state is produced with *oracle crafting* -- each adversarial
insertion directly claims k fresh counters, the exact post-state of a
brute-force crafted item.  (Crafting *cost* is Fig. 5's subject; Fig. 8
only measures F, so simulating the state keeps the experiment fast at
full delta.)  A smaller fully-brute-forced validation run is included in
``tests/apps/test_dablooms_attack.py``.
"""

from __future__ import annotations

import random

from repro.core.analysis import scalable_compound_fpp
from repro.core.counting import CountingBloomFilter
from repro.core.dablooms import Dablooms
from repro.experiments.runner import ExperimentResult
from repro.urlgen.faker import UrlFactory

__all__ = ["run", "oracle_pollute_slice", "honest_fill_slice"]

LAMBDA = 10


def oracle_pollute_slice(
    slice_filter: CountingBloomFilter, insertions: int, rng: random.Random
) -> None:
    """Fill a slice with ``insertions`` perfectly-crafted items.

    Each insertion claims k currently-zero counters (eq. 6 satisfied by
    construction), replicating the end state of brute-force pollution.
    """
    zeros = [i for i in range(slice_filter.m) if slice_filter.counters.get(i) == 0]
    rng.shuffle(zeros)
    cursor = 0
    for _ in range(insertions):
        batch = zeros[cursor : cursor + slice_filter.k]
        cursor += slice_filter.k
        if len(batch) < slice_filter.k:
            # Filter exhausted: reuse random positions (fully saturated).
            batch += [rng.randrange(slice_filter.m) for _ in range(slice_filter.k - len(batch))]
        slice_filter.add_indexes(batch)


def honest_fill_slice(dablooms: Dablooms, insertions: int, factory: UrlFactory) -> None:
    """Fill the active slice with realistic random URLs."""
    for _ in range(insertions):
        dablooms.add(factory.url())


def _filled_slice_fpps(delta: int, f0: float, r: float, polluted: bool, seed: int) -> list[float]:
    """Current per-slice FP after filling all LAMBDA slices one way."""
    dablooms = Dablooms(slice_capacity=delta, f0=f0, r=r, max_slices=LAMBDA + 1)
    factory = UrlFactory(seed=seed)
    rng = random.Random(seed ^ 0xF18)
    for _ in range(LAMBDA):
        if polluted:
            oracle_pollute_slice(dablooms.active_slice, delta, rng)
            # Account the insertions so the structure scales on schedule.
            dablooms.record_bulk_insertions(delta)
        else:
            honest_fill_slice(dablooms, delta, factory)
        if dablooms.slice_count < LAMBDA:
            dablooms.force_scale()
    return [s.current_fpp() for s in dablooms.slices[:LAMBDA]]


def run(scale: float = 1.0, seed: int = 0) -> ExperimentResult:
    """Regenerate Fig. 8: F vs number of polluted slices."""
    delta = max(200, int(10_000 * scale))
    f0, r = 0.01, 0.9
    result = ExperimentResult(
        experiment_id="fig8",
        title="Polluting Dablooms (lambda=10, f0=0.01, r=0.9)",
        paper_claim=(
            "no attack F ~ 0.065; full attack F ~ 0.65; partial attacks on the "
            "last i slices interpolate between them"
        ),
        headers=["polluted slices (last i)", "F (compound)", "F design baseline"],
    )

    honest_fpps = _filled_slice_fpps(delta, f0, r, polluted=False, seed=seed ^ 0x0A)
    polluted_fpps = _filled_slice_fpps(delta, f0, r, polluted=True, seed=seed ^ 0x0B)
    design_baseline = scalable_compound_fpp([f0 * r**i for i in range(LAMBDA)])

    for i in range(LAMBDA + 1):
        # Slices are independent: pollute the last i, keep the rest honest.
        mixed = honest_fpps[: LAMBDA - i] + polluted_fpps[LAMBDA - i :]
        result.add_row(i, scalable_compound_fpp(mixed), design_baseline)

    full = scalable_compound_fpp(polluted_fpps)
    none = scalable_compound_fpp(honest_fpps)
    result.note(f"no attack F = {none:.4f} (paper ~0.065)")
    result.note(f"full attack F = {full:.4f} (paper ~0.65)")
    result.note(f"amplification x{full / none:.1f}")
    result.note(f"scale={scale}: delta={delta} vs 10^4 in the paper")
    return result
