"""Fig. 6 -- cost of creating ghost URLs (false-positive forgeries).

The paper plots minutes-per-ghost against the filter's occupation (the
fraction of its 1e6-item capacity already inserted) for f in
{2^-5, 2^-10}: the emptier the filter, the harder the forgery, since a
random candidate is a false positive with probability ``(W/m)^k``.

We reproduce the curve on a scaled filter, measuring wall time where the
expected trial count fits a laptop budget and reporting the analytic
expectation everywhere (the paper's own low-occupation points are
hours-long for the same reason).
"""

from __future__ import annotations

import math
import time

from repro.adversary.crafting import expected_trials
from repro.adversary.query import GhostForgery, false_positive_success_probability
from repro.core.bloom import BloomFilter
from repro.core.params import BloomParameters
from repro.experiments.runner import ExperimentResult
from repro.urlgen.faker import UrlFactory

__all__ = ["run", "expected_ghost_trials"]

FPPS = (2**-5, 2**-10)
OCCUPATIONS = (0.2, 0.4, 0.6, 0.8, 1.0)
#: Skip live measurement above this many expected trials per ghost.
TRIAL_BUDGET = 400_000


def expected_ghost_trials(m: int, k: int, weight: int) -> float:
    """Expected candidates per ghost at the given filter weight."""
    p = false_positive_success_probability(m, weight, k)
    if p == 0.0:
        return math.inf
    return expected_trials(p)


def run(scale: float = 1.0, seed: int = 0) -> ExperimentResult:
    """Regenerate Fig. 6 at laptop scale."""
    capacity = max(200, int(3000 * scale))
    ghosts_per_point = 3
    result = ExperimentResult(
        experiment_id="fig6",
        title="Cost of creating ghost URLs vs filter occupation",
        paper_claim=(
            "per-ghost forgery cost falls steeply as occupation grows; "
            "low-occupation forgeries take hours (f=2^-10 curve far above 2^-5)"
        ),
        headers=[
            "f",
            "occupation",
            "weight/m",
            "expected trials",
            "measured trials",
            "time/ghost (s)",
        ],
    )

    for f in FPPS:
        params = BloomParameters.design_optimal(capacity, f)
        target = BloomFilter(params.m, params.k)
        factory = UrlFactory(seed=seed ^ params.k)
        inserted = 0
        for occupation in OCCUPATIONS:
            goal = int(occupation * capacity)
            while inserted < goal:
                target.add(factory.url())
                inserted += 1
            weight = target.hamming_weight
            expectation = expected_ghost_trials(params.m, params.k, weight)
            if expectation <= TRIAL_BUDGET:
                forgery = GhostForgery(
                    target,
                    candidates=UrlFactory(seed=seed ^ goal).candidate_stream(),
                    max_trials=20 * TRIAL_BUDGET,
                )
                start = time.perf_counter()
                ghosts = forgery.craft(ghosts_per_point)
                elapsed = (time.perf_counter() - start) / ghosts_per_point
                measured = sum(g.trials for g in ghosts) / ghosts_per_point
                result.add_row(
                    f"2^-{params.k}",
                    occupation,
                    round(weight / params.m, 4),
                    round(expectation),
                    round(measured),
                    round(elapsed, 4),
                )
            else:
                result.add_row(
                    f"2^-{params.k}",
                    occupation,
                    round(weight / params.m, 4),
                    round(expectation),
                    "(skipped)",
                    "(model only)",
                )

    result.note(
        "cells above the trial budget are reported analytically -- the same "
        "steep low-occupation wall the paper's Fig. 6 shows (its y axis tops "
        "out at 3 hours)"
    )
    result.note(f"scale={scale}: capacity {capacity} vs 1e6 in the paper")
    return result
