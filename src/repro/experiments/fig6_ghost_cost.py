"""Fig. 6 -- cost of creating ghost URLs (false-positive forgeries).

The paper plots minutes-per-ghost against the filter's occupation (the
fraction of its 1e6-item capacity already inserted) for f in
{2^-5, 2^-10}: the emptier the filter, the harder the forgery, since a
random candidate is a false positive with probability ``(W/m)^k``.

We reproduce the curve on a scaled filter, measuring wall time where the
expected trial count fits a laptop budget and reporting the analytic
expectation everywhere (the paper's own low-occupation points are
hours-long for the same reason).
"""

from __future__ import annotations

import copy
import math
import time

from repro import accel
from repro.adversary.crafting import expected_trials
from repro.adversary.query import GhostForgery, false_positive_success_probability
from repro.core.bloom import BloomFilter
from repro.core.params import BloomParameters
from repro.experiments.runner import ExperimentResult
from repro.urlgen.faker import UrlFactory

__all__ = ["run", "expected_ghost_trials"]

FPPS = (2**-5, 2**-10)
OCCUPATIONS = (0.2, 0.4, 0.6, 0.8, 1.0)
#: Skip live measurement above this many expected trials per ghost.
TRIAL_BUDGET = 400_000


def expected_ghost_trials(m: int, k: int, weight: int) -> float:
    """Expected candidates per ghost at the given filter weight."""
    p = false_positive_success_probability(m, weight, k)
    if p == 0.0:
        return math.inf
    return expected_trials(p)


def run(scale: float = 1.0, seed: int = 0) -> ExperimentResult:
    """Regenerate Fig. 6 at laptop scale."""
    capacity = max(200, int(3000 * scale))
    ghosts_per_point = 3
    result = ExperimentResult(
        experiment_id="fig6",
        title="Cost of creating ghost URLs vs filter occupation",
        paper_claim=(
            "per-ghost forgery cost falls steeply as occupation grows; "
            "low-occupation forgeries take hours (f=2^-10 curve far above 2^-5)"
        ),
        headers=[
            "f",
            "occupation",
            "weight/m",
            "expected trials",
            "measured trials",
            "time/ghost (s)",
        ],
    )

    if accel.accelerated():
        accel.numpy_or_none().zeros(1)  # pay the lazy numpy import outside timing

    #: The most expensive live-measured cell (filter snapshot, ghost
    #: seed, trials/ghost, seconds/ghost), kept for the speedup note:
    #: that is where the batched engine does almost all its work, so it
    #: is the honest place to measure the scalar comparison.
    costliest: tuple[BloomFilter, int, float, float] | None = None
    for f in FPPS:
        params = BloomParameters.design_optimal(capacity, f)
        target = BloomFilter(params.m, params.k)
        factory = UrlFactory(seed=seed ^ params.k)
        inserted = 0
        for occupation in OCCUPATIONS:
            goal = int(occupation * capacity)
            while inserted < goal:
                target.add(factory.url())
                inserted += 1
            weight = target.hamming_weight
            expectation = expected_ghost_trials(params.m, params.k, weight)
            if expectation <= TRIAL_BUDGET:
                ghost_factory = UrlFactory(seed=seed ^ goal)
                forgery = GhostForgery(
                    target,
                    candidates=ghost_factory.candidate_stream(),
                    max_trials=20 * TRIAL_BUDGET,
                    candidate_batch=ghost_factory.candidate_batch,
                )
                start = time.perf_counter()
                ghosts = forgery.craft(ghosts_per_point)
                elapsed = (time.perf_counter() - start) / ghosts_per_point
                measured = sum(g.trials for g in ghosts) / ghosts_per_point
                if costliest is None or measured > costliest[2]:
                    # Ghost crafting never mutates the filter, but the
                    # occupation loop keeps inserting -- snapshot the
                    # state so the cell can be re-run scalar later.
                    costliest = (copy.deepcopy(target), seed ^ goal, measured, elapsed)
                result.add_row(
                    f"2^-{params.k}",
                    occupation,
                    round(weight / params.m, 4),
                    round(expectation),
                    round(measured),
                    round(elapsed, 4),
                )
            else:
                result.add_row(
                    f"2^-{params.k}",
                    occupation,
                    round(weight / params.m, 4),
                    round(expectation),
                    "(skipped)",
                    "(model only)",
                )

    if accel.accelerated() and costliest is not None and costliest[3] > 0:
        ghost_target, ghost_seed, _, batched_elapsed = costliest
        ghost_factory = UrlFactory(seed=ghost_seed)
        forgery = GhostForgery(
            ghost_target,
            candidates=ghost_factory.candidate_stream(),
            max_trials=20 * TRIAL_BUDGET,
            candidate_batch=ghost_factory.candidate_batch,
        )
        with accel.use_mode("pure"):
            start = time.perf_counter()
            forgery.craft(ghosts_per_point)
            scalar_elapsed = (time.perf_counter() - start) / ghosts_per_point
        result.note(
            f"batched crafting engine: costliest measured cell re-run scalar "
            f"took {scalar_elapsed:.4f}s/ghost vs {batched_elapsed:.4f}s "
            f"batched (x{scalar_elapsed / batched_elapsed:.1f} speedup, "
            f"identical ghosts and trials)"
        )

    result.note(
        "cells above the trial budget are reported analytically -- the same "
        "steep low-occupation wall the paper's Fig. 6 shows (its y axis tops "
        "out at 3 hours)"
    )
    result.note(f"scale={scale}: capacity {capacity} vs 1e6 in the paper")
    return result
