"""Fig. 3 -- false-positive probability as a function of inserted items.

Setup (paper Section 4.1): m = 3200, k = 4, up to n = 600 insertions,
f_opt = 0.077.  Three regimes:

* honest ``f``: uniform random insertions (eq. 1);
* fully adversarial ``f_adv = (nk/m)^k`` (eq. 7), every item crafted;
* partial attack: 400 honest insertions followed by crafted ones.

Headline numbers to reproduce: the f_opt = 0.077 threshold is crossed at
600 honest / 422 adversarial / 510 partial insertions, and
f_adv(600) ~ 0.316.
"""

from __future__ import annotations

import math

from repro.adversary.workload import adversarial_insertions, honest_insertions
from repro.core.bloom import BloomFilter
from repro.core.params import adversarial_fpp, false_positive_probability, optimal_fpp
from repro.experiments.runner import ExperimentResult

__all__ = ["run", "analytic_partial_fpp", "analytic_crossing"]

M = 3200
K = 4
N_MAX = 600
HONEST_PREFIX = 400


def analytic_partial_fpp(n: int, m: int = M, k: int = K, honest: int = HONEST_PREFIX) -> float:
    """Expected FP after ``honest`` uniform then ``n - honest`` crafted
    insertions: crafted items add exactly k set bits each on top of the
    uniform expectation."""
    if n <= honest:
        return false_positive_probability(m, n, k)
    expected_weight = m * (1.0 - math.exp(-k * honest / m)) + k * (n - honest)
    return min(1.0, expected_weight / m) ** k


def analytic_crossing(threshold: float, curve, n_max: int = N_MAX) -> int | None:
    """First n in [1, n_max] where ``curve(n) > threshold``."""
    for n in range(1, n_max + 1):
        if curve(n) > threshold:
            return n
    return None


def run(scale: float = 1.0, seed: int = 0) -> ExperimentResult:
    """Regenerate Fig. 3 (scale only affects the empirical replication)."""
    threshold = optimal_fpp(M, N_MAX)
    result = ExperimentResult(
        experiment_id="fig3",
        title="False positive probability vs inserted items (m=3200, k=4)",
        paper_claim=(
            "threshold f_opt=0.077 crossed at 600 honest / 422 adversarial / "
            "510 partial insertions; f_adv(600)=0.316"
        ),
        headers=["n", "f honest", "f adversarial", "f partial", "emp honest", "emp adversarial"],
    )

    # Empirical replications on real filters.
    honest_filter = BloomFilter(M, K)
    honest_trace = honest_insertions(honest_filter, N_MAX, seed=seed ^ 0xB10B)
    adv_filter = BloomFilter(M, K)
    adv_trace = adversarial_insertions(adv_filter, N_MAX, seed=seed ^ 0x5EED)
    partial_filter = BloomFilter(M, K)
    partial_trace = honest_insertions(partial_filter, HONEST_PREFIX, seed=seed ^ 0x31C5)
    partial_tail = adversarial_insertions(
        partial_filter, N_MAX - HONEST_PREFIX, seed=seed ^ 0x7777
    )
    partial_fpp = partial_trace.fpp + partial_tail.fpp

    for n in range(50, N_MAX + 1, 50):
        result.add_row(
            n,
            false_positive_probability(M, n, K),
            adversarial_fpp(M, n, K),
            analytic_partial_fpp(n),
            honest_trace.fpp[n - 1],
            adv_trace.fpp[n - 1],
        )

    cross_honest = analytic_crossing(threshold, lambda n: false_positive_probability(M, n, K))
    cross_adv = analytic_crossing(threshold, lambda n: adversarial_fpp(M, n, K))
    cross_partial = analytic_crossing(threshold, analytic_partial_fpp)
    emp_cross_adv = adv_trace.threshold_crossing(threshold)
    emp_cross_partial = None
    for i, value in enumerate(partial_fpp):
        if value > threshold:
            emp_cross_partial = i + 1
            break

    result.note(f"f_opt threshold = {threshold:.4f} (paper: 0.077)")
    result.note(
        f"analytic crossings honest/adversarial/partial = "
        f"{cross_honest or '>600'}/{cross_adv}/{cross_partial} (paper: 600/422/510)"
    )
    result.note(
        f"empirical crossings adversarial/partial = {emp_cross_adv}/{emp_cross_partial}"
    )
    result.note(
        f"f_adv(600) analytic={adversarial_fpp(M, N_MAX, K):.4f}, "
        f"empirical={adv_trace.fpp[-1]:.4f} (paper: 0.316)"
    )
    result.note(
        f"adversarial weight after 600 insertions: {adv_filter.hamming_weight} "
        f"(= nk = {N_MAX * K}); honest weight: {honest_filter.hamming_weight} "
        f"(expected {M * (1 - math.exp(-K * N_MAX / M)):.0f})"
    )
    return result
