"""Table 1 -- summary of attack success probabilities.

Symbolic forms from the paper, instantiated numerically on the Fig. 3
filter (m = 3200, k = 4) at three occupancy levels, and cross-checked
against Monte-Carlo estimates on a real filter.
"""

from __future__ import annotations

import random

from repro.adversary.probabilities import (
    deletion_overlap_probability,
    deletion_probability_paper,
    fp_forgery_bounds,
    second_preimage_bloom,
    second_preimage_hash,
)
from repro.adversary.pollution import pollution_success_probability
from repro.adversary.query import false_positive_success_probability
from repro.experiments.runner import ExperimentResult

__all__ = ["run", "monte_carlo_rates"]

M = 3200
K = 4
WEIGHTS = (400, 1600, 2400)


def monte_carlo_rates(
    m: int, k: int, weight: int, trials: int, rng: random.Random
) -> tuple[float, float]:
    """Empirical (pollution, forgery) success rates for a random filter
    state of the given weight."""
    support = set(rng.sample(range(m), weight))
    pollution_hits = 0
    forgery_hits = 0
    for _ in range(trials):
        indexes = [rng.randrange(m) for _ in range(k)]
        if len(set(indexes)) == k and not any(i in support for i in indexes):
            pollution_hits += 1
        if all(i in support for i in indexes):
            forgery_hits += 1
    return pollution_hits / trials, forgery_hits / trials


def run(scale: float = 1.0, seed: int = 0) -> ExperimentResult:
    """Regenerate Table 1 with numeric instantiations."""
    trials = max(2000, int(20_000 * scale))
    rng = random.Random(seed ^ 0x7AB1)
    result = ExperimentResult(
        experiment_id="table1",
        title="Attack success probabilities (m=3200, k=4)",
        paper_claim=(
            "pollution is the easiest attack, deletion the hardest, forgery in "
            "between; all are far easier than hash second pre-images"
        ),
        headers=["attack", "symbolic", "W=400", "W=1600", "W=2400"],
    )

    result.add_row(
        "second pre-image (SHA-1 digest)",
        "2^-l",
        second_preimage_hash(160),
        second_preimage_hash(160),
        second_preimage_hash(160),
    )
    result.add_row(
        "second pre-image (Bloom)",
        "1/m^k",
        second_preimage_bloom(M, K),
        second_preimage_bloom(M, K),
        second_preimage_bloom(M, K),
    )
    result.add_row(
        "pollution (paper form)",
        "C(m-W,k)/m^k",
        *[pollution_success_probability(M, w, K, paper_formula=True) for w in WEIGHTS],
    )
    result.add_row(
        "pollution (ordered form)",
        "C(m-W,k)k!/m^k",
        *[pollution_success_probability(M, w, K, paper_formula=False) for w in WEIGHTS],
    )
    result.add_row(
        "false-positive forgery",
        "(W/m)^k",
        *[false_positive_success_probability(M, w, K) for w in WEIGHTS],
    )
    lower, upper = fp_forgery_bounds(M, K)
    result.add_row("forgery lower bound", "(k/m)^k", lower, lower, lower)
    result.add_row("forgery upper bound", "(1/2)^k", upper, upper, upper)
    result.add_row(
        "deletion overlap (well-formed)",
        "1-((m-k)/m)^k",
        *[deletion_overlap_probability(M, K)] * 3,
    )
    result.add_row(
        "deletion (paper formula, verbatim)",
        "sum C(k,i)(m-i)^k/m^k",
        *[deletion_probability_paper(M, K)] * 3,
    )

    for w in WEIGHTS:
        emp_pollution, emp_forgery = monte_carlo_rates(M, K, w, trials, rng)
        result.note(
            f"Monte-Carlo at W={w}: pollution {emp_pollution:.4f} "
            f"(model {pollution_success_probability(M, w, K, paper_formula=False):.4f}), "
            f"forgery {emp_forgery:.4f} "
            f"(model {false_positive_success_probability(M, w, K):.4f})"
        )
    result.note(
        "the paper's deletion expression exceeds 1 for k > 1 (each term is "
        "~C(k,i)); we report it verbatim beside the well-formed overlap "
        "probability -- see EXPERIMENTS.md"
    )
    return result
