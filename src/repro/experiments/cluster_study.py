"""Cluster-tier experiment: aimed pollution vs a multi-gateway service.

The paper's chosen-insertion adversary aims crafted items at one shard
through the *public* router (Section 4.1).  A single gateway absorbs
that as one saturated shard; a cluster makes the blast radius a
placement question.  This experiment runs the attack against a
three-node :class:`~repro.service.cluster.harness.ClusterHarness` twice:

* ``public-router``  -- items route by public Murmur, so every crafted
  insert lands on the aimed shard and its owner soaks the whole attack;
* ``keyed-router``   -- the cluster routes items with a secret SipHash
  key; the same crafted stream (aimed under public-hash assumptions)
  sprays across the shard space.

The headline is the *concentration ratio* (max/mean shard fill): the
keyed ring must spread the identical attack budget at least twice as
uniformly, or the run fails hard.

The second half exercises the operational claim: a shard is rebalanced
to another node *mid-workload* by snapshot handoff.  A control cluster
runs the identical seeded workload with no move.  Afterwards the moved
shard must be byte-identical on the wire block, its filter bits,
lifecycle scratch and telemetry counters must match the control's, a
full query replay must answer identically, every tracked insert must
still answer positive (zero lost inserts), and a client created before
the move must have converged through ``ST_NOT_OWNER`` redirects.
"""

from __future__ import annotations

import asyncio
import hashlib

from repro.exceptions import ReproError
from repro.experiments.runner import ExperimentResult
from repro.service.cluster import ClusterHarness
from repro.service.cluster.ring import HashShardPicker
from repro.service.config import ServiceConfig
from repro.urlgen.faker import UrlFactory

__all__ = ["run"]

_NODES = ("alpha", "beta", "gamma")
_TOTAL_SHARDS = 8
_TARGET = 0


def _key(seed: int, label: str) -> bytes:
    """A pinned, seed-derived 16-byte secret (reproducible runs)."""
    return hashlib.sha256(f"cluster:{label}:{seed}".encode()).digest()[:16]


def _craft_aimed(seed: int, count: int) -> list[str]:
    """Items the *public* router sends to the aimed shard (the paper's
    chosen-insertion crafting, done here by rejection sampling)."""
    factory = UrlFactory(seed=seed)
    aim = HashShardPicker()
    crafted: list[str] = []
    while len(crafted) < count:
        crafted.extend(
            url
            for url in factory.urls(256)
            if aim.pick(url, _TOTAL_SHARDS) == _TARGET
        )
    return crafted[:count]


def _fills(view) -> list[float]:
    return [row.fill_ratio for row in view.snapshot()]


def _concentration(fills: list[float]) -> float:
    mean = sum(fills) / len(fills)
    return max(fills) / mean if mean else 0.0


async def _spread_run(
    result: ExperimentResult,
    name: str,
    config: ServiceConfig,
    honest: list[str],
    crafted: list[str],
) -> float:
    """One cluster under the aimed-pollution workload; returns max/mean."""
    async with ClusterHarness(_NODES, _TOTAL_SHARDS, config=config) as harness:
        async with harness.client() as client:
            await client.insert_batch(honest, client="honest")
            await client.insert_batch(crafted, client="adversary")
        view = harness.view
        fills = _fills(view)
        ratio = _concentration(fills)
        result.add_row(
            "spread",
            name,
            view.picker.name.split("(")[0],
            len(honest) + len(crafted),
            round(max(fills), 3),
            round(sum(fills) / len(fills), 3),
            round(ratio, 2),
            harness.ownership.epoch,
        )
        return ratio


async def _rebalance_run(
    result: ExperimentResult, scale: float, seed: int
) -> None:
    """Identical workloads on two clusters; one rebalances mid-run."""
    config = ServiceConfig(
        shard_m=max(512, int(4096 * scale)),
        rotation_threshold=None,
        router="murmur",
    )
    factory = UrlFactory(seed=seed + 7)
    stream1 = factory.urls(max(120, int(900 * scale)))
    stream2 = factory.urls(max(120, int(900 * scale)))
    probes = UrlFactory(seed=seed ^ 0xC1A5).urls(max(200, int(800 * scale)))

    async with ClusterHarness(_NODES, _TOTAL_SHARDS, config=config) as moved, \
            ClusterHarness(_NODES, _TOTAL_SHARDS, config=config) as control:
        stale = moved.client()  # built *before* the move: must redirect
        control_client = control.client()
        await stale.insert_batch(stream1, client="workload")
        await control_client.insert_batch(stream1, client="workload")

        # -- the move: snapshot handoff of the aimed shard ------------
        source = moved.ownership.owner_of(_TARGET)
        destination = next(n for n in _NODES if n != source)
        before = await moved.gateways[source].export_shard_block(_TARGET)
        epoch = await moved.move_shard(_TARGET, destination)
        after = await moved.gateways[destination].export_shard_block(_TARGET)
        if before != after:
            raise ReproError(
                "snapshot handoff was not byte-exact: the re-exported "
                "block differs from the pre-move export"
            )

        # -- the workload continues through the stale routing view ----
        await stale.insert_batch(stream2, client="workload")
        await control_client.insert_batch(stream2, client="workload")
        if stale.redirects_followed < 1:
            raise ReproError(
                "a client built before the rebalance never saw a "
                "redirect -- the move did not invalidate stale routes"
            )

        # -- parity: moved cluster vs unmoved control -----------------
        moved_view, control_view = moved.view, control.view
        replay_moved = await moved_view.query_batch(probes, client="replay")
        replay_control = await control_view.query_batch(probes, client="replay")
        if replay_moved != replay_control:
            raise ReproError(
                "query replay diverged between the rebalanced cluster "
                "and the unmoved control"
            )
        bits_moved = moved_view.shard_view(_TARGET).to_bytes()
        bits_control = control_view.shard_view(_TARGET).to_bytes()
        if bits_moved != bits_control:
            raise ReproError("moved shard's filter bits diverged from control")
        life_moved = moved_view.lifecycle[_TARGET].to_state(
            moved_view.shard_state(_TARGET).age_ops
        )
        life_control = control_view.lifecycle[_TARGET].to_state(
            control_view.shard_state(_TARGET).age_ops
        )
        if life_moved != life_control:
            raise ReproError("moved shard's lifecycle state diverged from control")
        row_moved = moved_view.snapshot()[_TARGET]
        row_control = control_view.snapshot()[_TARGET]
        counters = ("inserts", "queries", "positives", "rotations")
        if any(
            getattr(row_moved, c) != getattr(row_control, c) for c in counters
        ):
            raise ReproError("moved shard's telemetry counters diverged from control")

        # -- zero lost inserts ----------------------------------------
        tracked = stream1 + stream2
        answers = await moved_view.query_batch(tracked, client="audit")
        lost = answers.count(False)
        if lost:
            raise ReproError(
                f"{lost} of {len(tracked)} tracked inserts no longer "
                "answer positive after the rebalance"
            )

        for label, view, harness in (
            ("rebalanced", moved_view, moved),
            ("control", control_view, control),
        ):
            fills = _fills(view)
            result.add_row(
                "rebalance",
                label,
                view.picker.name.split("(")[0],
                len(tracked),
                round(max(fills), 3),
                round(sum(fills) / len(fills), 3),
                round(_concentration(fills), 2),
                harness.ownership.epoch,
            )
        result.note(
            f"mid-run handoff: shard {_TARGET} moved {source} -> "
            f"{destination} at epoch {epoch}; wire block byte-exact "
            f"({len(before)} bytes), filter bits / lifecycle / telemetry "
            f"counters identical to the unmoved control, "
            f"{len(probes)} replay answers identical"
        )
        result.note(
            f"zero lost inserts: all {len(tracked)} tracked items still "
            f"answer positive; the pre-move client converged via "
            f"{stale.redirects_followed} redirect round(s)"
        )
        await stale.aclose()
        await control_client.aclose()


def run(scale: float = 1.0, seed: int = 0) -> ExperimentResult:
    """Run the cluster study at the given ``scale``."""
    result = ExperimentResult(
        experiment_id="cluster_study",
        title="Multi-gateway cluster under aimed pollution and live rebalance",
        paper_claim=(
            "chosen insertions aimed through the public router concentrate "
            "on one shard wherever it lives; a keyed routing ring spreads "
            "the same attack budget near-uniformly, and shard ownership can "
            "move between gateways mid-attack without losing a single "
            "insert or diverging from an unmoved control"
        ),
        headers=[
            "phase",
            "cluster",
            "router",
            "ops",
            "max_fill",
            "mean_fill",
            "max/mean",
            "epoch",
        ],
    )

    honest = UrlFactory(seed=seed + 3).urls(max(150, int(1200 * scale)))
    crafted = _craft_aimed(seed + 5, max(120, int(480 * scale)))
    # Shards stay well clear of saturation: a nearly-full aimed shard
    # compresses max fill and understates the concentration the keyed
    # ring is being measured against.
    shard_m = max(2048, int(8192 * scale))
    public_config = ServiceConfig(
        shard_m=shard_m, rotation_threshold=None, router="murmur"
    )
    keyed_config = ServiceConfig(
        shard_m=shard_m,
        rotation_threshold=None,
        router=f"siphash:{_key(seed, 'router').hex()}",
    )

    async def _spread_phase() -> tuple[float, float]:
        public = await _spread_run(result, "public-router", public_config, honest, crafted)
        keyed = await _spread_run(result, "keyed-router", keyed_config, honest, crafted)
        return public, keyed

    public_ratio, keyed_ratio = asyncio.run(_spread_phase())
    result.note(
        f"aimed pollution concentration (max/mean shard fill): public "
        f"router {public_ratio:.2f}, keyed ring {keyed_ratio:.2f} "
        f"(x{public_ratio / keyed_ratio:.1f} more uniform under the key)"
    )
    if public_ratio < 2 * keyed_ratio:
        # A hard failure, not an assert: the acceptance bar must hold
        # under `python -O` too, and the CI smoke run leans on it.
        raise ReproError(
            f"keyed ring spread the attack only x"
            f"{public_ratio / keyed_ratio:.2f} more uniformly than the "
            f"public router (need >= x2)"
        )

    asyncio.run(_rebalance_run(result, scale, seed))
    return result
