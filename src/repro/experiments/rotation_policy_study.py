"""Rotation-policy study: lifecycle defences under adversarial traffic.

The ROADMAP's open question: the saturation guard rotates on a fill
threshold -- how do the alternatives behave under the same attacks?
This experiment replays the driver's seeded honest / pollution / ghost /
latency workloads against a gateway running each of the four shipped
:mod:`repro.service.lifecycle` policies:

* ``fill``      -- the saturation-guard default (retire at 35% fill);
* ``age``       -- dablooms-style op-count recycling, fill-blind;
* ``adaptive``  -- rotate on a positive-rate spike (the ghost storm's
  signature), the anti-adaptive-adversary defence;
* ``restore+fill`` -- expire snapshot-restored shards, fill rule
  otherwise.

Each policy runs on two transports (in-process and TCP against a local
backend), so the policy comparison holds across the wire exactly like
the attack itself.  The per-policy table reports rotations (with their
machine-readable reasons), honest FP rate, ghost amplification and
throughput.

Two extra rows re-run the fill and adaptive policies over the paper's
*worst-case-parameter* shards (Section 8.1: ``k = round(m/(en))``
minimises the adversarially-achievable FP rate), closing the loop
between the parameter countermeasure and the lifecycle one.

Finally the snapshot story: a gateway running the rotate-on-restore
policy is snapshotted mid-run and restored; lifecycle state (op age,
counters) must survive byte-exactly, every worked shard must come back
flagged restored, and the continued workload must retire those shards
for the ``restored_age`` reason.  The same round trip is verified on
counting-filter shards (the deletable-service warm restart the ROADMAP
asked for).
"""

from __future__ import annotations

import asyncio

from repro.core.bloom import BloomFilter
from repro.core.counting import CountingBloomFilter
from repro.core.params import BloomParameters
from repro.exceptions import SnapshotError
from repro.experiments.runner import ExperimentResult
from repro.service.client import MembershipClient
from repro.service.config import ServiceConfig
from repro.service.driver import AdversarialTrafficDriver, TrafficReport
from repro.service.gateway import MembershipGateway
from repro.service.lifecycle import parse_policy
from repro.service.server import MembershipServer
from repro.service.sharding import HashShardPicker
from repro.service.snapshots import restore_gateway, snapshot_gateway
from repro.urlgen.faker import UrlFactory

__all__ = ["run"]

_SHARDS = 4
_K = 4
_FILL = 0.35


def _age_budget(scale: float) -> int:
    """Op budget of the age policy, scaled so each shard retires a
    couple of times per run (EXPERIMENTS.md documents this mapping)."""
    return max(48, int(400 * scale))


def _restore_budget(scale: float) -> int:
    """Post-restore op budget of the rotate-on-restore wrapper, scaled
    so restored shards expire within the post-restore replay."""
    return max(16, int(200 * scale))


def _policy_specs(scale: float) -> list[tuple[str, str]]:
    """(label, spec) per studied policy, budgets scaled with the workload."""
    return [
        ("fill", f"fill:{_FILL}"),
        ("age", f"age:{_age_budget(scale)}"),
        ("adaptive", "adaptive:0.55:24"),
        ("restore+fill", f"restore:{_restore_budget(scale)}+fill:{_FILL}"),
    ]


def _workload(scale: float) -> dict:
    return dict(
        honest_clients=3,
        honest_inserts=max(40, int(800 * scale)),
        honest_queries=max(40, int(800 * scale)),
        batch=16,
        pollution_inserts=max(30, int(240 * scale)),
        ghost_queries=max(32, int(400 * scale)),
        ghost_min_fill=_FILL * 0.35,
        latency_queries=max(8, int(48 * scale)),
        latency_min_fill=_FILL * 0.3,
        target_shard=0,
        probe_queries=max(100, int(800 * scale)),
    )


def _config(scale: float, spec: str) -> ServiceConfig:
    return ServiceConfig(
        shards=_SHARDS,
        shard_m=max(256, int(4096 * scale)),
        shard_k=_K,
        rotation_threshold=None,
        rotation_policy=spec,
    )


def _replay_inproc(config: ServiceConfig, scale: float, seed: int) -> TrafficReport:
    gateway = MembershipGateway.from_config(config)
    driver = AdversarialTrafficDriver(
        gateway, seed=seed, attacker_router=HashShardPicker(), max_trials=12_000
    )
    return asyncio.run(driver.run(**_workload(scale)))


def _replay_tcp(config: ServiceConfig, scale: float, seed: int) -> TrafficReport:
    async def scenario() -> TrafficReport:
        gateway = MembershipGateway.from_config(config)
        try:
            async with MembershipServer(gateway) as server:
                client = MembershipClient(*server.address)
                try:
                    driver = AdversarialTrafficDriver(
                        gateway,
                        seed=seed,
                        attacker_router=HashShardPicker(),
                        max_trials=12_000,
                        transport=client,
                    )
                    return await driver.run(**_workload(scale))
                finally:
                    await client.aclose()
        finally:
            gateway.close()

    return asyncio.run(scenario())


def _replay_worst_case(spec: str, scale: float, seed: int) -> TrafficReport:
    """Same replay over shards parameterised for the worst case: the
    config DSL cannot express a derived k, so the gateway is built
    directly from the Section 8.1 design rule."""
    shard_m = max(256, int(4096 * scale))
    capacity = max(40, int(300 * scale))
    params = BloomParameters.design_worst_case(capacity, shard_m)
    gateway = MembershipGateway(
        lambda: BloomFilter(params.m, params.k),
        shards=_SHARDS,
        picker=HashShardPicker(),
        policy=parse_policy(spec),
    )
    driver = AdversarialTrafficDriver(
        gateway, seed=seed, attacker_router=HashShardPicker(), max_trials=12_000
    )
    return asyncio.run(driver.run(**_workload(scale)))


def _reasons(report: TrafficReport) -> str:
    if not report.rotation_reasons:
        return "-"
    return ",".join(f"{r}x{n}" for r, n in sorted(report.rotation_reasons.items()))


def _lifecycle_fingerprint(gateway: MembershipGateway) -> list[tuple]:
    """(age, inserts, queries, positives) per shard, via the same
    observation path the policies read."""
    out = []
    for shard_id in range(gateway.shards):
        obs = gateway.lifecycle[shard_id].observe(
            gateway.backend.state(shard_id), gateway.op_epoch
        )
        out.append((obs.age_ops, obs.inserts, obs.queries, obs.positives))
    return out


def _check_restore_round_trip(
    result: ExperimentResult, scale: float, seed: int
) -> None:
    """Mid-run snapshot -> restore keeps policy state; rotate-on-restore
    then retires the restored shards."""
    restore_budget = _restore_budget(scale)
    spec = f"restore:{restore_budget}+fill:{_FILL}"
    config = _config(scale, spec)
    gateway = MembershipGateway.from_config(config)
    # Phase 1: run roughly half the workload, then snapshot mid-life.
    half = {
        key: (value // 2 if isinstance(value, int) and key != "batch" else value)
        for key, value in _workload(scale).items()
    }
    driver = AdversarialTrafficDriver(
        gateway, seed=seed, attacker_router=HashShardPicker(), max_trials=12_000
    )
    asyncio.run(driver.run(**half))
    raw = snapshot_gateway(gateway)
    before = _lifecycle_fingerprint(gateway)

    restored = MembershipGateway.from_config(config)
    restore_gateway(restored, raw)
    after = _lifecycle_fingerprint(restored)
    if before != after:
        raise SnapshotError(
            f"policy state diverged across restore: {before} != {after}"
        )
    flags = [life.restored for life in restored.lifecycle]
    worked = [life.restored for life in gateway.lifecycle]
    result.note(
        f"warm restart (policy '{spec}'): {len(raw)} snapshot bytes; per-shard "
        f"(age, inserts, queries, positives) identical across restore; "
        f"restored flags {worked} -> {flags}"
    )
    if not all(flags):
        raise SnapshotError("restored gateway did not flag its shards as restored")

    # Phase 2: keep serving; the wrapper must expire the restored shards.
    driver = AdversarialTrafficDriver(
        restored, seed=seed + 1, attacker_router=HashShardPicker(), max_trials=12_000
    )
    report = asyncio.run(driver.run(**half))
    expiries = report.rotation_reasons.get(f"restored_age>={restore_budget}", 0)
    result.note(
        f"post-restore replay: {report.rotations} rotation(s), {expiries} for the "
        f"restored_age>={restore_budget} reason (restored shards expired on budget)"
    )
    if expiries == 0:
        raise SnapshotError("rotate-on-restore never fired after a warm restart")


def _check_counting_round_trip(
    result: ExperimentResult, scale: float, seed: int
) -> None:
    """The same snapshot/restore story over counting-filter shards."""
    shard_m = max(256, int(4096 * scale))
    age_budget = _age_budget(scale)

    def factory() -> CountingBloomFilter:
        return CountingBloomFilter(shard_m, _K)

    def build() -> MembershipGateway:
        return MembershipGateway(
            factory,
            shards=2,
            picker=HashShardPicker(),
            policy=parse_policy(f"age:{age_budget}"),
        )

    urls = UrlFactory(seed=seed ^ 0xC0B1).urls(max(60, int(400 * scale)))
    gateway = build()
    asyncio.run(gateway.insert_batch(urls))
    asyncio.run(gateway.query_batch(urls[: len(urls) // 2]))
    raw = snapshot_gateway(gateway)
    restored = build()
    restore_gateway(restored, raw)
    probes = urls + UrlFactory(seed=seed ^ 0x90B).urls(100)
    identical = asyncio.run(gateway.query_batch(probes)) == asyncio.run(
        restored.query_batch(probes)
    )
    parity = _lifecycle_fingerprint(gateway) == _lifecycle_fingerprint(restored)
    result.note(
        f"counting shards: {len(raw)} snapshot bytes restore counters + policy "
        f"state on CountingBloomFilter shards; probe answers "
        f"{'identical' if identical else 'DIVERGED'}, lifecycle parity "
        f"{'ok' if parity else 'BROKEN'}"
    )
    if not (identical and parity):
        raise SnapshotError("counting-shard snapshot round trip diverged")


def run(scale: float = 1.0, seed: int = 0) -> ExperimentResult:
    """Run the rotation-policy study at the given ``scale``."""
    result = ExperimentResult(
        experiment_id="rotation_policy_study",
        title="Rotation policies vs the paper's attacks, across transports",
        paper_claim=(
            "recycling the filter is the deployable countermeasure (Sections 6 "
            "and 8, Table 2): any rotation rule bounds pollution damage, but "
            "*when* to rotate decides how much amplification a ghost forger "
            "extracts before the bits it measured are retired"
        ),
        headers=[
            "policy",
            "transport",
            "rotations",
            "reasons",
            "honest_fp",
            "ghost_hit",
            "amplif",
            "ops/s",
            "shard0_fill",
        ],
    )

    def add_row(label: str, transport: str, report: TrafficReport) -> None:
        result.add_row(
            label,
            transport,
            report.rotations,
            _reasons(report),
            round(report.honest_fp_rate, 4),
            round(report.ghost_hit_rate, 3),
            round(report.amplification, 1),
            round(report.throughput),
            round(report.snapshots[0].fill_ratio, 3),
        )

    by_policy: dict[str, TrafficReport] = {}
    for label, spec in _policy_specs(scale):
        config = _config(scale, spec)
        inproc = _replay_inproc(config, scale, seed)
        by_policy[label] = inproc
        add_row(label, "inproc", inproc)
        add_row(label, "tcp-local", _replay_tcp(config, scale, seed))

    for label, spec in _policy_specs(scale)[:1] + _policy_specs(scale)[2:3]:
        add_row(f"{label}@worstcase-k", "inproc", _replay_worst_case(spec, scale, seed))

    fill, age = by_policy["fill"], by_policy["age"]
    adaptive = by_policy["adaptive"]
    result.note(
        f"same seeded attack, different lifecycles: fill rotates "
        f"{fill.rotations}x ({_reasons(fill)}), age {age.rotations}x "
        f"({_reasons(age)}), adaptive {adaptive.rotations}x ({_reasons(adaptive)}) "
        f"with ghost hit rates {fill.ghost_hit_rate:.0%} / {age.ghost_hit_rate:.0%} "
        f"/ {adaptive.ghost_hit_rate:.0%}"
    )

    _check_restore_round_trip(result, scale, seed)
    _check_counting_round_trip(result, scale, seed)
    return result
