"""Section 7 -- the Squid cache-digest experiment.

Paper setup: two sibling proxies, a clean cache of 51 URLs, 100 URLs
added by a malicious client of proxy1 (crafted to pollute its 762-bit
digest), then 100 probe queries through proxy2.  Every probe that
proxy1's digest wrongly claims costs proxy2 a wasted 10 ms round trip.

Paper numbers: 79 % false hits polluted vs 40 % unpolluted.  Our
mechanism-faithful baseline lands near the analytic digest FP (~9 %,
since 151 honest entries in 762 bits give (W/m)^4 ~ 0.09 -- the paper
itself notes Squid's 5n+7 sizing yields 0.09 at n = 200); the polluted
run lands near (586/762)^4 ~ 0.35.  The *direction and leverage* of the
attack (a ~4-5x jump in wasted round trips) reproduces; the control
discrepancy is discussed in EXPERIMENTS.md.
"""

from __future__ import annotations

from repro.apps.squid.attack import CacheDigestAttack
from repro.experiments.runner import ExperimentResult

__all__ = ["run"]


def run(scale: float = 1.0, seed: int = 0) -> ExperimentResult:
    """Regenerate the Section 7 measurement (scale raises probe count)."""
    probes = max(100, int(100 * scale))
    attack = CacheDigestAttack(
        clean_urls=51, added_urls=100, probes=probes, sibling_rtt_ms=10.0, seed=seed ^ 0x5C1D
    )
    polluted, control = attack.run()

    result = ExperimentResult(
        experiment_id="squid",
        title="Squid cache-digest pollution (51 clean + 100 added URLs)",
        paper_claim=(
            "pollution raises digest false hits from 40% to 79%; each false "
            "hit wastes >= 1 sibling RTT (10 ms)"
        ),
        headers=[
            "scenario",
            "digest bits",
            "digest weight",
            "probes",
            "false hits",
            "false-hit rate",
            "wasted latency (ms)",
        ],
    )
    for report in (control, polluted):
        result.add_row(
            "polluted" if report.polluted else "control",
            report.digest_bits,
            report.digest_weight,
            report.probes,
            report.false_hits,
            report.false_hit_rate,
            report.added_latency_ms,
        )

    result.note(
        f"digest size {polluted.digest_bits} bits (paper: 762 = 5*151+7)"
    )
    result.note(
        f"false-hit amplification x{polluted.false_hit_rate / max(control.false_hit_rate, 1e-9):.1f} "
        "(paper: 79% vs 40%, x2.0; our control matches the analytic digest FP "
        "-- see EXPERIMENTS.md for the baseline discussion)"
    )
    control_analytic = (control.digest_weight / control.digest_bits) ** 4
    polluted_analytic = (polluted.digest_weight / polluted.digest_bits) ** 4
    result.note(
        f"weight-implied digest fpp: control {control_analytic:.3f}, "
        f"polluted {polluted_analytic:.3f}"
    )
    return result
