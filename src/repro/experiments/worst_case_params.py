"""Section 8.1 -- worst-case parameters, validated empirically.

Closed forms: ``k_adv = m/(en)``, ``f_adv_opt = e^{-m/(en)}``,
``k_opt/k_adv = e ln 2 ~ 1.88``, honest penalty ``1.05^{m/n}``, and the
paper's ~4.8 size-inflation constant.  The empirical half runs a real
pollution attack against both designs on the Fig. 3 filter and confirms
the hardened design caps the adversary where theory says.
"""

from __future__ import annotations

from repro.adversary.pollution import PollutionAttack
from repro.core.bloom import BloomFilter
from repro.core.params import (
    adversarial_optimal_fpp,
    adversarial_optimal_k,
    honest_fpp_at_adversarial_k,
    k_ratio,
    optimal_fpp,
    optimal_k,
    paper_size_inflation_factor,
)
from repro.countermeasures.worst_case import compare_designs
from repro.experiments.runner import ExperimentResult

__all__ = ["run"]

M = 3200
N = 600


def run(scale: float = 1.0, seed: int = 0) -> ExperimentResult:
    """Tabulate and validate the Section 8.1 derivations."""
    comparison = compare_designs(M, N)
    result = ExperimentResult(
        experiment_id="worstcase",
        title=f"Worst-case vs optimal design (m={M}, n={N})",
        paper_claim=(
            "k_adv = m/(en) caps the adversary at e^(-m/(en)); k_opt/k_adv = "
            "e*ln2 = 1.88; honest FP grows by 1.05^(m/n); m'/m ~ 4.8"
        ),
        headers=["quantity", "optimal design", "worst-case design"],
    )

    result.add_row("k", comparison.k_optimal, comparison.k_worst_case)
    result.add_row("honest FP at capacity", comparison.optimal_honest, comparison.worst_case_honest)
    result.add_row("adversarial FP at capacity", comparison.optimal_adv, comparison.worst_case_adv)

    # Empirical: run the same pollution campaign against both designs.
    n_items = max(100, int(N * min(1.0, scale)))
    measured: dict[str, float] = {}
    for label, k in (("optimal", comparison.k_optimal), ("worst-case", comparison.k_worst_case)):
        target = BloomFilter(M, k)
        attack = PollutionAttack(target, seed=seed ^ k)
        attack.run(n_items, insert=True)
        measured[label] = target.current_fpp()
    result.add_row(
        f"measured FP after {n_items} crafted insertions",
        measured["optimal"],
        measured["worst-case"],
    )

    result.note(f"k_opt (exact) = {optimal_k(M, N):.2f}, k_adv (exact) = {adversarial_optimal_k(M, N):.2f}")
    result.note(f"k_opt/k_adv = {k_ratio():.3f} (paper: e*ln2 = 1.88)")
    result.note(
        f"f_opt = {optimal_fpp(M, N):.4f}; honest FP at k_adv = "
        f"{honest_fpp_at_adversarial_k(M, N):.4f} "
        f"(ratio {honest_fpp_at_adversarial_k(M, N) / optimal_fpp(M, N):.2f} ~ 1.05^(m/n) "
        f"= {1.05 ** (M / N):.2f})"
    )
    result.note(
        f"adversary's ceiling at k_adv: analytic e^(-m/(en)) = "
        f"{adversarial_optimal_fpp(M, N):.4f}, measured {measured['worst-case']:.4f}"
    )
    result.note(
        f"paper size-inflation constant m'/m = {paper_size_inflation_factor():.2f} "
        "(published as 4.8; derivation discussed in EXPERIMENTS.md)"
    )
    return result
